file(REMOVE_RECURSE
  "CMakeFiles/simulate_schedule.dir/simulate_schedule.cpp.o"
  "CMakeFiles/simulate_schedule.dir/simulate_schedule.cpp.o.d"
  "simulate_schedule"
  "simulate_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
