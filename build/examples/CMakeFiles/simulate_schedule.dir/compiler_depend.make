# Empty compiler generated dependencies file for simulate_schedule.
# This may be replaced when dependencies are built.
