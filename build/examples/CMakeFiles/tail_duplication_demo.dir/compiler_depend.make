# Empty compiler generated dependencies file for tail_duplication_demo.
# This may be replaced when dependencies are built.
