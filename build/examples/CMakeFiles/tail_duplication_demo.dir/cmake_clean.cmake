file(REMOVE_RECURSE
  "CMakeFiles/tail_duplication_demo.dir/tail_duplication_demo.cpp.o"
  "CMakeFiles/tail_duplication_demo.dir/tail_duplication_demo.cpp.o.d"
  "tail_duplication_demo"
  "tail_duplication_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tail_duplication_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
