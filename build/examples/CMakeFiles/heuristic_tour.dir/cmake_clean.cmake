file(REMOVE_RECURSE
  "CMakeFiles/heuristic_tour.dir/heuristic_tour.cpp.o"
  "CMakeFiles/heuristic_tour.dir/heuristic_tour.cpp.o.d"
  "heuristic_tour"
  "heuristic_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heuristic_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
