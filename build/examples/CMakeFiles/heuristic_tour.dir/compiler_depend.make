# Empty compiler generated dependencies file for heuristic_tour.
# This may be replaced when dependencies are built.
