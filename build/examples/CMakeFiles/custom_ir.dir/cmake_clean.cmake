file(REMOVE_RECURSE
  "CMakeFiles/custom_ir.dir/custom_ir.cpp.o"
  "CMakeFiles/custom_ir.dir/custom_ir.cpp.o.d"
  "custom_ir"
  "custom_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
