# Empty compiler generated dependencies file for custom_ir.
# This may be replaced when dependencies are built.
