file(REMOVE_RECURSE
  "CMakeFiles/tg_sched.dir/ddg.cc.o"
  "CMakeFiles/tg_sched.dir/ddg.cc.o.d"
  "CMakeFiles/tg_sched.dir/hyperblock_lowering.cc.o"
  "CMakeFiles/tg_sched.dir/hyperblock_lowering.cc.o.d"
  "CMakeFiles/tg_sched.dir/list_scheduler.cc.o"
  "CMakeFiles/tg_sched.dir/list_scheduler.cc.o.d"
  "CMakeFiles/tg_sched.dir/lowering.cc.o"
  "CMakeFiles/tg_sched.dir/lowering.cc.o.d"
  "CMakeFiles/tg_sched.dir/perf_model.cc.o"
  "CMakeFiles/tg_sched.dir/perf_model.cc.o.d"
  "CMakeFiles/tg_sched.dir/pipeline.cc.o"
  "CMakeFiles/tg_sched.dir/pipeline.cc.o.d"
  "CMakeFiles/tg_sched.dir/priority.cc.o"
  "CMakeFiles/tg_sched.dir/priority.cc.o.d"
  "CMakeFiles/tg_sched.dir/schedule.cc.o"
  "CMakeFiles/tg_sched.dir/schedule.cc.o.d"
  "CMakeFiles/tg_sched.dir/schedule_verifier.cc.o"
  "CMakeFiles/tg_sched.dir/schedule_verifier.cc.o.d"
  "libtg_sched.a"
  "libtg_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
