
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/ddg.cc" "src/sched/CMakeFiles/tg_sched.dir/ddg.cc.o" "gcc" "src/sched/CMakeFiles/tg_sched.dir/ddg.cc.o.d"
  "/root/repo/src/sched/hyperblock_lowering.cc" "src/sched/CMakeFiles/tg_sched.dir/hyperblock_lowering.cc.o" "gcc" "src/sched/CMakeFiles/tg_sched.dir/hyperblock_lowering.cc.o.d"
  "/root/repo/src/sched/list_scheduler.cc" "src/sched/CMakeFiles/tg_sched.dir/list_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/tg_sched.dir/list_scheduler.cc.o.d"
  "/root/repo/src/sched/lowering.cc" "src/sched/CMakeFiles/tg_sched.dir/lowering.cc.o" "gcc" "src/sched/CMakeFiles/tg_sched.dir/lowering.cc.o.d"
  "/root/repo/src/sched/perf_model.cc" "src/sched/CMakeFiles/tg_sched.dir/perf_model.cc.o" "gcc" "src/sched/CMakeFiles/tg_sched.dir/perf_model.cc.o.d"
  "/root/repo/src/sched/pipeline.cc" "src/sched/CMakeFiles/tg_sched.dir/pipeline.cc.o" "gcc" "src/sched/CMakeFiles/tg_sched.dir/pipeline.cc.o.d"
  "/root/repo/src/sched/priority.cc" "src/sched/CMakeFiles/tg_sched.dir/priority.cc.o" "gcc" "src/sched/CMakeFiles/tg_sched.dir/priority.cc.o.d"
  "/root/repo/src/sched/schedule.cc" "src/sched/CMakeFiles/tg_sched.dir/schedule.cc.o" "gcc" "src/sched/CMakeFiles/tg_sched.dir/schedule.cc.o.d"
  "/root/repo/src/sched/schedule_verifier.cc" "src/sched/CMakeFiles/tg_sched.dir/schedule_verifier.cc.o" "gcc" "src/sched/CMakeFiles/tg_sched.dir/schedule_verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/region/CMakeFiles/tg_region.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/tg_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
