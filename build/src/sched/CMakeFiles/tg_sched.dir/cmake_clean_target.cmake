file(REMOVE_RECURSE
  "libtg_sched.a"
)
