# Empty compiler generated dependencies file for tg_sched.
# This may be replaced when dependencies are built.
