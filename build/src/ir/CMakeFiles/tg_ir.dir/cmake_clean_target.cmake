file(REMOVE_RECURSE
  "libtg_ir.a"
)
