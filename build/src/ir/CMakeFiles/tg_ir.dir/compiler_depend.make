# Empty compiler generated dependencies file for tg_ir.
# This may be replaced when dependencies are built.
