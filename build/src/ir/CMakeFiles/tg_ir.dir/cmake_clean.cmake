file(REMOVE_RECURSE
  "CMakeFiles/tg_ir.dir/basic_block.cc.o"
  "CMakeFiles/tg_ir.dir/basic_block.cc.o.d"
  "CMakeFiles/tg_ir.dir/builder.cc.o"
  "CMakeFiles/tg_ir.dir/builder.cc.o.d"
  "CMakeFiles/tg_ir.dir/function.cc.o"
  "CMakeFiles/tg_ir.dir/function.cc.o.d"
  "CMakeFiles/tg_ir.dir/module.cc.o"
  "CMakeFiles/tg_ir.dir/module.cc.o.d"
  "CMakeFiles/tg_ir.dir/op.cc.o"
  "CMakeFiles/tg_ir.dir/op.cc.o.d"
  "CMakeFiles/tg_ir.dir/opcode.cc.o"
  "CMakeFiles/tg_ir.dir/opcode.cc.o.d"
  "CMakeFiles/tg_ir.dir/parser.cc.o"
  "CMakeFiles/tg_ir.dir/parser.cc.o.d"
  "CMakeFiles/tg_ir.dir/printer.cc.o"
  "CMakeFiles/tg_ir.dir/printer.cc.o.d"
  "CMakeFiles/tg_ir.dir/verifier.cc.o"
  "CMakeFiles/tg_ir.dir/verifier.cc.o.d"
  "libtg_ir.a"
  "libtg_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
