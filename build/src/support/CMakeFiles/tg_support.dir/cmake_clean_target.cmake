file(REMOVE_RECURSE
  "libtg_support.a"
)
