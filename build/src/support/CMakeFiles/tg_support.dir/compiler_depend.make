# Empty compiler generated dependencies file for tg_support.
# This may be replaced when dependencies are built.
