file(REMOVE_RECURSE
  "CMakeFiles/tg_support.dir/bitvector.cc.o"
  "CMakeFiles/tg_support.dir/bitvector.cc.o.d"
  "CMakeFiles/tg_support.dir/logging.cc.o"
  "CMakeFiles/tg_support.dir/logging.cc.o.d"
  "CMakeFiles/tg_support.dir/rng.cc.o"
  "CMakeFiles/tg_support.dir/rng.cc.o.d"
  "CMakeFiles/tg_support.dir/stats.cc.o"
  "CMakeFiles/tg_support.dir/stats.cc.o.d"
  "CMakeFiles/tg_support.dir/string_utils.cc.o"
  "CMakeFiles/tg_support.dir/string_utils.cc.o.d"
  "CMakeFiles/tg_support.dir/table.cc.o"
  "CMakeFiles/tg_support.dir/table.cc.o.d"
  "libtg_support.a"
  "libtg_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
