file(REMOVE_RECURSE
  "CMakeFiles/tg_vliw.dir/equivalence.cc.o"
  "CMakeFiles/tg_vliw.dir/equivalence.cc.o.d"
  "CMakeFiles/tg_vliw.dir/interpreter.cc.o"
  "CMakeFiles/tg_vliw.dir/interpreter.cc.o.d"
  "CMakeFiles/tg_vliw.dir/machine_state.cc.o"
  "CMakeFiles/tg_vliw.dir/machine_state.cc.o.d"
  "CMakeFiles/tg_vliw.dir/vliw_sim.cc.o"
  "CMakeFiles/tg_vliw.dir/vliw_sim.cc.o.d"
  "libtg_vliw.a"
  "libtg_vliw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_vliw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
