# Empty dependencies file for tg_vliw.
# This may be replaced when dependencies are built.
