file(REMOVE_RECURSE
  "libtg_vliw.a"
)
