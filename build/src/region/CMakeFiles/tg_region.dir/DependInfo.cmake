
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/region/graphviz.cc" "src/region/CMakeFiles/tg_region.dir/graphviz.cc.o" "gcc" "src/region/CMakeFiles/tg_region.dir/graphviz.cc.o.d"
  "/root/repo/src/region/hyperblock_formation.cc" "src/region/CMakeFiles/tg_region.dir/hyperblock_formation.cc.o" "gcc" "src/region/CMakeFiles/tg_region.dir/hyperblock_formation.cc.o.d"
  "/root/repo/src/region/linear_formation.cc" "src/region/CMakeFiles/tg_region.dir/linear_formation.cc.o" "gcc" "src/region/CMakeFiles/tg_region.dir/linear_formation.cc.o.d"
  "/root/repo/src/region/region.cc" "src/region/CMakeFiles/tg_region.dir/region.cc.o" "gcc" "src/region/CMakeFiles/tg_region.dir/region.cc.o.d"
  "/root/repo/src/region/region_stats.cc" "src/region/CMakeFiles/tg_region.dir/region_stats.cc.o" "gcc" "src/region/CMakeFiles/tg_region.dir/region_stats.cc.o.d"
  "/root/repo/src/region/superblock_formation.cc" "src/region/CMakeFiles/tg_region.dir/superblock_formation.cc.o" "gcc" "src/region/CMakeFiles/tg_region.dir/superblock_formation.cc.o.d"
  "/root/repo/src/region/tail_duplication.cc" "src/region/CMakeFiles/tg_region.dir/tail_duplication.cc.o" "gcc" "src/region/CMakeFiles/tg_region.dir/tail_duplication.cc.o.d"
  "/root/repo/src/region/treegion_formation.cc" "src/region/CMakeFiles/tg_region.dir/treegion_formation.cc.o" "gcc" "src/region/CMakeFiles/tg_region.dir/treegion_formation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/tg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/tg_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
