file(REMOVE_RECURSE
  "CMakeFiles/tg_region.dir/graphviz.cc.o"
  "CMakeFiles/tg_region.dir/graphviz.cc.o.d"
  "CMakeFiles/tg_region.dir/hyperblock_formation.cc.o"
  "CMakeFiles/tg_region.dir/hyperblock_formation.cc.o.d"
  "CMakeFiles/tg_region.dir/linear_formation.cc.o"
  "CMakeFiles/tg_region.dir/linear_formation.cc.o.d"
  "CMakeFiles/tg_region.dir/region.cc.o"
  "CMakeFiles/tg_region.dir/region.cc.o.d"
  "CMakeFiles/tg_region.dir/region_stats.cc.o"
  "CMakeFiles/tg_region.dir/region_stats.cc.o.d"
  "CMakeFiles/tg_region.dir/superblock_formation.cc.o"
  "CMakeFiles/tg_region.dir/superblock_formation.cc.o.d"
  "CMakeFiles/tg_region.dir/tail_duplication.cc.o"
  "CMakeFiles/tg_region.dir/tail_duplication.cc.o.d"
  "CMakeFiles/tg_region.dir/treegion_formation.cc.o"
  "CMakeFiles/tg_region.dir/treegion_formation.cc.o.d"
  "libtg_region.a"
  "libtg_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
