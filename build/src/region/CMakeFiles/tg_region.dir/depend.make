# Empty dependencies file for tg_region.
# This may be replaced when dependencies are built.
