file(REMOVE_RECURSE
  "libtg_region.a"
)
