# Empty compiler generated dependencies file for tg_analysis.
# This may be replaced when dependencies are built.
