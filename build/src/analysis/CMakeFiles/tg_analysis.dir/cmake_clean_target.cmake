file(REMOVE_RECURSE
  "libtg_analysis.a"
)
