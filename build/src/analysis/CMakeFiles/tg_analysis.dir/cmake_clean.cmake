file(REMOVE_RECURSE
  "CMakeFiles/tg_analysis.dir/dominators.cc.o"
  "CMakeFiles/tg_analysis.dir/dominators.cc.o.d"
  "CMakeFiles/tg_analysis.dir/liveness.cc.o"
  "CMakeFiles/tg_analysis.dir/liveness.cc.o.d"
  "CMakeFiles/tg_analysis.dir/loops.cc.o"
  "CMakeFiles/tg_analysis.dir/loops.cc.o.d"
  "CMakeFiles/tg_analysis.dir/profile.cc.o"
  "CMakeFiles/tg_analysis.dir/profile.cc.o.d"
  "libtg_analysis.a"
  "libtg_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
