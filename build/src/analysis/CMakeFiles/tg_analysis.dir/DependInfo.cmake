
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dominators.cc" "src/analysis/CMakeFiles/tg_analysis.dir/dominators.cc.o" "gcc" "src/analysis/CMakeFiles/tg_analysis.dir/dominators.cc.o.d"
  "/root/repo/src/analysis/liveness.cc" "src/analysis/CMakeFiles/tg_analysis.dir/liveness.cc.o" "gcc" "src/analysis/CMakeFiles/tg_analysis.dir/liveness.cc.o.d"
  "/root/repo/src/analysis/loops.cc" "src/analysis/CMakeFiles/tg_analysis.dir/loops.cc.o" "gcc" "src/analysis/CMakeFiles/tg_analysis.dir/loops.cc.o.d"
  "/root/repo/src/analysis/profile.cc" "src/analysis/CMakeFiles/tg_analysis.dir/profile.cc.o" "gcc" "src/analysis/CMakeFiles/tg_analysis.dir/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/tg_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
