# Empty compiler generated dependencies file for tg_workloads.
# This may be replaced when dependencies are built.
