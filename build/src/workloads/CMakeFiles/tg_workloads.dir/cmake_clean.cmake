file(REMOVE_RECURSE
  "CMakeFiles/tg_workloads.dir/profiler.cc.o"
  "CMakeFiles/tg_workloads.dir/profiler.cc.o.d"
  "CMakeFiles/tg_workloads.dir/spec_proxy.cc.o"
  "CMakeFiles/tg_workloads.dir/spec_proxy.cc.o.d"
  "CMakeFiles/tg_workloads.dir/synthetic.cc.o"
  "CMakeFiles/tg_workloads.dir/synthetic.cc.o.d"
  "libtg_workloads.a"
  "libtg_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
