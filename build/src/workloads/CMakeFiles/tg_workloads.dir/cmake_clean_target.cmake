file(REMOVE_RECURSE
  "libtg_workloads.a"
)
