file(REMOVE_RECURSE
  "CMakeFiles/ablation_pbr.dir/ablation_pbr.cc.o"
  "CMakeFiles/ablation_pbr.dir/ablation_pbr.cc.o.d"
  "ablation_pbr"
  "ablation_pbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
