# Empty compiler generated dependencies file for ablation_pbr.
# This may be replaced when dependencies are built.
