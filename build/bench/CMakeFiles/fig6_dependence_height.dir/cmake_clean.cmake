file(REMOVE_RECURSE
  "CMakeFiles/fig6_dependence_height.dir/fig6_dependence_height.cc.o"
  "CMakeFiles/fig6_dependence_height.dir/fig6_dependence_height.cc.o.d"
  "fig6_dependence_height"
  "fig6_dependence_height.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dependence_height.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
