# Empty compiler generated dependencies file for fig6_dependence_height.
# This may be replaced when dependencies are built.
