# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ext_hyperblock_vs_treegion.
