# Empty dependencies file for ext_hyperblock_vs_treegion.
# This may be replaced when dependencies are built.
