file(REMOVE_RECURSE
  "CMakeFiles/ext_hyperblock_vs_treegion.dir/ext_hyperblock_vs_treegion.cc.o"
  "CMakeFiles/ext_hyperblock_vs_treegion.dir/ext_hyperblock_vs_treegion.cc.o.d"
  "ext_hyperblock_vs_treegion"
  "ext_hyperblock_vs_treegion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hyperblock_vs_treegion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
