# Empty dependencies file for table4_region_stats.
# This may be replaced when dependencies are built.
