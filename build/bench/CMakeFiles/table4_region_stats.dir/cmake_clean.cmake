file(REMOVE_RECURSE
  "CMakeFiles/table4_region_stats.dir/table4_region_stats.cc.o"
  "CMakeFiles/table4_region_stats.dir/table4_region_stats.cc.o.d"
  "table4_region_stats"
  "table4_region_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_region_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
