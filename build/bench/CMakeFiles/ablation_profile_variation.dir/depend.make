# Empty dependencies file for ablation_profile_variation.
# This may be replaced when dependencies are built.
