file(REMOVE_RECURSE
  "CMakeFiles/ablation_profile_variation.dir/ablation_profile_variation.cc.o"
  "CMakeFiles/ablation_profile_variation.dir/ablation_profile_variation.cc.o.d"
  "ablation_profile_variation"
  "ablation_profile_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_profile_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
