file(REMOVE_RECURSE
  "CMakeFiles/table1_treegion_stats.dir/table1_treegion_stats.cc.o"
  "CMakeFiles/table1_treegion_stats.dir/table1_treegion_stats.cc.o.d"
  "table1_treegion_stats"
  "table1_treegion_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_treegion_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
