# Empty compiler generated dependencies file for table1_treegion_stats.
# This may be replaced when dependencies are built.
