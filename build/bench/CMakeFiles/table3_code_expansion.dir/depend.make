# Empty dependencies file for table3_code_expansion.
# This may be replaced when dependencies are built.
