
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table3_code_expansion.cc" "bench/CMakeFiles/table3_code_expansion.dir/table3_code_expansion.cc.o" "gcc" "bench/CMakeFiles/table3_code_expansion.dir/table3_code_expansion.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/tg_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/vliw/CMakeFiles/tg_vliw.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tg_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/tg_region.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/tg_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
