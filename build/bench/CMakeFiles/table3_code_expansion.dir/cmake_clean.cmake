file(REMOVE_RECURSE
  "CMakeFiles/table3_code_expansion.dir/table3_code_expansion.cc.o"
  "CMakeFiles/table3_code_expansion.dir/table3_code_expansion.cc.o.d"
  "table3_code_expansion"
  "table3_code_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_code_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
