file(REMOVE_RECURSE
  "CMakeFiles/table2_slr_stats.dir/table2_slr_stats.cc.o"
  "CMakeFiles/table2_slr_stats.dir/table2_slr_stats.cc.o.d"
  "table2_slr_stats"
  "table2_slr_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_slr_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
