file(REMOVE_RECURSE
  "CMakeFiles/ablation_dominator_parallelism.dir/ablation_dominator_parallelism.cc.o"
  "CMakeFiles/ablation_dominator_parallelism.dir/ablation_dominator_parallelism.cc.o.d"
  "ablation_dominator_parallelism"
  "ablation_dominator_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dominator_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
