# Empty compiler generated dependencies file for ablation_dominator_parallelism.
# This may be replaced when dependencies are built.
