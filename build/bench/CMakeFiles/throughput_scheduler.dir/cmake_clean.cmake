file(REMOVE_RECURSE
  "CMakeFiles/throughput_scheduler.dir/throughput_scheduler.cc.o"
  "CMakeFiles/throughput_scheduler.dir/throughput_scheduler.cc.o.d"
  "throughput_scheduler"
  "throughput_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
