# Empty compiler generated dependencies file for throughput_scheduler.
# This may be replaced when dependencies are built.
