# Empty compiler generated dependencies file for fig8_heuristics.
# This may be replaced when dependencies are built.
