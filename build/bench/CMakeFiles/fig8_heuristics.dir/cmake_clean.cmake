file(REMOVE_RECURSE
  "CMakeFiles/fig8_heuristics.dir/fig8_heuristics.cc.o"
  "CMakeFiles/fig8_heuristics.dir/fig8_heuristics.cc.o.d"
  "fig8_heuristics"
  "fig8_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
