# Empty dependencies file for fig13_tail_dup_vs_superblock.
# This may be replaced when dependencies are built.
