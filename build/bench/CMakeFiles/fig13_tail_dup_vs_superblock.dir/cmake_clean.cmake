file(REMOVE_RECURSE
  "CMakeFiles/fig13_tail_dup_vs_superblock.dir/fig13_tail_dup_vs_superblock.cc.o"
  "CMakeFiles/fig13_tail_dup_vs_superblock.dir/fig13_tail_dup_vs_superblock.cc.o.d"
  "fig13_tail_dup_vs_superblock"
  "fig13_tail_dup_vs_superblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tail_dup_vs_superblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
