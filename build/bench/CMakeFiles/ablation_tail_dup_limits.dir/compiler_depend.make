# Empty compiler generated dependencies file for ablation_tail_dup_limits.
# This may be replaced when dependencies are built.
