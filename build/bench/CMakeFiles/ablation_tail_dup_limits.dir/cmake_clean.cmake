file(REMOVE_RECURSE
  "CMakeFiles/ablation_tail_dup_limits.dir/ablation_tail_dup_limits.cc.o"
  "CMakeFiles/ablation_tail_dup_limits.dir/ablation_tail_dup_limits.cc.o.d"
  "ablation_tail_dup_limits"
  "ablation_tail_dup_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tail_dup_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
