file(REMOVE_RECURSE
  "CMakeFiles/treegionc.dir/treegionc.cc.o"
  "CMakeFiles/treegionc.dir/treegionc.cc.o.d"
  "treegionc"
  "treegionc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treegionc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
