# Empty dependencies file for treegionc.
# This may be replaced when dependencies are built.
