# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/region_test[1]_include.cmake")
include("/root/repo/build/tests/tail_dup_test[1]_include.cmake")
include("/root/repo/build/tests/lowering_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/paper_example_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_property_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/hyperblock_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_tools_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
