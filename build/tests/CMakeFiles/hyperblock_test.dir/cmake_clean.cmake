file(REMOVE_RECURSE
  "CMakeFiles/hyperblock_test.dir/hyperblock_test.cc.o"
  "CMakeFiles/hyperblock_test.dir/hyperblock_test.cc.o.d"
  "hyperblock_test"
  "hyperblock_test.pdb"
  "hyperblock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperblock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
