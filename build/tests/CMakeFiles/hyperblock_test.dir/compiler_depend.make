# Empty compiler generated dependencies file for hyperblock_test.
# This may be replaced when dependencies are built.
