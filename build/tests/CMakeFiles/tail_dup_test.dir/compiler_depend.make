# Empty compiler generated dependencies file for tail_dup_test.
# This may be replaced when dependencies are built.
