file(REMOVE_RECURSE
  "CMakeFiles/tail_dup_test.dir/tail_dup_test.cc.o"
  "CMakeFiles/tail_dup_test.dir/tail_dup_test.cc.o.d"
  "tail_dup_test"
  "tail_dup_test.pdb"
  "tail_dup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tail_dup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
