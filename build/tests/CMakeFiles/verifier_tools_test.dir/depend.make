# Empty dependencies file for verifier_tools_test.
# This may be replaced when dependencies are built.
