file(REMOVE_RECURSE
  "CMakeFiles/verifier_tools_test.dir/verifier_tools_test.cc.o"
  "CMakeFiles/verifier_tools_test.dir/verifier_tools_test.cc.o.d"
  "verifier_tools_test"
  "verifier_tools_test.pdb"
  "verifier_tools_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifier_tools_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
