/**
 * @file
 * treegion-report — render and compare the compiler's decisions.
 *
 * Three modes:
 *
 *  1. Timeline (default): compile a module (a .tir file, or the
 *     eight SPECint95 proxies with --proxies), print per-region
 *     cycle x slot schedule grids — home-block colored, speculated
 *     ops marked '*' — and optionally write the same view as a
 *     standalone HTML page (--html FILE) plus the collected decision
 *     remarks as JSON lines (--remarks FILE).
 *
 *  2. --check FILE: validate a remarks JSONL file against the schema
 *     (support/remarks.h); exit 1 with "line N: why" on the first
 *     violation. This is the CI schema gate.
 *
 *  3. --diff A B: compare two remark streams decision by decision
 *     (per-function multiset difference of canonical lines) and
 *     print what diverged — e.g. heuristic gw vs h, or -j1 vs -j8.
 *
 * Usage:
 *   treegion-report [--scheme S] [--heuristic H] [--width N]
 *                   [--html FILE] [--remarks FILE] [--color]
 *                   <input.tir | --proxies>
 *   treegion-report --check remarks.jsonl
 *   treegion-report --diff a.jsonl b.jsonl [--limit N]
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <unistd.h>
#include <vector>

#include "ir/parser.h"
#include "sched/pipeline.h"
#include "support/remarks.h"
#include "support/string_utils.h"
#include "support/trace.h"
#include "workloads/profiler.h"
#include "workloads/spec_proxy.h"

using namespace treegion;

namespace {

struct CliOptions
{
    std::string input;
    bool proxies = false;
    sched::PipelineOptions pipeline;
    std::string html_path;
    std::string remarks_path;
    bool force_color = false;
    std::string check_path;
    std::string diff_a, diff_b;
    size_t diff_limit = 50;
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options] <input.tir | --proxies>\n"
                 "       %s --check remarks.jsonl\n"
                 "       %s --diff a.jsonl b.jsonl [--limit N]\n"
                 "see the file header or README for options\n",
                 argv0, argv0, argv0);
    return 2;
}

bool
readLines(const std::string &path, std::vector<std::string> &out,
          std::string *error)
{
    std::ifstream file(path);
    if (!file) {
        *error = "cannot open " + path;
        return false;
    }
    std::string line;
    while (std::getline(file, line)) {
        if (!line.empty())
            out.push_back(line);
    }
    return true;
}

// ---- --check -------------------------------------------------------

int
runCheck(const std::string &path)
{
    std::vector<std::string> lines;
    std::string error;
    if (!readLines(path, lines, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }
    for (size_t i = 0; i < lines.size(); ++i) {
        support::Remark remark;
        if (!support::parseRemarkJson(lines[i], remark, &error)) {
            std::fprintf(stderr, "%s: line %zu: %s\n", path.c_str(),
                         i + 1, error.c_str());
            return 1;
        }
    }
    std::printf("%s: %zu remarks, all schema-valid\n", path.c_str(),
                lines.size());
    return 0;
}

// ---- --diff --------------------------------------------------------

/** Canonical (re-serialized) lines per function, in input order. */
std::map<std::string, std::vector<std::string>>
groupByFunction(const std::vector<std::string> &lines,
                const std::string &path, bool *ok)
{
    std::map<std::string, std::vector<std::string>> grouped;
    std::string error;
    for (size_t i = 0; i < lines.size(); ++i) {
        support::Remark remark;
        if (!support::parseRemarkJson(lines[i], remark, &error)) {
            std::fprintf(stderr, "%s: line %zu: %s\n", path.c_str(),
                         i + 1, error.c_str());
            *ok = false;
            return grouped;
        }
        grouped[remark.function].push_back(remark.toJson());
    }
    return grouped;
}

/** Multiset difference a - b, preserving a's order. */
std::vector<std::string>
multisetMinus(const std::vector<std::string> &a,
              const std::vector<std::string> &b)
{
    std::map<std::string, size_t> counts;
    for (const std::string &line : b)
        ++counts[line];
    std::vector<std::string> out;
    for (const std::string &line : a) {
        auto it = counts.find(line);
        if (it != counts.end() && it->second > 0)
            --it->second;
        else
            out.push_back(line);
    }
    return out;
}

int
runDiff(const CliOptions &cli)
{
    std::vector<std::string> lines_a, lines_b;
    std::string error;
    if (!readLines(cli.diff_a, lines_a, &error) ||
        !readLines(cli.diff_b, lines_b, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }
    bool ok = true;
    const auto by_fn_a = groupByFunction(lines_a, cli.diff_a, &ok);
    const auto by_fn_b = groupByFunction(lines_b, cli.diff_b, &ok);
    if (!ok)
        return 2;

    std::vector<std::string> functions;
    for (const auto &[fn, _] : by_fn_a)
        functions.push_back(fn);
    for (const auto &[fn, _] : by_fn_b) {
        if (!by_fn_a.count(fn))
            functions.push_back(fn);
    }

    static const std::vector<std::string> kEmpty;
    size_t diverging = 0, printed = 0;
    for (const std::string &fn : functions) {
        const auto it_a = by_fn_a.find(fn);
        const auto it_b = by_fn_b.find(fn);
        const auto &a = it_a == by_fn_a.end() ? kEmpty : it_a->second;
        const auto &b = it_b == by_fn_b.end() ? kEmpty : it_b->second;
        const auto only_a = multisetMinus(a, b);
        const auto only_b = multisetMinus(b, a);
        if (only_a.empty() && only_b.empty())
            continue;
        diverging += only_a.size() + only_b.size();
        std::printf("== %s (-%zu +%zu)\n", fn.c_str(), only_a.size(),
                    only_b.size());
        for (const auto &line : only_a) {
            if (printed++ < cli.diff_limit)
                std::printf("- %s\n", line.c_str());
        }
        for (const auto &line : only_b) {
            if (printed++ < cli.diff_limit)
                std::printf("+ %s\n", line.c_str());
        }
    }
    if (printed > cli.diff_limit) {
        std::printf("... %zu more (raise with --limit)\n",
                    printed - cli.diff_limit);
    }
    std::printf("%zu diverging decisions (%s: %zu remarks, %s: %zu "
                "remarks)\n",
                diverging, cli.diff_a.c_str(), lines_a.size(),
                cli.diff_b.c_str(), lines_b.size());
    return 0;
}

// ---- timeline ------------------------------------------------------

/** One compiled function plus its decision remarks. */
struct ReportUnit
{
    std::string name;  ///< display name, e.g. "gcc/main"
    sched::PipelineJobResult result;
};

/** Qualitative palette shared by the ANSI and HTML renderings. */
const char *kHtmlColors[] = {"#cfe8ff", "#ffe3c2", "#d8f2d0",
                             "#f3d1f0", "#fff3b0", "#d9d7f1",
                             "#ffd4d4", "#ccf2f0"};
const int kAnsiColors[] = {36, 33, 32, 35, 93, 34, 31, 96};
constexpr size_t kNumColors =
    sizeof(kAnsiColors) / sizeof(kAnsiColors[0]);

std::string
cellText(const sched::ScheduledOp &sop)
{
    std::string text = (sop.speculative ? "*" : "") + sop.op.str();
    if (text.size() > 22)
        text = text.substr(0, 21) + "…";
    return text;
}

/** Region roots in deterministic (ascending id) order. */
std::vector<ir::BlockId>
sortedRoots(const sched::FunctionSchedule &schedule)
{
    std::vector<ir::BlockId> roots;
    for (const auto &[root, _] : schedule.regions)
        roots.push_back(root);
    std::sort(roots.begin(), roots.end());
    return roots;
}

void
printAsciiTimeline(const ReportUnit &unit, int issue_width, bool color)
{
    const auto &schedule = unit.result.result.schedule;
    std::printf("=== %s: %zu regions, estimate %.0f cycles\n",
                unit.name.c_str(), schedule.regions.size(),
                unit.result.result.estimated_time);
    for (const ir::BlockId root : sortedRoots(schedule)) {
        const sched::RegionSchedule &rs = schedule.regions.at(root);
        std::printf("-- region bb%u (%d cycles, %zu ops, %zu exits)\n",
                    root, rs.length, rs.ops.size(), rs.exits.size());
        // Grid of cells, indexed [cycle][slot].
        std::vector<std::vector<const sched::ScheduledOp *>> grid(
            static_cast<size_t>(rs.length),
            std::vector<const sched::ScheduledOp *>(
                static_cast<size_t>(issue_width), nullptr));
        for (const sched::ScheduledOp &sop : rs.ops) {
            if (sop.cycle >= 0 && sop.cycle < rs.length &&
                sop.slot >= 0 && sop.slot < issue_width)
                grid[sop.cycle][sop.slot] = &sop;
        }
        for (int cyc = 0; cyc < rs.length; ++cyc) {
            std::printf("%4d: ", cyc);
            for (int slot = 0; slot < issue_width; ++slot) {
                const sched::ScheduledOp *sop = grid[cyc][slot];
                if (!sop) {
                    std::printf("| %-24s", "");
                    continue;
                }
                const std::string text = cellText(*sop);
                if (color) {
                    std::printf(
                        "| \x1b[%dm%-24s\x1b[0m",
                        kAnsiColors[sop->home % kNumColors],
                        text.c_str());
                } else {
                    std::printf("| %-24s", text.c_str());
                }
            }
            std::printf("|\n");
        }
    }
    if (unit.result.remarks.size() > 0) {
        std::map<std::string, size_t> by_kind;
        for (const support::Remark &r : unit.result.remarks.remarks())
            ++by_kind[support::remarkKindName(r.kind)];
        std::printf("remarks:");
        for (const auto &[kind, count] : by_kind)
            std::printf(" %s=%zu", kind.c_str(), count);
        std::printf("\n");
    }
}

std::string
htmlEscape(const std::string &text)
{
    std::string out;
    for (const char c : text) {
        switch (c) {
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '&': out += "&amp;"; break;
          default: out += c;
        }
    }
    return out;
}

void
writeHtmlTimeline(std::ostream &os,
                  const std::vector<ReportUnit> &units, int issue_width)
{
    os << "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n"
          "<title>treegion schedule report</title>\n<style>\n"
          "body { font-family: monospace; margin: 1.5em; }\n"
          "table { border-collapse: collapse; margin: 0.5em 0 1.5em; }\n"
          "td, th { border: 1px solid #999; padding: 2px 6px;"
          " white-space: nowrap; }\n"
          "td.spec { font-style: italic; border: 2px solid #c00; }\n"
          "td.empty { background: #f4f4f4; }\n"
          ".legend span { padding: 1px 8px; margin-right: 6px;"
          " border: 1px solid #999; }\n"
          "</style></head><body>\n"
          "<h1>treegion schedule report</h1>\n"
          "<p>Cells are colored by <b>home block</b>; a red-bordered "
          "italic cell is an op <b>speculated</b> above a branch of "
          "its home path.</p>\n";
    for (const ReportUnit &unit : units) {
        const auto &schedule = unit.result.result.schedule;
        os << "<h2>" << htmlEscape(unit.name) << "</h2>\n"
           << "<p>" << schedule.regions.size()
           << " regions, estimated "
           << support::strprintf(
                  "%.0f", unit.result.result.estimated_time)
           << " cycles</p>\n";
        for (const ir::BlockId root : sortedRoots(schedule)) {
            const sched::RegionSchedule &rs =
                schedule.regions.at(root);
            // Legend: home blocks in first-use order.
            std::vector<ir::BlockId> homes;
            for (const sched::ScheduledOp &sop : rs.ops) {
                if (std::find(homes.begin(), homes.end(), sop.home) ==
                    homes.end())
                    homes.push_back(sop.home);
            }
            os << "<h3>region bb" << root << " (" << rs.length
               << " cycles)</h3>\n<p class=\"legend\">";
            for (const ir::BlockId home : homes) {
                os << "<span style=\"background:"
                   << kHtmlColors[home % kNumColors] << "\">bb"
                   << home << "</span>";
            }
            os << "</p>\n<table>\n<tr><th>cycle</th>";
            for (int slot = 0; slot < issue_width; ++slot)
                os << "<th>slot " << slot << "</th>";
            os << "</tr>\n";
            std::vector<std::vector<const sched::ScheduledOp *>> grid(
                static_cast<size_t>(rs.length),
                std::vector<const sched::ScheduledOp *>(
                    static_cast<size_t>(issue_width), nullptr));
            for (const sched::ScheduledOp &sop : rs.ops) {
                if (sop.cycle >= 0 && sop.cycle < rs.length &&
                    sop.slot >= 0 && sop.slot < issue_width)
                    grid[sop.cycle][sop.slot] = &sop;
            }
            for (int cyc = 0; cyc < rs.length; ++cyc) {
                os << "<tr><th>" << cyc << "</th>";
                for (int slot = 0; slot < issue_width; ++slot) {
                    const sched::ScheduledOp *sop = grid[cyc][slot];
                    if (!sop) {
                        os << "<td class=\"empty\"></td>";
                        continue;
                    }
                    os << "<td"
                       << (sop->speculative ? " class=\"spec\"" : "")
                       << " style=\"background:"
                       << kHtmlColors[sop->home % kNumColors]
                       << "\" title=\"home bb" << sop->home << "\">"
                       << htmlEscape(sop->op.str()) << "</td>";
                }
                os << "</tr>\n";
            }
            os << "</table>\n";
        }
        if (unit.result.remarks.size() > 0) {
            std::map<std::string, size_t> by_kind;
            for (const support::Remark &r :
                 unit.result.remarks.remarks())
                ++by_kind[support::remarkKindName(r.kind)];
            os << "<p>remarks:";
            for (const auto &[kind, count] : by_kind)
                os << " " << kind << "=" << count;
            os << "</p>\n";
        }
    }
    os << "</body></html>\n";
}

int
runTimeline(const CliOptions &cli)
{
    // Assemble the modules to compile: one parsed file, or the eight
    // SPEC proxies.
    std::vector<std::pair<std::string, std::unique_ptr<ir::Module>>>
        modules;
    if (cli.proxies) {
        for (const auto &spec : workloads::specint95Proxies())
            modules.emplace_back(spec.name,
                                 workloads::buildProxy(spec));
    } else {
        std::ifstream file(cli.input);
        if (!file) {
            std::fprintf(stderr, "cannot open %s\n",
                         cli.input.c_str());
            return 2;
        }
        std::ostringstream buffer;
        buffer << file.rdbuf();
        std::string error;
        auto mod = ir::parseModule(buffer.str(), &error);
        if (!mod) {
            std::fprintf(stderr, "parse error: %s\n", error.c_str());
            return 2;
        }
        modules.emplace_back(mod->name(), std::move(mod));
    }

    std::vector<ReportUnit> units;
    std::string remarks_jsonl;
    for (auto &[mod_name, mod] : modules) {
        for (const auto &fn_ptr : mod->functions()) {
            ir::Function &fn = *fn_ptr;
            workloads::profileFunction(fn, mod->memWords());
            sched::PipelineJob job;
            job.fn = &fn;
            job.options = cli.pipeline;
            job.collect_remarks = true;
            auto results = sched::runPipelineParallel({job}, 1);

            ReportUnit unit{mod_name + "/" + fn.name(),
                            std::move(results.front())};
            // Proxy functions are all called "main": qualify the
            // remark function stamp with the module name so streams
            // from different proxies stay distinguishable in a diff.
            support::RemarkStream qualified;
            qualified.setFunction(unit.name);
            for (support::Remark r : unit.result.remarks.remarks()) {
                r.function = unit.name;
                qualified.emit(std::move(r));
            }
            unit.result.remarks = std::move(qualified);
            remarks_jsonl += unit.result.remarks.toJsonLines();
            units.push_back(std::move(unit));
        }
    }

    const int width = cli.pipeline.model.issue_width;
    const bool color = cli.force_color || isatty(STDOUT_FILENO);
    for (const ReportUnit &unit : units)
        printAsciiTimeline(unit, width, color);

    if (!cli.html_path.empty()) {
        std::ofstream out(cli.html_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         cli.html_path.c_str());
            return 1;
        }
        writeHtmlTimeline(out, units, width);
        std::fprintf(stderr, "HTML report written to %s\n",
                     cli.html_path.c_str());
    }
    if (!cli.remarks_path.empty()) {
        if (cli.remarks_path == "-") {
            std::fputs(remarks_jsonl.c_str(), stdout);
        } else {
            std::ofstream out(cli.remarks_path);
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n",
                             cli.remarks_path.c_str());
                return 1;
            }
            out << remarks_jsonl;
            std::fprintf(stderr, "remarks written to %s\n",
                         cli.remarks_path.c_str());
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    cli.pipeline.scheme = sched::RegionScheme::TreegionTailDup;
    cli.pipeline.model = sched::MachineModel::wide4U();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scheme") {
            if (!sched::parseRegionScheme(next(),
                                          cli.pipeline.scheme))
                return usage(argv[0]);
        } else if (arg == "--heuristic") {
            if (!sched::parseHeuristicName(
                    next(), cli.pipeline.sched.heuristic))
                return usage(argv[0]);
        } else if (arg == "--width") {
            cli.pipeline.model =
                sched::MachineModel::custom(std::atoi(next()));
        } else if (arg == "--proxies") {
            cli.proxies = true;
        } else if (arg == "--html") {
            cli.html_path = next();
        } else if (arg == "--remarks") {
            cli.remarks_path = next();
        } else if (arg == "--color") {
            cli.force_color = true;
        } else if (arg == "--check") {
            cli.check_path = next();
        } else if (arg == "--diff") {
            cli.diff_a = next();
            cli.diff_b = next();
        } else if (arg == "--limit") {
            cli.diff_limit =
                static_cast<size_t>(std::atoll(next()));
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return usage(argv[0]);
        } else if (cli.input.empty()) {
            cli.input = arg;
        } else {
            return usage(argv[0]);
        }
    }

    if (!cli.check_path.empty())
        return runCheck(cli.check_path);
    if (!cli.diff_a.empty())
        return runDiff(cli);
    if (cli.input.empty() && !cli.proxies)
        return usage(argv[0]);
    return runTimeline(cli);
}
