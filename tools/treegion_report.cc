/**
 * @file
 * treegion-report — render and compare the compiler's decisions.
 *
 * Three modes:
 *
 *  1. Timeline (default): compile a module (a .tir file, or the
 *     eight SPECint95 proxies with --proxies), print per-region
 *     cycle x slot schedule grids — home-block colored, speculated
 *     ops marked '*' — and optionally write the same view as a
 *     standalone HTML page (--html FILE) plus the collected decision
 *     remarks as JSON lines (--remarks FILE).
 *
 *  2. --check FILE: validate a remarks JSONL file against the schema
 *     (support/remarks.h); exit 1 with "line N: why" on the first
 *     violation. This is the CI schema gate.
 *
 *  3. --diff A B: compare two remark streams decision by decision
 *     (per-function multiset difference of canonical lines) and
 *     print what diverged — e.g. heuristic gw vs h, or -j1 vs -j8.
 *
 *  4. --trace-merge F1 F2 ...: merge treegion-span/v1 JSONL files
 *     from clients and replicas (each party's --trace-spans output)
 *     into per-request trace trees. Replica clocks are aligned with
 *     the "clock-sync" spans the clients record (one NTP-style ping
 *     offset per member); the merged view prints each trace as an
 *     indented tree plus a per-request critical-path breakdown
 *     (network, queue-wait, mem-gate-park, cache-lookup, compile,
 *     response-write, other). `--chrome FILE` additionally writes
 *     one cross-replica Chrome trace (one pid per service);
 *     `--check` turns schema violations, unresolvable parents and
 *     compile calls without a server-side "request" child into a
 *     nonzero exit — the CI gate for end-to-end trace propagation.
 *
 * Usage:
 *   treegion-report [--scheme S] [--heuristic H] [--width N]
 *                   [--html FILE] [--remarks FILE] [--color]
 *                   <input.tir | --proxies>
 *   treegion-report --check remarks.jsonl
 *   treegion-report --diff a.jsonl b.jsonl [--limit N]
 *   treegion-report --trace-merge f1.jsonl f2.jsonl ...
 *                   [--check] [--chrome FILE] [--limit N]
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <unistd.h>
#include <vector>

#include "ir/parser.h"
#include "sched/pipeline.h"
#include "support/remarks.h"
#include "support/spans.h"
#include "support/string_utils.h"
#include "support/trace.h"
#include "workloads/profiler.h"
#include "workloads/spec_proxy.h"

using namespace treegion;

namespace {

struct CliOptions
{
    std::string input;
    bool proxies = false;
    sched::PipelineOptions pipeline;
    std::string html_path;
    std::string remarks_path;
    bool force_color = false;
    std::string check_path;
    std::string diff_a, diff_b;
    size_t diff_limit = 50;
    bool trace_merge = false;
    std::vector<std::string> merge_paths;
    bool merge_check = false;      ///< --check in trace-merge mode
    std::string chrome_path;
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options] <input.tir | --proxies>\n"
                 "       %s --check remarks.jsonl\n"
                 "       %s --diff a.jsonl b.jsonl [--limit N]\n"
                 "       %s --trace-merge f1.jsonl f2.jsonl ...\n"
                 "          [--check] [--chrome FILE] [--limit N]\n"
                 "see the file header or README for options\n",
                 argv0, argv0, argv0, argv0);
    return 2;
}

bool
readLines(const std::string &path, std::vector<std::string> &out,
          std::string *error)
{
    std::ifstream file(path);
    if (!file) {
        *error = "cannot open " + path;
        return false;
    }
    std::string line;
    while (std::getline(file, line)) {
        if (!line.empty())
            out.push_back(line);
    }
    return true;
}

// ---- --check -------------------------------------------------------

int
runCheck(const std::string &path)
{
    std::vector<std::string> lines;
    std::string error;
    if (!readLines(path, lines, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }
    for (size_t i = 0; i < lines.size(); ++i) {
        support::Remark remark;
        if (!support::parseRemarkJson(lines[i], remark, &error)) {
            std::fprintf(stderr, "%s: line %zu: %s\n", path.c_str(),
                         i + 1, error.c_str());
            return 1;
        }
    }
    std::printf("%s: %zu remarks, all schema-valid\n", path.c_str(),
                lines.size());
    return 0;
}

// ---- --diff --------------------------------------------------------

/** Canonical (re-serialized) lines per function, in input order. */
std::map<std::string, std::vector<std::string>>
groupByFunction(const std::vector<std::string> &lines,
                const std::string &path, bool *ok)
{
    std::map<std::string, std::vector<std::string>> grouped;
    std::string error;
    for (size_t i = 0; i < lines.size(); ++i) {
        support::Remark remark;
        if (!support::parseRemarkJson(lines[i], remark, &error)) {
            std::fprintf(stderr, "%s: line %zu: %s\n", path.c_str(),
                         i + 1, error.c_str());
            *ok = false;
            return grouped;
        }
        grouped[remark.function].push_back(remark.toJson());
    }
    return grouped;
}

/** Multiset difference a - b, preserving a's order. */
std::vector<std::string>
multisetMinus(const std::vector<std::string> &a,
              const std::vector<std::string> &b)
{
    std::map<std::string, size_t> counts;
    for (const std::string &line : b)
        ++counts[line];
    std::vector<std::string> out;
    for (const std::string &line : a) {
        auto it = counts.find(line);
        if (it != counts.end() && it->second > 0)
            --it->second;
        else
            out.push_back(line);
    }
    return out;
}

int
runDiff(const CliOptions &cli)
{
    std::vector<std::string> lines_a, lines_b;
    std::string error;
    if (!readLines(cli.diff_a, lines_a, &error) ||
        !readLines(cli.diff_b, lines_b, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }
    bool ok = true;
    const auto by_fn_a = groupByFunction(lines_a, cli.diff_a, &ok);
    const auto by_fn_b = groupByFunction(lines_b, cli.diff_b, &ok);
    if (!ok)
        return 2;

    std::vector<std::string> functions;
    for (const auto &[fn, _] : by_fn_a)
        functions.push_back(fn);
    for (const auto &[fn, _] : by_fn_b) {
        if (!by_fn_a.count(fn))
            functions.push_back(fn);
    }

    static const std::vector<std::string> kEmpty;
    size_t diverging = 0, printed = 0;
    for (const std::string &fn : functions) {
        const auto it_a = by_fn_a.find(fn);
        const auto it_b = by_fn_b.find(fn);
        const auto &a = it_a == by_fn_a.end() ? kEmpty : it_a->second;
        const auto &b = it_b == by_fn_b.end() ? kEmpty : it_b->second;
        const auto only_a = multisetMinus(a, b);
        const auto only_b = multisetMinus(b, a);
        if (only_a.empty() && only_b.empty())
            continue;
        diverging += only_a.size() + only_b.size();
        std::printf("== %s (-%zu +%zu)\n", fn.c_str(), only_a.size(),
                    only_b.size());
        for (const auto &line : only_a) {
            if (printed++ < cli.diff_limit)
                std::printf("- %s\n", line.c_str());
        }
        for (const auto &line : only_b) {
            if (printed++ < cli.diff_limit)
                std::printf("+ %s\n", line.c_str());
        }
    }
    if (printed > cli.diff_limit) {
        std::printf("... %zu more (raise with --limit)\n",
                    printed - cli.diff_limit);
    }
    std::printf("%zu diverging decisions (%s: %zu remarks, %s: %zu "
                "remarks)\n",
                diverging, cli.diff_a.c_str(), lines_a.size(),
                cli.diff_b.c_str(), lines_b.size());
    return 0;
}

// ---- --trace-merge -------------------------------------------------

const support::SpanArg *
findArg(const support::TraceSpan &s, const char *key)
{
    for (const support::SpanArg &a : s.args) {
        if (a.key == key)
            return &a;
    }
    return nullptr;
}

std::string
argText(const support::SpanArg &a)
{
    switch (a.type) {
      case support::SpanArg::Type::Int:
        return support::strprintf("%lld",
                                  static_cast<long long>(a.i));
      case support::SpanArg::Type::Float:
        return support::strprintf("%g", a.f);
      case support::SpanArg::Type::Str:
        return a.s;
    }
    return "";
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += support::strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** One trace's spans, indexed for tree walking. */
struct TraceTree
{
    std::vector<size_t> members;             ///< indices into spans
    std::map<uint64_t, size_t> by_id;        ///< span id -> index
    std::map<uint64_t, std::vector<size_t>> children;
    std::vector<size_t> roots;               ///< parent unresolvable
};

/** Sum of dur_us over every descendant of @p node named @p name. */
int64_t
subtreeDuration(const std::vector<support::TraceSpan> &spans,
                const TraceTree &tree, size_t node,
                const std::string &name)
{
    int64_t total = 0;
    const auto it = tree.children.find(spans[node].span);
    if (it == tree.children.end())
        return 0;
    for (const size_t child : it->second) {
        if (spans[child].name == name)
            total += spans[child].dur_us;
        total += subtreeDuration(spans, tree, child, name);
    }
    return total;
}

void
printSpanLine(const support::TraceSpan &s, int depth, int64_t origin_us)
{
    std::string args;
    for (const support::SpanArg &a : s.args)
        args += " " + a.key + "=" + argText(a);
    std::printf("  %*s%-16s %+9.3fms %9.3fms  svc=%s%s\n", depth * 2,
                "", s.name.c_str(),
                static_cast<double>(s.start_us - origin_us) / 1000.0,
                static_cast<double>(s.dur_us) / 1000.0,
                s.service.c_str(), args.c_str());
}

void
printTraceTree(const std::vector<support::TraceSpan> &spans,
               const TraceTree &tree, size_t node, int depth,
               int64_t origin_us)
{
    printSpanLine(spans[node], depth, origin_us);
    const auto it = tree.children.find(spans[node].span);
    if (it == tree.children.end())
        return;
    for (const size_t child : it->second)
        printTraceTree(spans, tree, child, depth + 1, origin_us);
}

/**
 * Where a compile request's wall time went, from the client's seat:
 * everything the server accounted for, itemized, plus "network" (the
 * client-observed call minus the server-side request and write
 * spans, i.e. transport + protocol framing on both ends) and
 * "other" (the server-side request minus its itemized children).
 * cache-lookup is shown but not subtracted — it already happens
 * inside "compile". "response-write" is a sibling interval after the
 * request span (worker hand-off to the event loop), so it is part of
 * what the client would otherwise blame on the network.
 */
void
printBreakdown(const std::vector<support::TraceSpan> &spans,
               const TraceTree &tree, size_t call, size_t request)
{
    const int64_t queue =
        subtreeDuration(spans, tree, request, "queue-wait");
    const int64_t park =
        subtreeDuration(spans, tree, request, "mem-gate-park");
    const int64_t lookup =
        subtreeDuration(spans, tree, request, "cache-lookup");
    const int64_t compile =
        subtreeDuration(spans, tree, request, "compile");
    const int64_t write =
        subtreeDuration(spans, tree, request, "response-write");
    // Both remainders are clamped at zero: response-write covers a
    // little server-side bookkeeping after the client already has the
    // bytes, so the subtraction can land a few microseconds negative
    // on a loopback socket. That is interval overlap, not time.
    const int64_t network = std::max<int64_t>(
        0, spans[call].dur_us - spans[request].dur_us - write);
    const int64_t other = std::max<int64_t>(
        0, spans[request].dur_us - queue - park - compile);
    std::printf("  critical path: network %.3fms | queue-wait %.3fms"
                " | mem-gate-park %.3fms | cache-lookup %.3fms"
                " | compile %.3fms | response-write %.3fms"
                " | other %.3fms\n",
                network / 1000.0, queue / 1000.0, park / 1000.0,
                lookup / 1000.0, compile / 1000.0, write / 1000.0,
                other / 1000.0);
}

bool
writeChromeTrace(const std::string &path,
                 const std::vector<support::TraceSpan> &spans)
{
    std::ofstream out(path);
    if (!out)
        return false;
    // One Chrome "process" per service, so each replica and each
    // client gets its own swimlane group in the viewer.
    std::map<std::string, int> pids;
    for (const support::TraceSpan &s : spans)
        pids.emplace(s.service, static_cast<int>(pids.size()) + 1);
    out << "[";
    bool first = true;
    for (const auto &[svc, pid] : pids) {
        out << (first ? "" : ",") << "\n"
            << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
            << pid << ",\"tid\":0,\"args\":{\"name\":\""
            << jsonEscape(svc) << "\"}}";
        first = false;
    }
    for (const support::TraceSpan &s : spans) {
        out << (first ? "" : ",") << "\n"
            << "{\"name\":\"" << jsonEscape(s.name)
            << "\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":" << s.start_us
            << ",\"dur\":" << s.dur_us
            << ",\"pid\":" << pids[s.service] << ",\"tid\":" << s.tid
            << ",\"args\":{\"trace\":\""
            << support::traceIdHex(s.trace_hi, s.trace_lo)
            << "\",\"span\":\"" << support::spanIdHex(s.span) << "\"";
        for (const support::SpanArg &a : s.args) {
            out << ",\"" << jsonEscape(a.key) << "\":\""
                << jsonEscape(argText(a)) << "\"";
        }
        out << "}}";
        first = false;
    }
    out << "\n]\n";
    return out.good();
}

int
runTraceMerge(const CliOptions &cli)
{
    if (cli.merge_paths.empty()) {
        std::fprintf(stderr, "--trace-merge needs span files\n");
        return 2;
    }
    std::vector<support::TraceSpan> spans;
    std::string error;
    for (const std::string &path : cli.merge_paths) {
        std::vector<std::string> lines;
        if (!readLines(path, lines, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 2;
        }
        for (size_t i = 0; i < lines.size(); ++i) {
            support::TraceSpan s;
            if (!support::parseSpanJson(lines[i], s, &error)) {
                std::fprintf(stderr, "%s: line %zu: %s\n",
                             path.c_str(), i + 1, error.c_str());
                return 1;
            }
            spans.push_back(std::move(s));
        }
    }

    // Clock alignment: each client-recorded "clock-sync" span holds
    // one NTP-style estimate of (member clock - client clock) over a
    // ping round trip. Keep the tightest (smallest rtt) estimate per
    // member and shift that member's spans onto the client timeline.
    // The member address is the replica's --self-address, which is
    // also its span svc stamp, so the join key is the svc string.
    std::map<std::string, std::pair<int64_t, int64_t>> offsets;
    for (const support::TraceSpan &s : spans) {
        if (s.name != "clock-sync")
            continue;
        const support::SpanArg *member = findArg(s, "member");
        const support::SpanArg *offset = findArg(s, "offset_us");
        const support::SpanArg *rtt = findArg(s, "rtt_us");
        if (!member || !offset || !rtt)
            continue;
        const auto it = offsets.find(member->s);
        if (it == offsets.end() || rtt->i < it->second.second)
            offsets[member->s] = {offset->i, rtt->i};
    }
    for (support::TraceSpan &s : spans) {
        const auto it = offsets.find(s.service);
        if (it != offsets.end())
            s.start_us -= it->second.first;
    }

    // Group into traces and index each as a tree. Spans within one
    // parent are ordered by adjusted start time.
    std::map<std::string, TraceTree> traces;
    std::map<std::string, size_t> services;
    for (size_t i = 0; i < spans.size(); ++i) {
        traces[support::traceIdHex(spans[i].trace_hi,
                                   spans[i].trace_lo)]
            .members.push_back(i);
        ++services[spans[i].service];
    }
    size_t problems = 0;
    for (auto &[trace_id, tree] : traces) {
        for (const size_t i : tree.members) {
            if (!tree.by_id.emplace(spans[i].span, i).second) {
                std::fprintf(stderr,
                             "trace %s: duplicate span id %s\n",
                             trace_id.c_str(),
                             support::spanIdHex(spans[i].span)
                                 .c_str());
                ++problems;
            }
        }
        for (const size_t i : tree.members) {
            const uint64_t parent = spans[i].parent;
            if (parent == 0) {
                tree.roots.push_back(i);
            } else if (!tree.by_id.count(parent)) {
                std::fprintf(
                    stderr,
                    "trace %s: span %s (%s) has unresolved parent "
                    "%s\n",
                    trace_id.c_str(),
                    support::spanIdHex(spans[i].span).c_str(),
                    spans[i].name.c_str(),
                    support::spanIdHex(parent).c_str());
                ++problems;
                tree.roots.push_back(i);  // render it anyway
            } else {
                tree.children[parent].push_back(i);
            }
        }
        const auto by_start = [&](size_t a, size_t b) {
            return spans[a].start_us != spans[b].start_us
                       ? spans[a].start_us < spans[b].start_us
                       : spans[a].span < spans[b].span;
        };
        std::sort(tree.roots.begin(), tree.roots.end(), by_start);
        for (auto &[_, kids] : tree.children)
            std::sort(kids.begin(), kids.end(), by_start);
    }

    // Every ok compile call the client saw must have produced a
    // server-side "request" span in the merged set; a missing child
    // means a replica's spans were lost (or propagation broke).
    size_t compile_calls = 0;
    for (const auto &[trace_id, tree] : traces) {
        for (const size_t i : tree.members) {
            if (spans[i].name != "call")
                continue;
            const support::SpanArg *verb = findArg(spans[i], "verb");
            const support::SpanArg *status =
                findArg(spans[i], "status");
            if (!verb || verb->s != "compile" || !status ||
                status->s != "ok")
                continue;
            ++compile_calls;
            bool has_request = false;
            const auto it = tree.children.find(spans[i].span);
            if (it != tree.children.end()) {
                for (const size_t child : it->second)
                    has_request |= spans[child].name == "request";
            }
            if (!has_request) {
                std::fprintf(stderr,
                             "trace %s: compile call %s has no "
                             "server-side request span\n",
                             trace_id.c_str(),
                             support::spanIdHex(spans[i].span)
                                 .c_str());
                ++problems;
            }
        }
    }

    // Render: one tree per trace, client-initiated traces only
    // (pure clock-sync traces are calibration, not requests).
    size_t shown = 0, skipped = 0;
    for (const auto &[trace_id, tree] : traces) {
        const bool calibration =
            tree.members.size() == 1 &&
            spans[tree.members.front()].name == "clock-sync";
        if (calibration)
            continue;
        if (shown >= cli.diff_limit) {
            ++skipped;
            continue;
        }
        ++shown;
        int64_t origin_us = spans[tree.members.front()].start_us;
        for (const size_t i : tree.members)
            origin_us = std::min(origin_us, spans[i].start_us);
        std::printf("trace %s (%zu spans)\n", trace_id.c_str(),
                    tree.members.size());
        for (const size_t root : tree.roots)
            printTraceTree(spans, tree, root, 0, origin_us);
        for (const size_t i : tree.members) {
            if (spans[i].name != "call")
                continue;
            const auto it = tree.children.find(spans[i].span);
            if (it == tree.children.end())
                continue;
            for (const size_t child : it->second) {
                if (spans[child].name == "request")
                    printBreakdown(spans, tree, i, child);
            }
        }
    }
    if (skipped > 0)
        std::printf("... %zu more traces (raise with --limit)\n",
                    skipped);

    std::string svc_note;
    for (const auto &[svc, count] : services)
        svc_note += support::strprintf(" %s=%zu", svc.c_str(), count);
    std::printf("%zu spans, %zu traces, %zu compile calls, %zu clock "
                "offsets; spans per service:%s\n",
                spans.size(), traces.size(), compile_calls,
                offsets.size(), svc_note.c_str());

    if (!cli.chrome_path.empty()) {
        if (!writeChromeTrace(cli.chrome_path, spans)) {
            std::fprintf(stderr, "cannot write %s\n",
                         cli.chrome_path.c_str());
            return 1;
        }
        std::fprintf(stderr, "Chrome trace written to %s\n",
                     cli.chrome_path.c_str());
    }
    if (cli.merge_check && problems > 0) {
        std::fprintf(stderr, "--check: %zu problems\n", problems);
        return 1;
    }
    if (cli.merge_check)
        std::printf("--check: all span trees complete\n");
    return 0;
}

// ---- timeline ------------------------------------------------------

/** One compiled function plus its decision remarks. */
struct ReportUnit
{
    std::string name;  ///< display name, e.g. "gcc/main"
    sched::PipelineJobResult result;
};

/** Qualitative palette shared by the ANSI and HTML renderings. */
const char *kHtmlColors[] = {"#cfe8ff", "#ffe3c2", "#d8f2d0",
                             "#f3d1f0", "#fff3b0", "#d9d7f1",
                             "#ffd4d4", "#ccf2f0"};
const int kAnsiColors[] = {36, 33, 32, 35, 93, 34, 31, 96};
constexpr size_t kNumColors =
    sizeof(kAnsiColors) / sizeof(kAnsiColors[0]);

std::string
cellText(const sched::ScheduledOp &sop)
{
    std::string text = (sop.speculative ? "*" : "") + sop.op.str();
    if (text.size() > 22)
        text = text.substr(0, 21) + "…";
    return text;
}

/** Region roots in deterministic (ascending id) order. */
std::vector<ir::BlockId>
sortedRoots(const sched::FunctionSchedule &schedule)
{
    std::vector<ir::BlockId> roots;
    for (const auto &[root, _] : schedule.regions)
        roots.push_back(root);
    std::sort(roots.begin(), roots.end());
    return roots;
}

void
printAsciiTimeline(const ReportUnit &unit, int issue_width, bool color)
{
    const auto &schedule = unit.result.result.schedule;
    std::printf("=== %s: %zu regions, estimate %.0f cycles\n",
                unit.name.c_str(), schedule.regions.size(),
                unit.result.result.estimated_time);
    for (const ir::BlockId root : sortedRoots(schedule)) {
        const sched::RegionSchedule &rs = schedule.regions.at(root);
        std::printf("-- region bb%u (%d cycles, %zu ops, %zu exits)\n",
                    root, rs.length, rs.ops.size(), rs.exits.size());
        // Grid of cells, indexed [cycle][slot].
        std::vector<std::vector<const sched::ScheduledOp *>> grid(
            static_cast<size_t>(rs.length),
            std::vector<const sched::ScheduledOp *>(
                static_cast<size_t>(issue_width), nullptr));
        for (const sched::ScheduledOp &sop : rs.ops) {
            if (sop.cycle >= 0 && sop.cycle < rs.length &&
                sop.slot >= 0 && sop.slot < issue_width)
                grid[sop.cycle][sop.slot] = &sop;
        }
        for (int cyc = 0; cyc < rs.length; ++cyc) {
            std::printf("%4d: ", cyc);
            for (int slot = 0; slot < issue_width; ++slot) {
                const sched::ScheduledOp *sop = grid[cyc][slot];
                if (!sop) {
                    std::printf("| %-24s", "");
                    continue;
                }
                const std::string text = cellText(*sop);
                if (color) {
                    std::printf(
                        "| \x1b[%dm%-24s\x1b[0m",
                        kAnsiColors[sop->home % kNumColors],
                        text.c_str());
                } else {
                    std::printf("| %-24s", text.c_str());
                }
            }
            std::printf("|\n");
        }
    }
    if (unit.result.remarks.size() > 0) {
        std::map<std::string, size_t> by_kind;
        for (const support::Remark &r : unit.result.remarks.remarks())
            ++by_kind[support::remarkKindName(r.kind)];
        std::printf("remarks:");
        for (const auto &[kind, count] : by_kind)
            std::printf(" %s=%zu", kind.c_str(), count);
        std::printf("\n");
    }
}

std::string
htmlEscape(const std::string &text)
{
    std::string out;
    for (const char c : text) {
        switch (c) {
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '&': out += "&amp;"; break;
          default: out += c;
        }
    }
    return out;
}

void
writeHtmlTimeline(std::ostream &os,
                  const std::vector<ReportUnit> &units, int issue_width)
{
    os << "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n"
          "<title>treegion schedule report</title>\n<style>\n"
          "body { font-family: monospace; margin: 1.5em; }\n"
          "table { border-collapse: collapse; margin: 0.5em 0 1.5em; }\n"
          "td, th { border: 1px solid #999; padding: 2px 6px;"
          " white-space: nowrap; }\n"
          "td.spec { font-style: italic; border: 2px solid #c00; }\n"
          "td.empty { background: #f4f4f4; }\n"
          ".legend span { padding: 1px 8px; margin-right: 6px;"
          " border: 1px solid #999; }\n"
          "</style></head><body>\n"
          "<h1>treegion schedule report</h1>\n"
          "<p>Cells are colored by <b>home block</b>; a red-bordered "
          "italic cell is an op <b>speculated</b> above a branch of "
          "its home path.</p>\n";
    for (const ReportUnit &unit : units) {
        const auto &schedule = unit.result.result.schedule;
        os << "<h2>" << htmlEscape(unit.name) << "</h2>\n"
           << "<p>" << schedule.regions.size()
           << " regions, estimated "
           << support::strprintf(
                  "%.0f", unit.result.result.estimated_time)
           << " cycles</p>\n";
        for (const ir::BlockId root : sortedRoots(schedule)) {
            const sched::RegionSchedule &rs =
                schedule.regions.at(root);
            // Legend: home blocks in first-use order.
            std::vector<ir::BlockId> homes;
            for (const sched::ScheduledOp &sop : rs.ops) {
                if (std::find(homes.begin(), homes.end(), sop.home) ==
                    homes.end())
                    homes.push_back(sop.home);
            }
            os << "<h3>region bb" << root << " (" << rs.length
               << " cycles)</h3>\n<p class=\"legend\">";
            for (const ir::BlockId home : homes) {
                os << "<span style=\"background:"
                   << kHtmlColors[home % kNumColors] << "\">bb"
                   << home << "</span>";
            }
            os << "</p>\n<table>\n<tr><th>cycle</th>";
            for (int slot = 0; slot < issue_width; ++slot)
                os << "<th>slot " << slot << "</th>";
            os << "</tr>\n";
            std::vector<std::vector<const sched::ScheduledOp *>> grid(
                static_cast<size_t>(rs.length),
                std::vector<const sched::ScheduledOp *>(
                    static_cast<size_t>(issue_width), nullptr));
            for (const sched::ScheduledOp &sop : rs.ops) {
                if (sop.cycle >= 0 && sop.cycle < rs.length &&
                    sop.slot >= 0 && sop.slot < issue_width)
                    grid[sop.cycle][sop.slot] = &sop;
            }
            for (int cyc = 0; cyc < rs.length; ++cyc) {
                os << "<tr><th>" << cyc << "</th>";
                for (int slot = 0; slot < issue_width; ++slot) {
                    const sched::ScheduledOp *sop = grid[cyc][slot];
                    if (!sop) {
                        os << "<td class=\"empty\"></td>";
                        continue;
                    }
                    os << "<td"
                       << (sop->speculative ? " class=\"spec\"" : "")
                       << " style=\"background:"
                       << kHtmlColors[sop->home % kNumColors]
                       << "\" title=\"home bb" << sop->home << "\">"
                       << htmlEscape(sop->op.str()) << "</td>";
                }
                os << "</tr>\n";
            }
            os << "</table>\n";
        }
        if (unit.result.remarks.size() > 0) {
            std::map<std::string, size_t> by_kind;
            for (const support::Remark &r :
                 unit.result.remarks.remarks())
                ++by_kind[support::remarkKindName(r.kind)];
            os << "<p>remarks:";
            for (const auto &[kind, count] : by_kind)
                os << " " << kind << "=" << count;
            os << "</p>\n";
        }
    }
    os << "</body></html>\n";
}

int
runTimeline(const CliOptions &cli)
{
    // Assemble the modules to compile: one parsed file, or the eight
    // SPEC proxies.
    std::vector<std::pair<std::string, std::unique_ptr<ir::Module>>>
        modules;
    if (cli.proxies) {
        for (const auto &spec : workloads::specint95Proxies())
            modules.emplace_back(spec.name,
                                 workloads::buildProxy(spec));
    } else {
        std::ifstream file(cli.input);
        if (!file) {
            std::fprintf(stderr, "cannot open %s\n",
                         cli.input.c_str());
            return 2;
        }
        std::ostringstream buffer;
        buffer << file.rdbuf();
        std::string error;
        auto mod = ir::parseModule(buffer.str(), &error);
        if (!mod) {
            std::fprintf(stderr, "parse error: %s\n", error.c_str());
            return 2;
        }
        modules.emplace_back(mod->name(), std::move(mod));
    }

    std::vector<ReportUnit> units;
    std::string remarks_jsonl;
    for (auto &[mod_name, mod] : modules) {
        for (const auto &fn_ptr : mod->functions()) {
            ir::Function &fn = *fn_ptr;
            workloads::profileFunction(fn, mod->memWords());
            sched::PipelineJob job;
            job.fn = &fn;
            job.options = cli.pipeline;
            job.collect_remarks = true;
            auto results = sched::runPipelineParallel({job}, 1);

            ReportUnit unit{mod_name + "/" + fn.name(),
                            std::move(results.front())};
            // Proxy functions are all called "main": qualify the
            // remark function stamp with the module name so streams
            // from different proxies stay distinguishable in a diff.
            support::RemarkStream qualified;
            qualified.setFunction(unit.name);
            for (support::Remark r : unit.result.remarks.remarks()) {
                r.function = unit.name;
                qualified.emit(std::move(r));
            }
            unit.result.remarks = std::move(qualified);
            remarks_jsonl += unit.result.remarks.toJsonLines();
            units.push_back(std::move(unit));
        }
    }

    const int width = cli.pipeline.model.issue_width;
    const bool color = cli.force_color || isatty(STDOUT_FILENO);
    for (const ReportUnit &unit : units)
        printAsciiTimeline(unit, width, color);

    if (!cli.html_path.empty()) {
        std::ofstream out(cli.html_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         cli.html_path.c_str());
            return 1;
        }
        writeHtmlTimeline(out, units, width);
        std::fprintf(stderr, "HTML report written to %s\n",
                     cli.html_path.c_str());
    }
    if (!cli.remarks_path.empty()) {
        if (cli.remarks_path == "-") {
            std::fputs(remarks_jsonl.c_str(), stdout);
        } else {
            std::ofstream out(cli.remarks_path);
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n",
                             cli.remarks_path.c_str());
                return 1;
            }
            out << remarks_jsonl;
            std::fprintf(stderr, "remarks written to %s\n",
                         cli.remarks_path.c_str());
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    cli.pipeline.scheme = sched::RegionScheme::TreegionTailDup;
    cli.pipeline.model = sched::MachineModel::wide4U();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scheme") {
            if (!sched::parseRegionScheme(next(),
                                          cli.pipeline.scheme))
                return usage(argv[0]);
        } else if (arg == "--heuristic") {
            if (!sched::parseHeuristicName(
                    next(), cli.pipeline.sched.heuristic))
                return usage(argv[0]);
        } else if (arg == "--width") {
            cli.pipeline.model =
                sched::MachineModel::custom(std::atoi(next()));
        } else if (arg == "--proxies") {
            cli.proxies = true;
        } else if (arg == "--html") {
            cli.html_path = next();
        } else if (arg == "--remarks") {
            cli.remarks_path = next();
        } else if (arg == "--color") {
            cli.force_color = true;
        } else if (arg == "--check") {
            // In trace-merge mode --check is a flag (strictness
            // gate); elsewhere it takes the remarks file to check.
            if (cli.trace_merge)
                cli.merge_check = true;
            else
                cli.check_path = next();
        } else if (arg == "--trace-merge") {
            cli.trace_merge = true;
        } else if (arg == "--chrome") {
            cli.chrome_path = next();
        } else if (arg == "--diff") {
            cli.diff_a = next();
            cli.diff_b = next();
        } else if (arg == "--limit") {
            cli.diff_limit =
                static_cast<size_t>(std::atoll(next()));
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return usage(argv[0]);
        } else if (cli.trace_merge) {
            cli.merge_paths.push_back(arg);
        } else if (cli.input.empty()) {
            cli.input = arg;
        } else {
            return usage(argv[0]);
        }
    }

    if (cli.trace_merge)
        return runTraceMerge(cli);
    if (!cli.check_path.empty())
        return runCheck(cli.check_path);
    if (!cli.diff_a.empty())
        return runDiff(cli);
    if (cli.input.empty() && !cli.proxies)
        return usage(argv[0]);
    return runTimeline(cli);
}
