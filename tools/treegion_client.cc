/**
 * @file
 * treegion-client — thin client for the treegiond compile service.
 *
 * Sends one request per invocation and prints the response: the
 * serving analogue of running treegionc locally, useful from shell
 * scripts and CI.
 *
 * Usage:
 *   treegion-client --server ADDR [options] [input.tir | -]
 *   treegion-client --cluster A,B,C [options] [input.tir | -]
 *
 * ADDR is "unix:/path", a bare absolute path, or "host:port".
 *
 * --cluster routes the request client-side over the consistent-hash
 * ring the replicas share: the request's cache key picks the owning
 * replica, and a replica that is unreachable or draining is skipped
 * (the ring is rebuilt over the survivors and the request retried).
 * The serving replica's address is printed as "member: ADDR" on
 * stderr unless --quiet, so scripts can reconcile which replica
 * answered.
 *
 * Options:
 *   --options "scheme=tree heuristic=gw width=4 ..."  pipeline
 *           configuration (encodePipelineOptions format)
 *   --function NAME        compile this function (default: first)
 *   --deadline-ms N        give up if queued longer than this
 *   --print-schedule       ask for the full region schedules
 *   --no-cache             bypass the server's compile cache
 *   --no-profile           keep the input file's profile weights
 *   --profile-seed S / --profile-runs N   training profile
 *   --ping                 health check (no input needed)
 *   --stats                fetch the /stats JSON (no input needed)
 *   --trace-spans FILE     record this invocation's spans (the
 *                          client-side "call"/"clock-sync" spans)
 *                          and append them to FILE as
 *                          treegion-span/v1 JSONL; the trace id is
 *                          propagated to the server, so FILE merges
 *                          with the replicas' --trace-spans files
 *   --trace-sample R       sampling probability in [0,1] (default 1)
 *   --quiet                print only the response body
 *
 * Exit codes: 0 ok, 1 error/transport failure, 3 rejected
 * (backpressure — retry after the hinted delay), 4 deadline
 * exceeded, 5 server shutting down.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "service/client.h"
#include "service/ring.h"
#include "support/spans.h"
#include "support/string_utils.h"

using namespace treegion;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --server ADDR [options] [input.tir | -]\n"
                 "see the file header or README for options\n",
                 argv0);
    return 2;
}

int
statusExitCode(const std::string &status)
{
    if (status == service::status::kOk)
        return 0;
    if (status == service::status::kRejected)
        return 3;
    if (status == service::status::kDeadline)
        return 4;
    if (status == service::status::kShuttingDown)
        return 5;
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string server_addr;
    std::vector<std::string> cluster;
    std::string input;
    std::string span_path;
    double span_sample = 1.0;
    bool quiet = false;
    service::Request req;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--server") {
            server_addr = next();
        } else if (arg == "--cluster") {
            cluster = support::splitString(next(), ',');
        } else if (arg == "--options") {
            req.options = next();
        } else if (arg == "--function") {
            req.function = next();
        } else if (arg == "--deadline-ms") {
            req.deadline_ms = std::atoll(next());
        } else if (arg == "--print-schedule") {
            req.want_schedule = true;
        } else if (arg == "--no-cache") {
            req.no_cache = true;
        } else if (arg == "--no-profile") {
            req.profile = false;
        } else if (arg == "--profile-seed") {
            req.profile_seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--profile-runs") {
            req.profile_runs = std::atoi(next());
        } else if (arg == "--ping") {
            req.verb = "ping";
        } else if (arg == "--stats") {
            req.verb = "stats";
        } else if (arg == "--trace-spans") {
            span_path = next();
        } else if (arg == "--trace-sample") {
            span_sample = std::atof(next());
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return usage(argv[0]);
        } else if (input.empty()) {
            input = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (server_addr.empty() == cluster.empty())
        return usage(argv[0]);  // exactly one of --server/--cluster
    if (req.verb == "compile") {
        if (input.empty())
            return usage(argv[0]);
        if (input == "-") {
            std::ostringstream buffer;
            buffer << std::cin.rdbuf();
            req.module_text = buffer.str();
        } else {
            std::ifstream file(input);
            if (!file) {
                std::fprintf(stderr, "cannot open %s\n",
                             input.c_str());
                return 1;
            }
            std::ostringstream buffer;
            buffer << file.rdbuf();
            req.module_text = buffer.str();
        }
    }

    if (!span_path.empty()) {
        auto &spans = support::SpanCollector::instance();
        spans.setService("treegion-client");
        spans.configure(span_sample);
    }
    // Appends (many invocations share one file) on every exit path,
    // success or transport failure — failed attempts are spans too.
    auto finish = [&](int rc) {
        if (!span_path.empty() &&
            !support::SpanCollector::instance().writeJsonl(
                span_path, /*append=*/true))
            std::fprintf(stderr, "cannot write spans to %s\n",
                         span_path.c_str());
        return rc;
    };

    std::string error;
    service::Response resp;
    std::string served_by;
    std::string failover_note;
    if (!cluster.empty()) {
        service::ClusterClient client(cluster);
        if (!client.call(req, &resp, &error)) {
            std::fprintf(stderr, "call: %s\n", error.c_str());
            return finish(1);
        }
        served_by = client.lastMember();
        // Failovers are silent by design; make their price visible.
        for (const auto &[addr, led] : client.ledger()) {
            if (led.failed_attempts > 0)
                failover_note += support::strprintf(
                    "failed-attempts: %s n=%llu wasted-ms=%.1f\n",
                    addr.c_str(),
                    static_cast<unsigned long long>(
                        led.failed_attempts),
                    led.failed_ms);
        }
    } else {
        auto client = service::Client::connect(server_addr, &error);
        if (!client) {
            std::fprintf(stderr, "connect: %s\n", error.c_str());
            return finish(1);
        }
        // Direct path: estimate this server's clock offset so the
        // merged trace can align our spans with its span file.
        std::string sync_error;
        client->syncClock(&sync_error);
        if (!client->call(req, &resp, &error)) {
            std::fprintf(stderr, "call: %s\n", error.c_str());
            return finish(1);
        }
    }

    if (!quiet) {
        if (!served_by.empty())
            std::fprintf(stderr, "member: %s\n", served_by.c_str());
        if (!failover_note.empty())
            std::fputs(failover_note.c_str(), stderr);
        std::fprintf(stderr, "status: %s%s%s\n", resp.status.c_str(),
                     resp.cached ? " (cached)" : "",
                     resp.error.empty()
                         ? ""
                         : ("  [" + resp.error + "]").c_str());
        if (resp.retry_after_ms > 0)
            std::fprintf(stderr, "retry-after-ms: %lld\n",
                         static_cast<long long>(resp.retry_after_ms));
        if (resp.compile_ms > 0)
            std::fprintf(stderr, "compile-ms: %.3f\n",
                         resp.compile_ms);
    }
    std::fputs(resp.body.c_str(), stdout);
    return finish(statusExitCode(resp.status));
}
