/**
 * @file
 * treegion-fuzz: differential fuzzing driver.
 *
 * Generates random programs from a widened workloads::GenParams
 * envelope, compiles every (scheme x heuristic x width) cell across
 * a work-stealing thread pool, and cross-checks four oracles per
 * cell (simulator equivalence, schedule legality, IR verification,
 * cost-model sanity) plus the textual round trip per program. Any
 * failure is shrunk by the delta-debugging reducer and written to
 * the corpus as a self-describing .tir repro.
 *
 * Usage:
 *   treegion-fuzz [options]
 *   --budget-seconds N   wall-clock budget (default 30)
 *   --programs N         stop after N programs (default: budget only)
 *   --jobs N             worker threads (default: hardware)
 *   --seed S             campaign seed (default 1)
 *   --corpus DIR         repro directory (default fuzz/corpus)
 *   --no-reduce          write unminimized repros
 *   --tamper K           fault injection (1 = corrupt an exit cycle)
 *   --proxy-audit W      instead of fuzzing, run all oracles over
 *                        the SPECint95 proxies at issue width W
 *   --trace-json FILE    dump Chrome trace events to FILE
 *   --flight-rec FILE    dump the crash flight recorder here when a
 *                        worker panics or dies on a fatal signal —
 *                        the last events of every thread, so a crash
 *                        found by the campaign is diagnosable from
 *                        the artifact alone
 *   --verbose            per-program progress
 *
 * Exit status: 0 when every cell passed, 1 on any oracle failure.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fuzz/campaign.h"
#include "support/flightrec.h"
#include "support/logging.h"
#include "support/trace.h"

using namespace treegion;

namespace {

int
runAudit(int width, size_t jobs)
{
    const std::vector<fuzz::ProxyAuditRow> rows =
        fuzz::runProxyAudit(width, jobs);
    size_t violations = 0;
    std::string proxy;
    for (const fuzz::ProxyAuditRow &row : rows) {
        if (row.proxy != proxy) {
            proxy = row.proxy;
            std::printf("%s (bb@1U baseline %.0f cycles)\n",
                        proxy.c_str(), row.baseline);
        }
        std::printf("  %-64s est %10.1f  speedup %5.2f  %s%s\n",
                    row.config.str().c_str(), row.estimate,
                    row.estimate > 0.0 ? row.baseline / row.estimate
                                       : 0.0,
                    row.oracle.empty() ? "ok" : "FAIL ",
                    row.oracle.c_str());
        if (!row.oracle.empty()) {
            ++violations;
            std::printf("    %s\n", row.detail.c_str());
        }
    }
    std::printf("proxy audit at %dU: %zu cells, %zu oracle "
                "violations\n",
                width, rows.size(), violations);
    return violations == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    fuzz::CampaignOptions opts;
    std::string trace_json;
    std::string flightrec_path;
    int audit_width = 0;

    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value after %s\n", argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--budget-seconds") {
            opts.budget_seconds = std::atof(next(i));
        } else if (arg == "--programs") {
            opts.max_programs =
                static_cast<size_t>(std::atoll(next(i)));
        } else if (arg == "--jobs") {
            opts.jobs = static_cast<size_t>(std::atoll(next(i)));
        } else if (arg == "--seed") {
            opts.seed = std::strtoull(next(i), nullptr, 0);
        } else if (arg == "--corpus") {
            opts.corpus_dir = next(i);
        } else if (arg == "--no-reduce") {
            opts.reduce = false;
        } else if (arg == "--tamper") {
            opts.oracle.tamper = std::atoi(next(i));
        } else if (arg == "--proxy-audit") {
            audit_width = std::atoi(next(i));
        } else if (arg == "--trace-json") {
            trace_json = next(i);
        } else if (arg == "--flight-rec") {
            flightrec_path = next(i);
        } else if (arg == "--verbose") {
            opts.verbose = true;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        }
    }

    if (!trace_json.empty())
        support::TraceCollector::instance().setEnabled(true);
    if (!flightrec_path.empty()) {
        support::flightrec::setDumpPath(flightrec_path.c_str());
        support::flightrec::installCrashHandlers();
        support::setPanicHook(&support::flightrec::dumpConfigured);
    }

    int status = 0;
    if (audit_width > 0) {
        status = runAudit(audit_width, opts.jobs);
    } else {
        const fuzz::CampaignResult result = fuzz::runCampaign(opts);
        std::printf("treegion-fuzz: %zu programs, %zu cells, "
                    "%zu failing cells, %zu minimized repros\n",
                    result.programs, result.cells, result.failures,
                    result.bugs.size());
        for (const fuzz::FoundBug &bug : result.bugs) {
            std::printf("  %s: %s (%zu -> %zu ops) %s\n",
                        bug.oracle.c_str(), bug.config.str().c_str(),
                        bug.original_ops, bug.reduced_ops,
                        bug.repro_path.c_str());
        }
        status = result.failures == 0 ? 0 : 1;
    }

    if (!trace_json.empty() &&
        !support::TraceCollector::instance().writeChromeTraceFile(
            trace_json)) {
        std::fprintf(stderr, "cannot write trace to %s\n",
                     trace_json.c_str());
    }
    return status;
}
