/**
 * @file
 * treegionc — command-line driver for the treegion compiler.
 *
 * Reads a function in the textual IR format (a file path, or stdin
 * with "-"), optionally profiles it on seeded synthetic inputs, runs
 * the region-scheduling pipeline, and prints what you ask for.
 *
 * Usage:
 *   treegionc [options] <input.tir | ->
 *
 * Options:
 *   --scheme bb|slr|sb|tree|tree-td   region formation (default tree)
 *   --heuristic h|ec|gw|wc            priority heuristic (default gw)
 *   --width N                         issue width (default 4)
 *   --expansion X --paths N --merge N tail-duplication limits
 *   --profile-seed S --profile-runs N training profile (default 42/20)
 *   --no-profile                      keep weights from the input file
 *   --print-ir                        echo the parsed (profiled) IR
 *   --print-schedule                  print every region schedule
 *   --print-dot                       dot graph of CFG + regions
 *   --run SEED                        simulate on a seeded input
 *   --stats                           region + scheduling statistics
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "region/graphviz.h"
#include "sched/pipeline.h"
#include "sched/schedule_verifier.h"
#include "vliw/equivalence.h"
#include "workloads/profiler.h"

using namespace treegion;

namespace {

struct CliOptions
{
    std::string input;
    sched::PipelineOptions pipeline;
    bool do_profile = true;
    uint64_t profile_seed = 42;
    int profile_runs = 20;
    bool print_ir = false;
    bool print_schedule = false;
    bool print_dot = false;
    bool stats = false;
    bool run = false;
    uint64_t run_seed = 1;
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options] <input.tir | ->\n"
                 "see the file header or README for options\n",
                 argv0);
    return 2;
}

bool
parseScheme(const std::string &name, sched::RegionScheme &out)
{
    if (name == "bb")
        out = sched::RegionScheme::BasicBlock;
    else if (name == "slr")
        out = sched::RegionScheme::Slr;
    else if (name == "sb")
        out = sched::RegionScheme::Superblock;
    else if (name == "tree")
        out = sched::RegionScheme::Treegion;
    else if (name == "tree-td")
        out = sched::RegionScheme::TreegionTailDup;
    else if (name == "hyper")
        out = sched::RegionScheme::Hyperblock;
    else
        return false;
    return true;
}

bool
parseHeuristic(const std::string &name, sched::Heuristic &out)
{
    if (name == "h" || name == "dep-height")
        out = sched::Heuristic::DependenceHeight;
    else if (name == "ec" || name == "exit-count")
        out = sched::Heuristic::ExitCount;
    else if (name == "gw" || name == "global-weight")
        out = sched::Heuristic::GlobalWeight;
    else if (name == "wc" || name == "weighted-count")
        out = sched::Heuristic::WeightedCount;
    else
        return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    cli.pipeline.scheme = sched::RegionScheme::Treegion;
    cli.pipeline.model = sched::MachineModel::wide4U();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scheme") {
            if (!parseScheme(next(), cli.pipeline.scheme))
                return usage(argv[0]);
        } else if (arg == "--heuristic") {
            if (!parseHeuristic(next(), cli.pipeline.sched.heuristic))
                return usage(argv[0]);
        } else if (arg == "--width") {
            cli.pipeline.model = sched::MachineModel::custom(
                std::atoi(next()));
        } else if (arg == "--expansion") {
            cli.pipeline.tail_dup.expansion_limit = std::atof(next());
        } else if (arg == "--paths") {
            cli.pipeline.tail_dup.path_limit =
                static_cast<size_t>(std::atoll(next()));
        } else if (arg == "--merge") {
            cli.pipeline.tail_dup.merge_limit =
                static_cast<size_t>(std::atoll(next()));
        } else if (arg == "--profile-seed") {
            cli.profile_seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--profile-runs") {
            cli.profile_runs = std::atoi(next());
        } else if (arg == "--no-profile") {
            cli.do_profile = false;
        } else if (arg == "--print-ir") {
            cli.print_ir = true;
        } else if (arg == "--print-schedule") {
            cli.print_schedule = true;
        } else if (arg == "--print-dot") {
            cli.print_dot = true;
        } else if (arg == "--stats") {
            cli.stats = true;
        } else if (arg == "--run") {
            cli.run = true;
            cli.run_seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return usage(argv[0]);
        } else if (cli.input.empty()) {
            cli.input = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (cli.input.empty())
        return usage(argv[0]);

    // ---- Read and parse.
    std::string source;
    if (cli.input == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        source = buffer.str();
    } else {
        std::ifstream file(cli.input);
        if (!file) {
            std::fprintf(stderr, "cannot open %s\n",
                         cli.input.c_str());
            return 1;
        }
        std::ostringstream buffer;
        buffer << file.rdbuf();
        source = buffer.str();
    }
    std::string error;
    auto mod = ir::parseModule(source, &error);
    if (!mod) {
        std::fprintf(stderr, "parse error: %s\n", error.c_str());
        return 1;
    }
    ir::Function &fn = mod->function(
        mod->functions().front()->name());
    const auto problems =
        ir::verifyFunction(fn, ir::VerifyLevel::Schedulable);
    if (!problems.empty()) {
        for (const auto &p : problems)
            std::fprintf(stderr, "verifier: %s\n", p.c_str());
        return 1;
    }

    // ---- Profile.
    if (cli.do_profile) {
        workloads::ProfileOptions profile;
        profile.input_seed = cli.profile_seed;
        profile.runs = cli.profile_runs;
        const auto summary = workloads::profileFunction(
            fn, mod->memWords(), profile);
        std::fprintf(stderr, "profiled %d runs (%llu dynamic ops)\n",
                     summary.completed_runs,
                     static_cast<unsigned long long>(
                         summary.total_ops));
    }
    if (cli.print_ir)
        ir::printFunction(std::cout, fn);

    // ---- Compile.
    ir::Function original = fn.clone();
    const double baseline = sched::estimateBaselineTime(fn);
    const auto result = sched::runPipeline(fn, cli.pipeline);
    const auto sched_problems = sched::verifyFunctionSchedule(
        result.schedule, cli.pipeline.model.issue_width);
    for (const auto &p : sched_problems)
        std::fprintf(stderr, "schedule verifier: %s\n", p.c_str());

    std::fprintf(stderr,
                 "%s/%s on %s: %zu regions, estimate %.0f cycles, "
                 "speedup %.2fx over bb@1U\n",
                 sched::regionSchemeName(cli.pipeline.scheme).c_str(),
                 sched::heuristicName(cli.pipeline.sched.heuristic)
                     .c_str(),
                 cli.pipeline.model.name.c_str(),
                 result.schedule.regions.size(), result.estimated_time,
                 baseline / result.estimated_time);

    if (cli.stats) {
        std::fprintf(stderr,
                     "regions: %zu (avg %.2f blocks, max %zu, avg "
                     "%.2f ops); code expansion %.2fx; renamed %zu "
                     "defs, %zu exit copies, %zu speculated, %zu "
                     "elided\n",
                     result.region_stats.num_regions,
                     result.region_stats.avg_blocks,
                     result.region_stats.max_blocks,
                     result.region_stats.avg_ops,
                     result.code_expansion,
                     result.total_sched_stats.renamed_defs,
                     result.total_sched_stats.exit_copies,
                     result.total_sched_stats.speculated_ops,
                     result.total_sched_stats.elided_ops);
    }
    if (cli.print_dot)
        region::writeDot(std::cout, fn, result.regions,
                         {false, true, mod->name()});
    if (cli.print_schedule) {
        for (const auto &[root, rs] : result.schedule.regions) {
            std::printf("-- region bb%u (%d cycles)\n%s", root,
                        rs.length,
                        rs.str(cli.pipeline.model.issue_width)
                            .c_str());
        }
    }

    if (cli.run) {
        auto memory = workloads::makeInputMemory(
            mod->memWords(), cli.run_seed, 100);
        const auto report = vliw::checkEquivalence(
            original, fn, result.schedule, memory);
        if (!report.ok) {
            std::fprintf(stderr, "equivalence FAILED: %s\n",
                         report.detail.c_str());
            return 1;
        }
        const auto run =
            vliw::runScheduled(fn, result.schedule, memory);
        std::printf("run(seed=%llu): result %lld in %llu cycles "
                    "(sequential match confirmed)\n",
                    static_cast<unsigned long long>(cli.run_seed),
                    static_cast<long long>(run.ret_value),
                    static_cast<unsigned long long>(run.cycles));
    }
    return sched_problems.empty() ? 0 : 1;
}
