/**
 * @file
 * treegionc — command-line driver for the treegion compiler.
 *
 * Reads a module in the textual IR format (a file path, or stdin
 * with "-"), optionally profiles it on seeded synthetic inputs, runs
 * the region-scheduling pipeline, and prints what you ask for.
 *
 * Usage:
 *   treegionc [options] <input.tir | ->
 *
 * Options:
 *   --scheme bb|slr|sb|tree|tree-td   region formation (default tree)
 *   --heuristic h|ec|gw|wc            priority heuristic (default gw)
 *   --width N                         issue width (default 4)
 *   --expansion X --paths N --merge N tail-duplication limits
 *   --profile-seed S --profile-runs N training profile (default 42/20)
 *   --no-profile                      keep weights from the input file
 *   --print-ir                        echo the parsed (profiled) IR
 *   --print-schedule                  print every region schedule
 *   --print-dot                       dot graph of CFG + regions
 *   --run SEED                        simulate on a seeded input
 *   --sim-backend vliw|ooo            machine model for --run: the
 *                                     in-order VLIW simulator
 *                                     (default) or the out-of-order
 *                                     Tomasulo/ROB backend
 *   --ooo-config NAME                 OoO configuration for
 *                                     --sim-backend ooo: "ooo-small"
 *                                     (default) or "ooo-wide"
 *   --stats                           region + scheduling statistics
 *   --remarks FILE                    write decision remarks as JSON
 *                                     lines ("-" = stdout); works in
 *                                     single and batch mode
 *
 * Batch compilation (sharded over a work-stealing thread pool):
 *   -j N | --jobs N      worker threads (default 1; 0 = all cores)
 *   --mem-budget-mb N    admit jobs through a peak-memory budget of
 *                        N MiB: a job starts only when its projected
 *                        peak (sched/mem_estimate.h) fits next to
 *                        the jobs already running, largest first; an
 *                        oversized job runs solo (default 0 = off)
 *   --all-functions      compile every function in the module
 *   --sweep              compile every scheme x heuristic config
 *   --trace-json FILE    dump per-stage Chrome trace events to FILE
 *                        (load in chrome://tracing or perfetto)
 *   --flight-rec FILE    crash flight recorder: dump each thread's
 *                        ring of recent events (job starts, stage
 *                        entries) to FILE as JSONL on TG_PANIC or a
 *                        fatal signal
 *
 * Batch results are printed in deterministic input order — function
 * order x configuration order — whatever the thread count.
 *
 * Remote compilation against a running treegiond:
 *   --server ADDR        compile on the server instead of locally
 *                        (ADDR: "unix:/path", an absolute socket
 *                        path, or "host:port"; a comma-separated
 *                        list "A,B,C" routes over the cluster's
 *                        consistent-hash ring with failover)
 *   --no-cache           ask the server to bypass its compile cache
 *   --trace-spans FILE   with --server: record the client-side spans
 *                        of this invocation ("call", "clock-sync")
 *                        and append them to FILE as treegion-span/v1
 *                        JSONL; the trace id propagates to the
 *                        replicas so their --trace-spans files merge
 *                        into one tree (treegion-report --trace-merge)
 *   --trace-sample R     sampling probability in [0,1] (default 1)
 * The pipeline options above are encoded and shipped with the
 * module; the server replies with the same stats (plus schedules
 * under --print-schedule), served from its content-addressed cache
 * when possible.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "ooo/ooo_sim.h"
#include "region/graphviz.h"
#include "sched/pipeline.h"
#include "sched/schedule_verifier.h"
#include "service/client.h"
#include "service/ring.h"
#include "support/flightrec.h"
#include "support/logging.h"
#include "support/spans.h"
#include "support/string_utils.h"
#include "support/remarks.h"
#include "support/trace.h"
#include "vliw/equivalence.h"
#include "workloads/profiler.h"

using namespace treegion;

namespace {

struct CliOptions
{
    std::string input;
    sched::PipelineOptions pipeline;
    bool do_profile = true;
    uint64_t profile_seed = 42;
    int profile_runs = 20;
    bool print_ir = false;
    bool print_schedule = false;
    bool print_dot = false;
    bool stats = false;
    bool run = false;
    uint64_t run_seed = 1;
    bool run_ooo = false;             ///< --sim-backend ooo
    ooo::OooConfig ooo_config;        ///< --ooo-config
    size_t jobs = 1;
    uint64_t mem_budget_bytes = 0;
    bool all_functions = false;
    bool sweep = false;
    std::string trace_json;
    std::string remarks_path;
    std::string server;
    bool no_cache = false;
    std::string span_path;
    double span_sample = 1.0;
    std::string flightrec_path;
};

/** Write @p jsonl to @p path ("-" = stdout). @return false on error. */
bool
writeRemarks(const std::string &path, const std::string &jsonl)
{
    if (path == "-") {
        std::fputs(jsonl.c_str(), stdout);
        return true;
    }
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write remarks to %s\n",
                     path.c_str());
        return false;
    }
    out << jsonl;
    return true;
}

/**
 * Ship the module to a treegiond instead of compiling locally. The
 * server performs the same profile + pipeline + verify sequence, so
 * the printed stats match a local run of the same configuration.
 */
int
runOnServer(const CliOptions &cli, const std::string &source)
{
    service::Request req;
    req.options = sched::encodePipelineOptions(cli.pipeline);
    req.want_schedule = cli.print_schedule;
    req.no_cache = cli.no_cache;
    req.profile = cli.do_profile;
    req.profile_seed = cli.profile_seed;
    req.profile_runs = cli.profile_runs;
    req.module_text = source;

    std::string error;
    service::Response resp;
    if (cli.server.find(',') != std::string::npos) {
        // A member list: route by cache key over the shared ring,
        // failing over past dead or draining replicas.
        service::ClusterClient client(
            support::splitString(cli.server, ','));
        if (!client.call(req, &resp, &error)) {
            std::fprintf(stderr, "server call failed: %s\n",
                         error.c_str());
            return 1;
        }
    } else {
        auto client = service::Client::connect(cli.server, &error);
        if (!client) {
            std::fprintf(stderr, "connect %s: %s\n",
                         cli.server.c_str(), error.c_str());
            return 1;
        }
        // When tracing, sample the server's clock first so merged
        // traces can align this file with the server's (no-op when
        // span collection is off).
        std::string sync_error;
        client->syncClock(&sync_error);
        if (!client->call(req, &resp, &error)) {
            std::fprintf(stderr, "server call failed: %s\n",
                         error.c_str());
            return 1;
        }
    }
    if (resp.status != service::status::kOk) {
        std::fprintf(stderr, "server: %s%s%s\n", resp.status.c_str(),
                     resp.error.empty() ? "" : ": ",
                     resp.error.c_str());
        if (resp.retry_after_ms > 0)
            std::fprintf(stderr, "server: retry after %lld ms\n",
                         static_cast<long long>(resp.retry_after_ms));
        return 1;
    }
    std::fprintf(stderr, "server: ok%s, compile %.2f ms\n",
                 resp.cached ? " (cached)" : "", resp.compile_ms);
    std::fputs(resp.body.c_str(), stdout);
    return 0;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options] <input.tir | ->\n"
                 "see the file header or README for options\n",
                 argv0);
    return 2;
}

/** The scheme x heuristic grid the paper's evaluation sweeps. */
std::vector<sched::PipelineOptions>
sweepConfigs(const sched::PipelineOptions &base)
{
    static const sched::RegionScheme schemes[] = {
        sched::RegionScheme::BasicBlock,
        sched::RegionScheme::Slr,
        sched::RegionScheme::Superblock,
        sched::RegionScheme::Treegion,
        sched::RegionScheme::TreegionTailDup,
        sched::RegionScheme::Hyperblock,
    };
    static const sched::Heuristic heuristics[] = {
        sched::Heuristic::DependenceHeight,
        sched::Heuristic::ExitCount,
        sched::Heuristic::GlobalWeight,
        sched::Heuristic::WeightedCount,
    };
    std::vector<sched::PipelineOptions> configs;
    for (const auto scheme : schemes) {
        for (const auto heuristic : heuristics) {
            sched::PipelineOptions options = base;
            options.scheme = scheme;
            options.sched.heuristic = heuristic;
            configs.push_back(options);
        }
    }
    return configs;
}

/**
 * Compile a batch of (function x configuration) jobs across the
 * requested number of workers and print one summary line per job in
 * input order. @return the number of jobs whose schedule failed
 * verification.
 */
int
runBatch(const std::vector<ir::Function *> &fns, const CliOptions &cli)
{
    // Per-function baselines for the speedup column
    // (estimateBaselineTime is const-safe, so the batch functions
    // stay pristine for compilation).
    std::vector<double> baselines;
    for (const ir::Function *fn : fns)
        baselines.push_back(sched::estimateBaselineTime(*fn));

    const std::vector<sched::PipelineOptions> configs =
        cli.sweep ? sweepConfigs(cli.pipeline)
                  : std::vector<sched::PipelineOptions>{cli.pipeline};

    std::vector<sched::PipelineJob> batch;
    for (const ir::Function *fn : fns) {
        for (const auto &config : configs) {
            sched::PipelineJob job;
            job.fn = fn;
            job.options = config;
            job.label = fn->name() + "/" +
                        sched::regionSchemeName(config.scheme) + "/" +
                        sched::heuristicName(config.sched.heuristic);
            job.collect_remarks = !cli.remarks_path.empty();
            batch.push_back(std::move(job));
        }
    }
    std::fprintf(stderr, "batch: %zu jobs (%zu functions x %zu "
                 "configs) on %zu thread(s)\n",
                 batch.size(), fns.size(), configs.size(),
                 cli.jobs == 0 ? support::ThreadPool::hardwareThreads()
                               : cli.jobs);

    // Results are streamed through a sink and reduced to their
    // formatted report lines on the spot, so the driver retains a
    // few strings per job instead of every schedule and function
    // clone — under --mem-budget-mb the batch's resident peak is
    // otherwise dominated by retained results the admission gate
    // cannot govern. Output stays in input order (and bit-identical
    // to the retained path) because everything is re-emitted from
    // the per-index buffers below.
    std::vector<std::string> report_lines(batch.size());
    std::vector<std::string> verify_lines(batch.size());
    std::vector<std::string> remark_chunks(batch.size());
    std::vector<char> verify_failed(batch.size(), 0);
    const bool want_remarks = !cli.remarks_path.empty();

    sched::ParallelRunOptions run;
    run.num_threads = cli.jobs;
    run.mem_budget_bytes = cli.mem_budget_bytes;
    run.sink = [&](sched::PipelineJobResult &&jr) {
        const size_t i = jr.job_index;
        const auto problems = sched::verifyFunctionSchedule(
            jr.result.schedule, batch[i].options.model.issue_width);
        for (const auto &p : problems) {
            verify_lines[i] +=
                jr.label + ": schedule verifier: " + p + "\n";
        }
        verify_failed[i] = problems.empty() ? 0 : 1;

        const double baseline = baselines[i / configs.size()];
        char line[256];
        std::snprintf(line, sizeof line,
                      "%-28s %4zu regions  %10.0f cycles  "
                      "speedup %5.2fx%s\n",
                      jr.label.c_str(),
                      jr.result.schedule.regions.size(),
                      jr.result.estimated_time,
                      baseline / jr.result.estimated_time,
                      problems.empty() ? "" : "  [VERIFY FAILED]");
        report_lines[i] = line;
        if (cli.stats) {
            std::snprintf(
                line, sizeof line,
                "    expansion %.2fx; renamed %zu, copies "
                "%zu, speculated %zu, elided %zu; compile "
                "%.2f ms\n",
                jr.result.code_expansion,
                jr.result.total_sched_stats.renamed_defs,
                jr.result.total_sched_stats.exit_copies,
                jr.result.total_sched_stats.speculated_ops,
                jr.result.total_sched_stats.elided_ops,
                jr.compile_ms);
            report_lines[i] += line;
        }
        if (want_remarks)
            remark_chunks[i] = jr.remarks.toJsonLines();
    };
    sched::runPipelineParallel(batch, run);

    int failures = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
        std::fputs(verify_lines[i].c_str(), stderr);
        failures += verify_failed[i] ? 1 : 0;
        std::fputs(report_lines[i].c_str(), stdout);
    }

    if (want_remarks) {
        // Per-job streams concatenated in input order: bit-identical
        // for any -j.
        std::string jsonl;
        for (const std::string &chunk : remark_chunks)
            jsonl += chunk;
        if (!writeRemarks(cli.remarks_path, jsonl))
            ++failures;
        else if (cli.remarks_path != "-")
            std::fprintf(stderr, "remarks written to %s\n",
                         cli.remarks_path.c_str());
    }
    return failures;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    cli.pipeline.scheme = sched::RegionScheme::Treegion;
    cli.pipeline.model = sched::MachineModel::wide4U();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scheme") {
            if (!sched::parseRegionScheme(next(),
                                          cli.pipeline.scheme))
                return usage(argv[0]);
        } else if (arg == "--heuristic") {
            if (!sched::parseHeuristicName(
                    next(), cli.pipeline.sched.heuristic))
                return usage(argv[0]);
        } else if (arg == "--width") {
            cli.pipeline.model = sched::MachineModel::custom(
                std::atoi(next()));
        } else if (arg == "--expansion") {
            cli.pipeline.tail_dup.expansion_limit = std::atof(next());
        } else if (arg == "--paths") {
            cli.pipeline.tail_dup.path_limit =
                static_cast<size_t>(std::atoll(next()));
        } else if (arg == "--merge") {
            cli.pipeline.tail_dup.merge_limit =
                static_cast<size_t>(std::atoll(next()));
        } else if (arg == "--profile-seed") {
            cli.profile_seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--profile-runs") {
            cli.profile_runs = std::atoi(next());
        } else if (arg == "--no-profile") {
            cli.do_profile = false;
        } else if (arg == "--print-ir") {
            cli.print_ir = true;
        } else if (arg == "--print-schedule") {
            cli.print_schedule = true;
        } else if (arg == "--print-dot") {
            cli.print_dot = true;
        } else if (arg == "--stats") {
            cli.stats = true;
        } else if (arg == "--run") {
            cli.run = true;
            cli.run_seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--sim-backend") {
            const std::string backend = next();
            if (backend == "ooo") {
                cli.run_ooo = true;
            } else if (backend != "vliw") {
                std::fprintf(stderr,
                             "--sim-backend expects vliw or ooo, "
                             "got %s\n", backend.c_str());
                return 2;
            }
        } else if (arg == "--ooo-config") {
            const std::string name = next();
            if (!ooo::parseOooConfig(name, cli.ooo_config)) {
                std::fprintf(stderr, "unknown --ooo-config %s "
                             "(try ooo-small or ooo-wide)\n",
                             name.c_str());
                return 2;
            }
        } else if (arg == "-j" || arg == "--jobs") {
            const long long jobs = std::atoll(next());
            if (jobs < 0 || jobs > 1024) {
                std::fprintf(stderr,
                             "-j expects 0..1024 (0 = all cores), "
                             "got %lld\n", jobs);
                return 2;
            }
            cli.jobs = static_cast<size_t>(jobs);
        } else if (arg == "--mem-budget-mb") {
            cli.mem_budget_bytes =
                static_cast<uint64_t>(std::atoll(next())) << 20;
        } else if (arg == "--all-functions") {
            cli.all_functions = true;
        } else if (arg == "--sweep") {
            cli.sweep = true;
        } else if (arg == "--trace-json") {
            cli.trace_json = next();
        } else if (arg == "--remarks") {
            cli.remarks_path = next();
        } else if (arg == "--server") {
            cli.server = next();
        } else if (arg == "--no-cache") {
            cli.no_cache = true;
        } else if (arg == "--trace-spans") {
            cli.span_path = next();
        } else if (arg == "--trace-sample") {
            cli.span_sample = std::atof(next());
        } else if (arg == "--flight-rec") {
            cli.flightrec_path = next();
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return usage(argv[0]);
        } else if (cli.input.empty()) {
            cli.input = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (cli.input.empty())
        return usage(argv[0]);

    if (!cli.trace_json.empty())
        support::TraceCollector::instance().setEnabled(true);
    if (!cli.flightrec_path.empty()) {
        support::flightrec::setDumpPath(cli.flightrec_path.c_str());
        support::flightrec::installCrashHandlers();
        support::setPanicHook(&support::flightrec::dumpConfigured);
    }

    // ---- Read and parse.
    std::string source;
    if (cli.input == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        source = buffer.str();
    } else {
        std::ifstream file(cli.input);
        if (!file) {
            std::fprintf(stderr, "cannot open %s\n",
                         cli.input.c_str());
            return 1;
        }
        std::ostringstream buffer;
        buffer << file.rdbuf();
        source = buffer.str();
    }
    // ---- Remote mode: the server does the rest.
    if (!cli.server.empty()) {
        if (!cli.span_path.empty()) {
            auto &spans = support::SpanCollector::instance();
            spans.setService("treegionc");
            spans.configure(cli.span_sample);
        }
        const int rc = runOnServer(cli, source);
        if (!cli.span_path.empty() &&
            !support::SpanCollector::instance().writeJsonl(
                cli.span_path, /*append=*/true))
            std::fprintf(stderr, "cannot write spans to %s\n",
                         cli.span_path.c_str());
        return rc;
    }

    std::string error;
    std::unique_ptr<ir::Module> mod;
    {
        support::TraceScope span("parse", "driver");
        mod = ir::parseModule(source, &error);
    }
    if (!mod) {
        std::fprintf(stderr, "parse error: %s\n", error.c_str());
        return 1;
    }

    // ---- Select, verify and profile the functions to compile.
    std::vector<ir::Function *> fns;
    if (cli.all_functions) {
        for (const auto &fn : mod->functions())
            fns.push_back(fn.get());
    } else {
        fns.push_back(mod->functions().front().get());
    }
    for (ir::Function *fn : fns) {
        const auto problems =
            ir::verifyFunction(*fn, ir::VerifyLevel::Schedulable);
        if (!problems.empty()) {
            for (const auto &p : problems)
                std::fprintf(stderr, "verifier: %s: %s\n",
                             fn->name().c_str(), p.c_str());
            return 1;
        }
        if (cli.do_profile) {
            support::TraceScope span("profile", "driver");
            span.arg("fn", fn->name());
            workloads::ProfileOptions profile;
            profile.input_seed = cli.profile_seed;
            profile.runs = cli.profile_runs;
            const auto summary = workloads::profileFunction(
                *fn, mod->memWords(), profile);
            std::fprintf(stderr,
                         "%s: profiled %d runs (%llu dynamic ops)\n",
                         fn->name().c_str(), summary.completed_runs,
                         static_cast<unsigned long long>(
                             summary.total_ops));
        }
    }

    auto finish = [&](int code) {
        if (!cli.trace_json.empty()) {
            if (support::TraceCollector::instance()
                    .writeChromeTraceFile(cli.trace_json)) {
                std::fprintf(stderr, "trace written to %s\n",
                             cli.trace_json.c_str());
            } else {
                std::fprintf(stderr, "cannot write trace to %s\n",
                             cli.trace_json.c_str());
                code = code ? code : 1;
            }
        }
        return code;
    };

    // ---- Batch mode: functions x configurations over the pool.
    if (cli.all_functions || cli.sweep)
        return finish(runBatch(fns, cli) == 0 ? 0 : 1);

    // ---- Single-function mode.
    ir::Function &fn = *fns.front();
    if (cli.print_ir)
        ir::printFunction(std::cout, fn);

    ir::Function original = fn.clone();
    const double baseline = sched::estimateBaselineTime(fn);
    const auto compile_start = std::chrono::steady_clock::now();
    // The scope covers only the main compilation, not the baseline
    // estimate above, so the stream describes this run alone.
    support::RemarkStream remarks;
    const auto result = [&] {
        support::RemarkScope scope(
            cli.remarks_path.empty() ? nullptr : &remarks);
        return sched::runPipeline(fn, cli.pipeline);
    }();
    const double compile_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - compile_start)
            .count();
    if (!cli.remarks_path.empty()) {
        if (!writeRemarks(cli.remarks_path, remarks.toJsonLines()))
            return finish(1);
        if (cli.remarks_path != "-")
            std::fprintf(stderr, "%zu remarks written to %s\n",
                         remarks.size(), cli.remarks_path.c_str());
    }
    const auto sched_problems = sched::verifyFunctionSchedule(
        result.schedule, cli.pipeline.model.issue_width);
    for (const auto &p : sched_problems)
        std::fprintf(stderr, "schedule verifier: %s\n", p.c_str());

    std::fprintf(stderr,
                 "%s/%s on %s: %zu regions, estimate %.0f cycles, "
                 "speedup %.2fx over bb@1U\n",
                 sched::regionSchemeName(cli.pipeline.scheme).c_str(),
                 sched::heuristicName(cli.pipeline.sched.heuristic)
                     .c_str(),
                 cli.pipeline.model.name.c_str(),
                 result.schedule.regions.size(), result.estimated_time,
                 baseline / result.estimated_time);

    if (cli.stats) {
        std::fprintf(stderr,
                     "regions: %zu (avg %.2f blocks, max %zu, avg "
                     "%.2f ops); code expansion %.2fx; renamed %zu "
                     "defs, %zu exit copies, %zu speculated, %zu "
                     "elided; compile %.2f ms\n",
                     result.region_stats.num_regions,
                     result.region_stats.avg_blocks,
                     result.region_stats.max_blocks,
                     result.region_stats.avg_ops,
                     result.code_expansion,
                     result.total_sched_stats.renamed_defs,
                     result.total_sched_stats.exit_copies,
                     result.total_sched_stats.speculated_ops,
                     result.total_sched_stats.elided_ops,
                     compile_ms);
    }
    if (cli.print_dot)
        region::writeDot(std::cout, fn, result.regions,
                         {false, true, mod->name()});
    if (cli.print_schedule) {
        for (const auto &[root, rs] : result.schedule.regions) {
            std::printf("-- region bb%u (%d cycles)\n%s", root,
                        rs.length,
                        rs.str(cli.pipeline.model.issue_width)
                            .c_str());
        }
    }

    if (cli.run) {
        auto memory = workloads::makeInputMemory(
            mod->memWords(), cli.run_seed, 100);
        const auto report = vliw::checkEquivalence(
            original, fn, result.schedule, memory);
        if (!report.ok) {
            std::fprintf(stderr, "equivalence FAILED: %s\n",
                         report.detail.c_str());
            return finish(1);
        }
        if (cli.run_ooo) {
            const auto ooo_run = ooo::runOutOfOrder(
                fn, result.schedule, memory, cli.ooo_config);
            if (!ooo_run.arch.completed) {
                std::fprintf(stderr,
                             "ooo run hit its cycle limit\n");
                return finish(1);
            }
            std::printf(
                "run(seed=%llu, %s): result %lld in %llu cycles "
                "(IPC %.2f, avg window %.1f, %llu rename stalls; "
                "sequential match confirmed)\n",
                static_cast<unsigned long long>(cli.run_seed),
                cli.ooo_config.name.c_str(),
                static_cast<long long>(ooo_run.arch.ret_value),
                static_cast<unsigned long long>(ooo_run.arch.cycles),
                ooo_run.stats.ipc(ooo_run.arch.cycles),
                ooo_run.stats.avgWindowOccupancy(ooo_run.arch.cycles),
                static_cast<unsigned long long>(
                    ooo_run.stats.rename_stalls));
        } else {
            const auto run =
                vliw::runScheduled(fn, result.schedule, memory);
            std::printf("run(seed=%llu): result %lld in %llu cycles "
                        "(sequential match confirmed)\n",
                        static_cast<unsigned long long>(cli.run_seed),
                        static_cast<long long>(run.ret_value),
                        static_cast<unsigned long long>(run.cycles));
        }
    }
    return finish(sched_problems.empty() ? 0 : 1);
}
