/**
 * @file
 * treegiond — the treegion compile daemon.
 *
 * A persistent compile server: clients submit .tir modules plus a
 * pipeline configuration over a Unix-domain or TCP socket and get
 * back schedules, statistics and estimated times. Results are
 * content-addressed in an LRU cache; the queue is bounded with
 * backpressure; SIGTERM/SIGINT drain gracefully (finish in-flight
 * work, refuse new, flush metrics). See src/service/ and DESIGN.md
 * §9 for the protocol and the robustness model.
 *
 * Usage:
 *   treegiond [--unix PATH] [--tcp PORT] [options]
 *
 * Options:
 *   --unix PATH            listen on a Unix-domain socket
 *   --tcp PORT             listen on 127.0.0.1:PORT (0 = ephemeral;
 *                          the bound port is printed to stdout)
 *   --host ADDR            TCP bind address (default 127.0.0.1)
 *   --threads N            compile workers (default: all cores)
 *   --queue-limit N        max in-flight compile requests (default 64)
 *   --mem-budget-mb N      park compiles whose projected peak heap
 *                          would push the in-flight total past N MiB
 *                          (default 0 = no memory gate)
 *   --max-connections N    max concurrent connections (default 64)
 *   --cache-mb N           compile cache budget in MiB (default 64;
 *                          0 disables caching)
 *   --max-request-kb N     request frame limit in KiB (default 4096)
 *   --verify-hits 0|1      recompile every cache hit and assert
 *                          bit-identity (default: 1 in debug builds)
 *   --metrics-json FILE    write the /stats JSON here on drain
 *   --trace-json FILE      enable tracing; write one Chrome trace
 *                          per drain here
 *   --trace-spans FILE     enable distributed tracing; write the
 *                          span JSONL (treegion-span/v1) here on
 *                          drain — merge files from every replica
 *                          and client with `treegion-report
 *                          --trace-merge`
 *   --trace-sample R       probability a locally rooted trace is
 *                          sampled, in [0,1] (default 1; requests
 *                          carrying trace-id headers keep their
 *                          root's decision)
 *   --flight-rec FILE      crash flight recorder: dump the last
 *                          events of every thread here on panic,
 *                          fatal signal, or clean drain
 *   --peers A,B,C          cluster membership: every replica's
 *                          client-visible address, identical on all
 *                          replicas (the consistent-hash ring is
 *                          built over these strings)
 *   --self ADDR            this replica's own address, verbatim as
 *                          it appears in --peers (required with
 *                          --peers)
 *   --debug-queue-delay-ms N  test hook: hold each request in the
 *                          queue this long (deadline/backpressure
 *                          demos and CI)
 *
 * Observability: send a "stats" request over the protocol, or plain
 * HTTP — `curl --unix-socket PATH http://treegiond/stats` or
 * `curl http://127.0.0.1:PORT/stats` — against the same listeners.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/server.h"
#include "support/flightrec.h"
#include "support/logging.h"
#include "support/string_utils.h"

using namespace treegion;

namespace {

service::Server *g_server = nullptr;

void
handleSignal(int)
{
    // requestStop is async-signal-safe (atomic store + pipe write).
    if (g_server)
        g_server->requestStop();
}

/**
 * TG_PANIC hook: runs in normal (non-signal) context, so the full
 * telemetry flush is allowed — metrics JSON, span JSONL and the
 * flight-recorder rings all land on their configured paths before
 * the abort. Fatal signals take only the flight recorder's
 * async-signal-safe dump (installCrashHandlers).
 */
void
panicFlush()
{
    if (service::Server *server = g_server)
        server->flushTelemetry();
    else
        support::flightrec::dumpConfigured();
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--unix PATH] [--tcp PORT] [options]\n"
                 "see the file header or README for options\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    service::ServerOptions options;
    options.threads = 0;  // all cores

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--unix") {
            options.unix_path = next();
        } else if (arg == "--tcp") {
            options.tcp_port = std::atoi(next());
        } else if (arg == "--host") {
            options.tcp_host = next();
        } else if (arg == "--threads") {
            options.threads =
                static_cast<size_t>(std::atoll(next()));
        } else if (arg == "--queue-limit") {
            options.queue_limit =
                static_cast<size_t>(std::atoll(next()));
        } else if (arg == "--mem-budget-mb") {
            options.mem_budget_bytes =
                static_cast<uint64_t>(std::atoll(next())) << 20;
        } else if (arg == "--max-connections") {
            options.max_connections =
                static_cast<size_t>(std::atoll(next()));
        } else if (arg == "--cache-mb") {
            options.cache_bytes =
                static_cast<size_t>(std::atoll(next())) << 20;
        } else if (arg == "--max-request-kb") {
            options.max_frame_bytes =
                static_cast<size_t>(std::atoll(next())) << 10;
        } else if (arg == "--verify-hits") {
            options.verify_hits = std::atoi(next()) != 0;
        } else if (arg == "--metrics-json") {
            options.metrics_path = next();
        } else if (arg == "--trace-json") {
            options.trace_path = next();
        } else if (arg == "--trace-spans") {
            options.span_path = next();
        } else if (arg == "--trace-sample") {
            options.span_sample = std::atof(next());
        } else if (arg == "--flight-rec") {
            options.flightrec_path = next();
        } else if (arg == "--peers") {
            options.peers = support::splitString(next(), ',');
        } else if (arg == "--self") {
            options.self_address = next();
        } else if (arg == "--debug-queue-delay-ms") {
            options.debug_queue_delay_ms = std::atoll(next());
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return usage(argv[0]);
        }
    }
    if (options.unix_path.empty() && options.tcp_port < 0)
        return usage(argv[0]);

    if (!options.flightrec_path.empty()) {
        // Arm the flight recorder before any worker can crash: the
        // ring dumps on TG_PANIC (hook), fatal signals (handlers),
        // and the clean drain path (Server::flushTelemetry).
        support::flightrec::setDumpPath(
            options.flightrec_path.c_str());
        support::flightrec::installCrashHandlers();
    }
    // Once the server exists the hook upgrades to the full flush
    // (metrics + spans + rings); until then it is the ring dump.
    support::setPanicHook(&panicFlush);

    service::Server server(std::move(options));
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "treegiond: %s\n", error.c_str());
        return 1;
    }

    g_server = &server;
    std::signal(SIGTERM, handleSignal);
    std::signal(SIGINT, handleSignal);
    std::signal(SIGPIPE, SIG_IGN);

    if (server.tcpPort() >= 0) {
        // Scripts read this to find an ephemeral port.
        std::printf("port %d\n", server.tcpPort());
        std::fflush(stdout);
    }
    std::fprintf(stderr, "treegiond: serving (SIGTERM drains)\n");

    server.waitUntilStopped();
    g_server = nullptr;
    std::fprintf(stderr, "treegiond: drained cleanly\n");
    return 0;
}
