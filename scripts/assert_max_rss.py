#!/usr/bin/env python3
"""Assert that a memory-budgeted treegionc sweep stays within an
absolute whole-process max-RSS ceiling.

Synthesizes a stress module (N renamed copies of the largest golden
input), runs `treegionc --all-functions --sweep -j 8
--mem-budget-mb B` on it, and fails if the child's ru_maxrss
exceeds the ceiling.

The point is regression detection, not precision: with streaming
result consumption and per-job arena trimming the whole process
peaks near the runtime baseline (~25 MiB measured at 32 copies),
while re-retaining the batch's results — the failure mode the
streaming sink exists to prevent — peaks past 500 MiB on the same
input. The default ceiling sits between the two with wide margin on
both sides; the *precise* frontier bars live in
`throughput_memsched --assert`, which meters the heap directly.

Usage: assert_max_rss.py [--treegionc PATH] [--copies N]
                         [--budget-mb B] [--max-rss-mb M]
"""

import argparse
import os
import sys
import tempfile


def synthesize(source: str, copies: int) -> str:
    """N renamed copies of the source module's first function."""
    lines = open(source).read().splitlines(True)
    out = ["module memstress mem=1024\n"]
    body = "".join(lines[1:])
    for i in range(copies):
        out.append(body.replace("func @main", "func @job%d" % i, 1))
    fd, path = tempfile.mkstemp(suffix=".tir", prefix="memstress-")
    with os.fdopen(fd, "w") as f:
        f.writelines(out)
    return path


def max_rss_mb(cmd: list) -> float:
    """Run cmd to completion; return its max-RSS in MiB."""
    pid = os.fork()
    if pid == 0:
        with open(os.devnull, "wb") as devnull:
            os.dup2(devnull.fileno(), 1)
        os.execv(cmd[0], cmd)
    _, status, rusage = os.wait4(pid, 0)
    if status != 0:
        sys.exit("FAIL: %s exited with status %d" % (cmd[0], status))
    # ru_maxrss is KiB on Linux.
    return rusage.ru_maxrss / 1024.0


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--treegionc", default="./build/tools/treegionc")
    parser.add_argument("--source",
                        default="tests/golden/inputs/fuzz05.tir")
    parser.add_argument("--copies", type=int, default=32)
    parser.add_argument("--budget-mb", type=int, default=32)
    parser.add_argument("--max-rss-mb", type=float, default=160.0)
    args = parser.parse_args()

    module = synthesize(args.source, args.copies)
    try:
        rss = max_rss_mb([args.treegionc, "--all-functions", "--sweep",
                          "-j", "8", "--mem-budget-mb",
                          str(args.budget_mb), module])
    finally:
        os.unlink(module)

    print("max-RSS %.1f MiB (%d copies of %s, budget %d MiB, "
          "ceiling %.0f MiB)"
          % (rss, args.copies, os.path.basename(args.source),
             args.budget_mb, args.max_rss_mb))
    if rss > args.max_rss_mb:
        print("FAIL: max-RSS above the ceiling — is the batch "
              "driver retaining results again?")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
