#!/usr/bin/env python3
"""Compare a fresh throughput_scheduler --json run against the last
committed BENCH_scheduler.json entry (CI perf-smoke gate).

Usage: perf_compare.py FRESH_JSON [--history BENCH_scheduler.json]
                       [--max-regression 0.20]

Absolute compiles/s depends on the machine, so per-config ratios are
normalized by the median ratio across configs: the median captures
"how much faster/slower is this machine than the one that recorded the
baseline", and a config whose normalized ratio still falls more than
--max-regression below 1.0 has regressed relative to its peers. A
uniform slowdown of every config by construction cannot trip the gate
(it is indistinguishable from a slower machine); the tier-1 suite and
the 2x acceptance bar in BENCH_scheduler.json cover that axis.

Exit codes: 0 ok, 1 regression, 2 usage/schema error.
"""

import argparse
import json
import statistics
import sys

SCHEMA = "treegion-sched-bench/v1"


def load_entry(obj, what):
    if obj.get("schema") != SCHEMA:
        sys.exit(f"error: {what}: schema {obj.get('schema')!r} != {SCHEMA!r}")
    configs = {c["name"]: c["compiles_per_s"] for c in obj["configs"]}
    if not configs:
        sys.exit(f"error: {what}: no configs")
    return configs


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh", help="JSON file written by --json")
    ap.add_argument("--history", default="BENCH_scheduler.json")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="fail when a normalized ratio drops more than "
                         "this fraction below 1.0 (default 0.20)")
    args = ap.parse_args()

    with open(args.fresh) as f:
        fresh = load_entry(json.load(f), args.fresh)
    with open(args.history) as f:
        history = json.load(f)
    if not isinstance(history, list) or not history:
        sys.exit(f"error: {args.history} must be a non-empty array")
    base_entry = history[-1]
    base = load_entry(base_entry, f"{args.history}[-1]")

    if set(fresh) != set(base):
        sys.exit(f"error: config mismatch: fresh {sorted(fresh)} vs "
                 f"baseline {sorted(base)}")

    ratios = {name: fresh[name] / base[name] for name in base}
    median = statistics.median(ratios.values())
    floor = 1.0 - args.max_regression

    print(f"baseline: {base_entry.get('label')} "
          f"(median machine ratio {median:.2f}x)")
    print(f"{'config':<12}{'base':>10}{'fresh':>10}{'norm':>8}")
    failed = []
    for name in base:
        norm = ratios[name] / median
        mark = ""
        if norm < floor:
            failed.append(name)
            mark = "  << REGRESSION"
        print(f"{name:<12}{base[name]:>10.1f}{fresh[name]:>10.1f}"
              f"{norm:>8.2f}{mark}")

    if failed:
        print(f"FAIL: {', '.join(failed)} regressed more than "
              f"{args.max_regression:.0%} vs the committed baseline")
        return 1
    print("OK: no config regressed past the gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
