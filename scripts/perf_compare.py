#!/usr/bin/env python3
"""Compare a fresh bench --json run against the last committed
baseline entry (CI perf-smoke gate).

Defaults gate the scheduler bench (BENCH_scheduler.json, metric
compiles_per_s). The cluster bench reuses the same machinery:

    perf_compare.py fresh_cluster.json --history BENCH_cluster.json
        --schema treegion-cluster-bench/v1 --metric reqs_per_s
        --max-regression 0.30

Usage: perf_compare.py FRESH_JSON [--history BENCH_scheduler.json]
                       [--schema SCHEMA] [--metric FIELD]
                       [--max-regression 0.20]

Absolute compiles/s depends on the machine, so per-config ratios are
normalized by the median ratio across configs: the median captures
"how much faster/slower is this machine than the one that recorded the
baseline", and a config whose normalized ratio still falls more than
--max-regression below 1.0 has regressed relative to its peers. A
uniform slowdown of every config by construction cannot trip the gate
(it is indistinguishable from a slower machine); the tier-1 suite and
the 2x acceptance bar in BENCH_scheduler.json cover that axis.

Exit codes: 0 ok, 1 regression, 2 usage/schema error.
"""

import argparse
import json
import statistics
import sys

DEFAULT_SCHEMA = "treegion-sched-bench/v1"
DEFAULT_METRIC = "compiles_per_s"


def load_entry(obj, what, schema, metric):
    if obj.get("schema") != schema:
        sys.exit(f"error: {what}: schema {obj.get('schema')!r} != {schema!r}")
    try:
        configs = {c["name"]: c[metric] for c in obj["configs"]}
    except KeyError as e:
        sys.exit(f"error: {what}: config missing field {e}")
    if not configs:
        sys.exit(f"error: {what}: no configs")
    return configs


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh", help="JSON file written by --json")
    ap.add_argument("--history", default="BENCH_scheduler.json")
    ap.add_argument("--schema", default=DEFAULT_SCHEMA,
                    help="required schema tag in both files "
                         f"(default {DEFAULT_SCHEMA})")
    ap.add_argument("--metric", default=DEFAULT_METRIC,
                    help="per-config throughput field to compare "
                         f"(default {DEFAULT_METRIC})")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="fail when a normalized ratio drops more than "
                         "this fraction below 1.0 (default 0.20)")
    args = ap.parse_args()

    with open(args.fresh) as f:
        fresh = load_entry(json.load(f), args.fresh,
                           args.schema, args.metric)
    with open(args.history) as f:
        history = json.load(f)
    if not isinstance(history, list) or not history:
        sys.exit(f"error: {args.history} must be a non-empty array")
    base_entry = history[-1]
    base = load_entry(base_entry, f"{args.history}[-1]",
                      args.schema, args.metric)

    if set(fresh) != set(base):
        sys.exit(f"error: config mismatch: fresh {sorted(fresh)} vs "
                 f"baseline {sorted(base)}")

    ratios = {name: fresh[name] / base[name] for name in base}
    median = statistics.median(ratios.values())
    floor = 1.0 - args.max_regression

    print(f"baseline: {base_entry.get('label')} "
          f"(median machine ratio {median:.2f}x)")
    print(f"{'config':<12}{'base':>10}{'fresh':>10}{'norm':>8}")
    failed = []
    for name in base:
        norm = ratios[name] / median
        mark = ""
        if norm < floor:
            failed.append(name)
            mark = "  << REGRESSION"
        print(f"{name:<12}{base[name]:>10.1f}{fresh[name]:>10.1f}"
              f"{norm:>8.2f}{mark}")

    if failed:
        print(f"FAIL: {', '.join(failed)} regressed more than "
              f"{args.max_regression:.0%} vs the committed baseline")
        return 1
    print("OK: no config regressed past the gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
