/**
 * @file
 * Ablation A: dominator parallelism on/off for tail-duplicated
 * treegions (global weight, 4U and 8U). Dominator parallelism elides
 * tail-duplicated ops whose identical twin was already speculated
 * into a common dominator, reclaiming the issue slots duplication
 * would otherwise burn (paper Section 4).
 */

#include "bench_common.h"

int
main()
{
    using namespace treegion;
    using sched::Heuristic;
    using sched::RegionScheme;
    auto workloads = bench::loadWorkloads();

    for (const int width : {4, 8}) {
        support::Table table({"program", "dp off", "dp on", "elided",
                              "gain"});
        support::GeoMean gm_off, gm_on;
        for (auto &w : workloads) {
            auto off = bench::makeOptions(RegionScheme::TreegionTailDup,
                                          width,
                                          Heuristic::GlobalWeight);
            off.sched.dominator_parallelism = false;
            const double s_off = bench::runSpeedup(w, off);

            auto on = off;
            on.sched.dominator_parallelism = true;
            sched::PipelineResult result;
            const double s_on = bench::runSpeedup(w, on, &result);

            table.addRow(
                {w.name, support::Table::fmt(s_off),
                 support::Table::fmt(s_on),
                 support::Table::fmt(static_cast<long long>(
                     result.total_sched_stats.elided_ops)),
                 support::Table::fmt(s_on / s_off)});
            gm_off.add(s_off);
            gm_on.add(s_on);
        }
        table.addRow({"geomean", support::Table::fmt(gm_off.value()),
                      support::Table::fmt(gm_on.value()), "-",
                      support::Table::fmt(gm_on.value() /
                                          gm_off.value())});
        bench::emit(table, "Ablation A (" + std::to_string(width) +
                               "U): dominator parallelism");
    }
    return 0;
}
