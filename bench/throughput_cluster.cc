/**
 * @file
 * Capacity scaling of a treegiond compile farm, 1 -> 4 replicas.
 *
 * Starts R in-process replicas (Unix-domain sockets, joined by
 * --peers-style membership) for each R in {1, 2, 4} and drives them
 * with concurrent ClusterClient threads over a fixed population of
 * distinct cache keys (one module, profile-seed varied), in two
 * phases per R:
 *
 *  - cold: fresh caches, every key compiles once somewhere;
 *  - warm: the same keys again, all content-addressed cache hits on
 *    their ring owners.
 *
 * The per-request service time is PINNED via the server's
 * debug_queue_delay_ms hook (default 8 ms) with a small worker pool
 * per replica, so each replica's capacity is workers/delay and the
 * 1->R scaling measured here is real wall-clock capacity composition
 * — routing spread, event-loop overhead, connection handling — not a
 * CPU-core count. That keeps the committed baseline comparable
 * across machines (a 1-core laptop and a 16-core CI runner measure
 * the same thing); CPU-bound scaling on top of it follows on
 * multi-core hosts because replicas share nothing but the ring.
 *
 * Reported per (phase, R): requests/s + latency quantiles, the warm
 * 1->R scaling factor, and a JSON entry under the
 * "treegion-cluster-bench/v1" schema (appended by hand to
 * BENCH_cluster.json; CI's perf-smoke gate compares against the last
 * committed entry). Acceptance: warm reqs/s at 4 replicas >= 3x the
 * 1-replica figure.
 *
 *   ./throughput_cluster [--clients N] [--keys N] [--warm-rounds N]
 *                        [--delay-ms N] [--replica-threads N]
 *                        [--label STR] [--json FILE]
 *                        [--trace-sample R]
 *
 * --trace-sample R turns on distributed tracing at sampling rate R
 * for every in-process replica and client, the way a production farm
 * would run it; CI's perf-smoke compares the warm throughput at 1%
 * sampling against the untraced run to gate the observer's cost.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "service/ring.h"
#include "service/server.h"
#include "support/spans.h"
#include "support/stats.h"
#include "support/string_utils.h"

using namespace treegion;

namespace {

/** The compiled module: small, so the pinned delay dominates. */
const char *kModule = R"(module sum_loop mem=1024
func @main entry=bb0 gprs=16 preds=4 {
  block bb0 weight=1 edges=[1] {
    r0 = MOVI 0
    r1 = MOVI 0
    r2 = MOVI 0
    BRU bb1
  }
  block bb1 weight=11 edges=[10,1] {
    p0 = CMPP.LT r1, 10
    BRCT p0, bb2, bb5
  }
  block bb2 weight=10 edges=[2,8] {
    r3 = LD [r0 + 4]
    r4 = ADD r3, r1
    p1 = CMPP.GT r4, 100
    BRCT p1, bb4, bb3
  }
  block bb3 weight=8 edges=[8] {
    r2 = ADD r2, r4
    BRU bb4
  }
  block bb4 weight=10 edges=[10] {
    r1 = ADD r1, 1
    BRU bb1
  }
  block bb5 weight=1 {
    ST [r0 + 64], r2
    RET r2
  }
}
)";

service::Request
keyedRequest(uint64_t key_index)
{
    service::Request req;
    req.options = "scheme=tree heuristic=gw width=4";
    req.profile_runs = 2;
    req.profile_seed = 10000 + key_index;  // distinct key per index
    req.module_text = kModule;
    return req;
}

struct Cluster
{
    std::vector<std::string> peers;
    std::vector<std::unique_ptr<service::Server>> servers;
};

Cluster
startCluster(size_t replicas, size_t replica_threads,
             int64_t delay_ms)
{
    Cluster cluster;
    for (size_t i = 0; i < replicas; ++i) {
        cluster.peers.push_back(support::strprintf(
            "unix:/tmp/treegion-cluster-bench-%d-%zu-%zu.sock",
            static_cast<int>(getpid()), replicas, i));
    }
    for (size_t i = 0; i < replicas; ++i) {
        service::ServerOptions options;
        options.unix_path = cluster.peers[i].substr(5);
        options.threads = replica_threads;
        options.queue_limit = 256;
        options.verify_hits = false;
        options.debug_queue_delay_ms = delay_ms;
        options.peers = cluster.peers;
        options.self_address = cluster.peers[i];
        cluster.servers.push_back(std::make_unique<service::Server>(
            std::move(options)));
        std::string error;
        if (!cluster.servers.back()->start(&error)) {
            std::fprintf(stderr, "replica %zu: %s\n", i,
                         error.c_str());
            std::exit(1);
        }
    }
    return cluster;
}

void
stopCluster(Cluster &cluster)
{
    for (auto &server : cluster.servers) {
        server->requestStop();
        server->waitUntilStopped();
    }
    for (const auto &addr : cluster.peers)
        ::unlink(addr.substr(5).c_str());
}

struct PhaseResult
{
    double wall_s = 0.0;
    double reqs_per_s = 0.0;
    support::Histogram latency;
    size_t requests = 0;
    size_t errors = 0;
};

/**
 * Each of @p clients threads walks its own slice of the key space
 * @p rounds times through a private ClusterClient.
 */
PhaseResult
runPhase(const Cluster &cluster, size_t clients, size_t keys,
         size_t rounds)
{
    std::vector<support::Histogram> histograms(clients);
    std::vector<size_t> errors(clients, 0);
    std::vector<std::thread> threads;
    const auto start = std::chrono::steady_clock::now();
    for (size_t t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
            service::ClusterClient client(cluster.peers);
            // Precompute each key once: the measured loop should be
            // transport + service time, not module re-parsing.
            std::vector<std::pair<service::Request,
                                  service::CacheKey>> slice;
            for (uint64_t k = t; k < keys; k += clients) {
                service::Request req = keyedRequest(k);
                const service::CacheKey key =
                    service::requestRoutingKey(req);
                slice.emplace_back(std::move(req), key);
            }
            for (size_t r = 0; r < rounds; ++r) {
                for (const auto &[req, key] : slice) {
                    service::Response resp;
                    std::string error;
                    const auto t0 =
                        std::chrono::steady_clock::now();
                    const bool ok =
                        client.callWithKey(key, req, &resp,
                                           &error) &&
                        resp.status == service::status::kOk;
                    const double ms =
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
                    if (ok)
                        histograms[t].add(ms);
                    else
                        ++errors[t];
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    PhaseResult result;
    result.wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    for (size_t t = 0; t < clients; ++t) {
        result.latency.merge(histograms[t]);
        result.errors += errors[t];
    }
    result.requests = result.latency.count();
    result.reqs_per_s =
        result.wall_s > 0 ? result.requests / result.wall_s : 0.0;
    return result;
}

struct ConfigRow
{
    std::string name;
    size_t replicas = 0;
    PhaseResult phase;
};

std::string
entryJson(const std::string &label, size_t clients, size_t keys,
          size_t warm_rounds, int64_t delay_ms,
          size_t replica_threads, const std::vector<ConfigRow> &rows)
{
    std::string out = "{\n";
    out += "  \"schema\": \"treegion-cluster-bench/v1\",\n";
    out += support::strprintf("  \"label\": \"%s\",\n",
                              label.c_str());
    out += support::strprintf(
        "  \"workload\": {\"name\": \"pinned-service-time\", "
        "\"clients\": %zu, \"keys\": %zu, \"warm_rounds\": %zu, "
        "\"delay_ms\": %lld, \"replica_threads\": %zu},\n",
        clients, keys, warm_rounds,
        static_cast<long long>(delay_ms), replica_threads);
    out += "  \"configs\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const ConfigRow &row = rows[i];
        out += support::strprintf(
            "    {\"name\": \"%s\", \"replicas\": %zu, "
            "\"requests\": %zu, \"wall_s\": %.4f, "
            "\"reqs_per_s\": %.1f, \"p50_ms\": %.3f, "
            "\"p95_ms\": %.3f}%s\n",
            row.name.c_str(), row.replicas, row.phase.requests,
            row.phase.wall_s, row.phase.reqs_per_s,
            row.phase.latency.p50(), row.phase.latency.p95(),
            i + 1 < rows.size() ? "," : "");
    }
    out += "  ]\n}\n";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t clients = 16;
    size_t keys = 256;
    size_t warm_rounds = 3;
    int64_t delay_ms = 8;
    size_t replica_threads = 2;
    std::string label = "local";
    std::string json_path;
    double trace_sample = 0.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--clients")
            clients = static_cast<size_t>(std::atoll(next()));
        else if (arg == "--keys")
            keys = static_cast<size_t>(std::atoll(next()));
        else if (arg == "--warm-rounds")
            warm_rounds = static_cast<size_t>(std::atoll(next()));
        else if (arg == "--delay-ms")
            delay_ms = std::atoll(next());
        else if (arg == "--replica-threads")
            replica_threads = static_cast<size_t>(std::atoll(next()));
        else if (arg == "--label")
            label = next();
        else if (arg == "--json")
            json_path = next();
        else if (arg == "--trace-sample")
            trace_sample = std::atof(next());
        else {
            std::fprintf(
                stderr,
                "usage: %s [--clients N] [--keys N] "
                "[--warm-rounds N] [--delay-ms N] "
                "[--replica-threads N] [--label STR] [--json FILE] "
                "[--trace-sample R]\n",
                argv[0]);
            return 2;
        }
    }

    if (trace_sample > 0.0) {
        // One shared in-process collector stands in for every
        // party's --trace-spans sink; spans stay in the bounded
        // buffer (we measure recording cost, not file IO).
        support::SpanCollector::instance().configure(trace_sample);
        std::printf("distributed tracing on, sample rate %g\n",
                    trace_sample);
    }

    std::printf("cluster throughput: %zu clients, %zu keys, "
                "service time pinned at %lld ms x %zu workers per "
                "replica\n",
                clients, keys, static_cast<long long>(delay_ms),
                replica_threads);
    std::printf("%-8s %9s %10s %9s %9s %9s\n", "phase", "replicas",
                "reqs/s", "p50 ms", "p95 ms", "errors");

    std::vector<ConfigRow> rows;
    int exit_code = 0;
    double warm_1r = 0.0, warm_4r = 0.0;
    for (const size_t replicas : {1u, 2u, 4u}) {
        Cluster cluster =
            startCluster(replicas, replica_threads, delay_ms);
        PhaseResult cold =
            runPhase(cluster, clients, keys, /*rounds=*/1);
        // Warm capacity is best-of-2: on an oversubscribed host a
        // single sample can lose 15-20% to scheduler jitter alone,
        // and it is the ratio of warm samples that is gated below.
        PhaseResult warm =
            runPhase(cluster, clients, keys, warm_rounds);
        const PhaseResult warm2 =
            runPhase(cluster, clients, keys, warm_rounds);
        if (warm2.reqs_per_s > warm.reqs_per_s)
            warm = warm2;
        stopCluster(cluster);
        // Drop buffered spans between configs: a saturated buffer
        // records cheaper than a filling one, which would flatter
        // the later configs.
        if (trace_sample > 0.0)
            support::SpanCollector::instance().clear();

        for (const auto *phase : {&cold, &warm}) {
            const bool is_cold = phase == &cold;
            std::printf("%-8s %9zu %10.1f %9.3f %9.3f %9zu\n",
                        is_cold ? "cold" : "warm", replicas,
                        phase->reqs_per_s, phase->latency.p50(),
                        phase->latency.p95(), phase->errors);
            rows.push_back(
                {support::strprintf("%s-%zur",
                                    is_cold ? "cold" : "warm",
                                    replicas),
                 replicas, *phase});
        }
        if (cold.errors + warm.errors > 0)
            exit_code = 1;
        if (replicas == 1)
            warm_1r = warm.reqs_per_s;
        if (replicas == 4)
            warm_4r = warm.reqs_per_s;
    }

    const double scaling = warm_1r > 0 ? warm_4r / warm_1r : 0.0;
    std::printf("warm scaling 1->4 replicas: %.2fx\n", scaling);
    if (scaling < 3.0) {
        std::fprintf(stderr,
                     "FAIL: warm 4-replica scaling %.2fx < 3x\n",
                     scaling);
        exit_code = 1;
    }

    if (!json_path.empty()) {
        const std::string json =
            entryJson(label, clients, keys, warm_rounds, delay_ms,
                      replica_threads, rows);
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        out << json;
        std::printf("wrote %s\n", json_path.c_str());
    }
    return exit_code;
}
