/**
 * @file
 * Throughput of the compile service under concurrent clients.
 *
 * Starts an in-process treegiond (Unix-domain socket), then drives
 * it with N client threads for each N in {1, 2, 4, 8}. Each client
 * repeatedly submits the same SPECint95 proxy modules — the steady
 * state of a build farm recompiling a mostly-unchanged tree — in two
 * phases:
 *
 *  - cold: every request carries no-cache, so the server compiles
 *    each one from scratch;
 *  - warm: identical requests with caching on, so after the first
 *    round everything is a content-addressed cache hit.
 *
 * Reported per (phase, clients): requests/s and client-observed
 * latency p50/p95/p99 from merged per-thread histograms, plus the
 * warm:cold speedup. ISSUE acceptance: warm >= 5x cold on this
 * repeated-module workload.
 *
 *   ./throughput_service [--rounds N] [--clients-max N]
 *                        [--profile-runs N]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "ir/printer.h"
#include "sched/pipeline.h"
#include "service/client.h"
#include "service/server.h"
#include "support/stats.h"
#include "support/string_utils.h"
#include "workloads/spec_proxy.h"

using namespace treegion;

namespace {

struct Workload
{
    std::string name;
    std::string module_text;
};

/** A few proxies of different sizes, as printed .tir text. */
std::vector<Workload>
buildWorkloads()
{
    std::vector<Workload> out;
    const auto proxies = workloads::specint95Proxies();
    // gcc, go, vortex: the large proxies. A cache hit still pays
    // parse + canonical print + hash, so the cold compile has to be
    // expensive for caching to show its worth — exactly the modules
    // a build farm actually cares about.
    for (const size_t idx : {1u, 2u, 7u}) {
        const auto mod = workloads::buildProxy(proxies[idx]);
        std::ostringstream os;
        ir::printModule(os, *mod);
        out.push_back({proxies[idx].name, os.str()});
    }
    return out;
}

struct PhaseResult
{
    double wall_s = 0.0;
    double reqs_per_s = 0.0;
    support::Histogram latency;
    size_t requests = 0;
    size_t errors = 0;
};

/**
 * Fire @p rounds of the workload list from each of @p clients
 * threads and merge the per-thread latency histograms.
 */
PhaseResult
runPhase(const std::string &address,
         const std::vector<Workload> &workloads, size_t clients,
         size_t rounds, bool no_cache, int profile_runs)
{
    std::vector<support::Histogram> histograms(clients);
    std::vector<size_t> errors(clients, 0);
    std::vector<std::thread> threads;
    const auto start = std::chrono::steady_clock::now();
    for (size_t t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
            std::string error;
            auto client = service::Client::connect(address, &error);
            if (!client) {
                errors[t] = rounds * workloads.size();
                return;
            }
            for (size_t r = 0; r < rounds; ++r) {
                for (const auto &w : workloads) {
                    service::Request req;
                    // Tail duplication is the costliest scheme —
                    // the one worth caching.
                    req.options =
                        "scheme=tree-td heuristic=gw width=4";
                    req.no_cache = no_cache;
                    req.profile_runs = profile_runs;
                    req.module_text = w.module_text;
                    service::Response resp;
                    const auto t0 =
                        std::chrono::steady_clock::now();
                    const bool ok =
                        client->call(req, &resp, &error) &&
                        resp.status == service::status::kOk;
                    const double ms =
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
                    if (ok)
                        histograms[t].add(ms);
                    else
                        ++errors[t];
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    PhaseResult result;
    result.wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    for (size_t t = 0; t < clients; ++t) {
        result.latency.merge(histograms[t]);
        result.errors += errors[t];
    }
    result.requests = result.latency.count();
    result.reqs_per_s =
        result.wall_s > 0 ? result.requests / result.wall_s : 0.0;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t rounds = 8;
    size_t clients_max = 8;
    int profile_runs = 4;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--rounds")
            rounds = static_cast<size_t>(std::atoll(next()));
        else if (arg == "--clients-max")
            clients_max = static_cast<size_t>(std::atoll(next()));
        else if (arg == "--profile-runs")
            profile_runs = std::atoi(next());
        else {
            std::fprintf(stderr,
                         "usage: %s [--rounds N] [--clients-max N] "
                         "[--profile-runs N]\n",
                         argv[0]);
            return 2;
        }
    }

    const std::string socket_path = support::strprintf(
        "/tmp/treegiond-bench-%d.sock", static_cast<int>(getpid()));
    service::ServerOptions options;
    options.unix_path = socket_path;
    options.threads = 0;       // all cores
    options.queue_limit = 256; // headroom: we measure, not reject
    options.verify_hits = false; // measure hit latency, not recompiles
    service::Server server(std::move(options));
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "server: %s\n", error.c_str());
        return 1;
    }

    const auto workloads = buildWorkloads();
    std::printf("service throughput: %zu modules x %zu rounds per "
                "client, socket %s\n",
                workloads.size(), rounds, socket_path.c_str());
    std::printf("%-6s %8s %10s %9s %9s %9s %9s\n", "phase", "clients",
                "reqs/s", "p50 ms", "p95 ms", "p99 ms", "errors");

    int exit_code = 0;
    for (size_t clients = 1; clients <= clients_max; clients *= 2) {
        // Fresh distributions per client count: drop cached entries
        // from previous warm phases so each cold phase is truly cold.
        // (no_cache requests never read or populate the cache, so
        // cold is cold regardless; this keeps the phases honest if
        // that ever changes.)
        const PhaseResult cold =
            runPhase(socket_path, workloads, clients, rounds,
                     /*no_cache=*/true, profile_runs);
        const PhaseResult warm =
            runPhase(socket_path, workloads, clients, rounds,
                     /*no_cache=*/false, profile_runs);
        for (const auto *phase : {&cold, &warm}) {
            std::printf("%-6s %8zu %10.1f %9.3f %9.3f %9.3f %9zu\n",
                        phase == &cold ? "cold" : "warm", clients,
                        phase->reqs_per_s, phase->latency.p50(),
                        phase->latency.p95(), phase->latency.p99(),
                        phase->errors);
        }
        const double speedup =
            cold.reqs_per_s > 0 ? warm.reqs_per_s / cold.reqs_per_s
                                : 0.0;
        std::printf("       warm/cold speedup: %.1fx\n", speedup);
        if (cold.errors + warm.errors > 0)
            exit_code = 1;
        // The acceptance bar applies once contention is real.
        if (clients == clients_max && speedup < 5.0) {
            std::fprintf(stderr,
                         "FAIL: warm/cold speedup %.1fx < 5x\n",
                         speedup);
            exit_code = 1;
        }
    }

    server.requestStop();
    server.waitUntilStopped();
    ::unlink(socket_path.c_str());
    return exit_code;
}
