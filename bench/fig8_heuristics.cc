/**
 * @file
 * Reproduces Figure 8: the four treegion scheduling heuristics
 * (dependence height, exit count, global weight, weighted count) on
 * the 4U and 8U machines, for treegions without tail duplication.
 *
 * Paper shape: global weight is the best overall (about +3% over
 * dependence height on 4U, +1% on 8U); exit count is the worst and
 * notably poor on gcc and perl, whose hot multiway branches have many
 * zero-weight destinations that the helped-count proxy mistakes for
 * important ones; weighted count tracks global weight except where
 * treegion weights tie (vortex's linearized validation chains).
 */

#include "bench_common.h"

int
main()
{
    using namespace treegion;
    using sched::Heuristic;
    using sched::RegionScheme;
    auto workloads = bench::loadWorkloads();

    for (const int width : {4, 8}) {
        support::Table table({"program", "dep-height", "exit-count",
                              "global-weight", "weighted-count"});
        support::GeoMean gm[4];
        for (auto &w : workloads) {
            std::vector<std::string> row = {w.name};
            int idx = 0;
            for (const Heuristic h : sched::kAllHeuristics) {
                const double speedup = bench::runSpeedup(
                    w,
                    bench::makeOptions(RegionScheme::Treegion, width,
                                       h));
                row.push_back(support::Table::fmt(speedup));
                gm[idx++].add(speedup);
            }
            table.addRow(std::move(row));
        }
        table.addRow({"geomean", support::Table::fmt(gm[0].value()),
                      support::Table::fmt(gm[1].value()),
                      support::Table::fmt(gm[2].value()),
                      support::Table::fmt(gm[3].value())});
        bench::emit(table, "Figure 8 (" + std::to_string(width) +
                               "U): treegion scheduling heuristics");
    }
    return 0;
}
