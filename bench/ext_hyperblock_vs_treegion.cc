/**
 * @file
 * Extension experiment — the comparison the paper announces as future
 * work ("We also plan to compare the tradeoffs between hyperblocks
 * and treegions directly and to evaluate the merits of predication
 * versus speculation"): hyperblocks (if-conversion: merges join via
 * predication, zero code growth) versus tail-duplicated treegions
 * (merges join via duplication) versus superblocks, with global
 * weight on the 4U and 8U machines, plus the code-size column that
 * frames the tradeoff.
 */

#include "bench_common.h"

int
main()
{
    using namespace treegion;
    using sched::Heuristic;
    using sched::RegionScheme;
    auto workloads = bench::loadWorkloads();

    for (const int width : {4, 8}) {
        support::Table table({"program", "sb", "tree-td", "hyper",
                              "hyper/td", "td expn", "hyper expn"});
        support::GeoMean gm_sb, gm_td, gm_hb;
        for (auto &w : workloads) {
            const double sb = bench::runSpeedup(
                w, bench::makeOptions(RegionScheme::Superblock, width,
                                      Heuristic::GlobalWeight));
            sched::PipelineResult td_result;
            const double td = bench::runSpeedup(
                w,
                bench::makeOptions(RegionScheme::TreegionTailDup, width,
                                   Heuristic::GlobalWeight),
                &td_result);
            sched::PipelineResult hb_result;
            const double hb = bench::runSpeedup(
                w, bench::makeOptions(RegionScheme::Hyperblock, width,
                                      Heuristic::GlobalWeight),
                &hb_result);
            table.addRow({w.name, support::Table::fmt(sb),
                          support::Table::fmt(td),
                          support::Table::fmt(hb),
                          support::Table::fmt(hb / td),
                          support::Table::fmt(td_result.code_expansion),
                          support::Table::fmt(
                              hb_result.code_expansion)});
            gm_sb.add(sb);
            gm_td.add(td);
            gm_hb.add(hb);
        }
        table.addRow({"geomean", support::Table::fmt(gm_sb.value()),
                      support::Table::fmt(gm_td.value()),
                      support::Table::fmt(gm_hb.value()),
                      support::Table::fmt(gm_hb.value() /
                                          gm_td.value()),
                      "-", "-"});
        bench::emit(table,
                    "Extension (" + std::to_string(width) +
                        "U): hyperblocks vs tail-duplicated treegions");
    }
    return 0;
}
