/**
 * @file
 * Scaling of the parallel compilation driver (google-benchmark):
 * the paper's scheme x heuristic x machine-model sweep on the gcc
 * proxy, sharded across 1..N worker threads through
 * runPipelineParallel. Real time is what matters here — the work is
 * fixed, so the per-iteration wall time should drop roughly linearly
 * until the thread count passes the physical core count.
 *
 *   ./throughput_parallel --benchmark_min_time=0.01
 */

#include <benchmark/benchmark.h>

#include "sched/pipeline.h"
#include "support/stats.h"
#include "workloads/profiler.h"
#include "workloads/spec_proxy.h"

namespace {

using namespace treegion;

/** The profiled gcc proxy, built once. */
ir::Function &
gccProxy()
{
    static std::unique_ptr<ir::Module> mod = [] {
        const auto proxies = workloads::specint95Proxies();
        auto m = workloads::buildProxy(proxies[1]);
        workloads::profileFunction(m->function("main"),
                                   proxies[1].params.mem_words);
        return m;
    }();
    return mod->function("main");
}

/** The paper's evaluation grid: 4 schemes x 4 heuristics x {4U,8U}. */
std::vector<sched::PipelineJob>
sweepJobs()
{
    static const sched::RegionScheme schemes[] = {
        sched::RegionScheme::BasicBlock,
        sched::RegionScheme::Slr,
        sched::RegionScheme::Superblock,
        sched::RegionScheme::Treegion,
    };
    static const sched::Heuristic heuristics[] = {
        sched::Heuristic::DependenceHeight,
        sched::Heuristic::ExitCount,
        sched::Heuristic::GlobalWeight,
        sched::Heuristic::WeightedCount,
    };
    std::vector<sched::PipelineJob> jobs;
    for (const auto scheme : schemes) {
        for (const auto heuristic : heuristics) {
            for (const int width : {4, 8}) {
                sched::PipelineJob job;
                job.fn = &gccProxy();
                job.options.scheme = scheme;
                job.options.sched.heuristic = heuristic;
                job.options.model = width == 4
                                        ? sched::MachineModel::wide4U()
                                        : sched::MachineModel::wide8U();
                job.label = sched::regionSchemeName(scheme) + "/" +
                            sched::heuristicName(heuristic) + "/" +
                            job.options.model.name;
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

void
BM_ParallelSweep(benchmark::State &state)
{
    const size_t threads = static_cast<size_t>(state.range(0));
    const auto jobs = sweepJobs();
    double checksum = 0.0;
    // Per-job compile latency distribution across all iterations;
    // the tail (p99 vs p50) shows how unevenly the sweep's job sizes
    // load the pool.
    support::Histogram latency;
    for (auto _ : state) {
        auto results = sched::runPipelineParallel(jobs, threads);
        for (const auto &r : results) {
            checksum += r.result.estimated_time;
            latency.add(r.compile_ms);
        }
        benchmark::DoNotOptimize(checksum);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * jobs.size()));
    state.counters["jobs"] = static_cast<double>(jobs.size());
    state.counters["threads"] = static_cast<double>(threads);
    state.counters["job_p50_ms"] = latency.p50();
    state.counters["job_p95_ms"] = latency.p95();
    state.counters["job_p99_ms"] = latency.p99();
}
BENCHMARK(BM_ParallelSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/** Pool overhead floor: many tiny tasks through the same pool. */
void
BM_PoolSmallTasks(benchmark::State &state)
{
    const size_t threads = static_cast<size_t>(state.range(0));
    support::ThreadPool pool(threads);
    for (auto _ : state) {
        std::atomic<uint64_t> sum{0};
        pool.parallelFor(1024, [&](size_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        benchmark::DoNotOptimize(sum.load());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_PoolSmallTasks)->Arg(1)->Arg(4)->UseRealTime();

} // namespace

BENCHMARK_MAIN();
