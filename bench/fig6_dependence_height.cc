/**
 * @file
 * Reproduces Figure 6: dependence-height treegion scheduling versus
 * basic-block and SLR scheduling (all with the dependence-height
 * heuristic), on the 4U and 8U machines. Speedups are over
 * basic-block scheduling on the single-issue machine.
 *
 * Paper shape: treegion > SLR > BB on both widths (treegion exceeds
 * BB by 48%/35% and SLR by 8%/11% on 4U/8U), with ijpeg on 4U the one
 * case where SLRs edge out treegions (biased treegions stretch their
 * schedules to serve paths that never run).
 */

#include "bench_common.h"

int
main()
{
    using namespace treegion;
    using sched::Heuristic;
    using sched::RegionScheme;
    auto workloads = bench::loadWorkloads();

    for (const int width : {4, 8}) {
        support::Table table({"program", "bb", "slr", "treegion",
                              "tree/slr"});
        support::GeoMean gm_bb, gm_slr, gm_tree;
        for (auto &w : workloads) {
            const double bb = bench::runSpeedup(
                w, bench::makeOptions(RegionScheme::BasicBlock, width,
                                      Heuristic::DependenceHeight));
            const double slr = bench::runSpeedup(
                w, bench::makeOptions(RegionScheme::Slr, width,
                                      Heuristic::DependenceHeight));
            const double tree = bench::runSpeedup(
                w, bench::makeOptions(RegionScheme::Treegion, width,
                                      Heuristic::DependenceHeight));
            table.addRow({w.name, support::Table::fmt(bb),
                          support::Table::fmt(slr),
                          support::Table::fmt(tree),
                          support::Table::fmt(tree / slr)});
            gm_bb.add(bb);
            gm_slr.add(slr);
            gm_tree.add(tree);
        }
        table.addRow({"geomean", support::Table::fmt(gm_bb.value()),
                      support::Table::fmt(gm_slr.value()),
                      support::Table::fmt(gm_tree.value()),
                      support::Table::fmt(gm_tree.value() /
                                          gm_slr.value())});
        bench::emit(table,
                    "Figure 6 (" + std::to_string(width) +
                        "U): dependence-height treegion scheduling");
    }
    return 0;
}
