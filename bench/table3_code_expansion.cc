/**
 * @file
 * Reproduces Table 3: code expansion factors for superblock
 * formation and treegion formation with tail duplication at code
 * expansion limits 2.0 and 3.0 (merge-count limit 4, path limit 20).
 *
 * Paper values for reference: sb 1.07-1.26 (avg 1.18), tree(2.0)
 * 1.26-1.37 (avg 1.32), tree(3.0) 1.31-1.62 (avg 1.44). Shape:
 * treegions expand more than superblocks (duplication happens along
 * several paths), and the 3.0 limit expands more than 2.0, but both
 * stay moderate.
 */

#include "bench_common.h"

#include "region/formation.h"
#include "region/region_stats.h"

int
main()
{
    using namespace treegion;
    auto workloads = bench::loadWorkloads();

    support::Table table({"program", "sb", "tree (2.0)", "tree (3.0)"});
    support::Accumulator a_sb, a_t2, a_t3;
    for (auto &w : workloads) {
        const size_t original = w.fn().totalOps();

        ir::Function fsb = w.fn().clone();
        region::formSuperblocks(fsb, {});
        const double x_sb = region::codeExpansionFactor(fsb, original);

        ir::Function f2 = w.fn().clone();
        region::TailDupLimits lim2;
        lim2.expansion_limit = 2.0;
        region::formTreegionsTailDup(f2, lim2);
        const double x_t2 = region::codeExpansionFactor(f2, original);

        ir::Function f3 = w.fn().clone();
        region::TailDupLimits lim3;
        lim3.expansion_limit = 3.0;
        region::formTreegionsTailDup(f3, lim3);
        const double x_t3 = region::codeExpansionFactor(f3, original);

        table.addRow({w.name, support::Table::fmt(x_sb),
                      support::Table::fmt(x_t2),
                      support::Table::fmt(x_t3)});
        a_sb.add(x_sb);
        a_t2.add(x_t2);
        a_t3.add(x_t3);
    }
    table.addRow({"average", support::Table::fmt(a_sb.mean()),
                  support::Table::fmt(a_t2.mean()),
                  support::Table::fmt(a_t3.mean())});
    bench::emit(table, "Table 3: code expansion statistics");
    return 0;
}
