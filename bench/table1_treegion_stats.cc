/**
 * @file
 * Reproduces Table 1: treegion statistics across the SPECint95
 * proxies — average basic blocks per treegion, maximum basic blocks
 * in a treegion, and average ops per treegion.
 *
 * Paper values for reference: avg #bb 2.39-3.38, max #bb 8-774,
 * avg #instrs 17.6-33.5.
 */

#include "bench_common.h"

#include "region/formation.h"
#include "region/region_stats.h"

int
main()
{
    using namespace treegion;
    auto workloads = bench::loadWorkloads();

    support::Table table(
        {"program", "avg # bb", "max # bb", "avg # instrs"});
    support::Accumulator avg_bb, avg_ops;
    for (auto &w : workloads) {
        ir::Function fn = w.fn().clone();
        const auto set = region::formTreegions(fn);
        const auto stats = region::computeRegionStats(fn, set);
        table.addRow({w.name, support::Table::fmt(stats.avg_blocks),
                      support::Table::fmt(
                          static_cast<long long>(stats.max_blocks)),
                      support::Table::fmt(stats.avg_ops)});
        avg_bb.add(stats.avg_blocks);
        avg_ops.add(stats.avg_ops);
    }
    table.addRow({"average", support::Table::fmt(avg_bb.mean()), "-",
                  support::Table::fmt(avg_ops.mean())});
    bench::emit(table, "Table 1: treegion statistics");
    return 0;
}
