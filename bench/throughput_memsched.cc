/**
 * @file
 * Max-RSS vs makespan frontier of memory-budgeted batch compilation.
 *
 * The batch is the SPECint95 proxy sweep (every proxy under the
 * memory-hungry schemes). It is compiled once unbudgeted — plain
 * FIFO over the work-stealing pool — to measure the unconstrained
 * peak heap footprint, then again under several --mem-budget style
 * budgets expressed as fractions of that peak. For every point the
 * bench reports the measured peak live-heap growth (the max-RSS
 * proxy: this binary links the tests/alloc_guard.h interposer, so
 * every allocation is accounted), the gate's projected high water,
 * the makespan, and jobs/s.
 *
 * Acceptance (ISSUE 8): at the tightest budget the measured peak
 * must drop >= 30% below unbudgeted FIFO while the makespan inflates
 * <= 15%; the bench exits nonzero otherwise. CI's memsched job runs
 * it with --assert; the perf-smoke gate diffs jobs_per_s per config
 * against the last BENCH_memsched.json entry
 * (treegion-memsched-bench/v1, scripts/perf_compare.py).
 *
 * --calibrate instead compiles every job alone, single-threaded with
 * per-stage profiling on, and prints one CSV row per job: the shape
 * counts (ops, blocks, edges), the measured peak growth, and the
 * current sched/mem_estimate.h projection. The estimator's
 * coefficients are fit from (and pinned within 2x of) this sweep.
 *
 * Usage:
 *   throughput_memsched [--repeats N] [--threads N] [--label STR]
 *                       [--json FILE] [--assert] [--calibrate]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "alloc_guard.h"
#include "bench_common.h"
#include "sched/mem_estimate.h"
#include "support/memstat.h"
#include "support/string_utils.h"

namespace {

using namespace treegion;

/** The budget fractions of the unbudgeted peak, tightest last. */
const double kBudgetFractions[] = {0.75, 0.50, 0.35};

/** Acceptance bars at the tightest budget. */
constexpr double kMinPeakReduction = 0.30;
constexpr double kMaxMakespanInflation = 0.15;

/** Schemes that dominate compile footprint: expansion + DAG state. */
struct JobConfig
{
    const char *name;
    sched::RegionScheme scheme;
    int width;
};
const JobConfig kJobConfigs[] = {
    {"tree/8U", sched::RegionScheme::Treegion, 8},
    {"tree-td/4U", sched::RegionScheme::TreegionTailDup, 4},
    {"hyper/4U", sched::RegionScheme::Hyperblock, 4},
};

std::vector<sched::PipelineJob>
buildJobs(std::vector<bench::Workload> &workloads)
{
    std::vector<sched::PipelineJob> jobs;
    for (bench::Workload &w : workloads) {
        for (const JobConfig &config : kJobConfigs) {
            sched::PipelineJob job;
            job.fn = &w.fn();
            job.options =
                bench::makeOptions(config.scheme, config.width);
            job.label = w.name + "/" + config.name;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return std::chrono::duration<double>(clock::now() - epoch)
        .count();
}

/** One frontier point: a budget (0 = unbudgeted FIFO) measured. */
struct Point
{
    const char *name = "";
    uint64_t budget_bytes = 0;
    uint64_t peak_bytes = 0;       ///< measured live-heap growth
    uint64_t gate_high_water = 0;  ///< projected bytes (0 for FIFO)
    double makespan_s = 0.0;       ///< best of --repeats
    double jobs_per_s = 0.0;
    double checksum = 0.0;         ///< summed estimates (sanity)
};

/**
 * Compile @p jobs under @p budget_bytes (0 = unbudgeted FIFO) and
 * measure the peak heap growth of the whole run. A fresh pool per
 * measurement keeps the per-thread scheduling arenas inside the
 * window — they die with the workers — so every point pays its own
 * arena growth instead of inheriting a previous run's. Results are
 * streamed through a sink and dropped as they complete — the batch
 * driver's own mode of use — so the measured peak is the in-flight
 * compile state the budget actually governs, not the accumulated
 * output of the whole batch.
 */
Point
runPoint(const char *name,
         const std::vector<sched::PipelineJob> &jobs,
         uint64_t budget_bytes, size_t threads, size_t repeats)
{
    Point point;
    point.name = name;
    point.budget_bytes = budget_bytes;
    point.makespan_s = 1e100;
    for (size_t r = 0; r < repeats; ++r) {
        support::MemoryGate gate(budget_bytes);
        const uint64_t start_live = support::memstatResetWindow();
        const double start = nowSeconds();
        {
            support::ThreadPool pool(threads);
            sched::ParallelRunOptions run;
            run.pool = &pool;
            run.gate = &gate;
            double checksum = 0.0;
            run.sink = [&checksum](sched::PipelineJobResult &&jr) {
                checksum += jr.result.estimated_time;
            };
            sched::runPipelineParallel(jobs, run);
            const double wall = nowSeconds() - start;
            point.makespan_s = std::min(point.makespan_s, wall);
            point.checksum = checksum;
        }
        const uint64_t peak = support::memstatWindowPeakBytes();
        const uint64_t growth =
            peak > start_live ? peak - start_live : 0;
        point.peak_bytes = std::max(point.peak_bytes, growth);
        point.gate_high_water =
            std::max(point.gate_high_water, gate.highWaterBytes());
    }
    point.jobs_per_s = point.makespan_s > 0
                           ? static_cast<double>(jobs.size()) /
                                 point.makespan_s
                           : 0.0;
    return point;
}

/**
 * Compile every job alone (single thread, per-stage profiling) and
 * print one CSV row per job: shape counts, measured peak growth,
 * and the current estimator projection. The coefficient fit in
 * sched/mem_estimate.cc comes from this output.
 */
int
runCalibration(const std::vector<sched::PipelineJob> &jobs)
{
    support::memstatSetStageProfiling(true);
    std::printf("label,scheme,width,ops,blocks,edges,"
                "formation_peak,liveness_peak,schedule_peak,"
                "arena_high_water,measured_peak,estimated_peak\n");
    for (const sched::PipelineJob &job : jobs) {
        const sched::MemShape shape =
            sched::measureShape(*job.fn);
        const uint64_t estimated =
            sched::estimateJobPeakBytes(job);
        const uint64_t start_live = support::memstatResetWindow();
        const auto run = sched::runPipelineOnClone(*job.fn,
                                                   job.options);
        const uint64_t peak = support::memstatWindowPeakBytes();
        const uint64_t measured =
            peak > start_live ? peak - start_live : 0;
        std::printf(
            "%s,%s,%d,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
            "%llu\n",
            job.label.c_str(),
            sched::regionSchemeName(job.options.scheme).c_str(),
            job.options.model.issue_width,
            static_cast<unsigned long long>(shape.ops),
            static_cast<unsigned long long>(shape.blocks),
            static_cast<unsigned long long>(shape.edges),
            static_cast<unsigned long long>(
                run.result.mem.formation_peak_bytes),
            static_cast<unsigned long long>(
                run.result.mem.liveness_peak_bytes),
            static_cast<unsigned long long>(
                run.result.mem.schedule_peak_bytes),
            static_cast<unsigned long long>(
                run.result.mem.sched_arena_high_water_bytes),
            static_cast<unsigned long long>(measured),
            static_cast<unsigned long long>(estimated));
    }
    support::memstatSetStageProfiling(false);
    return 0;
}

/**
 * Render the frontier as one treegion-memsched-bench/v1 entry. The
 * schema is pinned by tests/support_test.cc (BenchSchema.*); entries
 * are appended by hand to BENCH_memsched.json and CI's perf-smoke
 * job gates jobs_per_s against the last one.
 */
std::string
entryJson(const std::string &label, size_t jobs, size_t threads,
          const std::vector<Point> &points)
{
    std::string out;
    out += "{\n";
    out += "  \"schema\": \"treegion-memsched-bench/v1\",\n";
    out += support::strprintf("  \"label\": \"%s\",\n",
                              label.c_str());
    out += support::strprintf("  \"bench_seed\": %llu,\n",
                              static_cast<unsigned long long>(
                                  bench::benchSeed()));
    out += support::strprintf("  \"jobs\": %zu,\n", jobs);
    out += support::strprintf("  \"threads\": %zu,\n", threads);
    out += "  \"configs\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        out += support::strprintf(
            "    {\"name\": \"%s\", \"budget_bytes\": %llu, "
            "\"peak_bytes\": %llu, \"gate_high_water_bytes\": %llu, "
            "\"makespan_s\": %.6g, \"jobs_per_s\": %.6g}%s\n",
            p.name, static_cast<unsigned long long>(p.budget_bytes),
            static_cast<unsigned long long>(p.peak_bytes),
            static_cast<unsigned long long>(p.gate_high_water),
            p.makespan_s, p.jobs_per_s,
            i + 1 < points.size() ? "," : "");
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t repeats = 3;
    size_t threads = 8;
    std::string label = "dev";
    std::string json_path;
    bool do_assert = false;
    bool calibrate = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--repeats") {
            repeats = static_cast<size_t>(std::atoll(value()));
        } else if (arg == "--threads") {
            threads = static_cast<size_t>(std::atoll(value()));
        } else if (arg == "--label") {
            label = value();
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--assert") {
            do_assert = true;
        } else if (arg == "--calibrate") {
            calibrate = true;
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--repeats N] [--threads N] "
                "[--label STR] [--json FILE] [--assert] "
                "[--calibrate]\n",
                argv[0]);
            return 2;
        }
    }

    auto workloads = bench::loadWorkloads();
    const auto jobs = buildJobs(workloads);
    if (calibrate)
        return runCalibration(jobs);

    std::printf("memsched frontier: %zu jobs on %zu threads, "
                "best of %zu repeats\n",
                jobs.size(), threads, repeats);
    std::printf("%-12s %12s %12s %12s %10s %10s\n", "config",
                "budget MiB", "peak MiB", "gate MiB", "makespan",
                "jobs/s");

    std::vector<Point> points;
    points.push_back(
        runPoint("fifo", jobs, 0, threads, repeats));
    const uint64_t fifo_peak = points[0].peak_bytes;
    std::vector<std::string> names;  // outlive the Points
    names.reserve(std::size(kBudgetFractions));
    for (const double fraction : kBudgetFractions) {
        const uint64_t budget = static_cast<uint64_t>(
            static_cast<double>(fifo_peak) * fraction);
        names.push_back(support::strprintf(
            "budget-%d", static_cast<int>(fraction * 100)));
        points.push_back(runPoint(names.back().c_str(), jobs,
                                  budget, threads, repeats));
    }
    for (const Point &p : points) {
        std::printf("%-12s %12.1f %12.1f %12.1f %9.3fs %10.2f\n",
                    p.name,
                    static_cast<double>(p.budget_bytes) / (1 << 20),
                    static_cast<double>(p.peak_bytes) / (1 << 20),
                    static_cast<double>(p.gate_high_water) /
                        (1 << 20),
                    p.makespan_s, p.jobs_per_s);
    }

    int exit_code = 0;
    const Point &tightest = points.back();
    const double reduction =
        fifo_peak > 0
            ? 1.0 - static_cast<double>(tightest.peak_bytes) /
                        static_cast<double>(fifo_peak)
            : 0.0;
    const double inflation =
        points[0].makespan_s > 0
            ? tightest.makespan_s / points[0].makespan_s - 1.0
            : 0.0;
    std::printf("tightest budget (%s): peak -%.0f%%, "
                "makespan %+.0f%%\n",
                tightest.name, reduction * 100, inflation * 100);
    if (do_assert) {
        if (reduction < kMinPeakReduction) {
            std::fprintf(stderr,
                         "FAIL: peak reduction %.0f%% < %.0f%%\n",
                         reduction * 100, kMinPeakReduction * 100);
            exit_code = 1;
        }
        if (inflation > kMaxMakespanInflation) {
            std::fprintf(
                stderr,
                "FAIL: makespan inflation %.0f%% > %.0f%%\n",
                inflation * 100, kMaxMakespanInflation * 100);
            exit_code = 1;
        }
    }

    if (!json_path.empty()) {
        const std::string json =
            entryJson(label, jobs.size(), threads, points);
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        out << json;
        std::printf("wrote %s\n", json_path.c_str());
    }
    return exit_code;
}
