/**
 * @file
 * Reproduces Table 4: superblock versus tail-duplicated treegion
 * (expansion limit 2.0) characteristics — region count, average
 * basic blocks per region, and average ops per region.
 *
 * Paper shape: treegions are fewer but larger for most programs
 * (more blocks and more ops per region), since they cover several
 * paths at once.
 */

#include "bench_common.h"

#include "region/formation.h"
#include "region/region_stats.h"

int
main()
{
    using namespace treegion;
    auto workloads = bench::loadWorkloads();

    support::Table table({"program", "# sb", "# tree", "avg bb sb",
                          "avg bb tree", "avg ops sb",
                          "avg ops tree"});
    for (auto &w : workloads) {
        ir::Function fsb = w.fn().clone();
        const auto sb_stats = region::computeRegionStats(
            fsb, region::formSuperblocks(fsb, {}));

        ir::Function ftd = w.fn().clone();
        region::TailDupLimits limits;
        limits.expansion_limit = 2.0;
        const auto td_stats = region::computeRegionStats(
            ftd, region::formTreegionsTailDup(ftd, limits));

        table.addRow(
            {w.name,
             support::Table::fmt(
                 static_cast<long long>(sb_stats.num_regions)),
             support::Table::fmt(
                 static_cast<long long>(td_stats.num_regions)),
             support::Table::fmt(sb_stats.avg_blocks),
             support::Table::fmt(td_stats.avg_blocks),
             support::Table::fmt(sb_stats.avg_ops),
             support::Table::fmt(td_stats.avg_ops)});
    }
    bench::emit(table,
                "Table 4: superblock vs treegion (2.0) statistics");
    return 0;
}
