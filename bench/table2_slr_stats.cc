/**
 * @file
 * Reproduces Table 2: simple linear region (SLR) statistics across
 * the SPECint95 proxies.
 *
 * Paper values for reference: avg #bb 1.20-1.44, max #bb 3-54,
 * avg #ops 8.98-12.71. The point of Tables 1+2 together: a treegion
 * hands the scheduler several times more ops (and more paths) than an
 * SLR.
 */

#include "bench_common.h"

#include "region/formation.h"
#include "region/region_stats.h"

int
main()
{
    using namespace treegion;
    auto workloads = bench::loadWorkloads();

    support::Table table(
        {"program", "avg # bb", "max # bb", "avg # ops"});
    support::Accumulator avg_bb, avg_ops;
    for (auto &w : workloads) {
        ir::Function fn = w.fn().clone();
        const auto set = region::formSlrs(fn);
        const auto stats = region::computeRegionStats(fn, set);
        table.addRow({w.name, support::Table::fmt(stats.avg_blocks),
                      support::Table::fmt(
                          static_cast<long long>(stats.max_blocks)),
                      support::Table::fmt(stats.avg_ops)});
        avg_bb.add(stats.avg_blocks);
        avg_ops.add(stats.avg_ops);
    }
    table.addRow({"average", support::Table::fmt(avg_bb.mean()), "-",
                  support::Table::fmt(avg_ops.mean())});
    bench::emit(table, "Table 2: SLR statistics");
    return 0;
}
