/**
 * @file
 * Ablation D: the cost of materializing prepare-to-branch (PBR) ops.
 * The paper's example schedules show PBRs occupying real issue slots
 * (Play-Doh branches read a branch-target register set up by a PBR);
 * its performance experiments abstract them away, as does our
 * default. This ablation quantifies the difference on treegions with
 * global weight.
 */

#include "bench_common.h"

int
main()
{
    using namespace treegion;
    using sched::Heuristic;
    using sched::RegionScheme;
    auto workloads = bench::loadWorkloads();

    for (const int width : {4, 8}) {
        support::Table table({"program", "no pbr", "with pbr", "cost"});
        support::GeoMean gm_off, gm_on;
        for (auto &w : workloads) {
            auto off = bench::makeOptions(RegionScheme::Treegion, width,
                                          Heuristic::GlobalWeight);
            const double s_off = bench::runSpeedup(w, off);
            auto on = off;
            on.sched.materialize_pbr = true;
            const double s_on = bench::runSpeedup(w, on);
            table.addRow({w.name, support::Table::fmt(s_off),
                          support::Table::fmt(s_on),
                          support::Table::fmt(s_on / s_off)});
            gm_off.add(s_off);
            gm_on.add(s_on);
        }
        table.addRow({"geomean", support::Table::fmt(gm_off.value()),
                      support::Table::fmt(gm_on.value()),
                      support::Table::fmt(gm_on.value() /
                                          gm_off.value())});
        bench::emit(table, "Ablation D (" + std::to_string(width) +
                               "U): PBR materialization cost");
    }
    return 0;
}
