/**
 * @file
 * Compile-time cost of the compiler itself (google-benchmark):
 * region formation and scheduling throughput per scheme on the gcc
 * proxy, plus the end-to-end pipeline.
 */

#include <benchmark/benchmark.h>

#include "analysis/liveness.h"
#include "region/formation.h"
#include "sched/pipeline.h"
#include "workloads/profiler.h"
#include "workloads/spec_proxy.h"

namespace {

using namespace treegion;

/** The profiled gcc proxy, built once. */
ir::Function &
gccProxy()
{
    static std::unique_ptr<ir::Module> mod = [] {
        const auto proxies = workloads::specint95Proxies();
        auto m = workloads::buildProxy(proxies[1]);
        workloads::profileFunction(m->function("main"),
                                   proxies[1].params.mem_words);
        return m;
    }();
    return mod->function("main");
}

void
BM_FormTreegions(benchmark::State &state)
{
    for (auto _ : state) {
        ir::Function fn = gccProxy().clone();
        benchmark::DoNotOptimize(region::formTreegions(fn));
    }
}
BENCHMARK(BM_FormTreegions);

void
BM_FormTreegionsTailDup(benchmark::State &state)
{
    for (auto _ : state) {
        ir::Function fn = gccProxy().clone();
        benchmark::DoNotOptimize(
            region::formTreegionsTailDup(fn, {}));
    }
}
BENCHMARK(BM_FormTreegionsTailDup);

void
BM_FormSuperblocks(benchmark::State &state)
{
    for (auto _ : state) {
        ir::Function fn = gccProxy().clone();
        benchmark::DoNotOptimize(region::formSuperblocks(fn, {}));
    }
}
BENCHMARK(BM_FormSuperblocks);

void
BM_Liveness(benchmark::State &state)
{
    ir::Function fn = gccProxy().clone();
    for (auto _ : state)
        benchmark::DoNotOptimize(analysis::Liveness(fn));
}
BENCHMARK(BM_Liveness);

void
BM_PipelineScheme(benchmark::State &state)
{
    const auto scheme = static_cast<sched::RegionScheme>(state.range(0));
    for (auto _ : state) {
        ir::Function fn = gccProxy().clone();
        sched::PipelineOptions options;
        options.scheme = scheme;
        options.model = sched::MachineModel::wide4U();
        benchmark::DoNotOptimize(sched::runPipeline(fn, options));
    }
}
BENCHMARK(BM_PipelineScheme)
    ->Arg(static_cast<int>(sched::RegionScheme::BasicBlock))
    ->Arg(static_cast<int>(sched::RegionScheme::Slr))
    ->Arg(static_cast<int>(sched::RegionScheme::Superblock))
    ->Arg(static_cast<int>(sched::RegionScheme::Treegion))
    ->Arg(static_cast<int>(sched::RegionScheme::TreegionTailDup));

void
BM_Profile20Runs(benchmark::State &state)
{
    for (auto _ : state) {
        ir::Function fn = gccProxy().clone();
        benchmark::DoNotOptimize(
            workloads::profileFunction(fn, 4096));
    }
}
BENCHMARK(BM_Profile20Runs);

} // namespace

BENCHMARK_MAIN();
