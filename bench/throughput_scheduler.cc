/**
 * @file
 * Single-thread compile-throughput bench over the SPECint95 proxies:
 * the perf anchor for the scheduling hot path (arena/SoA refactor,
 * ROADMAP item 3).
 *
 * Each configuration (scheme x width) repeatedly compiles all eight
 * profiled proxies on one thread until --min-time elapses and reports
 * compiles/s and input-ops/s. `--json FILE` emits one machine-readable
 * entry in the schema pinned by tests/support_test.cc; entries are
 * appended by hand to BENCH_scheduler.json so the perf trajectory of
 * the repo stays visible across PRs, and CI's perf-smoke job diffs a
 * fresh run against the last committed entry.
 *
 * Usage:
 *   throughput_scheduler [--min-time S] [--label STR] [--json FILE]
 *
 * The workload is seeded by TG_BENCH_SEED (default 42, see
 * bench_common.h), so before/after numbers are measured on identical
 * programs.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "support/string_utils.h"

namespace {

using namespace treegion;

/** One benchmarked pipeline configuration. */
struct BenchConfig
{
    const char *name;  ///< stable display/JSON name, e.g. "tree/4U"
    sched::RegionScheme scheme;
    int width;
};

/** The fixed configuration list; names are part of the JSON schema. */
const BenchConfig kConfigs[] = {
    {"bb/4U", sched::RegionScheme::BasicBlock, 4},
    {"slr/4U", sched::RegionScheme::Slr, 4},
    {"sb/4U", sched::RegionScheme::Superblock, 4},
    {"tree/1U", sched::RegionScheme::Treegion, 1},
    {"tree/4U", sched::RegionScheme::Treegion, 4},
    {"tree/8U", sched::RegionScheme::Treegion, 8},
    {"tree-td/4U", sched::RegionScheme::TreegionTailDup, 4},
    {"hyper/4U", sched::RegionScheme::Hyperblock, 4},
};

/** Measured result of one configuration. */
struct ConfigResult
{
    const BenchConfig *config = nullptr;
    size_t sweeps = 0;    ///< full passes over all workloads
    size_t compiles = 0;  ///< functions compiled
    double wall_s = 0.0;
    double compiles_per_s = 0.0;
    double ops_per_s = 0.0;  ///< input (pre-formation) ops per second
};

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return std::chrono::duration<double>(clock::now() - epoch).count();
}

ConfigResult
runConfig(std::vector<bench::Workload> &workloads,
          const BenchConfig &config, size_t ops_per_sweep,
          double min_time_s)
{
    const sched::PipelineOptions options =
        bench::makeOptions(config.scheme, config.width);

    ConfigResult r;
    r.config = &config;
    const double start = nowSeconds();
    do {
        for (bench::Workload &w : workloads) {
            auto run = sched::runPipelineOnClone(w.fn(), options);
            // Keep the optimizer honest: consume the estimate.
            if (run.result.estimated_time < 0.0)
                std::abort();
            ++r.compiles;
        }
        ++r.sweeps;
        r.wall_s = nowSeconds() - start;
    } while (r.wall_s < min_time_s);
    r.compiles_per_s = static_cast<double>(r.compiles) / r.wall_s;
    r.ops_per_s =
        static_cast<double>(ops_per_sweep * r.sweeps) / r.wall_s;
    return r;
}

/**
 * Render one bench entry as JSON. The schema is pinned by
 * tests/support_test.cc (BenchSchema.*): changing a key, a unit, or a
 * config name needs a schema version bump there and in
 * BENCH_scheduler.json.
 */
std::string
entryJson(const std::string &label, size_t functions,
          size_t ops_per_sweep, const std::vector<ConfigResult> &results)
{
    std::string out;
    out += "{\n";
    out += "  \"schema\": \"treegion-sched-bench/v1\",\n";
    out += support::strprintf("  \"label\": \"%s\",\n", label.c_str());
    out += support::strprintf("  \"bench_seed\": %llu,\n",
                              static_cast<unsigned long long>(
                                  bench::benchSeed()));
    out += "  \"threads\": 1,\n";
    out += support::strprintf(
        "  \"workload\": {\"name\": \"specint95-proxies\", "
        "\"functions\": %zu, \"ops_per_sweep\": %zu},\n",
        functions, ops_per_sweep);
    out += "  \"configs\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const ConfigResult &r = results[i];
        out += support::strprintf(
            "    {\"name\": \"%s\", \"sweeps\": %zu, "
            "\"compiles\": %zu, \"wall_s\": %.6g, "
            "\"compiles_per_s\": %.6g, \"ops_per_s\": %.6g}%s\n",
            r.config->name, r.sweeps, r.compiles, r.wall_s,
            r.compiles_per_s, r.ops_per_s,
            i + 1 < results.size() ? "," : "");
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    double min_time_s = 0.3;
    std::string label = "dev";
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--min-time") {
            min_time_s = std::atof(value());
        } else if (arg == "--label") {
            label = value();
        } else if (arg == "--json") {
            json_path = value();
        } else {
            std::fprintf(stderr,
                         "usage: %s [--min-time S] [--label STR] "
                         "[--json FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    auto workloads = bench::loadWorkloads();
    size_t ops_per_sweep = 0;
    for (bench::Workload &w : workloads)
        ops_per_sweep += w.fn().totalOps();

    std::vector<ConfigResult> results;
    std::printf("%-12s %10s %10s %12s %14s\n", "config", "compiles",
                "wall_s", "compiles/s", "ops/s");
    for (const BenchConfig &config : kConfigs) {
        ConfigResult r =
            runConfig(workloads, config, ops_per_sweep, min_time_s);
        std::printf("%-12s %10zu %10.3f %12.1f %14.0f\n", config.name,
                    r.compiles, r.wall_s, r.compiles_per_s, r.ops_per_s);
        results.push_back(r);
    }

    if (!json_path.empty()) {
        const std::string json = entryJson(label, workloads.size(),
                                           ops_per_sweep, results);
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
        out << json;
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
