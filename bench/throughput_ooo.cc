/**
 * @file
 * Simulation-throughput bench and in-order vs out-of-order study for
 * the dual execution backends (ROADMAP item 5, DESIGN.md §15).
 *
 * Default mode measures simulator throughput: every SPECint95 proxy
 * is compiled once (tree/8U, global weight), then each backend
 * configuration — the in-order VLIW reference plus every named OoO
 * machine — replays the whole scheduled suite over a family of input
 * images until --min-time elapses. A *cell* is one complete simulated
 * execution of one scheduled proxy on one input; the bench reports
 * cells/s and simulated Mcycles/s per configuration. `--json FILE`
 * emits one treegion-ooo-bench/v1 entry (schema pinned by
 * tests/support_test.cc, OooBenchSchema.*); entries are appended by
 * hand to BENCH_ooo.json and CI's perf-smoke job gates cells_per_s
 * against the last one via scripts/perf_compare.py.
 *
 * `--grid` instead prints the EXPERIMENTS.md study: for every
 * (scheme x heuristic) cell, total simulated cycles over the proxy
 * suite on the in-order machine at 4U and 8U versus both OoO configs
 * executing the 8U schedule (the widest static form, so the dynamic
 * front end sees the most exposed parallelism per row), with retired
 * IPC and the ooo-wide/in-order-8U cycle ratio. Output is a markdown
 * table ready to paste into EXPERIMENTS.md.
 *
 * Usage:
 *   throughput_ooo [--min-time S] [--label STR] [--json FILE] [--grid]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ooo/ooo_sim.h"
#include "support/string_utils.h"
#include "vliw/vliw_sim.h"

namespace {

using namespace treegion;

/** Input images simulated per scheduled proxy (cells per sweep). */
constexpr int kInputsPerProxy = 3;

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return std::chrono::duration<double>(clock::now() - epoch).count();
}

/** One compiled proxy ready to simulate. */
struct Compiled
{
    std::string name;
    ir::Function fn;
    sched::FunctionSchedule schedule;
    size_t mem_words = 0;
};

std::vector<Compiled>
compileSuite(std::vector<bench::Workload> &workloads,
             const sched::PipelineOptions &options)
{
    std::vector<Compiled> suite;
    for (bench::Workload &w : workloads) {
        auto run = sched::runPipelineOnClone(w.fn(), options);
        Compiled c{w.name, std::move(run.fn),
                   std::move(run.result.schedule),
                   w.mod->memWords()};
        suite.push_back(std::move(c));
    }
    return suite;
}

/** Measured throughput of one backend configuration. */
struct ConfigResult
{
    std::string name;
    size_t cells = 0;
    double wall_s = 0.0;
    double cells_per_s = 0.0;
    double mcycles_per_s = 0.0;  ///< simulated megacycles per second
};

/**
 * Replay the scheduled suite under one backend until @p min_time_s
 * elapses. @p ooo selects the OoO config; null means the in-order
 * VLIW reference.
 */
ConfigResult
runBackend(const std::string &name, std::vector<Compiled> &suite,
           const ooo::OooConfig *ooo, double min_time_s)
{
    ConfigResult r;
    r.name = name;
    uint64_t sim_cycles = 0;
    const double start = nowSeconds();
    do {
        for (Compiled &c : suite) {
            for (int i = 0; i < kInputsPerProxy; ++i) {
                auto mem = workloads::makeInputMemory(
                    c.mem_words, bench::benchSeed() + i, 100);
                uint64_t cycles = 0;
                bool completed = false;
                if (ooo) {
                    const auto run = ooo::runOutOfOrder(
                        c.fn, c.schedule, std::move(mem), *ooo);
                    cycles = run.arch.cycles;
                    completed = run.arch.completed;
                } else {
                    const auto run = vliw::runScheduled(
                        c.fn, c.schedule, std::move(mem));
                    cycles = run.cycles;
                    completed = run.completed;
                }
                if (!completed) {
                    std::fprintf(stderr,
                                 "FATAL: %s hit its cycle limit on "
                                 "%s\n",
                                 name.c_str(), c.name.c_str());
                    std::exit(1);
                }
                sim_cycles += cycles;
                ++r.cells;
            }
        }
        r.wall_s = nowSeconds() - start;
    } while (r.wall_s < min_time_s);
    r.cells_per_s = static_cast<double>(r.cells) / r.wall_s;
    r.mcycles_per_s =
        static_cast<double>(sim_cycles) / r.wall_s / 1e6;
    return r;
}

/** Render one treegion-ooo-bench/v1 entry. */
std::string
entryJson(const std::string &label,
          const std::vector<ConfigResult> &results)
{
    std::string out;
    out += "{\n";
    out += "  \"schema\": \"treegion-ooo-bench/v1\",\n";
    out += support::strprintf("  \"label\": \"%s\",\n",
                              label.c_str());
    out += support::strprintf("  \"bench_seed\": %llu,\n",
                              static_cast<unsigned long long>(
                                  bench::benchSeed()));
    out += "  \"configs\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const ConfigResult &r = results[i];
        out += support::strprintf(
            "    {\"name\": \"%s\", \"cells\": %zu, "
            "\"wall_s\": %.6g, \"cells_per_s\": %.6g, "
            "\"mcycles_per_s\": %.6g}%s\n",
            r.name.c_str(), r.cells, r.wall_s, r.cells_per_s,
            r.mcycles_per_s, i + 1 < results.size() ? "," : "");
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

/** Cycle/IPC totals of one backend over the suite (--grid). */
struct GridCell
{
    uint64_t cycles = 0;
    uint64_t retired = 0;

    double ipc() const
    {
        return cycles ? static_cast<double>(retired) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

GridCell
simulateSuite(std::vector<Compiled> &suite, const ooo::OooConfig *ooo)
{
    GridCell cell;
    for (Compiled &c : suite) {
        auto mem = workloads::makeInputMemory(c.mem_words,
                                              bench::benchSeed(), 100);
        if (ooo) {
            const auto run = ooo::runOutOfOrder(c.fn, c.schedule,
                                                std::move(mem), *ooo);
            cell.cycles += run.arch.cycles;
            cell.retired += run.stats.retired;
        } else {
            const auto run =
                vliw::runScheduled(c.fn, c.schedule, std::move(mem));
            cell.cycles += run.cycles;
            cell.retired += run.ops_executed;
        }
    }
    return cell;
}

/**
 * The EXPERIMENTS.md study: every (scheme x heuristic), in-order
 * 4U/8U vs both OoO configs on the 8U schedule. Markdown to stdout.
 */
int
runGrid(std::vector<bench::Workload> &workloads)
{
    const sched::RegionScheme schemes[] = {
        sched::RegionScheme::BasicBlock,
        sched::RegionScheme::Slr,
        sched::RegionScheme::Superblock,
        sched::RegionScheme::Treegion,
        sched::RegionScheme::TreegionTailDup,
        sched::RegionScheme::Hyperblock,
    };
    std::printf("| scheme | heuristic | 4U cyc | 8U cyc | "
                "ooo-small cyc (IPC) | ooo-wide cyc (IPC) | "
                "wide/8U |\n");
    std::printf("|---|---|---|---|---|---|---|\n");
    for (const sched::RegionScheme scheme : schemes) {
        for (const sched::Heuristic heuristic :
             sched::kAllHeuristics) {
            auto suite4 = compileSuite(
                workloads, bench::makeOptions(scheme, 4, heuristic));
            auto suite8 = compileSuite(
                workloads, bench::makeOptions(scheme, 8, heuristic));
            const GridCell in4 = simulateSuite(suite4, nullptr);
            const GridCell in8 = simulateSuite(suite8, nullptr);
            const ooo::OooConfig small = ooo::oooSmall();
            const ooo::OooConfig wide = ooo::oooWide();
            const GridCell os = simulateSuite(suite8, &small);
            const GridCell ow = simulateSuite(suite8, &wide);
            std::printf(
                "| %s | %s | %llu | %llu | %llu (%.2f) | %llu "
                "(%.2f) | %.2f |\n",
                sched::regionSchemeName(scheme).c_str(),
                sched::heuristicName(heuristic).c_str(),
                static_cast<unsigned long long>(in4.cycles),
                static_cast<unsigned long long>(in8.cycles),
                static_cast<unsigned long long>(os.cycles), os.ipc(),
                static_cast<unsigned long long>(ow.cycles), ow.ipc(),
                in8.cycles ? static_cast<double>(ow.cycles) /
                                 static_cast<double>(in8.cycles)
                           : 0.0);
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    double min_time_s = 1.0;
    std::string label = "dev";
    std::string json_path;
    bool grid = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--min-time") {
            min_time_s = std::atof(value());
        } else if (arg == "--label") {
            label = value();
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--grid") {
            grid = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--min-time S] [--label STR] "
                         "[--json FILE] [--grid]\n",
                         argv[0]);
            return 2;
        }
    }

    auto workloads = bench::loadWorkloads();
    if (grid)
        return runGrid(workloads);

    auto suite = compileSuite(
        workloads,
        bench::makeOptions(sched::RegionScheme::Treegion, 8));
    std::printf("ooo sim throughput: %zu proxies x %d inputs per "
                "sweep, min-time %.1fs per config\n",
                suite.size(), kInputsPerProxy, min_time_s);
    std::printf("%-12s %10s %10s %12s %14s\n", "config", "cells",
                "wall", "cells/s", "Mcycles/s");

    std::vector<ConfigResult> results;
    results.push_back(
        runBackend("vliw", suite, nullptr, min_time_s));
    for (const ooo::OooConfig &config : ooo::oooConfigs()) {
        results.push_back(
            runBackend(config.name, suite, &config, min_time_s));
    }
    for (const ConfigResult &r : results) {
        std::printf("%-12s %10zu %9.3fs %12.1f %14.2f\n",
                    r.name.c_str(), r.cells, r.wall_s, r.cells_per_s,
                    r.mcycles_per_s);
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        out << entryJson(label, results);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
