/**
 * @file
 * Ablation B — the paper's first future-work item: how do the
 * heuristics hold up when the profile the scheduler trained on does
 * not match the inputs the program actually runs?
 *
 * Method: schedule treegions with each heuristic using the training
 * profile (input family A), then re-price every region exit with the
 * profile of a different input family B. The ratio between the
 * B-priced time of the A-trained schedule and the B-priced time of a
 * B-trained schedule measures the heuristic's robustness (1.00 =
 * fully robust). Dependence height ignores weights entirely, so it is
 * insensitive by construction; the weight-driven heuristics may
 * degrade.
 */

#include "bench_common.h"

int
main()
{
    using namespace treegion;
    using sched::Heuristic;
    using sched::RegionScheme;

    constexpr uint64_t kTrainSeed = 42;
    // The reference input family draws data from a different range,
    // shifting every data-dependent branch's probability - a much
    // stronger perturbation than resampling the same distribution.
    workloads::ProfileOptions reference_profile;
    reference_profile.input_seed = 987654;
    reference_profile.data_max = 55;
    auto workloads = bench::loadWorkloads(kTrainSeed);

    support::Table table({"program", "dep-height", "exit-count",
                          "global-weight", "weighted-count"});
    support::GeoMean gm[4];
    for (auto &w : workloads) {
        const size_t mem_words = w.mod->memWords();
        std::vector<std::string> row = {w.name};
        int idx = 0;
        for (const Heuristic h : sched::kAllHeuristics) {
            // Schedule with the training profile.
            auto options =
                bench::makeOptions(RegionScheme::Treegion, 4, h);
            sched::PipelineResult trained;
            ir::Function fn_trained("t");
            bench::runSpeedup(w, options, &trained, &fn_trained);
            const double mismatched =
                bench::reweightedTime(fn_trained, trained.schedule,
                                      mem_words, reference_profile);

            // Oracle: schedule with the reference profile directly.
            ir::Function fn_oracle = w.fn().clone();
            workloads::profileFunction(fn_oracle, mem_words,
                                       reference_profile);
            const auto oracle = sched::runPipeline(fn_oracle, options);

            const double degradation =
                mismatched / oracle.estimated_time;
            row.push_back(support::Table::fmt(degradation, 3));
            gm[idx++].add(degradation);
        }
        table.addRow(std::move(row));
    }
    table.addRow({"geomean", support::Table::fmt(gm[0].value(), 3),
                  support::Table::fmt(gm[1].value(), 3),
                  support::Table::fmt(gm[2].value(), 3),
                  support::Table::fmt(gm[3].value(), 3)});
    bench::emit(table,
                "Ablation B: schedule priced under a mismatched "
                "profile (time vs oracle, lower is better)");
    return 0;
}
