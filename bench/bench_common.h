/**
 * @file
 * Shared harness for the table/figure reproduction benches: builds
 * and profiles the SPECint95 proxies, runs pipeline configurations,
 * and computes the paper's speedup metric (vs. basic-block scheduling
 * on the single-issue machine).
 */

#ifndef TREEGION_BENCH_BENCH_COMMON_H
#define TREEGION_BENCH_BENCH_COMMON_H

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "sched/pipeline.h"
#include "support/stats.h"
#include "support/table.h"
#include "workloads/profiler.h"
#include "workloads/spec_proxy.h"

namespace treegion::bench {

/**
 * The benches' RNG seed. Fixed (42) so every bench workload is
 * reproducible run-to-run — in particular across the before/after
 * halves of a perf measurement — and overridable via the
 * TG_BENCH_SEED environment variable for sensitivity studies.
 */
inline uint64_t
benchSeed()
{
    if (const char *env = std::getenv("TG_BENCH_SEED")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end && *end == '\0')
            return v;
        std::cerr << "warning: ignoring malformed TG_BENCH_SEED '"
                  << env << "'\n";
    }
    return 42;
}

/** One profiled proxy benchmark ready for experiments. */
struct Workload
{
    std::string name;
    std::unique_ptr<ir::Module> mod;
    double baseline_time = 0.0;  ///< BB scheduling on 1U

    ir::Function &fn() { return mod->function("main"); }
};

/** Build and profile all eight proxies with the training inputs. */
inline std::vector<Workload>
loadWorkloads(uint64_t input_seed = benchSeed())
{
    std::vector<Workload> workloads;
    for (const auto &spec : workloads::specint95Proxies()) {
        Workload w;
        w.name = spec.name;
        w.mod = workloads::buildProxy(spec);
        workloads::ProfileOptions options;
        options.input_seed = input_seed;
        workloads::profileFunction(w.fn(), spec.params.mem_words,
                                   options);
        w.baseline_time = sched::estimateBaselineTime(w.fn());
        workloads.push_back(std::move(w));
    }
    return workloads;
}

/**
 * Run one configuration on a clone of @p w and return the speedup
 * over the 1U basic-block baseline (the paper's metric).
 */
inline double
runSpeedup(Workload &w, const sched::PipelineOptions &options,
           sched::PipelineResult *result_out = nullptr,
           ir::Function *fn_out = nullptr)
{
    ir::Function fn = w.fn().clone();
    auto result = sched::runPipeline(fn, options);
    const double speedup = w.baseline_time / result.estimated_time;
    if (result_out)
        *result_out = std::move(result);
    if (fn_out)
        *fn_out = std::move(fn);
    return speedup;
}

/** Shorthand option constructors. */
inline sched::PipelineOptions
makeOptions(sched::RegionScheme scheme, int width,
            sched::Heuristic heuristic = sched::Heuristic::GlobalWeight)
{
    sched::PipelineOptions options;
    options.scheme = scheme;
    options.model = sched::MachineModel::custom(width);
    options.sched.heuristic = heuristic;
    return options;
}

/**
 * Re-evaluate a schedule under a different input family's profile:
 * re-profiles the transformed function with @p input_seed and prices
 * every exit with the fresh edge weights (the paper's "profile
 * variation" future-work experiment).
 */
inline double
reweightedTime(ir::Function &transformed,
               const sched::FunctionSchedule &schedule, size_t mem_words,
               const workloads::ProfileOptions &options)
{
    workloads::profileFunction(transformed, mem_words, options);
    double time = 0.0;
    for (const auto &[root, rs] : schedule.regions) {
        for (const sched::ScheduledExit &exit : rs.exits) {
            double w = 0.0;
            if (exit.is_ret) {
                w = transformed.block(exit.from).weight();
            } else {
                const auto &weights =
                    transformed.block(exit.from).edgeWeights();
                if (exit.target_slot < weights.size())
                    w = weights[exit.target_slot];
            }
            time += w * static_cast<double>(exit.cycle + 1);
        }
    }
    return time;
}

/** Print a table plus a blank line. */
inline void
emit(const support::Table &table, const std::string &title)
{
    std::cout << "== " << title << "\n";
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace treegion::bench

#endif // TREEGION_BENCH_BENCH_COMMON_H
