/**
 * @file
 * Reproduces Figure 13: global-weight treegion scheduling with tail
 * duplication (expansion limits 2.0 and 3.0, merge limit 4, path
 * limit 20, dominator parallelism on) versus superblock scheduling,
 * on the 4U and 8U machines.
 *
 * Paper shape: tail-duplicated treegions beat superblocks — by ~15%
 * at expansion 2.0 and ~20% at 3.0 — because the treegion completes
 * the off-trace paths inside the region that the superblock must
 * re-enter separately.
 */

#include "bench_common.h"

int
main()
{
    using namespace treegion;
    using sched::Heuristic;
    using sched::RegionScheme;
    auto workloads = bench::loadWorkloads();

    for (const int width : {4, 8}) {
        support::Table table({"program", "sb", "tree (2.0)",
                              "tree (3.0)", "t2/sb", "t3/sb"});
        support::GeoMean gm_sb, gm_t2, gm_t3;
        for (auto &w : workloads) {
            const double sb = bench::runSpeedup(
                w, bench::makeOptions(RegionScheme::Superblock, width,
                                      Heuristic::GlobalWeight));

            auto opt2 = bench::makeOptions(
                RegionScheme::TreegionTailDup, width,
                Heuristic::GlobalWeight);
            opt2.tail_dup.expansion_limit = 2.0;
            const double t2 = bench::runSpeedup(w, opt2);

            auto opt3 = opt2;
            opt3.tail_dup.expansion_limit = 3.0;
            const double t3 = bench::runSpeedup(w, opt3);

            table.addRow({w.name, support::Table::fmt(sb),
                          support::Table::fmt(t2),
                          support::Table::fmt(t3),
                          support::Table::fmt(t2 / sb),
                          support::Table::fmt(t3 / sb)});
            gm_sb.add(sb);
            gm_t2.add(t2);
            gm_t3.add(t3);
        }
        table.addRow(
            {"geomean", support::Table::fmt(gm_sb.value()),
             support::Table::fmt(gm_t2.value()),
             support::Table::fmt(gm_t3.value()),
             support::Table::fmt(gm_t2.value() / gm_sb.value()),
             support::Table::fmt(gm_t3.value() / gm_sb.value())});
        bench::emit(table,
                    "Figure 13 (" + std::to_string(width) +
                        "U): tail-duplicated treegions vs superblocks");
    }
    return 0;
}
