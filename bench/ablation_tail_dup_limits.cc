/**
 * @file
 * Ablation C: sweep the three Fig. 11 tail-duplication limits — the
 * code expansion limit, the path-count limit, and the sapling
 * merge-count limit — one at a time around the paper's operating
 * point (2.0 / 20 / 4), reporting geomean speedup on the 4U machine
 * and the resulting code expansion.
 */

#include "bench_common.h"

int
main()
{
    using namespace treegion;
    using sched::Heuristic;
    using sched::RegionScheme;
    auto workloads = bench::loadWorkloads();

    auto sweep = [&](const std::string &title,
                     const std::vector<region::TailDupLimits> &points,
                     auto label) {
        support::Table table({"setting", "geomean speedup",
                              "avg expansion"});
        for (const auto &limits : points) {
            support::GeoMean gm;
            support::Accumulator expansion;
            for (auto &w : workloads) {
                auto options =
                    bench::makeOptions(RegionScheme::TreegionTailDup, 4,
                                       Heuristic::GlobalWeight);
                options.tail_dup = limits;
                sched::PipelineResult result;
                gm.add(bench::runSpeedup(w, options, &result));
                expansion.add(result.code_expansion);
            }
            table.addRow({label(limits),
                          support::Table::fmt(gm.value()),
                          support::Table::fmt(expansion.mean())});
        }
        bench::emit(table, title);
    };

    {
        std::vector<region::TailDupLimits> points;
        for (const double x : {1.0, 1.5, 2.0, 3.0, 4.0, 6.0}) {
            region::TailDupLimits limits;
            limits.expansion_limit = x;
            points.push_back(limits);
        }
        sweep("Ablation C1: code expansion limit (paths 20, merge 4)",
              points, [](const region::TailDupLimits &l) {
                  return support::Table::fmt(l.expansion_limit, 1);
              });
    }
    {
        std::vector<region::TailDupLimits> points;
        for (const size_t paths : {1u, 2u, 5u, 10u, 20u, 50u}) {
            region::TailDupLimits limits;
            limits.path_limit = paths;
            points.push_back(limits);
        }
        sweep("Ablation C2: path count limit (expansion 2.0, merge 4)",
              points, [](const region::TailDupLimits &l) {
                  return support::Table::fmt(
                      static_cast<long long>(l.path_limit));
              });
    }
    {
        std::vector<region::TailDupLimits> points;
        for (const size_t merge : {1u, 2u, 4u, 8u, 16u}) {
            region::TailDupLimits limits;
            limits.merge_limit = merge;
            points.push_back(limits);
        }
        sweep("Ablation C3: merge count limit (expansion 2.0, paths 20)",
              points, [](const region::TailDupLimits &l) {
                  return support::Table::fmt(
                      static_cast<long long>(l.merge_limit));
              });
    }
    return 0;
}
