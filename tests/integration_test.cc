/**
 * @file
 * End-to-end integration tests: generate a program, profile it, run
 * every region scheme through the pipeline on multiple machine
 * models, and check the schedules against the sequential semantics.
 */

#include <gtest/gtest.h>

#include "analysis/profile.h"
#include "ir/verifier.h"
#include "sched/pipeline.h"
#include "vliw/equivalence.h"
#include "workloads/profiler.h"
#include "workloads/spec_proxy.h"

namespace treegion {
namespace {

using sched::MachineModel;
using sched::PipelineOptions;
using sched::RegionScheme;

workloads::GenParams
smallParams(uint64_t seed)
{
    workloads::GenParams p;
    p.seed = seed;
    p.top_units = 6;
    p.max_depth = 2;
    p.mem_words = 1024;
    return p;
}

TEST(Integration, GeneratedProgramVerifies)
{
    auto mod = workloads::generateProgram("prog", smallParams(7));
    ir::Function &fn = mod->function("main");
    const auto problems =
        ir::verifyFunction(fn, ir::VerifyLevel::Schedulable);
    for (const auto &p : problems)
        ADD_FAILURE() << p;
}

TEST(Integration, ProfileIsFlowConserving)
{
    auto mod = workloads::generateProgram("prog", smallParams(11));
    ir::Function &fn = mod->function("main");
    const auto summary = workloads::profileFunction(fn, 1024);
    EXPECT_EQ(summary.completed_runs, 20);
    const auto problems = analysis::checkProfileConsistency(fn);
    for (const auto &p : problems)
        ADD_FAILURE() << p;
}

class SchemeIntegration
    : public ::testing::TestWithParam<std::tuple<RegionScheme, int>>
{
};

TEST_P(SchemeIntegration, SchedulesMatchSequentialSemantics)
{
    const auto [scheme, width] = GetParam();
    auto mod = workloads::generateProgram("prog", smallParams(23));
    ir::Function &original = mod->function("main");
    workloads::profileFunction(original, 1024);

    ir::Function transformed = original.clone();
    PipelineOptions options;
    options.scheme = scheme;
    options.model = MachineModel::custom(width);
    const auto result = sched::runPipeline(transformed, options);

    // Partition invariant.
    ir::Function &check_fn = transformed;
    const auto region_problems = result.regions.validate(check_fn);
    for (const auto &p : region_problems)
        ADD_FAILURE() << p;

    EXPECT_GT(result.estimated_time, 0.0);

    // The schedule must compute what the original program computes.
    for (uint64_t input = 0; input < 5; ++input) {
        auto memory = workloads::makeInputMemory(1024, 1000 + input, 100);
        const auto report = vliw::checkEquivalence(
            original, transformed, result.schedule, memory);
        EXPECT_FALSE(report.incomplete) << report.detail;
        EXPECT_TRUE(report.ok)
            << "scheme=" << sched::regionSchemeName(scheme)
            << " width=" << width << " input=" << input << ": "
            << report.detail;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeIntegration,
    ::testing::Combine(
        ::testing::Values(RegionScheme::BasicBlock, RegionScheme::Slr,
                          RegionScheme::Superblock, RegionScheme::Treegion,
                          RegionScheme::TreegionTailDup,
                          RegionScheme::Hyperblock),
        ::testing::Values(1, 4, 8)));

TEST(Integration, ProxiesBuildAndVerify)
{
    for (const auto &spec : workloads::specint95Proxies()) {
        auto mod = workloads::buildProxy(spec);
        ir::Function &fn = mod->function("main");
        const auto problems =
            ir::verifyFunction(fn, ir::VerifyLevel::Schedulable);
        EXPECT_TRUE(problems.empty())
            << spec.name << ": " << problems.front();
    }
}

} // namespace
} // namespace treegion
