/**
 * @file
 * The paper's worked example (Figures 1, 4, 5): the CFG whose topmost
 * treegion contains bb1, bb2, bb3, bb4 and bb8, with path weights
 * 35 / 25 / 40. The paper finds the treegion schedule (500 estimated
 * cycles) beats the superblock schedule (525) on a 4-issue machine
 * because the treegion speculates both sides of the diamond.
 *
 * We assert the qualitative facts: both schedules are semantically
 * correct, and treegion scheduling's estimate is at least as good as
 * the superblock's on this CFG.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/module.h"
#include "sched/pipeline.h"
#include "vliw/equivalence.h"

namespace treegion {
namespace {

using ir::BlockId;
using ir::Builder;
using ir::CmpKind;
using ir::Function;
using ir::Opcode;
using ir::Reg;

struct PaperExample
{
    ir::Module mod{"paper"};
    Function &fn;
    BlockId bb1, bb2, bb3, bb4, bb5, bb8, bb9;

    PaperExample() : fn(mod.createFunction("main"))
    {
        mod.setMemWords(64);
        Builder bu(fn);
        bb1 = bu.newBlock();
        bb2 = bu.newBlock();
        bb3 = bu.newBlock();
        bb4 = bu.newBlock();
        bb5 = bu.newBlock();
        bb8 = bu.newBlock();
        bb9 = bu.newBlock();
        fn.setEntry(bb1);

        // bb1: r1 = LD(A); r2 = LD(B); r3 = r1 + r2;
        //      if (r1 > r2) goto bb8 else bb2
        bu.setInsertPoint(bb1);
        const Reg base = bu.movi(0);
        const Reg r1 = bu.load(base, 0);
        const Reg r2 = bu.load(base, 1);
        const Reg r3 = bu.binary(Opcode::ADD, Builder::R(r1),
                                 Builder::R(r2));
        bu.condBr(CmpKind::GT, Builder::R(r1), Builder::R(r2), bb8,
                  bb2);

        // bb2: r4 = 1; if (r3 < 100) goto bb3 else bb4
        bu.setInsertPoint(bb2);
        const Reg r4 = bu.movi(1);
        bu.condBr(CmpKind::LT, Builder::R(r3), Builder::I(100), bb3,
                  bb4);

        // bb3: r5 = 2; r6 = 5 (redefines nothing live elsewhere)
        bu.setInsertPoint(bb3);
        const Reg r5 = bu.movi(2);
        bu.store(base, 8, Builder::R(r5));
        bu.store(base, 9, Builder::R(r4));
        bu.bru(bb5);

        // bb4: r4 = 3; r5 = 4 (conflicting defs -> renaming)
        bu.setInsertPoint(bb4);
        fn.appendOp(bb4, ir::makeMovi(r4, 3));
        fn.appendOp(bb4, ir::makeMovi(r5, 4));
        bu.store(base, 8, Builder::R(r5));
        bu.store(base, 9, Builder::R(r4));
        bu.bru(bb5);

        // bb5: merge; uses r4/r5.
        bu.setInsertPoint(bb5);
        const Reg sum = bu.binary(Opcode::ADD, Builder::R(r4),
                                  Builder::R(r5));
        bu.store(base, 10, Builder::R(sum));
        bu.bru(bb9);

        // bb8: r6 = 5
        bu.setInsertPoint(bb8);
        const Reg r6 = bu.movi(5);
        bu.store(base, 10, Builder::R(r6));
        bu.bru(bb9);

        // bb9: return the merged value.
        bu.setInsertPoint(bb9);
        const Reg out = bu.load(base, 10);
        bu.ret(Builder::R(out));

        // The paper's profile: 35 via bb8, 25 via bb4, 40 via bb3.
        fn.block(bb1).setWeight(100);
        fn.block(bb1).edgeWeights() = {35, 65};
        fn.block(bb2).setWeight(65);
        fn.block(bb2).edgeWeights() = {40, 25};
        fn.block(bb3).setWeight(40);
        fn.block(bb3).edgeWeights() = {40};
        fn.block(bb4).setWeight(25);
        fn.block(bb4).edgeWeights() = {25};
        fn.block(bb5).setWeight(65);
        fn.block(bb5).edgeWeights() = {65};
        fn.block(bb8).setWeight(35);
        fn.block(bb8).edgeWeights() = {35};
        fn.block(bb9).setWeight(100);
    }
};

double
runScheme(PaperExample &ex, sched::RegionScheme scheme,
          sched::FunctionSchedule *schedule_out = nullptr,
          ir::Function *transformed_out = nullptr)
{
    ir::Function transformed = ex.fn.clone();
    sched::PipelineOptions options;
    options.scheme = scheme;
    options.model = sched::MachineModel::wide4U();
    options.sched.heuristic = sched::Heuristic::GlobalWeight;
    auto result = sched::runPipeline(transformed, options);
    if (schedule_out)
        *schedule_out = std::move(result.schedule);
    if (transformed_out)
        *transformed_out = std::move(transformed);
    return result.estimated_time;
}

TEST(PaperExample, TreegionsWinTheirFairComparisons)
{
    // The paper's two claims on this CFG, compared like for like:
    // without tail duplication, treegions beat SLRs; with tail
    // duplication, treegions beat superblocks (the 500-vs-525 gap of
    // Figs. 4/5); everything beats basic blocks.
    PaperExample ex;
    const double slr = runScheme(ex, sched::RegionScheme::Slr);
    const double tree = runScheme(ex, sched::RegionScheme::Treegion);
    const double sb = runScheme(ex, sched::RegionScheme::Superblock);
    const double td =
        runScheme(ex, sched::RegionScheme::TreegionTailDup);
    const double bb = runScheme(ex, sched::RegionScheme::BasicBlock);
    EXPECT_LT(tree, slr);
    EXPECT_LT(td, sb);
    EXPECT_LT(tree, bb);
    EXPECT_LT(sb, bb);
}

TEST(PaperExample, RenamingResolvesSiblingConflicts)
{
    // bb3 and bb4 write the same architectural registers (r4/r5):
    // the treegion schedule must rename and still produce correct
    // results on every path.
    PaperExample ex;
    sched::FunctionSchedule schedule;
    ir::Function transformed("t");
    runScheme(ex, sched::RegionScheme::Treegion, &schedule,
              &transformed);

    struct Case
    {
        int64_t a, b;
        int64_t expect;
    };
    // Path bb8: a > b -> out = 5.
    // Path bb3: a <= b, a+b < 100 -> out = 1 + 2 = 3.
    // Path bb4: a <= b, a+b >= 100 -> out = 3 + 4 = 7.
    const Case cases[] = {{9, 3, 5}, {2, 3, 3}, {60, 60, 7}};
    for (const Case &c : cases) {
        std::vector<int64_t> mem(64, 0);
        mem[0] = c.a;
        mem[1] = c.b;
        const auto report =
            vliw::checkEquivalence(ex.fn, transformed, schedule, mem);
        EXPECT_TRUE(report.ok) << report.detail;
        const auto run = vliw::runScheduled(transformed, schedule, mem);
        EXPECT_EQ(run.ret_value, c.expect)
            << "a=" << c.a << " b=" << c.b;
    }
}

TEST(PaperExample, AllSchemesAllHeuristicsCorrect)
{
    PaperExample ex;
    for (const auto scheme :
         {sched::RegionScheme::BasicBlock, sched::RegionScheme::Slr,
          sched::RegionScheme::Superblock, sched::RegionScheme::Treegion,
          sched::RegionScheme::TreegionTailDup}) {
        for (const auto heuristic : sched::kAllHeuristics) {
            ir::Function transformed = ex.fn.clone();
            sched::PipelineOptions options;
            options.scheme = scheme;
            options.model = sched::MachineModel::wide4U();
            options.sched.heuristic = heuristic;
            const auto result = sched::runPipeline(transformed, options);
            for (int64_t a : {1, 80}) {
                for (int64_t b : {2, 70}) {
                    std::vector<int64_t> mem(64, 0);
                    mem[0] = a;
                    mem[1] = b;
                    const auto report = vliw::checkEquivalence(
                        ex.fn, transformed, result.schedule, mem);
                    EXPECT_TRUE(report.ok)
                        << sched::regionSchemeName(scheme) << "/"
                        << sched::heuristicName(heuristic) << ": "
                        << report.detail;
                }
            }
        }
    }
}

TEST(PaperExample, TreegionWithTailDupCoversWholeGraph)
{
    // Continuing Fig. 12 through the CFG: with permissive limits the
    // whole function becomes one treegion in which every original
    // execution path is a unique root-to-leaf path (3 paths).
    PaperExample ex;
    ir::Function transformed = ex.fn.clone();
    region::TailDupLimits limits;
    limits.expansion_limit = 3.0;
    auto set = region::formTreegionsTailDup(transformed, limits);
    EXPECT_TRUE(set.validate(transformed).empty());
    EXPECT_EQ(set.regions().size(), 1u);
    EXPECT_EQ(set.regions()[0].pathCount(), 3u);
}

} // namespace
} // namespace treegion
