/**
 * @file
 * Golden-schedule snapshot tests: the bit-identity anchor for the
 * scheduling hot path.
 *
 * Every input program (examples .tir files plus ten frozen fuzzer-generated
 * programs in tests/golden/inputs/) is compiled under all 4 priority
 * heuristics x both treegion schemes (tree, tree-td) x 1U/4U/8U, and
 * the full canonical dump — estimated time, code expansion, region
 * schedules cycle x slot, every exit record with its reconciliation
 * copies — must match tests/golden/<name>.golden byte for byte.
 *
 * The goldens were captured BEFORE the arena/SoA refactor of the
 * DDG/list-scheduler hot path landed, so any behavioural drift in the
 * refactored code shows up as a byte diff here.
 *
 * Regenerating goldens (only when a schedule change is intended):
 *
 *     TG_UPDATE_GOLDEN=1 ./build/tests/golden_schedule_test
 *
 * then review the diff like any other code change. The frozen fuzz
 * inputs themselves are regenerated (rarely; this invalidates all
 * goldens) with TG_GOLDEN_GEN_INPUTS=1, which redraws them from fixed
 * seeds of the fuzzer's generator envelope.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/mutate.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "sched/pipeline.h"
#include "sched/priority.h"
#include "support/rng.h"
#include "support/string_utils.h"
#include "workloads/profiler.h"
#include "workloads/synthetic.h"

namespace treegion {
namespace {

namespace fs = std::filesystem;

/** Fixed seed stream for the frozen fuzz inputs. */
constexpr uint64_t kInputSeed = 20260807;

/** Frozen-input program count. */
constexpr int kFuzzPrograms = 10;

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeFile(const fs::path &path, const std::string &text)
{
    std::ofstream out(path);
    out << text;
    ASSERT_TRUE(out.good()) << "cannot write " << path;
}

/** The (scheme, heuristic, width) grid the goldens cover. */
std::vector<sched::PipelineOptions>
goldenConfigs()
{
    std::vector<sched::PipelineOptions> configs;
    for (const auto scheme : {sched::RegionScheme::Treegion,
                              sched::RegionScheme::TreegionTailDup}) {
        for (const sched::Heuristic heuristic : sched::kAllHeuristics) {
            for (const int width : {1, 4, 8}) {
                sched::PipelineOptions options;
                options.scheme = scheme;
                options.model = sched::MachineModel::custom(width);
                options.sched.heuristic = heuristic;
                configs.push_back(options);
            }
        }
    }
    return configs;
}

/** Canonical dump of one compile: full schedule + exit metadata. */
std::string
dumpCompile(const ir::Function &fn, const sched::PipelineOptions &options)
{
    auto run = sched::runPipelineOnClone(fn, options);
    const sched::PipelineResult &result = run.result;

    std::string out;
    out += support::strprintf("estimated_time %.17g\n",
                              result.estimated_time);
    out += support::strprintf("code_expansion %.17g\n",
                              result.code_expansion);

    std::vector<ir::BlockId> roots;
    for (const auto &[root, rs] : result.schedule.regions)
        roots.push_back(root);
    std::sort(roots.begin(), roots.end());
    for (const ir::BlockId root : roots) {
        const sched::RegionSchedule &rs =
            result.schedule.regions.at(root);
        out += support::strprintf(
            "region @%u len=%d renamed=%zu copies=%zu spec=%zu "
            "elided=%zu\n",
            root, rs.length, rs.stats.renamed_defs,
            rs.stats.exit_copies, rs.stats.speculated_ops,
            rs.stats.elided_ops);
        out += rs.str(options.model.issue_width);
        for (const sched::ScheduledExit &exit : rs.exits) {
            out += support::strprintf(
                "exit op=%zu slot=%zu from=%u target=%u ret=%d "
                "weight=%.17g cycle=%d copies=",
                exit.op_index, exit.target_slot, exit.from, exit.target,
                exit.is_ret ? 1 : 0, exit.weight, exit.cycle);
            for (size_t i = 0; i < exit.copies.size(); ++i) {
                if (i)
                    out += ",";
                out += exit.copies[i].dst.str() + "<-" +
                       exit.copies[i].src.str();
            }
            out += "\n";
        }
    }
    return out;
}

/** Dump every golden config of @p mod, headed by the config line. */
std::string
dumpAllConfigs(const ir::Module &mod)
{
    const ir::Function &fn = mod.function("main");
    std::string out;
    for (const sched::PipelineOptions &options : goldenConfigs()) {
        out += "### " + sched::encodePipelineOptions(options) + "\n";
        out += dumpCompile(fn, options);
    }
    return out;
}

/** Load, profile and return a golden input program. */
std::unique_ptr<ir::Module>
loadProgram(const fs::path &path)
{
    std::string error;
    auto mod = ir::parseModule(readFile(path), &error);
    EXPECT_TRUE(mod) << path << ": " << error;
    if (mod)
        workloads::profileFunction(mod->function("main"),
                                   mod->memWords());
    return mod;
}

/** All golden input programs: examples + frozen fuzz inputs. */
std::vector<fs::path>
goldenInputs()
{
    std::vector<fs::path> inputs;
    for (const char *dir :
         {TREEGION_EXAMPLES_DIR, TREEGION_GOLDEN_DIR "/inputs"}) {
        for (const auto &entry : fs::directory_iterator(dir)) {
            if (entry.path().extension() == ".tir")
                inputs.push_back(entry.path());
        }
    }
    std::sort(inputs.begin(), inputs.end());
    return inputs;
}

/**
 * One-shot regeneration of the frozen fuzz inputs (see file header).
 * Draws points of the fuzzer's widened generator envelope, keeping
 * mid-sized CFGs so tail duplication and wide treegions get real
 * work without goldens ballooning.
 */
TEST(GoldenSchedule, RegenerateFrozenInputsWhenAsked)
{
    if (!std::getenv("TG_GOLDEN_GEN_INPUTS"))
        GTEST_SKIP() << "set TG_GOLDEN_GEN_INPUTS=1 to regenerate";
    support::Rng rng(kInputSeed);
    int written = 0;
    while (written < kFuzzPrograms) {
        workloads::GenParams params = fuzz::mutateParams(rng);
        params.max_blocks = 600;
        const std::string name =
            support::strprintf("fuzz%02d", written + 1);
        auto mod = workloads::generateProgram(name, params);
        const size_t blocks =
            mod->function("main").blockIds().size();
        if (blocks < 24 || blocks > 220)
            continue;  // too trivial / goldens too large
        std::ostringstream os;
        ir::printModule(os, *mod);
        writeFile(fs::path(TREEGION_GOLDEN_DIR) / "inputs" /
                      (name + ".tir"),
                  os.str());
        ++written;
    }
}

TEST(GoldenSchedule, FrozenInputsPresent)
{
    size_t fuzz_inputs = 0;
    for (const fs::path &path : goldenInputs()) {
        if (path.filename().string().rfind("fuzz", 0) == 0)
            ++fuzz_inputs;
    }
    EXPECT_EQ(fuzz_inputs, static_cast<size_t>(kFuzzPrograms))
        << "frozen fuzz inputs missing from tests/golden/inputs/";
}

TEST(GoldenSchedule, SchedulesMatchGoldens)
{
    const bool update = std::getenv("TG_UPDATE_GOLDEN") != nullptr;
    for (const fs::path &input : goldenInputs()) {
        SCOPED_TRACE(input.string());
        auto mod = loadProgram(input);
        ASSERT_TRUE(mod);
        const std::string dump = dumpAllConfigs(*mod);
        const fs::path golden =
            fs::path(TREEGION_GOLDEN_DIR) /
            (input.stem().string() + ".golden");
        if (update) {
            writeFile(golden, dump);
            continue;
        }
        ASSERT_TRUE(fs::exists(golden))
            << golden << " missing; regenerate with TG_UPDATE_GOLDEN=1 "
            << "(see file header)";
        const std::string expected = readFile(golden);
        // Byte-identical or bust: any schedule drift must be an
        // intentional, reviewed golden update.
        EXPECT_EQ(expected, dump)
            << "schedule drift vs " << golden
            << " — if intended, regenerate with TG_UPDATE_GOLDEN=1";
    }
}

} // namespace
} // namespace treegion
