/**
 * @file
 * Unit tests for the tracing layer: enable/disable semantics,
 * counters, thread-id stability, JSON escaping, and the shape of the
 * Chrome trace output.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "support/thread_pool.h"
#include "support/trace.h"

namespace treegion::support {
namespace {

/** Reset the process-wide collector around every test. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        TraceCollector::instance().clear();
        TraceCollector::instance().setEnabled(true);
    }

    void
    TearDown() override
    {
        TraceCollector::instance().setEnabled(false);
        TraceCollector::instance().clear();
    }
};

TEST_F(TraceTest, DisabledRecordsNothing)
{
    TraceCollector::instance().setEnabled(false);
    {
        TraceScope span("stage");
        TraceCollector::instance().addCounter("things", 3);
    }
    EXPECT_TRUE(TraceCollector::instance().events().empty());
    EXPECT_TRUE(TraceCollector::instance().counters().empty());
}

TEST_F(TraceTest, ScopeRecordsCompleteEvent)
{
    {
        TraceScope span("formation", "pipeline");
        span.arg("scheme", "tree");
    }
    const auto events = TraceCollector::instance().events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "formation");
    EXPECT_EQ(events[0].category, "pipeline");
    EXPECT_GE(events[0].start_us, 0);
    EXPECT_GE(events[0].duration_us, 0);
    ASSERT_EQ(events[0].args.size(), 1u);
    EXPECT_EQ(events[0].args[0].first, "scheme");
    EXPECT_EQ(events[0].args[0].second, "tree");
}

TEST_F(TraceTest, ScopeOpenedWhileDisabledStaysInert)
{
    TraceCollector::instance().setEnabled(false);
    {
        TraceScope span("half");
        // Enabling mid-span must not emit a torn event at close.
        TraceCollector::instance().setEnabled(true);
    }
    EXPECT_TRUE(TraceCollector::instance().events().empty());
}

TEST_F(TraceTest, CountersAccumulate)
{
    TraceCollector::instance().addCounter("regions", 2);
    TraceCollector::instance().addCounter("regions", 5);
    TraceCollector::instance().addCounter("ops", 1);
    const auto counters = TraceCollector::instance().counters();
    EXPECT_EQ(counters.at("regions"), 7u);
    EXPECT_EQ(counters.at("ops"), 1u);
}

TEST_F(TraceTest, ThreadIdsAreStableAndDistinct)
{
    const uint32_t main_a = TraceCollector::currentThreadId();
    const uint32_t main_b = TraceCollector::currentThreadId();
    EXPECT_EQ(main_a, main_b);
    uint32_t other = main_a;
    std::thread t([&] { other = TraceCollector::currentThreadId(); });
    t.join();
    EXPECT_NE(other, main_a);
}

TEST_F(TraceTest, ParallelScopesAllLand)
{
    {
        ThreadPool pool(4);
        pool.parallelFor(64, [](size_t i) {
            TraceScope span(i % 2 ? "odd" : "even", "test");
        });
    }
    EXPECT_EQ(TraceCollector::instance().events().size(), 64u);
}

TEST_F(TraceTest, JsonEscape)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(jsonEscape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(jsonEscape(std::string("\x01")), "\\u0001");
}

TEST_F(TraceTest, ChromeTraceShape)
{
    {
        TraceScope span("sched \"quoted\"", "pipeline");
        span.arg("fn", "main");
    }
    TraceCollector::instance().addCounter("ops_scheduled", 12);

    std::ostringstream os;
    TraceCollector::instance().writeChromeTrace(os);
    const std::string json = os.str();

    // The Chrome trace "JSON object format": a traceEvents array of
    // complete ("X") events, counters as "C" events.
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("sched \\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"fn\":\"main\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"ops_scheduled\""), std::string::npos);
    EXPECT_NE(json.find("\"value\":12"), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\"}"),
              std::string::npos);

    // No torn JSON: no empty-element commas, balanced delimiters.
    EXPECT_EQ(json.find(",]"), std::string::npos);
    EXPECT_EQ(json.find("[,"), std::string::npos);
    int braces = 0, brackets = 0;
    bool in_string = false;
    for (size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{')
            ++braces;
        else if (c == '}')
            --braces;
        else if (c == '[')
            ++brackets;
        else if (c == ']')
            --brackets;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST_F(TraceTest, EmptyTraceIsStillValid)
{
    std::ostringstream os;
    TraceCollector::instance().writeChromeTrace(os);
    EXPECT_EQ(os.str(),
              "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n");
}

} // namespace
} // namespace treegion::support
