/**
 * @file
 * Tests for the machine state, the sequential interpreter, and the
 * VLIW schedule simulator's Play-Doh semantics.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "sched/pipeline.h"
#include "vliw/machine_state.h"
#include "vliw/vliw_sim.h"
#include "workloads/profiler.h"

namespace treegion::vliw {
namespace {

using ir::BlockId;
using ir::Builder;
using ir::CmpKind;
using ir::Function;
using ir::Opcode;
using ir::Reg;

TEST(MachineState, RegisterFiles)
{
    MachineState st(4, 2, std::vector<int64_t>(8, 0));
    st.writeReg(ir::gpr(3), -7);
    EXPECT_EQ(st.readReg(ir::gpr(3)), -7);
    st.writeReg(ir::pred(1), 42);  // predicates clamp to 0/1
    EXPECT_EQ(st.readReg(ir::pred(1)), 1);
    EXPECT_EQ(st.readReg(ir::btr(0)), 0);  // BTRs are inert
}

TEST(MachineState, DismissibleLoadWraps)
{
    MachineState st(1, 1, {10, 20, 30, 40});
    EXPECT_EQ(st.readMem(1), 20);
    EXPECT_EQ(st.readMem(5), 20);   // wraps
    EXPECT_EQ(st.readMem(-3), 20);  // negative wraps too
    EXPECT_EQ(st.wrappedAccesses(), 2u);
    EXPECT_EQ(st.wrappedStores(), 0u);
    st.writeMem(7, 9);
    EXPECT_EQ(st.wrappedStores(), 1u);
}

TEST(Interpreter, StraightLineArithmetic)
{
    Function fn("f");
    Builder bu(fn);
    const BlockId a = bu.newBlock();
    fn.setEntry(a);
    bu.setInsertPoint(a);
    const Reg base = bu.movi(0);
    const Reg x = bu.load(base, 0);
    const Reg y = bu.binary(Opcode::MUL, Builder::R(x), Builder::I(3));
    const Reg z = bu.binary(Opcode::ADD, Builder::R(y), Builder::I(4));
    bu.store(base, 1, Builder::R(z));
    bu.ret(Builder::R(z));

    std::vector<int64_t> mem(8, 0);
    mem[0] = 5;
    const auto result = runSequential(fn, mem);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.ret_value, 19);
    EXPECT_EQ(result.memory[1], 19);
    EXPECT_EQ(result.trace, (std::vector<BlockId>{a}));
}

TEST(Interpreter, BranchesAndMwbr)
{
    Function fn("f");
    Builder bu(fn);
    const BlockId a = bu.newBlock();
    const BlockId b0 = bu.newBlock();
    const BlockId b1 = bu.newBlock();
    const BlockId b2 = bu.newBlock();
    fn.setEntry(a);
    bu.setInsertPoint(a);
    const Reg base = bu.movi(0);
    const Reg x = bu.load(base, 0);
    const Reg sel = bu.binary(Opcode::REM, Builder::R(x), Builder::I(3));
    bu.mwbr(sel, {b0, b1, b2});
    for (int i = 0; i < 3; ++i) {
        bu.setInsertPoint(i == 0 ? b0 : i == 1 ? b1 : b2);
        bu.ret(Builder::I(100 + i));
    }

    for (int64_t x = 0; x < 6; ++x) {
        std::vector<int64_t> mem(8, 0);
        mem[0] = x;
        const auto result = runSequential(fn, mem);
        ASSERT_TRUE(result.completed);
        EXPECT_EQ(result.ret_value, 100 + (x % 3));
    }
}

TEST(Interpreter, OpLimitAborts)
{
    // Infinite loop: BRU to self via two blocks.
    Function fn("f");
    Builder bu(fn);
    const BlockId a = bu.newBlock();
    const BlockId b = bu.newBlock();
    fn.setEntry(a);
    bu.setInsertPoint(a);
    bu.movi(1);
    bu.bru(b);
    bu.setInsertPoint(b);
    bu.movi(2);
    bu.bru(a);

    InterpOptions options;
    options.max_ops = 1000;
    const auto result = runSequential(fn, std::vector<int64_t>(8, 0),
                                      options);
    EXPECT_FALSE(result.completed);
}

/** Build, profile, schedule a program and return everything. */
struct Pipeline
{
    std::unique_ptr<ir::Module> mod;
    ir::Function transformed{"t"};
    sched::PipelineResult result;

    Pipeline(uint64_t seed, sched::RegionScheme scheme, int width,
             sched::Heuristic heuristic = sched::Heuristic::GlobalWeight)
    {
        workloads::GenParams p;
        p.seed = seed;
        p.top_units = 6;
        p.mem_words = 1024;
        mod = workloads::generateProgram("x", p);
        ir::Function &fn = mod->function("main");
        workloads::profileFunction(fn, 1024);
        transformed = fn.clone();
        sched::PipelineOptions options;
        options.scheme = scheme;
        options.model = sched::MachineModel::custom(width);
        options.sched.heuristic = heuristic;
        result = sched::runPipeline(transformed, options);
    }
};

TEST(VliwSim, CycleCountMatchesStaticEstimatePerVisit)
{
    // The simulator charges exit-cycle + 1 per region execution, the
    // same accounting as the static estimate; with a concrete input
    // the total simulated cycles must equal summing the static
    // per-exit costs along the actual path. Cross-check totals.
    Pipeline pl(42, sched::RegionScheme::Treegion, 4);
    auto mem = workloads::makeInputMemory(1024, 9, 100);
    const auto run =
        runScheduled(pl.transformed, pl.result.schedule, mem);
    ASSERT_TRUE(run.completed);
    EXPECT_GT(run.cycles, 0u);
    EXPECT_EQ(run.regions_executed, run.trace.size());

    // Recompute cycles by walking the trace and, per visit, asking
    // the next region's entry... simpler: rerun and compare.
    const auto run2 =
        runScheduled(pl.transformed, pl.result.schedule, mem);
    EXPECT_EQ(run.cycles, run2.cycles);  // deterministic
    EXPECT_EQ(run.memory, run2.memory);
}

TEST(VliwSim, GuardedStoreOnlyFiresOnItsPath)
{
    Function fn("f");
    Builder bu(fn);
    const BlockId a = bu.newBlock();
    const BlockId b = bu.newBlock();
    const BlockId c = bu.newBlock();
    fn.setEntry(a);
    bu.setInsertPoint(a);
    const Reg base = bu.movi(0);
    const Reg x = bu.load(base, 0);
    bu.condBr(CmpKind::LT, Builder::R(x), Builder::I(10), b, c);
    bu.setInsertPoint(b);
    bu.store(base, 1, Builder::I(111));
    bu.ret(Builder::I(1));
    bu.setInsertPoint(c);
    bu.store(base, 2, Builder::I(222));
    bu.ret(Builder::I(2));
    fn.forEachBlockMut([](ir::BasicBlock &blk) {
        blk.setWeight(1.0);
        blk.edgeWeights().assign(blk.successors().size(), 0.5);
    });

    sched::PipelineOptions options;
    options.scheme = sched::RegionScheme::Treegion;
    options.model = sched::MachineModel::wide8U();
    ir::Function f = fn.clone();
    const auto result = sched::runPipeline(f, options);

    {
        std::vector<int64_t> mem(16, 0);
        mem[0] = 5;  // takes b
        const auto run = runScheduled(f, result.schedule, mem);
        ASSERT_TRUE(run.completed);
        EXPECT_EQ(run.ret_value, 1);
        EXPECT_EQ(run.memory[1], 111);
        EXPECT_EQ(run.memory[2], 0) << "speculated store leaked";
    }
    {
        std::vector<int64_t> mem(16, 0);
        mem[0] = 50;  // takes c
        const auto run = runScheduled(f, result.schedule, mem);
        ASSERT_TRUE(run.completed);
        EXPECT_EQ(run.ret_value, 2);
        EXPECT_EQ(run.memory[2], 222);
        EXPECT_EQ(run.memory[1], 0);
    }
}

TEST(VliwSim, SpeculativeLoadsAreHarmless)
{
    // Both arms load different cells; the not-taken arm's load runs
    // speculatively but must not perturb architectural results.
    Pipeline pl(77, sched::RegionScheme::Treegion, 8);
    for (uint64_t input = 0; input < 4; ++input) {
        auto mem = workloads::makeInputMemory(1024, input, 100);
        const auto seq = runSequential(pl.transformed, mem);
        const auto run =
            runScheduled(pl.transformed, pl.result.schedule, mem);
        ASSERT_TRUE(seq.completed && run.completed);
        EXPECT_EQ(run.ret_value, seq.ret_value);
        EXPECT_EQ(run.memory, seq.memory);
    }
}

TEST(VliwSim, CycleLimitStopsRunaway)
{
    Pipeline pl(3, sched::RegionScheme::Treegion, 4);
    VliwOptions options;
    options.max_cycles = 3;
    auto mem = workloads::makeInputMemory(1024, 1, 100);
    const auto run = runScheduled(pl.transformed, pl.result.schedule,
                                  mem, options);
    EXPECT_FALSE(run.completed);
    EXPECT_LE(run.cycles, 3u);
}

TEST(VliwSim, SimulatedCyclesTrackEstimateWeighted)
{
    // Over many random inputs, average simulated cycles should be in
    // the same ballpark as the profile-weighted static estimate
    // normalized by profile visits (they use identical accounting).
    Pipeline pl(15, sched::RegionScheme::Slr, 4);
    double sim_total = 0;
    const int runs = 10;
    for (int i = 0; i < runs; ++i) {
        auto mem = workloads::makeInputMemory(1024, 42u + i, 100);
        const auto run =
            runScheduled(pl.transformed, pl.result.schedule, mem);
        ASSERT_TRUE(run.completed);
        sim_total += static_cast<double>(run.cycles);
    }
    // The profile was collected over 20 runs of the same input
    // family; estimated_time approximates total cycles over those
    // runs. Compare per-run averages loosely.
    const double est_per_run = pl.result.estimated_time / 20.0;
    const double sim_per_run = sim_total / runs;
    EXPECT_GT(sim_per_run, 0.3 * est_per_run);
    EXPECT_LT(sim_per_run, 3.0 * est_per_run);
}

} // namespace
} // namespace treegion::vliw
