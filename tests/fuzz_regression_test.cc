/**
 * @file
 * Fuzzing-harness regression tests.
 *
 * Replays every committed corpus repro (fuzz/corpus/*.tir) under its
 * recorded configuration, pins the bugs the fuzzer has found, and
 * exercises the harness itself: the tamper fault injection must turn
 * the legality oracle red, and the reducer must shrink a tampered
 * program well below the acceptance bar.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/fuzz.h"
#include "fuzz/mutate.h"
#include "fuzz/reducer.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/rng.h"
#include "vliw/interpreter.h"
#include "workloads/profiler.h"
#include "workloads/synthetic.h"

namespace treegion {
namespace {

namespace fs = std::filesystem;

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Generator parameters for a mid-size deterministic test program. */
workloads::GenParams
testProgramParams(uint64_t seed)
{
    workloads::GenParams params;
    params.seed = seed;
    params.mem_words = 1024;
    params.top_units = 8;
    params.max_depth = 3;
    return params;
}

// Every committed repro must replay green: it documents a bug that
// has been fixed. Replay semantics depend on the recorded oracle
// (see fuzz/corpus/README.md).
TEST(FuzzRegression, CorpusReplaysClean)
{
    const fs::path dir(TREEGION_CORPUS_DIR);
    ASSERT_TRUE(fs::exists(dir)) << dir;
    size_t repros = 0;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() != ".tir")
            continue;
        ++repros;
        SCOPED_TRACE(entry.path().filename().string());
        const std::string text = readFile(entry.path());

        fuzz::FuzzConfig config;
        fuzz::OracleOptions opts;
        std::string oracle;
        std::string error;
        ASSERT_TRUE(fuzz::parseReproHeader(text, config, opts, &oracle,
                                           &error))
            << error;
        // Tamper repros are a standing fault injection, never a
        // fixed bug; they must not be committed.
        EXPECT_EQ(opts.tamper, 0);

        std::unique_ptr<ir::Module> mod = ir::parseModule(text, &error);
        ASSERT_NE(mod, nullptr) << error;
        ASSERT_TRUE(ir::verifyFunction(*mod->functions().front(),
                                       ir::VerifyLevel::Schedulable)
                        .empty());

        if (oracle == "crash") {
            // The bug was a process abort; surviving the recorded
            // input family is green.
            ir::Function &fn = *mod->functions().front();
            workloads::ProfileOptions prof;
            prof.input_seed = opts.input_seed;
            prof.runs = opts.profile_runs;
            prof.data_max = opts.data_max;
            workloads::profileFunction(fn, mod->memWords(), prof);
            for (int i = 0; i < opts.equivalence_inputs; ++i) {
                vliw::runSequential(
                    fn,
                    workloads::makeInputMemory(
                        mod->memWords(),
                        opts.input_seed + static_cast<uint64_t>(i),
                        opts.data_max));
            }
        } else if (oracle == "round-trip") {
            const fuzz::OracleFailure fail = fuzz::checkRoundTrip(*mod);
            EXPECT_FALSE(fail) << fail.oracle << ": " << fail.detail;
        } else {
            const fuzz::OracleFailure fail = fuzz::checkCell(
                *mod->functions().front(), mod->memWords(), config,
                opts);
            EXPECT_FALSE(fail) << fail.oracle << ": " << fail.detail;
        }
    }
    EXPECT_GE(repros, 1u);
}

// Pin for the crash the fuzzer found: an MWBR selector outside the
// case table used to TG_PANIC and abort the whole process. The
// interpreter now halts the run without completing, so harness
// callers (oracles, the reducer's termination gate) can reject the
// execution gracefully.
TEST(FuzzRegression, InterpreterHaltsOnUnmatchedMwbrSelector)
{
    const std::string text = readFile(
        fs::path(TREEGION_CORPUS_DIR) / "crash-mwbr-selector.tir");
    std::string error;
    std::unique_ptr<ir::Module> mod = ir::parseModule(text, &error);
    ASSERT_NE(mod, nullptr) << error;
    ir::Function &fn = *mod->functions().front();
    // The selector is REM(data, 3) - 3, always in [-3, -1].
    const vliw::ExecResult result = vliw::runSequential(
        fn, workloads::makeInputMemory(mod->memWords(), 1000, 100));
    EXPECT_FALSE(result.completed);
    EXPECT_GT(result.ops_executed, 0u);
}

// Harness red test: the tamper fault injection corrupts one exit
// record after scheduling, which must be caught by the legality
// oracle — and only by it.
TEST(FuzzRegression, TamperInjectionFailsLegality)
{
    std::unique_ptr<ir::Module> mod =
        workloads::generateProgram("tamper", testProgramParams(7));
    const ir::Function &fn = *mod->functions().front();

    fuzz::FuzzConfig config;
    fuzz::OracleOptions opts;
    const fuzz::OracleFailure clean =
        fuzz::checkCell(fn, mod->memWords(), config, opts);
    EXPECT_FALSE(clean) << clean.oracle << ": " << clean.detail;

    opts.tamper = 1;
    const fuzz::OracleFailure tampered =
        fuzz::checkCell(fn, mod->memWords(), config, opts);
    EXPECT_EQ(tampered.oracle, "legality") << tampered.detail;
}

// Acceptance bar: the reducer must shrink an injected bug to at most
// 25% of the original op count, and the minimized module must still
// be valid pipeline input failing the same oracle.
TEST(FuzzRegression, ReducerShrinksTamperedBugBelowQuarter)
{
    std::unique_ptr<ir::Module> mod =
        workloads::generateProgram("seeded", testProgramParams(7));

    fuzz::FuzzConfig config;
    config.scheme = sched::RegionScheme::BasicBlock;
    config.heuristic = sched::Heuristic::DependenceHeight;
    config.width = 1;
    config.dominator_parallelism = false;
    fuzz::OracleOptions opts;
    opts.tamper = 1;

    const fuzz::OraclePredicate pred =
        [&](const ir::Module &candidate) {
            return fuzz::checkCell(*candidate.functions().front(),
                                   candidate.memWords(), config, opts);
        };
    ASSERT_EQ(pred(*mod).oracle, "legality");

    const fuzz::ReduceResult res =
        fuzz::reduceModule(*mod, "legality", pred);
    EXPECT_GT(res.original_ops, 0u);
    EXPECT_LE(res.reduced_ops * 4, res.original_ops)
        << res.original_ops << " -> " << res.reduced_ops;
    EXPECT_EQ(pred(*mod).oracle, "legality");
    EXPECT_TRUE(ir::verifyFunction(*mod->functions().front(),
                                   ir::VerifyLevel::Schedulable)
                    .empty());
}

// Pin for the generator bug the fuzzer found: stores can clobber
// data cells with negative computed values, and C++ REM truncates
// toward zero, so a switch selector computed as REM(load, hot) could
// go negative and miss every MWBR case. The generator now shifts the
// remainder back into [0, hot). Store-heavy switch programs across
// many seeds must execute to completion.
TEST(FuzzRegression, GeneratorSwitchSelectorsStayInRange)
{
    // Loops matter: the clobbering store usually lands in iteration
    // N and the poisoned selector load in iteration N+1. Under the
    // unshifted selector this envelope halts runs at seeds 85, 141,
    // 149, 168 and 173 (among others).
    for (uint64_t seed = 1; seed <= 200; ++seed) {
        workloads::GenParams params;
        params.seed = seed;
        params.mem_words = 512;
        params.top_units = 10;
        params.max_depth = 4;
        params.p_straight = 0.1;
        params.p_if = 0.1;
        params.p_ifelse = 0.1;
        params.p_switch = 0.4;
        params.p_ladder = 0.0;
        params.p_loop = 0.3;
        params.switch_width_min = 2;
        params.switch_width_max = 12;
        params.mem_frac = 0.6;
        params.store_frac = 0.8;
        params.data_max = 3;
        std::unique_ptr<ir::Module> mod =
            workloads::generateProgram("sel", params);
        workloads::ProfileOptions prof;
        prof.runs = 8;
        prof.data_max = params.data_max;
        const workloads::ProfileSummary summary = workloads::profileFunction(
            *mod->functions().front(), mod->memWords(), prof);
        EXPECT_EQ(summary.completed_runs, prof.runs)
            << "seed " << seed
            << ": a run halted (selector out of range?)";
    }
}

// The repro header must round-trip through its own parser.
TEST(FuzzRegression, ReproHeaderRoundTrips)
{
    fuzz::FuzzConfig config;
    config.scheme = sched::RegionScheme::TreegionTailDup;
    config.heuristic = sched::Heuristic::WeightedCount;
    config.width = 8;
    config.dominator_parallelism = false;
    config.materialize_pbr = true;
    fuzz::OracleOptions opts;
    opts.input_seed = 12345;
    opts.equivalence_inputs = 3;
    opts.profile_runs = 5;
    opts.data_max = 7;

    const std::string header = fuzz::makeReproHeader(
        config, opts, "equivalence", "return value mismatch");

    fuzz::FuzzConfig config2;
    fuzz::OracleOptions opts2;
    std::string oracle;
    std::string error;
    ASSERT_TRUE(
        fuzz::parseReproHeader(header, config2, opts2, &oracle, &error))
        << error;
    EXPECT_EQ(oracle, "equivalence");
    EXPECT_EQ(config2.str(), config.str());
    EXPECT_EQ(opts2.input_seed, opts.input_seed);
    EXPECT_EQ(opts2.equivalence_inputs, opts.equivalence_inputs);
    EXPECT_EQ(opts2.profile_runs, opts.profile_runs);
    EXPECT_EQ(opts2.data_max, opts.data_max);
    EXPECT_EQ(opts2.tamper, 0);
}

// Printing and reparsing must be a fixed point across the widened
// fuzz envelope, not just the benchmark-like proxies.
TEST(FuzzRegression, RoundTripFixedPointOnMutatedEnvelope)
{
    support::Rng rng(123);
    for (int i = 0; i < 10; ++i) {
        const workloads::GenParams params = fuzz::mutateParams(rng);
        std::unique_ptr<ir::Module> mod =
            workloads::generateProgram("rt", params);
        const fuzz::OracleFailure fail = fuzz::checkRoundTrip(*mod);
        EXPECT_FALSE(fail)
            << "iteration " << i << ": " << fail.detail;
    }
}

} // namespace
} // namespace treegion
