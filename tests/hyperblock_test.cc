/**
 * @file
 * Hyperblock tests (the paper's future-work extension): DAG region
 * formation invariants, if-conversion lowering (wired-OR merge
 * predicates, guarded merge selects), and end-to-end equivalence.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/liveness.h"
#include "ir/builder.h"
#include "region/formation.h"
#include "sched/hyperblock_lowering.h"
#include "sched/pipeline.h"
#include "vliw/equivalence.h"
#include "workloads/profiler.h"
#include "workloads/synthetic.h"

namespace treegion {
namespace {

using ir::BlockId;
using ir::Builder;
using ir::CmpKind;
using ir::Function;
using ir::Opcode;
using ir::Reg;

/** Diamond with a join computing from both arms' values, then ret. */
struct JoinDiamond
{
    Function fn{"f"};
    BlockId a, b, c, join;
    Reg acc;

    JoinDiamond()
    {
        Builder bu(fn);
        a = bu.newBlock();
        b = bu.newBlock();
        c = bu.newBlock();
        join = bu.newBlock();
        fn.setEntry(a);

        bu.setInsertPoint(a);
        const Reg base = bu.movi(0);
        const Reg x = bu.load(base, 1);
        acc = bu.movi(0);
        bu.condBr(CmpKind::LT, Builder::R(x), Builder::I(50), b, c);

        bu.setInsertPoint(b);
        fn.appendOp(b, ir::makeBinary(Opcode::ADD, acc, Builder::R(x),
                                      Builder::I(100)));
        bu.bru(join);
        bu.setInsertPoint(c);
        fn.appendOp(c, ir::makeBinary(Opcode::SUB, acc, Builder::R(x),
                                      Builder::I(100)));
        bu.bru(join);

        bu.setInsertPoint(join);
        const Reg y = bu.binary(Opcode::ADD, Builder::R(acc),
                                Builder::I(1));
        bu.ret(Builder::R(y));

        fn.forEachBlockMut([](ir::BasicBlock &blk) {
            blk.setWeight(10.0);
            blk.edgeWeights().assign(
                blk.successors().size(),
                10.0 / std::max<size_t>(1, blk.successors().size()));
        });
    }
};

TEST(HyperblockFormation, AbsorbsTheWholeDiamond)
{
    JoinDiamond g;
    region::RegionSet set = region::formHyperblocks(g.fn);
    EXPECT_TRUE(set.validate(g.fn).empty());
    // One hyperblock covering all four blocks (the join's preds are
    // both inside, so it is absorbed without duplication).
    ASSERT_EQ(set.regions().size(), 1u);
    const region::Region &h = set.regions()[0];
    EXPECT_EQ(h.kind(), region::RegionKind::Hyperblock);
    EXPECT_EQ(h.size(), 4u);
    EXPECT_EQ(h.pathCount(), 2u);
    // No code duplication at all.
    EXPECT_EQ(set.regions()[0].totalOps(g.fn), g.fn.totalOps());
}

TEST(HyperblockFormation, WeightThresholdExcludesColdBlocks)
{
    JoinDiamond g;
    // Freeze the cold arm out of the region.
    g.fn.block(g.c).setWeight(0.1);
    region::HyperblockOptions options;
    options.min_weight_ratio = 0.2;
    region::RegionSet set = region::formHyperblocks(g.fn, options);
    EXPECT_TRUE(set.validate(g.fn).empty());
    const region::Region &h = set.regions()[0];
    EXPECT_FALSE(h.contains(g.c));
    // The join now has an outside predecessor, so it cannot join the
    // hyperblock either.
    EXPECT_FALSE(h.contains(g.join));
}

TEST(HyperblockFormation, PartitionInvariantOnGeneratedPrograms)
{
    for (uint64_t seed : {4u, 17u, 29u}) {
        workloads::GenParams p;
        p.seed = seed;
        p.top_units = 10;
        p.mem_words = 1024;
        auto mod = workloads::generateProgram("x", p);
        ir::Function &fn = mod->function("main");
        workloads::profileFunction(fn, 1024);
        region::RegionSet set = region::formHyperblocks(fn);
        const auto problems = set.validate(fn);
        EXPECT_TRUE(problems.empty()) << problems.front();
        // Hyperblock formation never mutates the CFG.
        for (const region::Region &r : set.regions()) {
            EXPECT_LE(r.pathCount(),
                      region::HyperblockOptions{}.path_limit + 4);
        }
    }
}

TEST(HyperblockLowering, MergeUsesWiredOrAndSelects)
{
    JoinDiamond g;
    region::RegionSet set = region::formHyperblocks(g.fn);
    analysis::Liveness live(g.fn);
    const auto lowered =
        sched::lowerHyperblock(g.fn, set.regions()[0], live);

    size_t pclr = 0, cmppo = 0, guarded_movs = 0;
    for (const auto &lop : lowered.ops) {
        pclr += (lop.op.opcode == Opcode::PCLR);
        cmppo += (lop.op.opcode == Opcode::CMPPO);
        if (lop.op.opcode == Opcode::MOV && lop.op.guard)
            ++guarded_movs;
    }
    EXPECT_EQ(pclr, 1u);          // one merge predicate
    EXPECT_EQ(cmppo, 2u);         // OR of two edge predicates
    EXPECT_EQ(guarded_movs, 2u);  // one select per edge for acc
    // One RET exit, guarded by the merge predicate.
    ASSERT_EQ(lowered.exits.size(), 1u);
    EXPECT_TRUE(lowered.exits[0].is_ret);
    EXPECT_TRUE(
        lowered.ops[lowered.exits[0].op_index].op.guard.has_value());
}

TEST(HyperblockLowering, NoDuplicationUnlikeTailDup)
{
    JoinDiamond g;
    // Hyperblock covers the diamond without cloning; tail-duplicated
    // treegion clones the join.
    ir::Function fh = g.fn.clone();
    region::formHyperblocks(fh);
    EXPECT_EQ(fh.totalOps(), g.fn.totalOps());

    ir::Function ft = g.fn.clone();
    region::formTreegionsTailDup(ft, {});
    EXPECT_GT(ft.totalOps(), g.fn.totalOps());
}

TEST(Hyperblock, SelectsPickTheRightValue)
{
    JoinDiamond g;
    ir::Function f = g.fn.clone();
    sched::PipelineOptions options;
    options.scheme = sched::RegionScheme::Hyperblock;
    options.model = sched::MachineModel::wide8U();
    const auto result = sched::runPipeline(f, options);

    struct Case
    {
        int64_t x, expect;
    };
    const Case cases[] = {{10, 10 + 100 + 1}, {90, 90 - 100 + 1}};
    for (const Case &c : cases) {
        std::vector<int64_t> mem(64, 0);
        mem[1] = c.x;
        const auto run = vliw::runScheduled(f, result.schedule, mem);
        ASSERT_TRUE(run.completed);
        EXPECT_EQ(run.ret_value, c.expect) << "x=" << c.x;
    }
}

class HyperblockEquivalence : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(HyperblockEquivalence, MatchesSequentialSemantics)
{
    workloads::GenParams p;
    p.seed = GetParam();
    p.top_units = 8;
    p.max_depth = 3;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("x", p);
    ir::Function &original = mod->function("main");
    workloads::profileFunction(original, 1024);

    for (const int width : {1, 4, 8}) {
        ir::Function f = original.clone();
        sched::PipelineOptions options;
        options.scheme = sched::RegionScheme::Hyperblock;
        options.model = sched::MachineModel::custom(width);
        const auto result = sched::runPipeline(f, options);
        for (uint64_t input = 0; input < 3; ++input) {
            auto mem = workloads::makeInputMemory(1024, 300 + input,
                                                  100);
            const auto report = vliw::checkEquivalence(
                original, f, result.schedule, mem);
            EXPECT_TRUE(report.ok)
                << "seed=" << GetParam() << " width=" << width << ": "
                << report.detail;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HyperblockEquivalence,
                         ::testing::Values(1, 7, 19, 37, 53, 71));

TEST(Hyperblock, CoversMoreFlowThanTreegionsWithoutDuplication)
{
    // The point of hyperblocks: merge points join the region via
    // predication instead of duplication, so region count drops with
    // zero code growth.
    workloads::GenParams p;
    p.seed = 12;
    p.top_units = 10;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("x", p);
    ir::Function &fn = mod->function("main");
    workloads::profileFunction(fn, 1024);

    ir::Function f1 = fn.clone();
    const auto tree = region::formTreegions(f1);
    ir::Function f2 = fn.clone();
    const auto hyper = region::formHyperblocks(f2);
    EXPECT_LE(hyper.regions().size(), tree.regions().size());
    EXPECT_EQ(f2.totalOps(), fn.totalOps());
}

} // namespace
} // namespace treegion
