/**
 * @file
 * Allocation regression tests for the scheduling hot path.
 *
 * The arena refactor's core claim (DESIGN.md §11): after a warm-up
 * compile has grown the per-thread arena, DDG construction plus list
 * scheduling perform ZERO heap allocations. These tests pin that with
 * a counting operator new interposer (alloc_guard.h) around
 * runPlacementProbe, and check the arena's aggregate gauges are
 * reported through support::MetricsRegistry.
 *
 * Remarks and tracing stay disabled here: both are opt-in observers
 * that legitimately allocate, and the steady-state property concerns
 * production (observer-free) compiles.
 */

#include "alloc_guard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "analysis/liveness.h"
#include "region/formation.h"
#include "sched/list_scheduler.h"
#include "support/flightrec.h"
#include "support/metrics.h"
#include "support/spans.h"
#include "support/trace.h"
#include "workloads/profiler.h"
#include "workloads/synthetic.h"

namespace treegion::sched {
namespace {

/** Lowered treegions of a synthetic function, largest first. */
std::vector<LoweredRegion>
lowerWorkload(ir::Function &fn)
{
    region::RegionSet set = region::formTreegions(fn);
    analysis::Liveness live(fn);
    std::vector<LoweredRegion> jobs;
    for (const region::Region &r : set.regions())
        jobs.push_back(lowerRegion(fn, r, live));
    std::sort(jobs.begin(), jobs.end(),
              [](const LoweredRegion &a, const LoweredRegion &b) {
                  return a.ops.size() > b.ops.size();
              });
    return jobs;
}

TEST(AllocRegression, SteadyStateSchedulingIsHeapFree)
{
    workloads::GenParams p;
    p.seed = 12;
    p.top_units = 8;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("x", p);
    ir::Function &fn = mod->function("main");
    workloads::profileFunction(fn, p.mem_words);

    const MachineModel model = MachineModel::custom(4);
    const SchedOptions options;
    std::vector<LoweredRegion> jobs = lowerWorkload(fn);
    ASSERT_FALSE(jobs.empty());

    // Warm-up: one probe per region grows the thread's arena to this
    // workload's high-water mark; the blocks are retained across
    // reset(), so the replay below runs entirely out of them.
    std::vector<int> warm_lengths;
    for (const LoweredRegion &job : jobs) {
        warm_lengths.push_back(
            runPlacementProbe(fn, job, model, options));
    }

    // Replay the same jobs. The inputs are copied BEFORE the guard
    // opens; inside it the scheduler must not touch the heap.
    std::vector<LoweredRegion> replay = jobs;
    std::vector<int> replay_lengths;
    replay_lengths.reserve(replay.size());
    uint64_t allocations;
    {
        tg_test::AllocGuard guard;
        for (LoweredRegion &job : replay) {
            replay_lengths.push_back(runPlacementProbe(
                fn, std::move(job), model, options));
        }
        allocations = guard.allocations();
    }
    EXPECT_EQ(allocations, 0u)
        << "scheduling hot path allocated on a warm arena";

    // Placement is deterministic, so the replay lengths match.
    EXPECT_EQ(replay_lengths, warm_lengths);
    for (const int length : warm_lengths)
        EXPECT_GT(length, 0);
}

/**
 * The tracing observers are compiled into every binary; the claim
 * that keeps them free is that DISABLED observers cost nothing on
 * the hot path — no clock reads and, pinned here, no allocation.
 * Inert TraceScope/SpanScope construction, ambient-context reads and
 * flight-recorder notes must all run heap-free, or always-on
 * instrumentation would break the arena steady-state property above.
 */
TEST(AllocRegression, DisabledTracingObserversAreHeapFree)
{
    auto &spans = support::SpanCollector::instance();
    spans.setEnabled(false);
    ASSERT_FALSE(spans.enabled());

    uint64_t allocations;
    {
        tg_test::AllocGuard guard;
        for (int i = 0; i < 256; ++i) {
            support::TraceScope stage("schedule");
            support::SpanScope child("cache-lookup");
            support::SpanScope root(
                "request", support::SpanScope::Root::IfEnabled);
            child.arg("hit", int64_t{1});  // inert: must not buffer
            support::noteSpan(support::currentSpanContext(),
                              "queue-wait", 0, 1);
            support::flightrec::note("probe", "steady-state",
                                     static_cast<uint64_t>(i));
        }
        allocations = guard.allocations();
    }
    EXPECT_EQ(allocations, 0u)
        << "disabled tracing observers allocated";
}

TEST(AllocRegression, ArenaMetricsReported)
{
    workloads::GenParams p;
    p.seed = 5;
    p.top_units = 4;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("x", p);
    ir::Function &fn = mod->function("main");
    workloads::profileFunction(fn, p.mem_words);

    const MachineModel model = MachineModel::custom(4);
    const SchedOptions options;
    std::vector<LoweredRegion> jobs = lowerWorkload(fn);
    ASSERT_FALSE(jobs.empty());

    support::MetricsRegistry before;
    reportArenaMetrics(before);
    const uint64_t jobs_before = before.counter("sched.arena.jobs");

    size_t probes = 0;
    for (LoweredRegion &job : jobs) {
        runPlacementProbe(fn, std::move(job), model, options);
        ++probes;
    }

    support::MetricsRegistry metrics;
    reportArenaMetrics(metrics);
    EXPECT_EQ(metrics.counter("sched.arena.jobs"),
              jobs_before + probes);
    // The gauges aggregate maxima over every thread that ever
    // scheduled; after at least one job both are nonzero and the
    // capacity covers the high-water mark.
    const uint64_t high = metrics.counter("sched.arena.high_water_bytes");
    const uint64_t cap = metrics.counter("sched.arena.capacity_bytes");
    EXPECT_GT(high, 0u);
    EXPECT_GE(cap, high);
}

} // namespace
} // namespace treegion::sched
