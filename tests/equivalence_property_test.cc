/**
 * @file
 * The library's strongest property: for any generated program, any
 * region scheme, any heuristic and any machine width, executing the
 * schedule in the VLIW simulator computes exactly what the original
 * sequential program computes (return value, final memory, and the
 * region-root control trace). This exercises renaming, path
 * predicates, speculation, guarded stores, exit reconciliation
 * copies, tail duplication and dominator parallelism end to end.
 */

#include <gtest/gtest.h>

#include "sched/pipeline.h"
#include "vliw/equivalence.h"
#include "workloads/profiler.h"
#include "workloads/synthetic.h"

namespace treegion {
namespace {

using sched::Heuristic;
using sched::RegionScheme;

struct Config
{
    uint64_t seed;
    RegionScheme scheme;
    Heuristic heuristic;
    int width;
};

class EquivalenceProperty : public ::testing::TestWithParam<Config>
{
};

TEST_P(EquivalenceProperty, ScheduleComputesSequentialResults)
{
    const Config config = GetParam();
    workloads::GenParams p;
    p.seed = config.seed;
    p.top_units = 8;
    p.max_depth = 3;
    p.mem_words = 2048;
    auto mod = workloads::generateProgram("prog", p);
    ir::Function &original = mod->function("main");
    workloads::profileFunction(original, p.mem_words);

    ir::Function transformed = original.clone();
    sched::PipelineOptions options;
    options.scheme = config.scheme;
    options.model = sched::MachineModel::custom(config.width);
    options.sched.heuristic = config.heuristic;
    const auto result = sched::runPipeline(transformed, options);

    const auto problems = result.regions.validate(transformed);
    ASSERT_TRUE(problems.empty()) << problems.front();

    for (uint64_t input = 0; input < 4; ++input) {
        auto memory =
            workloads::makeInputMemory(p.mem_words, 7777 + input, 100);
        const auto report = vliw::checkEquivalence(
            original, transformed, result.schedule, memory);
        ASSERT_FALSE(report.incomplete) << report.detail;
        EXPECT_TRUE(report.ok)
            << "seed=" << config.seed << " scheme="
            << sched::regionSchemeName(config.scheme) << " heuristic="
            << sched::heuristicName(config.heuristic) << " width="
            << config.width << " input=" << input << ": "
            << report.detail;
    }
}

std::vector<Config>
makeConfigs()
{
    std::vector<Config> configs;
    const RegionScheme schemes[] = {
        RegionScheme::BasicBlock,      RegionScheme::Slr,
        RegionScheme::Superblock,      RegionScheme::Treegion,
        RegionScheme::TreegionTailDup, RegionScheme::Hyperblock};
    const Heuristic heuristics[] = {
        Heuristic::DependenceHeight, Heuristic::ExitCount,
        Heuristic::GlobalWeight, Heuristic::WeightedCount};
    // Cross seeds with schemes; rotate heuristics and widths so every
    // (scheme, heuristic) and (scheme, width) pair appears.
    const int widths[] = {1, 2, 4, 8};
    int rotation = 0;
    for (uint64_t seed : {11u, 22u, 33u, 44u}) {
        for (const RegionScheme scheme : schemes) {
            configs.push_back({seed, scheme,
                               heuristics[rotation % 4],
                               widths[(rotation / 2) % 4]});
            ++rotation;
        }
    }
    return configs;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EquivalenceProperty,
                         ::testing::ValuesIn(makeConfigs()));

TEST(EquivalenceEdgeCases, PbrMaterializationStaysCorrect)
{
    workloads::GenParams p;
    p.seed = 5150;
    p.top_units = 6;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("prog", p);
    ir::Function &original = mod->function("main");
    workloads::profileFunction(original, p.mem_words);

    ir::Function transformed = original.clone();
    sched::PipelineOptions options;
    options.scheme = RegionScheme::Treegion;
    options.model = sched::MachineModel::wide4U();
    options.sched.materialize_pbr = true;
    const auto result = sched::runPipeline(transformed, options);
    auto memory = workloads::makeInputMemory(p.mem_words, 31, 100);
    const auto report = vliw::checkEquivalence(original, transformed,
                                               result.schedule, memory);
    EXPECT_TRUE(report.ok) << report.detail;
}

TEST(EquivalenceEdgeCases, NoDominatorParallelismStaysCorrect)
{
    workloads::GenParams p;
    p.seed = 616;
    p.top_units = 6;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("prog", p);
    ir::Function &original = mod->function("main");
    workloads::profileFunction(original, p.mem_words);

    ir::Function transformed = original.clone();
    sched::PipelineOptions options;
    options.scheme = RegionScheme::TreegionTailDup;
    options.model = sched::MachineModel::wide8U();
    options.sched.dominator_parallelism = false;
    const auto result = sched::runPipeline(transformed, options);
    auto memory = workloads::makeInputMemory(p.mem_words, 77, 100);
    const auto report = vliw::checkEquivalence(original, transformed,
                                               result.schedule, memory);
    EXPECT_TRUE(report.ok) << report.detail;
}

TEST(EquivalenceEdgeCases, FpHeavyPrograms)
{
    // Exercise the non-unit FMUL/FDIV latencies end to end.
    workloads::GenParams p;
    p.seed = 2718;
    p.top_units = 6;
    p.fp_frac = 0.3;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("prog", p);
    ir::Function &original = mod->function("main");
    workloads::profileFunction(original, p.mem_words);

    for (const RegionScheme scheme :
         {RegionScheme::Treegion, RegionScheme::Superblock}) {
        ir::Function transformed = original.clone();
        sched::PipelineOptions options;
        options.scheme = scheme;
        options.model = sched::MachineModel::wide4U();
        const auto result = sched::runPipeline(transformed, options);
        auto memory = workloads::makeInputMemory(p.mem_words, 99, 100);
        const auto report = vliw::checkEquivalence(
            original, transformed, result.schedule, memory);
        EXPECT_TRUE(report.ok)
            << sched::regionSchemeName(scheme) << ": " << report.detail;
    }
}

TEST(EquivalenceEdgeCases, WideSwitchPrograms)
{
    workloads::GenParams p;
    p.seed = 31337;
    p.top_units = 6;
    p.p_switch = 0.5;
    p.switch_width_min = 16;
    p.switch_width_max = 32;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("prog", p);
    ir::Function &original = mod->function("main");
    workloads::profileFunction(original, p.mem_words);

    ir::Function transformed = original.clone();
    sched::PipelineOptions options;
    options.scheme = RegionScheme::Treegion;
    options.model = sched::MachineModel::wide8U();
    const auto result = sched::runPipeline(transformed, options);
    for (uint64_t input = 0; input < 3; ++input) {
        auto memory =
            workloads::makeInputMemory(p.mem_words, 500 + input, 100);
        const auto report = vliw::checkEquivalence(
            original, transformed, result.schedule, memory);
        EXPECT_TRUE(report.ok) << report.detail;
    }
}

TEST(EquivalenceEdgeCases, HighlyBiasedPrograms)
{
    workloads::GenParams p;
    p.seed = 404;
    p.top_units = 6;
    p.bias = 0.99;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("prog", p);
    ir::Function &original = mod->function("main");
    workloads::profileFunction(original, p.mem_words);

    ir::Function transformed = original.clone();
    sched::PipelineOptions options;
    options.scheme = RegionScheme::TreegionTailDup;
    options.model = sched::MachineModel::wide4U();
    const auto result = sched::runPipeline(transformed, options);
    for (uint64_t input = 0; input < 3; ++input) {
        auto memory =
            workloads::makeInputMemory(p.mem_words, 600 + input, 100);
        const auto report = vliw::checkEquivalence(
            original, transformed, result.schedule, memory);
        EXPECT_TRUE(report.ok) << report.detail;
    }
}

} // namespace
} // namespace treegion
