/**
 * @file
 * Determinism proof for the parallel compilation driver: compiling a
 * batch of (function x configuration) jobs through
 * runPipelineParallel must produce results bit-identical to the
 * sequential runPipeline path, for any worker count, in input order.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "ir/parser.h"
#include "ir/printer.h"
#include "sched/pipeline.h"
#include "workloads/profiler.h"
#include "workloads/spec_proxy.h"

namespace treegion::sched {
namespace {

/**
 * Canonical text form of everything a pipeline run produced:
 * schedules (per region, in root order), exits with bit-exact
 * weights, statistics, and the hexfloat estimated time. Two runs are
 * "the same" iff their fingerprints are string-equal.
 */
std::string
fingerprint(const PipelineResult &r, int issue_width)
{
    std::ostringstream os;
    os << std::hexfloat;
    os << "time=" << r.estimated_time
       << " expansion=" << r.code_expansion
       << " regions=" << r.region_stats.num_regions
       << " renamed=" << r.total_sched_stats.renamed_defs
       << " copies=" << r.total_sched_stats.exit_copies
       << " spec=" << r.total_sched_stats.speculated_ops
       << " elided=" << r.total_sched_stats.elided_ops << "\n";

    std::vector<ir::BlockId> roots;
    for (const auto &[root, rs] : r.schedule.regions)
        roots.push_back(root);
    std::sort(roots.begin(), roots.end());
    for (const ir::BlockId root : roots) {
        const RegionSchedule &rs = r.schedule.regions.at(root);
        os << "region bb" << root << " len=" << rs.length << "\n"
           << rs.str(issue_width);
        for (const ScheduledExit &exit : rs.exits) {
            os << "exit bb" << exit.from << "->bb" << exit.target
               << " cycle=" << exit.cycle << " ret=" << exit.is_ret
               << " w=" << exit.weight
               << " copies=" << exit.copies.size() << "\n";
        }
    }
    return os.str();
}

/** Two small profiled proxies plus the paper's config grid. */
class ParallelPipelineTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto proxies = workloads::specint95Proxies();
        // compress and li: the two smallest proxies keep the x3
        // thread-count sweep fast.
        for (const size_t idx : {size_t{0}, size_t{4}}) {
            auto mod = workloads::buildProxy(proxies[idx]);
            workloads::profileFunction(mod->function("main"),
                                       proxies[idx].params.mem_words);
            modules_.push_back(std::move(mod));
        }

        const RegionScheme schemes[] = {
            RegionScheme::BasicBlock,
            RegionScheme::Superblock,
            RegionScheme::Treegion,
            RegionScheme::TreegionTailDup,
        };
        const Heuristic heuristics[] = {
            Heuristic::GlobalWeight,
            Heuristic::DependenceHeight,
        };
        for (const auto &mod : modules_) {
            for (const auto scheme : schemes) {
                for (const auto heuristic : heuristics) {
                    PipelineJob job;
                    job.fn = &mod->function("main");
                    job.options.scheme = scheme;
                    job.options.sched.heuristic = heuristic;
                    job.options.model = MachineModel::wide4U();
                    job.label = regionSchemeName(scheme) + "/" +
                                heuristicName(heuristic);
                    jobs_.push_back(std::move(job));
                }
            }
        }
    }

    std::vector<std::unique_ptr<ir::Module>> modules_;
    std::vector<PipelineJob> jobs_;
};

TEST_F(ParallelPipelineTest, ParallelMatchesSequentialBitExactly)
{
    // Sequential reference: runPipeline on a private clone per job.
    std::vector<std::string> reference;
    for (const PipelineJob &job : jobs_) {
        ir::Function clone = job.fn->clone();
        const PipelineResult result =
            runPipeline(clone, job.options);
        reference.push_back(
            fingerprint(result, job.options.model.issue_width));
    }

    for (const size_t threads : {1u, 2u, 8u}) {
        const auto results = runPipelineParallel(jobs_, threads);
        ASSERT_EQ(results.size(), jobs_.size())
            << "threads=" << threads;
        for (size_t i = 0; i < results.size(); ++i) {
            // Input order is preserved...
            EXPECT_EQ(results[i].label, jobs_[i].label);
            // ...and every schedule, statistic and estimate is
            // bit-identical to the sequential compilation.
            EXPECT_EQ(fingerprint(results[i].result,
                                  jobs_[i].options.model.issue_width),
                      reference[i])
                << "job " << jobs_[i].label << " threads=" << threads;
        }
    }
}

TEST_F(ParallelPipelineTest, RepeatedParallelRunsAreIdentical)
{
    const auto first = runPipelineParallel(jobs_, 8);
    const auto second = runPipelineParallel(jobs_, 8);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(fingerprint(first[i].result,
                              jobs_[i].options.model.issue_width),
                  fingerprint(second[i].result,
                              jobs_[i].options.model.issue_width));
    }
}

TEST_F(ParallelPipelineTest, InputFunctionsAreNeverMutated)
{
    std::vector<size_t> ops_before, blocks_before;
    for (const auto &mod : modules_) {
        ops_before.push_back(mod->function("main").totalOps());
        blocks_before.push_back(mod->function("main").numBlockIds());
    }
    // Tail-duplicating schemes are in the grid: had any job compiled
    // the shared input in place, op/block counts would grow.
    runPipelineParallel(jobs_, 4);
    for (size_t m = 0; m < modules_.size(); ++m) {
        EXPECT_EQ(modules_[m]->function("main").totalOps(),
                  ops_before[m]);
        EXPECT_EQ(modules_[m]->function("main").numBlockIds(),
                  blocks_before[m]);
    }
}

TEST_F(ParallelPipelineTest, MutatedCloneIsReturnedPerJob)
{
    // A tree-td job's result carries the tail-duplicated clone, and
    // distinct jobs get distinct clones.
    const auto results = runPipelineParallel(jobs_, 2);
    for (size_t i = 0; i < results.size(); ++i) {
        if (jobs_[i].options.scheme != RegionScheme::TreegionTailDup)
            continue;
        EXPECT_GE(results[i].fn.totalOps(), jobs_[i].fn->totalOps())
            << jobs_[i].label;
        EXPECT_NE(&results[i].fn, jobs_[i].fn);
    }
}

TEST_F(ParallelPipelineTest, EmptyBatchIsFine)
{
    const auto results = runPipelineParallel({}, 4);
    EXPECT_TRUE(results.empty());
}

TEST_F(ParallelPipelineTest, RemarkStreamsAreBitIdenticalAcrossThreads)
{
    std::vector<PipelineJob> jobs = jobs_;
    for (PipelineJob &job : jobs)
        job.collect_remarks = true;

    const auto sequential = runPipelineParallel(jobs, 1);
    size_t total = 0;
    for (const auto &jr : sequential)
        total += jr.remarks.size();
    ASSERT_GT(total, 0u) << "collect_remarks produced nothing";

    for (const size_t threads : {2u, 8u}) {
        const auto parallel = runPipelineParallel(jobs, threads);
        ASSERT_EQ(parallel.size(), sequential.size());
        for (size_t i = 0; i < parallel.size(); ++i) {
            EXPECT_EQ(parallel[i].remarks.toJsonLines(),
                      sequential[i].remarks.toJsonLines())
                << "job " << jobs[i].label << " threads=" << threads;
        }
    }
}

TEST_F(ParallelPipelineTest, RemarksOffByDefault)
{
    for (const auto &jr : runPipelineParallel(jobs_, 2))
        EXPECT_EQ(jr.remarks.size(), 0u) << jr.label;
}

TEST_F(ParallelPipelineTest, RemarksSurvivePrintParseRoundTrip)
{
    // Remark streams must survive a textual round trip of the input:
    // printing a module (weights included) and parsing it back yields
    // the same decisions, remark for remark. Printing renumbers op
    // ids into file order and rounds weights to %.6g, so normalize
    // each module through one print/parse cycle first — from that
    // fixpoint on, the text form is stable.
    auto textCycle = [](const ir::Module &mod) {
        std::ostringstream os;
        ir::printModule(os, mod);
        std::string error;
        auto back = ir::parseModule(os.str(), &error);
        EXPECT_NE(back, nullptr) << error;
        return back;
    };
    std::vector<std::unique_ptr<ir::Module>> normalized, reparsed;
    for (const auto &mod : modules_) {
        normalized.push_back(textCycle(*mod));
        ASSERT_NE(normalized.back(), nullptr);
        reparsed.push_back(textCycle(*normalized.back()));
        ASSERT_NE(reparsed.back(), nullptr);
    }

    std::vector<PipelineJob> jobs = jobs_, jobs2 = jobs_;
    const size_t per_module = jobs.size() / modules_.size();
    for (size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].collect_remarks = true;
        jobs[i].fn = &normalized[i / per_module]->function("main");
        jobs2[i].collect_remarks = true;
        jobs2[i].fn = &reparsed[i / per_module]->function("main");
    }
    const auto original = runPipelineParallel(jobs, 2);
    const auto round_tripped = runPipelineParallel(jobs2, 2);
    ASSERT_EQ(original.size(), round_tripped.size());
    size_t total = 0;
    for (size_t i = 0; i < original.size(); ++i) {
        total += original[i].remarks.size();
        EXPECT_EQ(original[i].remarks.toJsonLines(),
                  round_tripped[i].remarks.toJsonLines())
            << "job " << jobs[i].label;
    }
    EXPECT_GT(total, 0u);
}

} // namespace
} // namespace treegion::sched
