/**
 * @file
 * Unit tests for the IR layer: opcodes, ops, blocks, functions,
 * builder, verifier, cloning.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/module.h"
#include "ir/verifier.h"

namespace treegion::ir {
namespace {

TEST(Opcode, MetadataMatchesPaperLatencies)
{
    EXPECT_EQ(opcodeInfo(Opcode::ADD).latency, 1);
    EXPECT_EQ(opcodeInfo(Opcode::LD).latency, 2);
    EXPECT_EQ(opcodeInfo(Opcode::FMUL).latency, 3);
    EXPECT_EQ(opcodeInfo(Opcode::FDIV).latency, 9);
    EXPECT_TRUE(opcodeInfo(Opcode::BRCT).isBranch);
    EXPECT_TRUE(opcodeInfo(Opcode::LD).isLoad);
    EXPECT_TRUE(opcodeInfo(Opcode::ST).isStore);
}

TEST(Opcode, ParseRoundTrip)
{
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
        const Opcode op = static_cast<Opcode>(i);
        Opcode parsed;
        ASSERT_TRUE(parseOpcode(opcodeName(op), parsed));
        EXPECT_EQ(parsed, op);
    }
    Opcode dummy;
    EXPECT_FALSE(parseOpcode("NOSUCH", dummy));
}

TEST(Opcode, EvalCmpAllKinds)
{
    EXPECT_TRUE(evalCmp(CmpKind::EQ, 3, 3));
    EXPECT_TRUE(evalCmp(CmpKind::NE, 3, 4));
    EXPECT_TRUE(evalCmp(CmpKind::LT, -1, 0));
    EXPECT_TRUE(evalCmp(CmpKind::LE, 2, 2));
    EXPECT_TRUE(evalCmp(CmpKind::GT, 5, 4));
    EXPECT_TRUE(evalCmp(CmpKind::GE, 5, 5));
    EXPECT_FALSE(evalCmp(CmpKind::LT, 1, 1));
}

TEST(Opcode, NegateCmpKindIsInvolution)
{
    for (CmpKind k : {CmpKind::EQ, CmpKind::NE, CmpKind::LT,
                      CmpKind::LE, CmpKind::GT, CmpKind::GE}) {
        EXPECT_EQ(negateCmpKind(negateCmpKind(k)), k);
        // The negation must be the logical complement.
        for (int64_t a = -2; a <= 2; ++a) {
            for (int64_t b = -2; b <= 2; ++b) {
                EXPECT_NE(evalCmp(k, a, b),
                          evalCmp(negateCmpKind(k), a, b));
            }
        }
    }
}

TEST(Opcode, EvalAluDismissible)
{
    EXPECT_EQ(evalAlu(Opcode::FDIV, 10, 0), 0);
    EXPECT_EQ(evalAlu(Opcode::FDIV, INT64_MIN, -1), 0);
    EXPECT_EQ(evalAlu(Opcode::REM, 10, 0), 0);
    EXPECT_EQ(evalAlu(Opcode::REM, 10, 3), 1);
    EXPECT_EQ(evalAlu(Opcode::SHL, 1, 64 + 3), 8);  // masked shift
}

TEST(Op, UsedRegsIncludesGuard)
{
    Op op = makeStore(gpr(1), 4, Operand::makeReg(gpr(2)));
    op.guard = pred(3);
    const auto uses = op.usedRegs();
    EXPECT_EQ(uses.size(), 3u);
    EXPECT_EQ(uses[2], pred(3));
}

TEST(Op, RenameUsesAndDefs)
{
    Op op = makeBinary(Opcode::ADD, gpr(5), Operand::makeReg(gpr(1)),
                       Operand::makeReg(gpr(1)));
    op.renameUses(gpr(1), gpr(9));
    EXPECT_EQ(op.srcs[0].reg, gpr(9));
    EXPECT_EQ(op.srcs[1].reg, gpr(9));
    op.renameDefs(gpr(5), gpr(7));
    EXPECT_EQ(op.dsts[0], gpr(7));
}

TEST(Op, StrFormats)
{
    EXPECT_EQ(makeMovi(gpr(1), -5).str(), "r1 = MOVI -5");
    EXPECT_EQ(makeLoad(gpr(2), gpr(0), 8).str(), "r2 = LD [r0 + 8]");
    EXPECT_EQ(makeStore(gpr(0), 4, Operand::makeImm(7)).str(),
              "ST [r0 + 4], 7");
    EXPECT_EQ(makeBrct(pred(1), 3, 4).str(), "BRCT p1, bb3, bb4");
    EXPECT_EQ(makeBru(9).str(), "BRU bb9");
    Op cmpp = makeCmpp(CmpKind::GT, pred(1), pred(2),
                       Operand::makeReg(gpr(1)), Operand::makeReg(gpr(2)));
    EXPECT_EQ(cmpp.str(), "p1,p2 = CMPP.GT r1, r2");
}

TEST(Function, CreateBlocksAndEdges)
{
    Function fn("f");
    const BlockId a = fn.createBlock();
    const BlockId b = fn.createBlock();
    const BlockId c = fn.createBlock();
    fn.setEntry(a);
    Builder builder(fn);
    builder.setInsertPoint(a);
    builder.condBr(CmpKind::LT, Builder::I(0), Builder::I(1), b, c);
    builder.setInsertPoint(b);
    builder.ret(Builder::I(1));
    builder.setInsertPoint(c);
    builder.ret(Builder::I(2));

    EXPECT_EQ(fn.block(a).successors(), (std::vector<BlockId>{b, c}));
    EXPECT_EQ(fn.predsOf(b), (std::vector<BlockId>{a}));
    EXPECT_FALSE(fn.isMergePoint(b));
}

TEST(Function, MergePointDetection)
{
    Function fn("f");
    const BlockId a = fn.createBlock();
    const BlockId b = fn.createBlock();
    const BlockId c = fn.createBlock();
    const BlockId join = fn.createBlock();
    fn.setEntry(a);
    Builder builder(fn);
    builder.setInsertPoint(a);
    builder.condBr(CmpKind::LT, Builder::I(0), Builder::I(1), b, c);
    builder.setInsertPoint(b);
    builder.bru(join);
    builder.setInsertPoint(c);
    builder.bru(join);
    builder.setInsertPoint(join);
    builder.ret(Builder::I(0));
    EXPECT_TRUE(fn.isMergePoint(join));
    EXPECT_FALSE(fn.isMergePoint(b));
}

TEST(Function, RetargetEdgeUpdatesPreds)
{
    Function fn("f");
    const BlockId a = fn.createBlock();
    const BlockId b = fn.createBlock();
    const BlockId c = fn.createBlock();
    fn.setEntry(a);
    Builder builder(fn);
    builder.setInsertPoint(a);
    builder.bru(b);
    builder.setInsertPoint(b);
    builder.ret(Builder::I(0));
    builder.setInsertPoint(c);
    builder.ret(Builder::I(0));

    fn.retargetEdge(a, b, c);
    EXPECT_EQ(fn.predsOf(c), (std::vector<BlockId>{a}));
    EXPECT_TRUE(fn.predsOf(b).empty());
}

TEST(Function, CloneBlockSharesDupGroup)
{
    Function fn("f");
    const BlockId a = fn.createBlock();
    fn.setEntry(a);
    Builder builder(fn);
    builder.setInsertPoint(a);
    builder.movi(3);
    builder.ret(Builder::I(0));

    const BlockId copy = fn.cloneBlock(a);
    EXPECT_EQ(fn.block(copy).originalId(), a);
    EXPECT_EQ(fn.block(copy).ops().size(), fn.block(a).ops().size());
    EXPECT_NE(fn.block(copy).ops()[0].dupGroup, 0u);
    EXPECT_EQ(fn.block(copy).ops()[0].dupGroup,
              fn.block(a).ops()[0].dupGroup);
    // Fresh op ids on the clone.
    EXPECT_NE(fn.block(copy).ops()[0].id, fn.block(a).ops()[0].id);
}

TEST(Function, CloneFunctionDeepCopies)
{
    Function fn("f");
    const BlockId a = fn.createBlock();
    fn.setEntry(a);
    Builder builder(fn);
    builder.setInsertPoint(a);
    const Reg r = builder.movi(3);
    builder.ret(Builder::R(r));

    Function copy = fn.clone();
    copy.block(a).setWeight(123.0);
    EXPECT_EQ(fn.block(a).weight(), 0.0);
    EXPECT_EQ(copy.entry(), fn.entry());
    EXPECT_EQ(copy.totalOps(), fn.totalOps());
}

TEST(Function, RemoveUnreachableBlocks)
{
    Function fn("f");
    const BlockId a = fn.createBlock();
    const BlockId b = fn.createBlock();
    const BlockId dead1 = fn.createBlock();
    const BlockId dead2 = fn.createBlock();
    fn.setEntry(a);
    Builder builder(fn);
    builder.setInsertPoint(a);
    builder.bru(b);
    builder.setInsertPoint(b);
    builder.ret(Builder::I(0));
    builder.setInsertPoint(dead1);
    builder.bru(dead2);
    builder.setInsertPoint(dead2);
    builder.bru(dead1);

    const auto removed = fn.removeUnreachableBlocks();
    EXPECT_EQ(removed.size(), 2u);
    EXPECT_FALSE(fn.hasBlock(dead1));
    EXPECT_FALSE(fn.hasBlock(dead2));
    EXPECT_TRUE(fn.hasBlock(a));
}

TEST(Verifier, AcceptsWellFormed)
{
    Function fn("f");
    const BlockId a = fn.createBlock();
    fn.setEntry(a);
    Builder builder(fn);
    builder.setInsertPoint(a);
    const Reg x = builder.movi(1);
    builder.ret(Builder::R(x));
    EXPECT_TRUE(verifyFunction(fn, VerifyLevel::Schedulable).empty());
}

TEST(Verifier, RejectsMissingTerminator)
{
    Function fn("f");
    const BlockId a = fn.createBlock();
    fn.setEntry(a);
    fn.appendOp(a, makeMovi(gpr(0), 1));
    const auto problems = verifyFunction(fn, VerifyLevel::Structural);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("no terminator"), std::string::npos);
}

TEST(Verifier, RejectsBranchToDeadBlock)
{
    Function fn("f");
    const BlockId a = fn.createBlock();
    const BlockId b = fn.createBlock();
    fn.setEntry(a);
    Builder builder(fn);
    builder.setInsertPoint(a);
    builder.bru(b);
    fn.appendTerminator(b, makeRet(Operand::makeImm(0)));
    // Manually break the CFG.
    fn.block(a).terminator().targets[0] = 77;
    fn.invalidatePreds();
    const auto problems = verifyFunction(fn, VerifyLevel::Structural);
    ASSERT_FALSE(problems.empty());
}

TEST(Verifier, RejectsGuardInSequentialIR)
{
    Function fn("f");
    const BlockId a = fn.createBlock();
    fn.setEntry(a);
    Op movi = makeMovi(gpr(0), 1);
    movi.guard = pred(0);
    fn.reserveRegs(1, 1, 0);
    fn.appendOp(a, std::move(movi));
    fn.appendTerminator(a, makeRet(Operand::makeImm(0)));
    const auto structural = verifyFunction(fn, VerifyLevel::Structural);
    EXPECT_TRUE(structural.empty());
    const auto sched = verifyFunction(fn, VerifyLevel::Schedulable);
    ASSERT_FALSE(sched.empty());
}

TEST(Verifier, RejectsUnreachableBlock)
{
    Function fn("f");
    const BlockId a = fn.createBlock();
    const BlockId dead = fn.createBlock();
    fn.setEntry(a);
    fn.appendTerminator(a, makeRet(Operand::makeImm(0)));
    fn.appendTerminator(dead, makeRet(Operand::makeImm(0)));
    const auto problems = verifyFunction(fn, VerifyLevel::Structural);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("unreachable"), std::string::npos);
}

TEST(Module, FunctionsByName)
{
    Module mod("m");
    mod.createFunction("a");
    mod.createFunction("b");
    EXPECT_TRUE(mod.hasFunction("a"));
    EXPECT_FALSE(mod.hasFunction("c"));
    EXPECT_EQ(mod.function("b").name(), "b");
}

} // namespace
} // namespace treegion::ir
