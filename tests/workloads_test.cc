/**
 * @file
 * Workload generator and SPECint95 proxy tests: determinism, verifier
 * compliance, structural parameters actually steering the output, and
 * proxy statistics landing in the paper's qualitative ranges.
 */

#include <gtest/gtest.h>

#include "analysis/profile.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "region/formation.h"
#include "region/region_stats.h"
#include "vliw/interpreter.h"
#include "workloads/profiler.h"
#include "workloads/spec_proxy.h"

namespace treegion::workloads {
namespace {

TEST(Generator, Deterministic)
{
    GenParams p;
    p.seed = 99;
    auto a = generateProgram("a", p);
    auto b = generateProgram("b", p);
    // Same seed, same structure (module names differ).
    ir::Function &fa = a->function("main");
    ir::Function &fb = b->function("main");
    EXPECT_EQ(fa.totalOps(), fb.totalOps());
    EXPECT_EQ(fa.numBlockIds(), fb.numBlockIds());
}

TEST(Generator, SeedChangesProgram)
{
    GenParams p;
    p.seed = 1;
    auto a = generateProgram("a", p);
    p.seed = 2;
    auto b = generateProgram("b", p);
    EXPECT_NE(a->function("main").totalOps(),
              b->function("main").totalOps());
}

TEST(Generator, AllProgramsVerifyAndTerminate)
{
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        GenParams p;
        p.seed = seed;
        p.top_units = 8;
        p.mem_words = 1024;
        auto mod = generateProgram("x", p);
        ir::Function &fn = mod->function("main");
        const auto problems =
            ir::verifyFunction(fn, ir::VerifyLevel::Schedulable);
        EXPECT_TRUE(problems.empty())
            << "seed " << seed << ": " << problems.front();
        auto mem = makeInputMemory(1024, seed, 100);
        const auto run = vliw::runSequential(fn, std::move(mem));
        EXPECT_TRUE(run.completed) << "seed " << seed;
        // Well-formed programs never store out of bounds.
        EXPECT_EQ(run.wrapped_stores, 0u) << "seed " << seed;
    }
}

TEST(Generator, StructureKnobsSteerOutput)
{
    GenParams base;
    base.seed = 50;
    base.top_units = 12;
    base.p_if = base.p_ifelse = base.p_ladder = base.p_loop = 0.0;
    base.p_switch = 0.0;
    base.p_straight = 1.0;
    auto straight = generateProgram("s", base);
    // Pure straight-line: a single block.
    EXPECT_EQ(straight->function("main").blockIds().size(), 1u);

    GenParams switchy = base;
    switchy.p_straight = 0.0;
    switchy.p_switch = 1.0;
    auto sw = generateProgram("w", switchy);
    size_t mwbrs = 0;
    sw->function("main").forEachBlock([&](const ir::BasicBlock &b) {
        mwbrs += (b.terminator().opcode == ir::Opcode::MWBR);
    });
    EXPECT_GT(mwbrs, 0u);
}

TEST(Generator, InputMemoryLayout)
{
    const auto mem = makeInputMemory(512, 3, 100);
    ASSERT_EQ(mem.size(), 512u);
    for (size_t i = 0; i < 512 - kReservedWords; ++i) {
        EXPECT_GE(mem[i], 0);
        EXPECT_LT(mem[i], 100);
    }
    for (size_t i = 512 - kReservedWords; i < 512; ++i)
        EXPECT_EQ(mem[i], 0);
}

TEST(Proxies, EightBenchmarksInPaperOrder)
{
    const auto proxies = specint95Proxies();
    ASSERT_EQ(proxies.size(), 8u);
    const char *names[] = {"compress", "gcc", "go", "ijpeg",
                           "li", "m88ksim", "perl", "vortex"};
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(proxies[i].name, names[i]);
}

TEST(Proxies, RegionStatisticsShapes)
{
    // Table 1 / Table 2 qualitative shapes: treegions hold a few
    // blocks and clearly more ops than SLRs; gcc and perl have the
    // widest treegions (their multiway branches).
    double tree_ops_total = 0.0, slr_ops_total = 0.0;
    size_t gcc_max = 0, compress_max = 0;
    for (const auto &spec : specint95Proxies()) {
        auto mod = buildProxy(spec);
        ir::Function &fn = mod->function("main");
        profileFunction(fn, spec.params.mem_words);

        ir::Function ftree = fn.clone();
        const auto tree_stats = region::computeRegionStats(
            ftree, region::formTreegions(ftree));
        ir::Function fslr = fn.clone();
        const auto slr_stats = region::computeRegionStats(
            fslr, region::formSlrs(fslr));

        EXPECT_GT(tree_stats.avg_blocks, 1.5) << spec.name;
        EXPECT_LT(tree_stats.avg_blocks, 8.0) << spec.name;
        EXPECT_GT(slr_stats.avg_blocks, 1.0) << spec.name;
        EXPECT_LT(slr_stats.avg_blocks, 3.0) << spec.name;
        EXPECT_GT(tree_stats.avg_ops, slr_stats.avg_ops) << spec.name;

        tree_ops_total += tree_stats.avg_ops;
        slr_ops_total += slr_stats.avg_ops;
        if (spec.name == "gcc")
            gcc_max = tree_stats.max_blocks;
        if (spec.name == "compress")
            compress_max = tree_stats.max_blocks;
    }
    // Treegions carry roughly 2x the ops of SLRs on average (paper:
    // 20-25 vs 8-12).
    EXPECT_GT(tree_ops_total, 1.5 * slr_ops_total);
    // gcc's widest treegion dwarfs compress's (384 vs 8 in Table 1).
    EXPECT_GT(gcc_max, 2 * compress_max);
}

TEST(Proxies, ProfilesAreConsistentAndInputDependent)
{
    const auto proxies = specint95Proxies();
    const auto &spec = proxies[1];  // gcc
    auto mod = buildProxy(spec);
    ir::Function &fn = mod->function("main");

    ProfileOptions train;
    train.input_seed = 42;
    profileFunction(fn, spec.params.mem_words, train);
    EXPECT_TRUE(analysis::checkProfileConsistency(fn).empty());
    const double w_train = analysis::weightedOpCount(fn);

    ProfileOptions reference;
    reference.input_seed = 4242;
    profileFunction(fn, spec.params.mem_words, reference);
    const double w_ref = analysis::weightedOpCount(fn);
    EXPECT_NE(w_train, w_ref);
}

TEST(Proxies, GccHasZeroWeightSwitchArms)
{
    // The narrowed selectors leave some multiway-branch destinations
    // with zero profile weight - the shape behind the exit-count
    // heuristic's flaw.
    const auto spec = specint95Proxies()[1];
    auto mod = buildProxy(spec);
    ir::Function &fn = mod->function("main");
    profileFunction(fn, spec.params.mem_words);

    size_t zero_arms = 0, hot_arms = 0;
    fn.forEachBlock([&](const ir::BasicBlock &b) {
        if (b.terminator().opcode != ir::Opcode::MWBR)
            return;
        if (b.weight() <= 0.0)
            return;
        for (double w : b.edgeWeights()) {
            if (w == 0.0)
                ++zero_arms;
            else
                ++hot_arms;
        }
    });
    EXPECT_GT(zero_arms, 0u);
    EXPECT_GT(hot_arms, 0u);
    EXPECT_GT(zero_arms, hot_arms);
}

} // namespace
} // namespace treegion::workloads
