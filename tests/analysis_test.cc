/**
 * @file
 * Tests for dominators, liveness, loops, and profile utilities.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/dominators.h"
#include "analysis/liveness.h"
#include "analysis/loops.h"
#include "analysis/profile.h"
#include "ir/builder.h"
#include "workloads/profiler.h"
#include "workloads/synthetic.h"

namespace treegion::analysis {
namespace {

using ir::BlockId;
using ir::Builder;
using ir::CmpKind;
using ir::Function;
using ir::Reg;

/** entry -> (b, c) -> join -> ret, plus a loop around body. */
struct DiamondLoop
{
    Function fn{"f"};
    BlockId entry, b, c, join, header, body, exit;

    DiamondLoop()
    {
        Builder bu(fn);
        entry = bu.newBlock();
        b = bu.newBlock();
        c = bu.newBlock();
        join = bu.newBlock();
        header = bu.newBlock();
        body = bu.newBlock();
        exit = bu.newBlock();
        fn.setEntry(entry);

        bu.setInsertPoint(entry);
        const Reg base = bu.movi(0);
        const Reg x = bu.load(base, 1);
        bu.condBr(CmpKind::LT, Builder::R(x), Builder::I(50), b, c);

        bu.setInsertPoint(b);
        bu.bru(join);
        bu.setInsertPoint(c);
        bu.bru(join);

        bu.setInsertPoint(join);
        const Reg i = bu.movi(0);
        bu.bru(header);

        bu.setInsertPoint(header);
        bu.condBr(CmpKind::LT, Builder::R(i), Builder::I(3), body, exit);

        bu.setInsertPoint(body);
        fn.appendOp(body, ir::makeBinary(ir::Opcode::ADD, i,
                                         Builder::R(i), Builder::I(1)));
        bu.bru(header);

        bu.setInsertPoint(exit);
        bu.ret(Builder::R(x));
    }
};

TEST(Dominators, DiamondStructure)
{
    DiamondLoop g;
    DominatorTree dom(g.fn);
    EXPECT_EQ(dom.idom(g.entry), ir::kNoBlock);
    EXPECT_EQ(dom.idom(g.b), g.entry);
    EXPECT_EQ(dom.idom(g.c), g.entry);
    EXPECT_EQ(dom.idom(g.join), g.entry);
    EXPECT_EQ(dom.idom(g.header), g.join);
    EXPECT_EQ(dom.idom(g.body), g.header);
    EXPECT_TRUE(dom.dominates(g.entry, g.exit));
    EXPECT_TRUE(dom.dominates(g.header, g.body));
    EXPECT_FALSE(dom.dominates(g.b, g.join));
    EXPECT_TRUE(dom.dominates(g.join, g.join));
}

TEST(Dominators, ReversePostorderStartsAtEntry)
{
    DiamondLoop g;
    const auto rpo = reversePostorder(g.fn);
    ASSERT_FALSE(rpo.empty());
    EXPECT_EQ(rpo.front(), g.entry);
    EXPECT_EQ(rpo.size(), 7u);
}

TEST(Dominators, ChildrenInverse)
{
    DiamondLoop g;
    DominatorTree dom(g.fn);
    const auto kids = dom.children(g.entry);
    EXPECT_NE(std::find(kids.begin(), kids.end(), g.join), kids.end());
}

TEST(Loops, DetectsNaturalLoop)
{
    DiamondLoop g;
    LoopInfo loops(g.fn);
    ASSERT_EQ(loops.backEdges().size(), 1u);
    EXPECT_EQ(loops.backEdges()[0].second, g.header);
    ASSERT_EQ(loops.loops().size(), 1u);
    const Loop &loop = loops.loops()[0];
    EXPECT_EQ(loop.header, g.header);
    EXPECT_TRUE(loop.blocks.count(g.body));
    EXPECT_FALSE(loop.blocks.count(g.exit));
    EXPECT_TRUE(loops.isHeader(g.header));
    EXPECT_FALSE(loops.isHeader(g.body));
}

TEST(Loops, AcyclicHasNone)
{
    Function fn("f");
    Builder bu(fn);
    const BlockId a = bu.newBlock();
    fn.setEntry(a);
    bu.setInsertPoint(a);
    bu.ret(Builder::I(0));
    LoopInfo loops(fn);
    EXPECT_TRUE(loops.backEdges().empty());
}

TEST(Liveness, ValueLiveAcrossBranch)
{
    DiamondLoop g;
    Liveness live(g.fn);
    // x (the load result) is returned in exit, so it is live into
    // every block on the way.
    const Reg x = ir::gpr(1);
    EXPECT_TRUE(live.liveIn(g.join, x));
    EXPECT_TRUE(live.liveIn(g.exit, x));
    EXPECT_TRUE(live.liveOut(g.entry, x));
    // The loop counter is live around the loop but not into entry.
    const Reg i = ir::gpr(2);
    EXPECT_TRUE(live.liveIn(g.header, i));
    EXPECT_FALSE(live.liveIn(g.entry, i));
}

TEST(Liveness, DeadAfterLastUse)
{
    Function fn("f");
    Builder bu(fn);
    const BlockId a = bu.newBlock();
    const BlockId b = bu.newBlock();
    fn.setEntry(a);
    bu.setInsertPoint(a);
    const Reg t = bu.movi(1);
    const Reg u = bu.binary(ir::Opcode::ADD, Builder::R(t),
                            Builder::I(1));
    bu.bru(b);
    bu.setInsertPoint(b);
    bu.ret(Builder::R(u));
    Liveness live(fn);
    EXPECT_TRUE(live.liveIn(b, u));
    EXPECT_FALSE(live.liveIn(b, t));
}

TEST(Profile, UniformProfileIsConsistent)
{
    DiamondLoop g;
    applyUniformProfile(g.fn, 10.0);
    // Uniform edge splitting does not conserve flow at merges in
    // general; only the outgoing check is expected to hold.
    g.fn.forEachBlock([&](const ir::BasicBlock &blk) {
        double out = 0.0;
        for (double w : blk.edgeWeights())
            out += w;
        if (!blk.edgeWeights().empty())
            EXPECT_NEAR(out, blk.weight(), 1e-9);
    });
}

TEST(Profile, ProfilerProducesConsistentCounts)
{
    workloads::GenParams p;
    p.seed = 5;
    p.top_units = 5;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("x", p);
    ir::Function &fn = mod->function("main");
    const auto summary = workloads::profileFunction(fn, 1024);
    EXPECT_GT(summary.completed_runs, 0);
    EXPECT_TRUE(checkProfileConsistency(fn).empty());
    EXPECT_GT(fn.block(fn.entry()).weight(), 0.0);
}

TEST(Profile, ScaleAndClear)
{
    DiamondLoop g;
    applyUniformProfile(g.fn, 4.0);
    scaleProfile(g.fn, 0.5);
    EXPECT_DOUBLE_EQ(g.fn.block(g.entry).weight(), 2.0);
    clearProfile(g.fn);
    EXPECT_DOUBLE_EQ(g.fn.block(g.entry).weight(), 0.0);
}

TEST(Profile, DifferentInputSeedsGiveDifferentProfiles)
{
    workloads::GenParams p;
    p.seed = 8;
    p.top_units = 8;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("x", p);
    ir::Function &fn = mod->function("main");

    workloads::ProfileOptions a;
    a.input_seed = 1;
    workloads::profileFunction(fn, 1024, a);
    std::vector<double> weights_a;
    fn.forEachBlock([&](const ir::BasicBlock &blk) {
        weights_a.push_back(blk.weight());
    });

    workloads::ProfileOptions b;
    b.input_seed = 999;
    workloads::profileFunction(fn, 1024, b);
    std::vector<double> weights_b;
    fn.forEachBlock([&](const ir::BasicBlock &blk) {
        weights_b.push_back(blk.weight());
    });

    EXPECT_NE(weights_a, weights_b);
}

} // namespace
} // namespace treegion::analysis
