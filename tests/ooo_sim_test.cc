/**
 * @file
 * Tests for the out-of-order execution backend (src/ooo/).
 *
 * The contract under test is architectural equivalence: for any legal
 * FunctionSchedule and input memory, the Tomasulo/ROB model must
 * produce exactly the in-order VLIW simulator's outcome — return
 * value, memory image, region-root trace, and the architectural
 * counters — while its cycle count is its own. Coverage:
 *
 *  - the golden corpus (examples + tests/golden/inputs/) across
 *    treegion schemes x all heuristics x 4U/8U, both named configs;
 *  - stress configs that force rename stalls and a full window;
 *  - a loop (repeated branch-into-region) checking the trace;
 *  - the shared SimLimits cycle budget halting with completed=false;
 *  - a hand-built FDIV-shadow schedule where the dynamic model must
 *    beat the in-order cycle count (the reason the backend exists).
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/parser.h"
#include "ooo/ooo_sim.h"
#include "sched/pipeline.h"
#include "sched/priority.h"
#include "vliw/vliw_sim.h"
#include "workloads/profiler.h"
#include "workloads/synthetic.h"

namespace treegion::ooo {
namespace {

namespace fs = std::filesystem;

using ir::BlockId;
using ir::Builder;
using ir::Opcode;
using ir::Reg;

/** Assert the OoO architectural outcome equals the VLIW one. */
void
expectArchEqual(const vliw::VliwResult &v, const OooResult &o,
                const std::string &what)
{
    SCOPED_TRACE(what);
    ASSERT_TRUE(o.arch.completed);
    EXPECT_EQ(o.arch.ret_value, v.ret_value);
    EXPECT_EQ(o.arch.memory, v.memory);
    EXPECT_EQ(o.arch.trace, v.trace);
    EXPECT_EQ(o.arch.regions_executed, v.regions_executed);
    EXPECT_EQ(o.arch.copies_applied, v.copies_applied);
    EXPECT_EQ(o.arch.ops_executed, v.ops_executed);
    EXPECT_EQ(o.stats.retired, v.ops_executed);
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Load and profile one corpus program. */
std::unique_ptr<ir::Module>
loadProgram(const fs::path &path)
{
    std::string error;
    auto mod = ir::parseModule(readFile(path), &error);
    EXPECT_TRUE(mod) << path << ": " << error;
    if (mod)
        workloads::profileFunction(mod->function("main"),
                                   mod->memWords());
    return mod;
}

/** All corpus inputs: examples + the frozen golden fuzz programs. */
std::vector<fs::path>
corpusInputs()
{
    std::vector<fs::path> inputs;
    for (const char *dir :
         {TREEGION_EXAMPLES_DIR, TREEGION_GOLDEN_DIR "/inputs"}) {
        for (const auto &entry : fs::directory_iterator(dir)) {
            if (entry.path().extension() == ".tir")
                inputs.push_back(entry.path());
        }
    }
    std::sort(inputs.begin(), inputs.end());
    return inputs;
}

/** The compile grid the corpus sweep covers. */
std::vector<sched::PipelineOptions>
sweepConfigs()
{
    std::vector<sched::PipelineOptions> configs;
    for (const auto scheme : {sched::RegionScheme::Treegion,
                              sched::RegionScheme::TreegionTailDup}) {
        for (const sched::Heuristic heuristic : sched::kAllHeuristics) {
            for (const int width : {4, 8}) {
                sched::PipelineOptions options;
                options.scheme = scheme;
                options.model = sched::MachineModel::custom(width);
                options.sched.heuristic = heuristic;
                configs.push_back(options);
            }
        }
    }
    return configs;
}

TEST(OooConfigs, RegistryAndParsing)
{
    ASSERT_GE(oooConfigs().size(), 2u);
    OooConfig config;
    ASSERT_TRUE(parseOooConfig("ooo-small", config));
    EXPECT_EQ(config.fetch_width, 2);
    ASSERT_TRUE(parseOooConfig("ooo-wide", config));
    EXPECT_EQ(config.fetch_width, 8);
    EXPECT_GT(config.window_size, oooSmall().window_size);
    EXPECT_FALSE(parseOooConfig("ooo-bogus", config));
}

TEST(OooSim, MatchesVliwOnGoldenCorpus)
{
    for (const fs::path &input : corpusInputs()) {
        auto mod = loadProgram(input);
        ASSERT_TRUE(mod);
        const ir::Function &fn = mod->function("main");
        for (const sched::PipelineOptions &options : sweepConfigs()) {
            auto run = sched::runPipelineOnClone(fn, options);
            for (uint64_t seed : {7u, 1234u}) {
                auto mem = workloads::makeInputMemory(
                    mod->memWords(), seed, 100);
                const vliw::VliwResult v = vliw::runScheduled(
                    run.fn, run.result.schedule, mem);
                if (!v.completed)
                    continue;  // limit hit; nothing to compare
                for (const OooConfig &config : oooConfigs()) {
                    const OooResult o = runOutOfOrder(
                        run.fn, run.result.schedule, mem, config);
                    expectArchEqual(
                        v, o,
                        input.filename().string() + " / " +
                            sched::encodePipelineOptions(options) +
                            " / " + config.name);
                }
            }
        }
    }
}

/** Compile one generated program for the stress tests. */
struct Compiled
{
    std::unique_ptr<ir::Module> mod;
    size_t mem_words = 0;
    sched::ClonedPipelineRun run;

    explicit Compiled(uint64_t seed, int width = 8)
        : mod(makeProgram(seed)), mem_words(512),
          run(compile(*mod, width))
    {
    }

    static std::unique_ptr<ir::Module> makeProgram(uint64_t seed)
    {
        workloads::GenParams p;
        p.seed = seed;
        p.top_units = 6;
        p.mem_words = 512;
        auto mod = workloads::generateProgram("x", p);
        workloads::profileFunction(mod->function("main"),
                                   p.mem_words);
        return mod;
    }

    static sched::ClonedPipelineRun compile(ir::Module &mod, int width)
    {
        sched::PipelineOptions options;
        options.scheme = sched::RegionScheme::Treegion;
        options.model = sched::MachineModel::custom(width);
        return sched::runPipelineOnClone(mod.function("main"),
                                         options);
    }
};

TEST(OooSim, RenameStallsStayArchitecturallyInvisible)
{
    // One spare physical register per class: rename must stall almost
    // every cycle, and nothing architectural may change.
    Compiled c(101);
    OooConfig config = oooSmall();
    config.name = "ooo-starved";
    config.phys_gpr_headroom = 1;
    config.phys_pred_headroom = 1;
    auto mem = workloads::makeInputMemory(c.mem_words, 3, 100);
    const vliw::VliwResult v =
        vliw::runScheduled(c.run.fn, c.run.result.schedule, mem);
    ASSERT_TRUE(v.completed);
    const OooResult o = runOutOfOrder(c.run.fn, c.run.result.schedule,
                                      mem, config);
    expectArchEqual(v, o, config.name);
    EXPECT_GT(o.stats.rename_stalls, 0u);
    // Starvation costs cycles vs the roomy baseline config.
    const OooResult roomy = runOutOfOrder(
        c.run.fn, c.run.result.schedule, mem, oooSmall());
    EXPECT_GE(o.arch.cycles, roomy.arch.cycles);
}

TEST(OooSim, FullWindowStaysArchitecturallyInvisible)
{
    // A 2-entry window / 4-entry ROB saturates constantly; occupancy
    // must respect the ROB bound and results must not change.
    Compiled c(202);
    OooConfig config = oooWide();
    config.name = "ooo-cramped";
    config.window_size = 2;
    config.rob_size = 4;
    auto mem = workloads::makeInputMemory(c.mem_words, 5, 100);
    const vliw::VliwResult v =
        vliw::runScheduled(c.run.fn, c.run.result.schedule, mem);
    ASSERT_TRUE(v.completed);
    const OooResult o = runOutOfOrder(c.run.fn, c.run.result.schedule,
                                      mem, config);
    expectArchEqual(v, o, config.name);
    EXPECT_GT(o.stats.rename_stalls, 0u);
    EXPECT_LE(o.stats.avgWindowOccupancy(o.arch.cycles), 4.0);
}

TEST(OooSim, BranchIntoRegionRepeatsTrace)
{
    // A loop re-enters its region once per iteration; the OoO trace
    // must replay the VLIW one entry for entry.
    auto mod = loadProgram(fs::path(TREEGION_EXAMPLES_DIR) /
                           "sum_loop.tir");
    ASSERT_TRUE(mod);
    auto run = sched::runPipelineOnClone(
        mod->function("main"),
        [] {
            sched::PipelineOptions options;
            options.scheme = sched::RegionScheme::Treegion;
            options.model = sched::MachineModel::custom(4);
            return options;
        }());
    auto mem = workloads::makeInputMemory(mod->memWords(), 11, 100);
    const vliw::VliwResult v =
        vliw::runScheduled(run.fn, run.result.schedule, mem);
    ASSERT_TRUE(v.completed);
    ASSERT_GT(v.trace.size(), 2u) << "loop did not iterate";
    for (const OooConfig &config : oooConfigs()) {
        const OooResult o = runOutOfOrder(run.fn, run.result.schedule,
                                          mem, config);
        expectArchEqual(v, o, config.name);
    }
}

TEST(OooSim, SharedCycleLimitHaltsIncomplete)
{
    // The SimLimits budget is shared with the VLIW backend; hitting
    // it must halt with completed=false, never abort.
    Compiled c(303);
    OooConfig config = oooSmall();
    config.limits.max_cycles = 5;
    auto mem = workloads::makeInputMemory(c.mem_words, 1, 100);
    const OooResult o = runOutOfOrder(c.run.fn, c.run.result.schedule,
                                      mem, config);
    EXPECT_FALSE(o.arch.completed);
    EXPECT_LE(o.arch.cycles, 5u);
}

TEST(OooSim, FdivShadowBeatsInOrderCycles)
{
    // Hand-built schedule shaped like a naive in-order machine's
    // issue: two independent FDIVs (latency 9) serialized with their
    // consumers, so the static schedule carries two nearly-empty
    // 9-cycle shadows. The in-order simulator pays exit-cycle + 1 =
    // 23 cycles; the dynamic model overlaps the independent divides
    // and must finish strictly faster on every named config.
    ir::Function fn("f");
    Builder bu(fn);
    const BlockId a = bu.newBlock();
    fn.setEntry(a);
    bu.setInsertPoint(a);
    const Reg base = bu.movi(0);
    const Reg q1 =
        bu.binary(Opcode::FDIV, Builder::I(144), Builder::I(12));
    const Reg u1 =
        bu.binary(Opcode::ADD, Builder::R(q1), Builder::I(1));
    const Reg q2 =
        bu.binary(Opcode::FDIV, Builder::I(200), Builder::I(8));
    const Reg u2 =
        bu.binary(Opcode::ADD, Builder::R(q2), Builder::I(2));
    bu.store(base, 0, Builder::R(u1));
    bu.store(base, 1, Builder::R(u2));
    bu.ret(Builder::I(40));

    const std::vector<ir::Op> &ops = fn.block(a).ops();
    ASSERT_EQ(ops.size(), 8u);
    const int rows[] = {0, 0, 9, 10, 19, 20, 21, 22};
    const int slots[] = {0, 1, 0, 0, 0, 0, 0, 0};
    sched::RegionSchedule rs;
    rs.root = a;
    rs.length = 23;
    for (size_t i = 0; i < ops.size(); ++i) {
        sched::ScheduledOp sop;
        sop.op = ops[i];
        sop.cycle = rows[i];
        sop.slot = slots[i];
        rs.ops.push_back(sop);
    }
    sched::ScheduledExit exit;
    exit.op_index = 7;  // the RET
    exit.target_slot = 0;
    exit.from = a;
    exit.target = ir::kNoBlock;
    exit.is_ret = true;
    exit.weight = 1.0;
    exit.cycle = 22;
    rs.exits.push_back(exit);
    sched::FunctionSchedule schedule;
    schedule.entry = a;
    schedule.regions.emplace(a, std::move(rs));

    std::vector<int64_t> mem(4, 0);
    const vliw::VliwResult v = vliw::runScheduled(fn, schedule, mem);
    ASSERT_TRUE(v.completed);
    EXPECT_EQ(v.cycles, 23u);
    EXPECT_EQ(v.ret_value, 40);
    EXPECT_EQ(v.memory[0], 13);  // 144/12 + 1
    EXPECT_EQ(v.memory[1], 27);  // 200/8 + 2

    for (const OooConfig &config : oooConfigs()) {
        const OooResult o = runOutOfOrder(fn, schedule, mem, config);
        expectArchEqual(v, o, config.name);
        EXPECT_LT(o.arch.cycles, v.cycles)
            << config.name
            << " failed to hide the FDIV shadows the static schedule "
               "serializes";
        EXPECT_GT(o.stats.ipc(o.arch.cycles),
                  v.ops_executed / static_cast<double>(v.cycles))
            << config.name;
    }
}

} // namespace
} // namespace treegion::ooo
