/**
 * @file
 * Region formation tests: treegions (Fig. 2), SLRs, basic blocks, and
 * the partition/tree invariants, including property-style sweeps over
 * generated programs.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "region/formation.h"
#include "region/region_stats.h"
#include "workloads/profiler.h"
#include "workloads/synthetic.h"

namespace treegion::region {
namespace {

using ir::BlockId;
using ir::Builder;
using ir::CmpKind;
using ir::Function;
using ir::Reg;

/**
 * The running example of the paper (Fig. 1's topmost region):
 *
 *   bb1 -> {bb2, bb8}; bb2 -> {bb4, bb3}; bb3 -> bb5; bb4 -> bb5;
 *   bb5 -> bb9; bb8 -> bb9; bb9 -> ret
 *
 * bb5 and bb9 are merge points; everything else hangs off bb1.
 */
struct PaperCfg
{
    Function fn{"paper"};
    BlockId bb1, bb2, bb3, bb4, bb5, bb8, bb9;

    PaperCfg()
    {
        Builder bu(fn);
        bb1 = bu.newBlock();
        bb2 = bu.newBlock();
        bb3 = bu.newBlock();
        bb4 = bu.newBlock();
        bb5 = bu.newBlock();
        bb8 = bu.newBlock();
        bb9 = bu.newBlock();
        fn.setEntry(bb1);

        bu.setInsertPoint(bb1);
        const Reg base = bu.movi(0);
        const Reg r1 = bu.load(base, 0);
        const Reg r2 = bu.load(base, 1);
        const Reg r3 = bu.binary(ir::Opcode::ADD, Builder::R(r1),
                                 Builder::R(r2));
        bu.condBr(CmpKind::GT, Builder::R(r1), Builder::R(r2), bb8, bb2);

        bu.setInsertPoint(bb2);
        const Reg r4 = bu.movi(1);
        bu.condBr(CmpKind::LT, Builder::R(r3), Builder::I(100), bb3,
                  bb4);

        bu.setInsertPoint(bb3);
        bu.movi(2);
        bu.movi(5);
        bu.bru(bb5);

        bu.setInsertPoint(bb4);
        bu.movi(3);
        bu.movi(4);
        bu.bru(bb5);

        bu.setInsertPoint(bb5);
        bu.store(base, 7, Builder::R(r4));
        bu.bru(bb9);

        bu.setInsertPoint(bb8);
        bu.movi(5);
        bu.bru(bb9);

        bu.setInsertPoint(bb9);
        const Reg out = bu.load(base, 7);
        bu.ret(Builder::R(out));

        // The paper's path weights: 35 via bb8, 25 via bb4, 40 via
        // bb3.
        fn.block(bb1).setWeight(100);
        fn.block(bb1).edgeWeights() = {35, 65};
        fn.block(bb2).setWeight(65);
        fn.block(bb2).edgeWeights() = {40, 25};
        fn.block(bb3).setWeight(40);
        fn.block(bb3).edgeWeights() = {40};
        fn.block(bb4).setWeight(25);
        fn.block(bb4).edgeWeights() = {25};
        fn.block(bb5).setWeight(65);
        fn.block(bb5).edgeWeights() = {65};
        fn.block(bb8).setWeight(35);
        fn.block(bb8).edgeWeights() = {35};
        fn.block(bb9).setWeight(100);
    }
};

TEST(TreegionFormation, PaperExampleTopmostTreegion)
{
    PaperCfg g;
    RegionSet set = formTreegions(g.fn);
    EXPECT_TRUE(set.validate(g.fn).empty());

    // The topmost treegion is {bb1, bb2, bb3, bb4, bb8}: bb5 and bb9
    // are merge points and root their own regions.
    const size_t top = set.regionIndexOf(g.bb1);
    const Region &tree = set.regions()[top];
    EXPECT_EQ(tree.size(), 5u);
    for (BlockId id : {g.bb1, g.bb2, g.bb3, g.bb4, g.bb8})
        EXPECT_TRUE(tree.contains(id));
    EXPECT_NE(set.regionIndexOf(g.bb5), top);
    EXPECT_NE(set.regionIndexOf(g.bb9), top);
    EXPECT_EQ(set.regions().size(), 3u);

    // Tree structure.
    EXPECT_EQ(tree.parentOf(g.bb2), g.bb1);
    EXPECT_EQ(tree.parentOf(g.bb8), g.bb1);
    EXPECT_EQ(tree.parentOf(g.bb3), g.bb2);
    EXPECT_EQ(tree.pathCount(), 3u);

    // Exits: bb3->bb5, bb4->bb5, bb8->bb9.
    const auto exits = tree.exits(g.fn);
    EXPECT_EQ(exits.size(), 3u);
    const auto saplings = tree.saplings(g.fn);
    EXPECT_EQ(saplings.size(), 2u);

    // Exit counts per the heuristic definition.
    EXPECT_EQ(tree.exitsInSubtree(g.fn, g.bb1), 3u);
    EXPECT_EQ(tree.exitsInSubtree(g.fn, g.bb2), 2u);
    EXPECT_EQ(tree.exitsInSubtree(g.fn, g.bb3), 1u);
    EXPECT_EQ(tree.exitsInSubtree(g.fn, g.bb8), 1u);
}

TEST(TreegionFormation, LoopHeaderRootsItsRegion)
{
    Function fn("f");
    Builder bu(fn);
    const BlockId pre = bu.newBlock();
    const BlockId header = bu.newBlock();
    const BlockId body = bu.newBlock();
    const BlockId exit = bu.newBlock();
    fn.setEntry(pre);

    bu.setInsertPoint(pre);
    const Reg i = bu.movi(0);
    bu.bru(header);
    bu.setInsertPoint(header);
    bu.condBr(CmpKind::LT, Builder::R(i), Builder::I(5), body, exit);
    bu.setInsertPoint(body);
    fn.appendOp(body, ir::makeBinary(ir::Opcode::ADD, i, Builder::R(i),
                                     Builder::I(1)));
    bu.bru(header);
    bu.setInsertPoint(exit);
    bu.ret(Builder::R(i));

    RegionSet set = formTreegions(fn);
    EXPECT_TRUE(set.validate(fn).empty());
    // header is a merge point: its region contains body and exit; the
    // back edge is a region exit targeting the region's own root.
    const Region &loop =
        set.regions()[set.regionIndexOf(header)];
    EXPECT_TRUE(loop.contains(body));
    EXPECT_TRUE(loop.contains(exit));
    bool backedge = false;
    for (const RegionExit &e : loop.exits(fn))
        backedge |= (!e.is_ret && e.target == header);
    EXPECT_TRUE(backedge);
}

TEST(SlrFormation, FollowsHottestSuccessor)
{
    PaperCfg g;
    RegionSet set = formSlrs(g.fn);
    EXPECT_TRUE(set.validate(g.fn).empty());
    // From bb1 the hottest edge goes to bb2 (65 > 35), then bb3
    // (40 > 25); bb3's successor bb5 is a merge, so the SLR is
    // {bb1, bb2, bb3}.
    const Region &slr = set.regions()[set.regionIndexOf(g.bb1)];
    EXPECT_EQ(slr.size(), 3u);
    EXPECT_TRUE(slr.contains(g.bb2));
    EXPECT_TRUE(slr.contains(g.bb3));
    EXPECT_FALSE(slr.contains(g.bb8));
    // Every region is linear.
    for (const Region &r : set.regions()) {
        for (const BlockId id : r.blocks())
            EXPECT_LE(r.childrenOf(id).size(), 1u);
    }
}

TEST(BasicBlockRegions, OnePerBlock)
{
    PaperCfg g;
    RegionSet set = formBasicBlockRegions(g.fn);
    EXPECT_TRUE(set.validate(g.fn).empty());
    EXPECT_EQ(set.regions().size(), 7u);
    for (const Region &r : set.regions())
        EXPECT_EQ(r.size(), 1u);
}

TEST(RegionStats, CountsOpsAndBlocks)
{
    PaperCfg g;
    RegionSet set = formTreegions(g.fn);
    const RegionStats stats = computeRegionStats(g.fn, set);
    EXPECT_EQ(stats.num_regions, 3u);
    EXPECT_EQ(stats.max_blocks, 5u);
    EXPECT_EQ(stats.total_ops, g.fn.totalOps());
    EXPECT_GT(stats.avg_ops, 0.0);
}

class FormationProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FormationProperty, PartitionInvariantsHold)
{
    workloads::GenParams p;
    p.seed = GetParam();
    p.top_units = 10;
    p.max_depth = 3;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("x", p);
    ir::Function &fn = mod->function("main");
    workloads::profileFunction(fn, 1024);

    {
        ir::Function f = fn.clone();
        RegionSet set = formTreegions(f);
        const auto problems = set.validate(f);
        EXPECT_TRUE(problems.empty()) << problems.front();
        // Treegions never mutate the CFG.
        EXPECT_EQ(f.totalOps(), fn.totalOps());
    }
    {
        ir::Function f = fn.clone();
        RegionSet set = formSlrs(f);
        EXPECT_TRUE(set.validate(f).empty());
        for (const Region &r : set.regions()) {
            for (const BlockId id : r.blocks())
                EXPECT_LE(r.childrenOf(id).size(), 1u);
        }
    }
    {
        ir::Function f = fn.clone();
        RegionSet set = formTreegionsTailDup(f, {});
        const auto problems = set.validate(f);
        EXPECT_TRUE(problems.empty()) << problems.front();
        // Tail duplication may only grow the code.
        EXPECT_GE(f.totalOps(), fn.totalOps());
    }
    {
        ir::Function f = fn.clone();
        RegionSet set = formSuperblocks(f, {});
        EXPECT_TRUE(set.validate(f).empty());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormationProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

TEST(TreegionFormation, RespectsPathLimit)
{
    for (const size_t limit : {1u, 2u, 4u, 8u}) {
        workloads::GenParams p;
        p.seed = 77;
        p.top_units = 8;
        p.mem_words = 1024;
        auto mod = workloads::generateProgram("x", p);
        ir::Function &fn = mod->function("main");
        workloads::profileFunction(fn, 1024);
        TailDupLimits limits;
        limits.path_limit = limit;
        RegionSet set = formTreegionsTailDup(fn, limits);
        for (const Region &r : set.regions()) {
            // Fig. 11 checks the limit before duplicating, so one
            // final duplication step may overshoot by the fan-out of
            // the absorbed sapling; the bound below is conservative.
            EXPECT_LE(r.pathCount(), limit + 8)
                << "limit " << limit;
        }
    }
}

TEST(TreegionFormation, ExpansionLimitBounds)
{
    workloads::GenParams p;
    p.seed = 123;
    p.top_units = 10;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("x", p);
    ir::Function &fn = mod->function("main");
    workloads::profileFunction(fn, 1024);
    const size_t original = fn.totalOps();

    ir::Function f2 = fn.clone();
    TailDupLimits lim2;
    lim2.expansion_limit = 2.0;
    formTreegionsTailDup(f2, lim2);
    const double x2 = codeExpansionFactor(f2, original);

    ir::Function f3 = fn.clone();
    TailDupLimits lim3;
    lim3.expansion_limit = 3.0;
    formTreegionsTailDup(f3, lim3);
    const double x3 = codeExpansionFactor(f3, original);

    EXPECT_GE(x2, 1.0);
    EXPECT_LE(x2, x3);
}

} // namespace
} // namespace treegion::region
