/**
 * @file
 * Tests for the distributed-tracing span subsystem (support/spans.h),
 * the crash flight recorder (support/flightrec.h) and the build-info
 * block (support/build_info.h).
 *
 * The span JSONL schema gets the same treatment as the remarks
 * schema in remarks_test.cc: exact round-trips through the strict
 * parser, and a rejection battery proving unknown fields, duplicate
 * fields, missing fields and malformed values cannot creep in — the
 * schema is an interface consumed by treegion-report --trace-merge
 * and CI, not a debug dump.
 */

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/build_info.h"
#include "support/flightrec.h"
#include "support/logging.h"
#include "support/spans.h"
#include "support/string_utils.h"
#include "support/trace.h"

using namespace treegion;

namespace {

/** Reset the process-wide collector around every test. */
class SpanTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto &collector = support::SpanCollector::instance();
        collector.setEnabled(false);
        collector.clear();
        collector.setService("treegion");
    }

    void
    TearDown() override
    {
        SetUp();
    }
};

std::string
readFile(const std::string &path)
{
    std::ifstream file(path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return buffer.str();
}

// ---- ids and hex ---------------------------------------------------

TEST_F(SpanTest, MintedIdsAreNonZeroAndDistinct)
{
    const uint64_t a = support::mintSpanId();
    const uint64_t b = support::mintSpanId();
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
}

TEST_F(SpanTest, TraceIdHexRoundTrip)
{
    const uint64_t hi = 0x0123456789abcdefull;
    const uint64_t lo = 0xfedcba9876543210ull;
    const std::string hex = support::traceIdHex(hi, lo);
    EXPECT_EQ(hex.size(), 32u);
    EXPECT_EQ(hex, "0123456789abcdeffedcba9876543210");
    uint64_t hi2 = 0, lo2 = 0;
    ASSERT_TRUE(support::parseTraceIdHex(hex, &hi2, &lo2));
    EXPECT_EQ(hi2, hi);
    EXPECT_EQ(lo2, lo);
}

TEST_F(SpanTest, SpanIdHexRoundTrip)
{
    const uint64_t id = 0x00ff00ff12345678ull;
    const std::string hex = support::spanIdHex(id);
    EXPECT_EQ(hex.size(), 16u);
    uint64_t id2 = 0;
    ASSERT_TRUE(support::parseSpanIdHex(hex, &id2));
    EXPECT_EQ(id2, id);
}

TEST_F(SpanTest, BadHexRejected)
{
    uint64_t hi = 0, lo = 0, id = 0;
    EXPECT_FALSE(support::parseTraceIdHex("1234", &hi, &lo));
    EXPECT_FALSE(support::parseTraceIdHex(
        "0123456789abcdeffedcba987654321g", &hi, &lo));
    EXPECT_FALSE(support::parseSpanIdHex("", &id));
    EXPECT_FALSE(support::parseSpanIdHex("123456789abcdefg", &id));
    EXPECT_FALSE(
        support::parseSpanIdHex("0123456789abcdef0", &id));
}

// ---- JSON round trip -----------------------------------------------

support::TraceSpan
sampleSpan()
{
    support::TraceSpan s;
    s.trace_hi = 0x1111222233334444ull;
    s.trace_lo = 0x5555666677778888ull;
    s.span = 0x9999aaaabbbbccccull;
    s.parent = 0xddddeeeeffff0001ull;
    s.name = "compile";
    s.service = "replica:1";
    s.tid = 7;
    s.start_us = 1700000000000000;
    s.dur_us = 1234;
    support::SpanArg str;
    str.key = "fn";
    str.type = support::SpanArg::Type::Str;
    str.s = "main \"quoted\"\\path\n";
    s.args.push_back(str);
    support::SpanArg num;
    num.key = "ops";
    num.type = support::SpanArg::Type::Int;
    num.i = -42;
    s.args.push_back(num);
    support::SpanArg flt;
    flt.key = "ratio";
    flt.type = support::SpanArg::Type::Float;
    flt.f = 0.125;
    s.args.push_back(flt);
    return s;
}

TEST_F(SpanTest, JsonRoundTripExact)
{
    const support::TraceSpan original = sampleSpan();
    const std::string line = original.toJson();
    support::TraceSpan parsed;
    std::string error;
    ASSERT_TRUE(support::parseSpanJson(line, parsed, &error))
        << error;
    EXPECT_EQ(parsed, original);
    // Canonical form is a fixed point: serialize -> parse ->
    // serialize is byte-identical.
    EXPECT_EQ(parsed.toJson(), line);
}

TEST_F(SpanTest, RootParentSerializesAsEmpty)
{
    support::TraceSpan s = sampleSpan();
    s.parent = 0;
    const std::string line = s.toJson();
    EXPECT_NE(line.find("\"parent\":\"\""), std::string::npos);
    support::TraceSpan parsed;
    ASSERT_TRUE(support::parseSpanJson(line, parsed, nullptr));
    EXPECT_EQ(parsed.parent, 0u);
}

TEST_F(SpanTest, ParserRejectsMalformedLines)
{
    const std::string good = sampleSpan().toJson();
    support::TraceSpan out;
    std::string error;

    // Unknown field.
    std::string bad = good;
    bad.insert(bad.size() - 1, ",\"extra\":1");
    EXPECT_FALSE(support::parseSpanJson(bad, out, &error));

    // Duplicate field.
    bad = good;
    bad.insert(bad.size() - 1, ",\"tid\":7");
    EXPECT_FALSE(support::parseSpanJson(bad, out, &error));

    // Missing field.
    bad = good;
    const size_t tid = bad.find(",\"tid\":7");
    ASSERT_NE(tid, std::string::npos);
    bad.erase(tid, 8);
    EXPECT_FALSE(support::parseSpanJson(bad, out, &error));

    // Trailing garbage after the object.
    EXPECT_FALSE(support::parseSpanJson(good + " x", out, &error));

    // Bad trace hex (too short).
    bad = good;
    const size_t trace = bad.find("\"trace\":\"");
    ASSERT_NE(trace, std::string::npos);
    bad.erase(trace + 9, 4);
    EXPECT_FALSE(support::parseSpanJson(bad, out, &error));

    // Non-scalar arg value.
    bad = good;
    const size_t args = bad.find("\"args\":{");
    ASSERT_NE(args, std::string::npos);
    bad.insert(args + 8, "\"nested\":{},");
    EXPECT_FALSE(support::parseSpanJson(bad, out, &error));

    // Not an object at all.
    EXPECT_FALSE(support::parseSpanJson("[]", out, &error));
    EXPECT_FALSE(support::parseSpanJson("", out, &error));
}

// ---- scopes and ambient context ------------------------------------

TEST_F(SpanTest, InertWhenDisabled)
{
    auto &collector = support::SpanCollector::instance();
    {
        support::SpanScope root("request",
                                support::SpanScope::Root::IfEnabled);
        EXPECT_FALSE(root.live());
        EXPECT_FALSE(support::currentSpanContext().valid());
    }
    EXPECT_EQ(collector.size(), 0u);
}

TEST_F(SpanTest, ChildOnlyScopeInertWithoutAmbient)
{
    support::SpanCollector::instance().configure(1.0);
    support::SpanScope child("cache-lookup");
    EXPECT_FALSE(child.live());
}

TEST_F(SpanTest, RootAndChildNestAndRestoreAmbient)
{
    auto &collector = support::SpanCollector::instance();
    collector.configure(1.0);
    {
        support::SpanScope root("request",
                                support::SpanScope::Root::IfEnabled);
        ASSERT_TRUE(root.live());
        EXPECT_TRUE(support::currentSpanContext().valid());
        EXPECT_EQ(support::currentSpanContext().span,
                  root.context().span);
        {
            support::SpanScope child("compile");
            ASSERT_TRUE(child.live());
            EXPECT_EQ(child.context().trace_hi,
                      root.context().trace_hi);
            EXPECT_EQ(support::currentSpanContext().span,
                      child.context().span);
        }
        // Child gone: ambient context back to the root.
        EXPECT_EQ(support::currentSpanContext().span,
                  root.context().span);
    }
    EXPECT_FALSE(support::currentSpanContext().valid());

    const auto spans = collector.snapshot();
    ASSERT_EQ(spans.size(), 2u);  // child recorded first
    EXPECT_EQ(spans[0].name, "compile");
    EXPECT_EQ(spans[1].name, "request");
    EXPECT_EQ(spans[0].parent, spans[1].span);
    EXPECT_EQ(spans[1].parent, 0u);
    EXPECT_EQ(spans[0].trace_hi, spans[1].trace_hi);
    EXPECT_EQ(spans[0].trace_lo, spans[1].trace_lo);
}

TEST_F(SpanTest, SampleRateZeroRecordsNothing)
{
    auto &collector = support::SpanCollector::instance();
    collector.configure(0.0);
    for (int i = 0; i < 32; ++i) {
        support::SpanScope root("request",
                                support::SpanScope::Root::IfEnabled);
        EXPECT_FALSE(root.live());
    }
    EXPECT_EQ(collector.size(), 0u);
}

TEST_F(SpanTest, ServiceOverridePropagatesToChildren)
{
    auto &collector = support::SpanCollector::instance();
    collector.configure(1.0);
    {
        support::SpanScope root("request",
                                support::SpanScope::Root::IfEnabled,
                                "replica:9000");
        ASSERT_TRUE(root.live());
        support::SpanScope child("compile");
        ASSERT_TRUE(child.live());
    }
    const auto spans = collector.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].service, "replica:9000");
    EXPECT_EQ(spans[1].service, "replica:9000");
}

TEST_F(SpanTest, FinishRecordsOnceAndKeepsContext)
{
    auto &collector = support::SpanCollector::instance();
    collector.configure(1.0);
    {
        support::SpanScope root("request",
                                support::SpanScope::Root::IfEnabled);
        ASSERT_TRUE(root.live());
        root.finish();
        EXPECT_FALSE(root.live());
        EXPECT_TRUE(root.context().valid());
        root.finish();  // idempotent; destructor must not re-record
    }
    EXPECT_EQ(collector.snapshot().size(), 1u);
}

TEST_F(SpanTest, NoteSpanAttachesCompletedInterval)
{
    auto &collector = support::SpanCollector::instance();
    collector.configure(1.0);
    support::SpanContext parent;
    {
        support::SpanScope root("request",
                                support::SpanScope::Root::IfEnabled);
        ASSERT_TRUE(root.live());
        parent = root.context();
        support::noteSpan(parent, "queue-wait", 100, 250);
    }
    // Invalid parent: inert.
    support::noteSpan(support::SpanContext{}, "ignored", 0, 10);

    const auto spans = collector.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "queue-wait");
    EXPECT_EQ(spans[0].parent, parent.span);
    EXPECT_EQ(spans[0].start_us, 100);
    EXPECT_EQ(spans[0].dur_us, 150);
}

TEST_F(SpanTest, TraceScopeEmitsSpanChildUnderAmbientTrace)
{
    auto &collector = support::SpanCollector::instance();
    collector.configure(1.0);
    {
        support::SpanScope root("request",
                                support::SpanScope::Root::IfEnabled);
        ASSERT_TRUE(root.live());
        // The pipeline's existing instrumentation points: TraceScope
        // doubles as a distributed span when an ambient trace exists.
        support::TraceScope stage("formation");
    }
    const auto spans = collector.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "formation");
    EXPECT_EQ(spans[1].name, "request");
    EXPECT_EQ(spans[0].parent, spans[1].span);
}

TEST_F(SpanTest, WriteJsonlRoundTripsThroughParser)
{
    auto &collector = support::SpanCollector::instance();
    collector.configure(1.0);
    {
        support::SpanScope root("request",
                                support::SpanScope::Root::IfEnabled);
        root.arg("verb", "compile").arg("n", int64_t{3});
    }
    const std::string path =
        ::testing::TempDir() + "/span_roundtrip.jsonl";
    ASSERT_TRUE(collector.writeJsonl(path));
    EXPECT_EQ(collector.size(), 0u);  // drained by the write

    std::ifstream file(path);
    std::string line;
    size_t lines = 0;
    while (std::getline(file, line)) {
        support::TraceSpan s;
        std::string error;
        EXPECT_TRUE(support::parseSpanJson(line, s, &error))
            << error;
        ++lines;
    }
    EXPECT_EQ(lines, 1u);
    ::unlink(path.c_str());
}

// ---- flight recorder -----------------------------------------------

TEST(FlightRecTest, NotesAreCountedAndDumped)
{
    const uint64_t before = support::flightrec::noteCount();
    support::flightrec::note("test-tag", "detail-text", 11, 22);
    EXPECT_EQ(support::flightrec::noteCount(), before + 1);

    const std::string path =
        ::testing::TempDir() + "/flightrec_dump.jsonl";
    ASSERT_TRUE(support::flightrec::dumpToFile(path.c_str()));
    const std::string dump = readFile(path);
    EXPECT_NE(dump.find("test-tag"), std::string::npos);
    EXPECT_NE(dump.find("detail-text"), std::string::npos);
    EXPECT_NE(dump.find("\"a\":11"), std::string::npos);
    EXPECT_NE(dump.find("\"b\":22"), std::string::npos);
    ::unlink(path.c_str());
}

TEST(FlightRecTest, RingWrapsKeepingNewestEvents)
{
    for (int i = 0; i < support::flightrec::kRingEvents + 50; ++i)
        support::flightrec::note("wrap", nullptr,
                                 static_cast<uint64_t>(i));
    const std::string path =
        ::testing::TempDir() + "/flightrec_wrap.jsonl";
    ASSERT_TRUE(support::flightrec::dumpToFile(path.c_str()));
    const std::string dump = readFile(path);
    // The oldest notes were overwritten; the newest survived.
    EXPECT_EQ(dump.find("\"a\":0,"), std::string::npos);
    EXPECT_NE(
        dump.find(support::strprintf(
            "\"a\":%d", support::flightrec::kRingEvents + 49)),
        std::string::npos);
    ::unlink(path.c_str());
}

TEST(FlightRecTest, ThreadsGetTheirOwnRings)
{
    std::thread other(
        [] { support::flightrec::note("other-thread"); });
    other.join();
    support::flightrec::note("main-thread");
    const std::string path =
        ::testing::TempDir() + "/flightrec_threads.jsonl";
    ASSERT_TRUE(support::flightrec::dumpToFile(path.c_str()));
    const std::string dump = readFile(path);
    EXPECT_NE(dump.find("other-thread"), std::string::npos);
    EXPECT_NE(dump.find("main-thread"), std::string::npos);
    ::unlink(path.c_str());
}

/**
 * The actual crash path: a child process arms the recorder the way
 * treegiond does (dump path + crash handlers + panic hook), notes a
 * breadcrumb, then hits TG_PANIC. The parent asserts the child died
 * by SIGABRT and left a dump containing the breadcrumb — the exact
 * artifact an operator would pick up after a daemon crash.
 */
TEST(FlightRecTest, PanicInChildProcessLeavesDump)
{
    const std::string path =
        ::testing::TempDir() + "/flightrec_panic.jsonl";
    ::unlink(path.c_str());

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: silence the panic banner, arm, crash.
        const int null_fd = ::open("/dev/null", O_WRONLY);
        if (null_fd >= 0)
            ::dup2(null_fd, STDERR_FILENO);
        support::flightrec::setDumpPath(path.c_str());
        support::flightrec::installCrashHandlers();
        support::setPanicHook(&support::flightrec::dumpConfigured);
        support::flightrec::note("pre-crash", "breadcrumb", 77);
        TG_PANIC("deliberate test panic");
        ::_exit(0);  // unreachable
    }

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGABRT);

    const std::string dump = readFile(path);
    EXPECT_NE(dump.find("pre-crash"), std::string::npos);
    EXPECT_NE(dump.find("breadcrumb"), std::string::npos);
    ::unlink(path.c_str());
}

// ---- build info ----------------------------------------------------

TEST(BuildInfoTest, JsonCarriesTheExpectedKeys)
{
    const std::string info = support::buildInfoJson();
    EXPECT_NE(info.find("\"git\":"), std::string::npos);
    EXPECT_NE(info.find("\"compiler\":"), std::string::npos);
    EXPECT_NE(info.find("\"build_type\":"), std::string::npos);
    EXPECT_NE(info.find("\"span_schema\":\"treegion-span/v1\""),
              std::string::npos);
    EXPECT_NE(info.find("\"protocol\":"), std::string::npos);
}

TEST(BuildInfoTest, UptimeAdvances)
{
    EXPECT_GE(support::uptimeSeconds(), 0.0);
}

} // namespace
