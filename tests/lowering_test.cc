/**
 * @file
 * Region lowering tests: path predicates (wired-AND form), renaming,
 * guarded stores, exit records and reconciliation copies.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/liveness.h"
#include "ir/builder.h"
#include "region/formation.h"
#include "sched/lowering.h"

namespace treegion::sched {
namespace {

using ir::BlockId;
using ir::Builder;
using ir::CmpKind;
using ir::Function;
using ir::Opcode;
using ir::Reg;

/** a -> (b|c), both exits to a shared merge d; d returns. */
struct Diamond
{
    Function fn{"f"};
    BlockId a, b, c, d;

    Diamond()
    {
        Builder bu(fn);
        a = bu.newBlock();
        b = bu.newBlock();
        c = bu.newBlock();
        d = bu.newBlock();
        fn.setEntry(a);

        bu.setInsertPoint(a);
        const Reg base = bu.movi(0);
        const Reg x = bu.load(base, 1);
        bu.condBr(CmpKind::LT, Builder::R(x), Builder::I(5), b, c);

        bu.setInsertPoint(b);
        const Reg t = bu.binary(Opcode::ADD, Builder::R(x),
                                Builder::I(1));
        bu.store(base, 9, Builder::R(t));
        bu.bru(d);

        bu.setInsertPoint(c);
        const Reg u = bu.binary(Opcode::SUB, Builder::R(x),
                                Builder::I(1));
        bu.store(base, 9, Builder::R(u));
        bu.bru(d);

        bu.setInsertPoint(d);
        const Reg y = bu.load(base, 9);
        bu.ret(Builder::R(y));
    }
};

LoweredRegion
lowerTopRegion(Function &fn)
{
    region::RegionSet set = region::formTreegions(fn);
    analysis::Liveness live(fn);
    const region::Region &top =
        set.regions()[set.regionIndexOf(fn.entry())];
    return lowerRegion(fn, top, live);
}

TEST(Lowering, StoresAreGuardedByPathPredicates)
{
    Diamond g;
    const LoweredRegion lowered = lowerTopRegion(g.fn);

    size_t guarded_stores = 0;
    for (const LoweredOp &lop : lowered.ops) {
        if (lop.op.isStore()) {
            EXPECT_TRUE(lop.pinned);
            EXPECT_TRUE(lop.op.guard.has_value())
                << "store from a conditional block must be guarded";
            ++guarded_stores;
        }
    }
    EXPECT_EQ(guarded_stores, 2u);
}

TEST(Lowering, WiredAndPredicates)
{
    Diamond g;
    const LoweredRegion lowered = lowerTopRegion(g.fn);

    // Each side's predicate: one PSET plus one CMPPA (depth 1).
    size_t psets = 0, ands = 0;
    for (const LoweredOp &lop : lowered.ops) {
        if (lop.op.opcode == Opcode::PSET) {
            ++psets;
            EXPECT_EQ(lop.kind, LoweredKind::PredDef);
        }
        if (lop.op.opcode == Opcode::CMPPA)
            ++ands;
    }
    EXPECT_EQ(psets, 2u);
    EXPECT_EQ(ands, 2u);
    // The two sides' CMPPA kinds are complements.
    std::vector<CmpKind> kinds;
    for (const LoweredOp &lop : lowered.ops) {
        if (lop.op.opcode == Opcode::CMPPA)
            kinds.push_back(lop.op.cmp);
    }
    ASSERT_EQ(kinds.size(), 2u);
    EXPECT_EQ(kinds[0], ir::negateCmpKind(kinds[1]));
}

TEST(Lowering, ExitsCarryWeightsAndCopies)
{
    Diamond g;
    g.fn.block(g.a).setWeight(10);
    g.fn.block(g.a).edgeWeights() = {7, 3};
    g.fn.block(g.b).setWeight(7);
    g.fn.block(g.b).edgeWeights() = {7};
    g.fn.block(g.c).setWeight(3);
    g.fn.block(g.c).edgeWeights() = {3};
    g.fn.block(g.d).setWeight(10);

    const LoweredRegion lowered = lowerTopRegion(g.fn);
    ASSERT_EQ(lowered.exits.size(), 2u);
    double total = 0.0;
    for (const LoweredExit &exit : lowered.exits) {
        EXPECT_EQ(exit.target, g.d);
        EXPECT_FALSE(exit.is_ret);
        total += exit.weight;
        // Only the base pointer (defined in the region, used by d's
        // load) is live into d; the per-arm temporaries are dead.
        ASSERT_EQ(exit.copies.size(), 1u);
        EXPECT_EQ(exit.copies[0].dst, ir::gpr(0));
    }
    EXPECT_DOUBLE_EQ(total, 10.0);
}

TEST(Lowering, CopiesRestoreLiveOutValues)
{
    // Like Diamond, but d consumes the register computed in b/c.
    Function fn("f");
    Builder bu(fn);
    const BlockId a = bu.newBlock();
    const BlockId b = bu.newBlock();
    const BlockId c = bu.newBlock();
    const BlockId d = bu.newBlock();
    fn.setEntry(a);

    bu.setInsertPoint(a);
    const Reg base = bu.movi(0);
    const Reg x = bu.load(base, 1);
    const Reg acc = bu.movi(0);
    bu.condBr(CmpKind::LT, Builder::R(x), Builder::I(5), b, c);

    bu.setInsertPoint(b);
    fn.appendOp(b, ir::makeBinary(Opcode::ADD, acc, Builder::R(x),
                                  Builder::I(1)));
    bu.bru(d);
    bu.setInsertPoint(c);
    fn.appendOp(c, ir::makeBinary(Opcode::SUB, acc, Builder::R(x),
                                  Builder::I(1)));
    bu.bru(d);
    bu.setInsertPoint(d);
    bu.ret(Builder::R(acc));

    const LoweredRegion lowered = lowerTopRegion(fn);
    ASSERT_EQ(lowered.exits.size(), 2u);
    for (const LoweredExit &exit : lowered.exits) {
        ASSERT_EQ(exit.copies.size(), 1u);
        EXPECT_EQ(exit.copies[0].dst, acc);
        EXPECT_NE(exit.copies[0].src, acc);
    }
    // The two exits restore acc from different renamed registers.
    EXPECT_NE(lowered.exits[0].copies[0].src,
              lowered.exits[1].copies[0].src);
}

TEST(Lowering, FullRenamingGivesSingleGprDefs)
{
    Diamond g;
    const LoweredRegion lowered = lowerTopRegion(g.fn);
    std::vector<Reg> defs;
    for (const LoweredOp &lop : lowered.ops) {
        for (const Reg &d : lop.op.dsts) {
            if (d.cls == ir::RegClass::Gpr) {
                EXPECT_EQ(std::count(defs.begin(), defs.end(), d), 0)
                    << "GPR defined twice after renaming";
                defs.push_back(d);
            }
        }
    }
    EXPECT_GT(lowered.renamed_defs, 0u);
}

TEST(Lowering, InternalBruDissolves)
{
    // a -> b -> ret: the BRU between a and b disappears; the region's
    // only branch op is the RET.
    Function fn("f");
    Builder bu(fn);
    const BlockId a = bu.newBlock();
    const BlockId b = bu.newBlock();
    fn.setEntry(a);
    bu.setInsertPoint(a);
    const Reg x = bu.movi(3);
    bu.bru(b);
    bu.setInsertPoint(b);
    const Reg y = bu.binary(Opcode::ADD, Builder::R(x), Builder::I(1));
    bu.ret(Builder::R(y));

    const LoweredRegion lowered = lowerTopRegion(fn);
    size_t branches = 0;
    for (const LoweredOp &lop : lowered.ops)
        branches += lop.op.isBranch();
    EXPECT_EQ(branches, 1u);
    ASSERT_EQ(lowered.exits.size(), 1u);
    EXPECT_TRUE(lowered.exits[0].is_ret);
    // RET from an unconditional chain carries no guard.
    EXPECT_FALSE(lowered.ops[lowered.exits[0].op_index].op.guard);
}

TEST(Lowering, MwbrInternalCasesFallThrough)
{
    Function fn("f");
    Builder bu(fn);
    const BlockId a = bu.newBlock();
    const BlockId arm0 = bu.newBlock();
    const BlockId arm1 = bu.newBlock();
    const BlockId shared = bu.newBlock();  // merge: arm for cases 2+3
    fn.setEntry(a);

    bu.setInsertPoint(a);
    const Reg base = bu.movi(0);
    const Reg x = bu.load(base, 1);
    const Reg sel = bu.binary(Opcode::REM, Builder::R(x),
                              Builder::I(4));
    bu.mwbr(sel, {arm0, arm1, shared, shared});

    for (const BlockId arm : {arm0, arm1, shared}) {
        bu.setInsertPoint(arm);
        bu.ret(Builder::I(arm));
    }

    const LoweredRegion lowered = lowerTopRegion(fn);
    // arm0 and arm1 are absorbed (single pred); `shared` has two
    // preds and stays outside, so the MWBR survives with two live
    // cases and two fall-through cases.
    const LoweredOp *mwbr = nullptr;
    for (const LoweredOp &lop : lowered.ops) {
        if (lop.op.opcode == Opcode::MWBR)
            mwbr = &lop;
    }
    ASSERT_NE(mwbr, nullptr);
    EXPECT_EQ(mwbr->op.targets[0], ir::kNoBlock);
    EXPECT_EQ(mwbr->op.targets[1], ir::kNoBlock);
    EXPECT_EQ(mwbr->op.targets[2], shared);
    EXPECT_EQ(mwbr->op.targets[3], shared);
    // Exits: two MWBR cases plus the two absorbed arms' RETs.
    size_t mwbr_exits = 0, rets = 0;
    for (const LoweredExit &exit : lowered.exits) {
        if (exit.is_ret)
            ++rets;
        else
            ++mwbr_exits;
    }
    EXPECT_EQ(mwbr_exits, 2u);
    EXPECT_EQ(rets, 2u);
}

TEST(Lowering, PbrMaterialization)
{
    Diamond g;
    region::RegionSet set = region::formTreegions(g.fn);
    analysis::Liveness live(g.fn);
    const region::Region &top =
        set.regions()[set.regionIndexOf(g.fn.entry())];
    LowerOptions options;
    options.materialize_pbr = true;
    const LoweredRegion lowered = lowerRegion(g.fn, top, live, options);
    size_t pbrs = 0;
    for (const LoweredOp &lop : lowered.ops)
        pbrs += (lop.op.opcode == Opcode::PBR);
    EXPECT_EQ(pbrs, 2u);  // one per block-targeting exit
    EXPECT_EQ(lowered.extra_deps.size(), 2u);
}

} // namespace
} // namespace treegion::sched
