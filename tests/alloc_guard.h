/**
 * @file
 * Counting global operator new/delete interposer for allocation
 * regression tests.
 *
 * Including this header replaces the global allocation functions with
 * versions that count every successful allocation while an AllocGuard
 * is alive. The replacements are non-inline definitions, so the
 * header must be included from EXACTLY ONE translation unit per test
 * binary (a second inclusion fails the link with duplicate symbols —
 * deliberately).
 *
 * Only allocations are counted, not frees: the steady-state property
 * under test is "the scheduler performs no heap allocation", and
 * tearing down inputs that were built before the guard started is
 * legitimate.
 *
 * The interposer additionally forwards every allocation and free
 * (with its usable size) to support/memstat.h, which is how the
 * memory-estimator calibration and the memsched bench measure live
 * heap bytes and peak footprint. Binaries that do not include this
 * header never feed memstat and measure nothing.
 */

#ifndef TREEGION_TESTS_ALLOC_GUARD_H
#define TREEGION_TESTS_ALLOC_GUARD_H

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include <malloc.h>

#include "support/memstat.h"

namespace tg_test {

inline std::atomic<uint64_t> g_allocations{0};
inline std::atomic<bool> g_counting{false};

/** RAII window during which global allocations are counted. */
class AllocGuard
{
  public:
    AllocGuard()
        : start_(g_allocations.load(std::memory_order_relaxed))
    {
        g_counting.store(true, std::memory_order_relaxed);
    }

    ~AllocGuard()
    {
        g_counting.store(false, std::memory_order_relaxed);
    }

    AllocGuard(const AllocGuard &) = delete;
    AllocGuard &operator=(const AllocGuard &) = delete;

    /** Allocations since construction (read before destruction). */
    uint64_t
    allocations() const
    {
        return g_allocations.load(std::memory_order_relaxed) - start_;
    }

  private:
    uint64_t start_;
};

inline void *
countedAlloc(std::size_t size, std::size_t align) noexcept
{
    if (g_counting.load(std::memory_order_relaxed))
        g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (size == 0)
        size = 1;
    void *p;
    if (align > alignof(std::max_align_t)) {
        const std::size_t rounded = (size + align - 1) / align * align;
        p = std::aligned_alloc(align, rounded);
    } else {
        p = std::malloc(size);
    }
    // Feed the library's live-byte accounting (support/memstat.h):
    // linking this interposer is what turns memory measurement on.
    if (p)
        treegion::support::memstatOnAlloc(::malloc_usable_size(p));
    return p;
}

inline void
countedFree(void *p) noexcept
{
    if (p)
        treegion::support::memstatOnFree(::malloc_usable_size(p));
    std::free(p);
}

} // namespace tg_test

// Replaceable global allocation functions (non-inline by rule; see
// file comment for the single-inclusion requirement).

void *
operator new(std::size_t size)
{
    void *p = tg_test::countedAlloc(size, alignof(std::max_align_t));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    void *p = tg_test::countedAlloc(size, alignof(std::max_align_t));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    void *p =
        tg_test::countedAlloc(size, static_cast<std::size_t>(align));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    void *p =
        tg_test::countedAlloc(size, static_cast<std::size_t>(align));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return tg_test::countedAlloc(size, alignof(std::max_align_t));
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return tg_test::countedAlloc(size, alignof(std::max_align_t));
}

void
operator delete(void *p) noexcept
{
    tg_test::countedFree(p);
}

void
operator delete[](void *p) noexcept
{
    tg_test::countedFree(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    tg_test::countedFree(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    tg_test::countedFree(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    tg_test::countedFree(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    tg_test::countedFree(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    tg_test::countedFree(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    tg_test::countedFree(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    tg_test::countedFree(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    tg_test::countedFree(p);
}

#endif // TREEGION_TESTS_ALLOC_GUARD_H
