/**
 * @file
 * Unit tests for the work-stealing thread pool: result ordering,
 * exception propagation, stress with many small tasks, and clean
 * shutdown. These are the tests the CI TSan job runs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/thread_pool.h"

namespace treegion::support {
namespace {

TEST(ThreadPool, HardwareThreadsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPool, DefaultSizeUsesHardwareThreads)
{
    ThreadPool pool;
    EXPECT_EQ(pool.numThreads(), ThreadPool::hardwareThreads());
}

TEST(ThreadPool, SubmitReturnsResults)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, ResultsKeepSubmissionOrderAcrossThreadCounts)
{
    // The futures pin results to submission order no matter which
    // worker runs which task or how long each task takes.
    for (const size_t threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        std::vector<std::future<size_t>> futures;
        for (size_t i = 0; i < 64; ++i) {
            futures.push_back(pool.submit([i] {
                if (i % 7 == 0) {
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
                }
                return i;
            }));
        }
        for (size_t i = 0; i < futures.size(); ++i)
            EXPECT_EQ(futures[i].get(), i);
    }
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto bad = pool.submit([]() -> int {
        throw std::runtime_error("task failed");
    });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    auto good = pool.submit([] { return 7; });
    EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(500);
    pool.parallelFor(hits.size(),
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstError)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](size_t i) {
                                      ran.fetch_add(1);
                                      if (i == 13) {
                                          throw std::domain_error(
                                              "boom");
                                      }
                                  }),
                 std::domain_error);
    // Every iteration still ran: one failure doesn't cancel the rest.
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, StressManySmallTasks)
{
    ThreadPool pool(8);
    std::atomic<uint64_t> sum{0};
    constexpr size_t kTasks = 20000;
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    for (size_t i = 0; i < kTasks; ++i) {
        futures.push_back(pool.submit(
            [&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); }));
    }
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
}

TEST(ThreadPool, TasksRunOnMultipleThreads)
{
    ThreadPool pool(4);
    std::mutex mutex;
    std::set<std::thread::id> ids;
    // Enough slow-ish tasks that every worker gets a chance to take
    // at least one (the assertion is >1 to stay robust on loaded or
    // single-core machines: even there, stealing keeps >=1 alive).
    pool.parallelFor(256, [&](size_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        std::lock_guard<std::mutex> lock(mutex);
        ids.insert(std::this_thread::get_id());
    });
    EXPECT_GE(ids.size(), 1u);
    EXPECT_LE(ids.size(), 4u);
}

TEST(ThreadPool, BurstSubmissionEngagesAllWorkers)
{
    ThreadPool pool(4);
    // Let every worker park on the wake cv before the burst arrives.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::atomic<int> current{0};
    std::atomic<int> max_seen{0};
    constexpr int kTasks = 16;
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        futures.push_back(pool.submit([&] {
            const int now = current.fetch_add(1) + 1;
            int prev = max_seen.load();
            while (now > prev &&
                   !max_seen.compare_exchange_weak(prev, now)) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            current.fetch_sub(1);
        }));
    }
    for (auto &f : futures)
        f.get();
    // If burst admission woke only one worker, it would drain the
    // whole queue serially and peak concurrency would stay at 1.
    EXPECT_GE(max_seen.load(), 2);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 200; ++i) {
            pool.submit([&done] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(10));
                done.fetch_add(1);
            });
        }
        // Destructor must finish all 200, not drop the queue.
    }
    EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, MoveOnlyResultsWork)
{
    ThreadPool pool(2);
    auto future = pool.submit([] {
        return std::make_unique<int>(41);
    });
    auto result = future.get();
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(*result + 1, 42);
}

} // namespace
} // namespace treegion::support
