/**
 * @file
 * Decision-remark tests: kind/pass naming, JSON schema round-trip and
 * rejection, stream collection and metrics folding, and — against
 * real pipeline runs — that every remark kind is emitted, that counts
 * agree with the scheduler's own statistics, and that tail-dup
 * refusals are reported exactly once per refused edge.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "ir/builder.h"
#include "ir/parser.h"
#include "region/formation.h"
#include "region/graphviz.h"
#include "sched/pipeline.h"
#include "support/metrics.h"
#include "support/remarks.h"
#include "workloads/profiler.h"

namespace treegion::support {
namespace {

using ir::BlockId;
using ir::Builder;
using ir::CmpKind;
using ir::Function;
using ir::Reg;

// ---- names and schema ----------------------------------------------

TEST(RemarkKinds, NamesRoundTripAndPassesAreKnown)
{
    const std::set<std::string> passes = {"formation", "tail-dup",
                                          "sched", "perf"};
    std::set<std::string> seen;
    for (const RemarkKind kind : kAllRemarkKinds) {
        const std::string name = remarkKindName(kind);
        EXPECT_TRUE(seen.insert(name).second) << name << " repeated";
        RemarkKind parsed;
        ASSERT_TRUE(parseRemarkKind(name, parsed)) << name;
        EXPECT_EQ(parsed, kind);
        EXPECT_TRUE(passes.count(remarkPassName(kind)))
            << remarkPassName(kind);
    }
    RemarkKind out;
    EXPECT_FALSE(parseRemarkKind("bogus-kind", out));
    EXPECT_FALSE(parseRemarkKind("", out));
}

Remark
sampleRemark()
{
    Remark r;
    r.kind = RemarkKind::TailDupRefused;
    r.function = "odd \"name\"\nwith\tescapes\\";
    r.block = 7;
    r.op = 123;
    r.args.push_back({"reason", RemarkArg::Type::Str, 0, 0.0,
                      "merge-limit"});
    r.args.push_back({"preds", RemarkArg::Type::Int, -5, 0.0, ""});
    r.args.push_back({"cap", RemarkArg::Type::Float, 0, 0.1, ""});
    r.args.push_back({"big", RemarkArg::Type::Float, 0, 1.25e300, ""});
    return r;
}

TEST(RemarkJson, RoundTripIsLossless)
{
    const Remark r = sampleRemark();
    const std::string line = r.toJson();
    Remark back;
    std::string error;
    ASSERT_TRUE(parseRemarkJson(line, back, &error)) << error;
    EXPECT_EQ(back, r);
    // Floats printed with %.17g are bit-exact through strtod.
    EXPECT_EQ(back.args[2].f, 0.1);
    EXPECT_EQ(back.args[3].f, 1.25e300);
    // Re-serialization is canonical.
    EXPECT_EQ(back.toJson(), line);
}

TEST(RemarkJson, OptionalAnchorsStayAbsent)
{
    Remark r;
    r.kind = RemarkKind::RegionFormed;
    r.function = "f";
    const std::string line = r.toJson();
    EXPECT_EQ(line.find("\"block\""), std::string::npos);
    EXPECT_EQ(line.find("\"op\""), std::string::npos);
    EXPECT_EQ(line.find("\"args\""), std::string::npos);
    Remark back;
    ASSERT_TRUE(parseRemarkJson(line, back));
    EXPECT_EQ(back, r);
}

TEST(RemarkJson, RejectsSchemaViolations)
{
    const struct
    {
        const char *line;
        const char *why;
    } cases[] = {
        {"{\"pass\":\"sched\",\"kind\":\"not-a-kind\",\"fn\":\"f\"}",
         "unknown kind"},
        {"{\"pass\":\"sched\",\"kind\":\"renamed\"}", "missing fn"},
        {"{\"kind\":\"renamed\",\"fn\":\"f\"}", "missing pass"},
        {"{\"pass\":\"perf\",\"kind\":\"renamed\",\"fn\":\"f\"}",
         "pass/kind mismatch"},
        {"{\"pass\":\"sched\",\"kind\":\"renamed\",\"fn\":\"f\"} x",
         "trailing garbage"},
        {"{\"pass\":\"sched\",\"kind\":\"renamed\",\"fn\":\"f\","
         "\"block\":\"seven\"}",
         "block must be an integer"},
        {"{\"pass\":\"sched\",\"kind\":\"renamed\",\"fn\":\"f\","
         "\"block\":-2}",
         "block must be non-negative"},
        {"{\"pass\":\"sched\",\"kind\":\"renamed\",\"fn\":\"f\","
         "\"surprise\":1}",
         "unknown top-level key"},
        {"{\"pass\":\"sched\",\"kind\":\"renamed\",\"fn\":\"f\","
         "\"args\":{\"x\":{}}}",
         "nested args value"},
        {"not json at all", "not an object"},
        {"", "empty line"},
    };
    for (const auto &c : cases) {
        Remark out;
        std::string error;
        EXPECT_FALSE(parseRemarkJson(c.line, out, &error))
            << c.why << ": " << c.line;
        EXPECT_FALSE(error.empty()) << c.why;
    }
}

// ---- stream and metrics --------------------------------------------

TEST(RemarkStream, StampsFunctionAndFoldsCounters)
{
    RemarkStream stream;
    stream.setFunction("f");
    {
        RemarkScope scope(&stream);
        ASSERT_TRUE(remarksEnabled());
        remark(RemarkKind::Renamed).block(1).op(2).arg("from", "r1");
        remark(RemarkKind::Renamed).block(1).op(3).arg("from", "r2");
        remark(RemarkKind::Speculated).op(4);
    }
    EXPECT_FALSE(remarksEnabled());
    ASSERT_EQ(stream.size(), 3u);
    for (const Remark &r : stream.remarks())
        EXPECT_EQ(r.function, "f");

    MetricsRegistry metrics;
    stream.foldInto(metrics);
    EXPECT_EQ(metrics.counter("remarks_renamed"), 2u);
    EXPECT_EQ(metrics.counter("remarks_speculated"), 1u);
    EXPECT_EQ(metrics.counter("remarks_total"), 3u);
}

TEST(RemarkStream, BuilderIsInertWithoutAScope)
{
    // No scope installed: emission sites are no-ops, not crashes.
    remark(RemarkKind::Elided).block(1).op(2).arg("twin", 3);
    EXPECT_EQ(currentRemarkStream(), nullptr);
}

TEST(RemarkScope, NestsAndRestores)
{
    RemarkStream outer, inner;
    RemarkScope a(&outer);
    {
        RemarkScope b(&inner);
        remark(RemarkKind::RegionFormed).block(0);
    }
    remark(RemarkKind::RegionFormed).block(1);
    EXPECT_EQ(inner.size(), 1u);
    EXPECT_EQ(outer.size(), 1u);
    EXPECT_EQ(inner.remarks()[0].block, 0);
    EXPECT_EQ(outer.remarks()[0].block, 1);
}

// ---- pipeline emission ---------------------------------------------

struct RemarkRun
{
    sched::PipelineResult result;
    RemarkStream stream;
    size_t dup_blocks = 0;  ///< blocks the run tail-duplicated
};

/** Run the pipeline on a clone of @p fn, collecting remarks. */
RemarkRun
compileWithRemarks(const Function &fn,
                   const sched::PipelineOptions &options)
{
    RemarkRun run;
    Function clone = fn.clone();
    {
        RemarkScope scope(&run.stream);
        run.result = sched::runPipeline(clone, options);
    }
    for (const BlockId id : clone.blockIds())
        if (clone.block(id).originalId() != id)
            ++run.dup_blocks;
    return run;
}

std::map<RemarkKind, size_t>
countByKind(const RemarkStream &stream)
{
    std::map<RemarkKind, size_t> counts;
    for (const Remark &r : stream.remarks())
        ++counts[r.kind];
    return counts;
}

/** Diamond with a shared tail: a -> (b|c) -> tail -> ret. */
Function
sharedTailDiamond()
{
    Function fn("f");
    Builder bu(fn);
    const BlockId a = bu.newBlock();
    const BlockId b = bu.newBlock();
    const BlockId c = bu.newBlock();
    const BlockId tail = bu.newBlock();
    fn.setEntry(a);

    bu.setInsertPoint(a);
    const Reg base = bu.movi(0);
    const Reg x = bu.load(base, 1);
    bu.condBr(CmpKind::LT, Builder::R(x), Builder::I(50), b, c);

    bu.setInsertPoint(b);
    bu.store(base, 2, Builder::I(1));
    bu.bru(tail);

    bu.setInsertPoint(c);
    bu.store(base, 2, Builder::I(2));
    bu.bru(tail);

    bu.setInsertPoint(tail);
    const Reg y = bu.load(base, 2);
    bu.ret(Builder::R(y));

    fn.block(a).setWeight(10);
    fn.block(a).edgeWeights() = {6, 4};
    fn.block(b).setWeight(6);
    fn.block(b).edgeWeights() = {6};
    fn.block(c).setWeight(4);
    fn.block(c).edgeWeights() = {4};
    fn.block(tail).setWeight(10);
    return fn;
}

TEST(PipelineRemarks, RefusalReasonsAreReported)
{
    sched::PipelineOptions options;
    options.scheme = sched::RegionScheme::TreegionTailDup;

    // expansion-limit: with a 1.0 ratio, any duplication overflows.
    {
        sched::PipelineOptions o = options;
        o.tail_dup.expansion_limit = 1.0;
        const RemarkRun run = compileWithRemarks(sharedTailDiamond(), o);
        bool found = false;
        for (const Remark &r : run.stream.remarks()) {
            if (r.kind != RemarkKind::TailDupRefused)
                continue;
            for (const RemarkArg &arg : r.args)
                found |= arg.key == "reason" &&
                         arg.s == "expansion-limit";
        }
        EXPECT_TRUE(found);
    }

    // path-limit: one path allowed, the diamond needs two.
    {
        sched::PipelineOptions o = options;
        o.tail_dup.path_limit = 1;
        const RemarkRun run = compileWithRemarks(sharedTailDiamond(), o);
        bool found = false;
        for (const Remark &r : run.stream.remarks()) {
            if (r.kind != RemarkKind::TailDupStopped)
                continue;
            for (const RemarkArg &arg : r.args)
                found |= arg.key == "reason" && arg.s == "path-limit";
        }
        EXPECT_TRUE(found);
    }

    // max-blocks: a one-block budget stops before any selection.
    {
        sched::PipelineOptions o = options;
        o.tail_dup.max_region_blocks = 1;
        const RemarkRun run = compileWithRemarks(sharedTailDiamond(), o);
        bool found = false;
        for (const Remark &r : run.stream.remarks()) {
            if (r.kind != RemarkKind::TailDupStopped)
                continue;
            for (const RemarkArg &arg : r.args)
                found |= arg.key == "reason" && arg.s == "max-blocks";
        }
        EXPECT_TRUE(found);
    }

    // merge-limit: a 5-way merge against the default limit of 4.
    {
        Function fn("wide");
        Builder bu(fn);
        const BlockId entry = bu.newBlock();
        std::vector<BlockId> arms;
        for (int i = 0; i < 5; ++i)
            arms.push_back(bu.newBlock());
        const BlockId merge = bu.newBlock();
        const BlockId after = bu.newBlock();
        fn.setEntry(entry);

        bu.setInsertPoint(entry);
        const Reg base = bu.movi(0);
        const Reg sel = bu.load(base, 1);
        bu.mwbr(sel, arms);
        for (const BlockId arm : arms) {
            bu.setInsertPoint(arm);
            bu.bru(merge);
        }
        bu.setInsertPoint(merge);
        bu.bru(after);
        bu.setInsertPoint(after);
        bu.ret(Builder::I(0));

        fn.block(entry).setWeight(10);
        fn.block(entry).edgeWeights() = {2, 2, 2, 2, 2};
        for (const BlockId arm : arms) {
            fn.block(arm).setWeight(2);
            fn.block(arm).edgeWeights() = {2};
        }
        fn.block(merge).setWeight(10);
        fn.block(merge).edgeWeights() = {10};
        fn.block(after).setWeight(10);

        const RemarkRun run = compileWithRemarks(fn, options);
        bool found = false;
        for (const Remark &r : run.stream.remarks()) {
            if (r.kind != RemarkKind::TailDupRefused)
                continue;
            for (const RemarkArg &arg : r.args)
                found |=
                    arg.key == "reason" && arg.s == "merge-limit";
        }
        EXPECT_TRUE(found);
    }

    // repeats-along-path: a loop body already on the path is never
    // duplicated below itself (that would be unrolling).
    {
        Function fn("loop");
        Builder bu(fn);
        const BlockId entry = bu.newBlock();
        const BlockId body = bu.newBlock();
        const BlockId exit = bu.newBlock();
        fn.setEntry(entry);

        bu.setInsertPoint(entry);
        const Reg base = bu.movi(0);
        // Padding: the loop body (3 ops) must fit the 2.0x expansion
        // budget of the entry region, or the clone that makes the
        // repeat visible is itself refused first.
        bu.movi(1);
        bu.movi(2);
        bu.movi(3);
        bu.bru(body);
        bu.setInsertPoint(body);
        const Reg v = bu.load(base, 1);
        bu.condBr(CmpKind::LT, Builder::R(v), Builder::I(5), body,
                  exit);
        bu.setInsertPoint(exit);
        bu.ret(Builder::I(0));

        fn.block(entry).setWeight(1);
        fn.block(entry).edgeWeights() = {1};
        fn.block(body).setWeight(10);
        fn.block(body).edgeWeights() = {9, 1};
        fn.block(exit).setWeight(1);

        const RemarkRun run = compileWithRemarks(fn, options);
        bool found = false;
        for (const Remark &r : run.stream.remarks()) {
            if (r.kind != RemarkKind::TailDupRefused)
                continue;
            for (const RemarkArg &arg : r.args)
                found |= arg.key == "reason" &&
                         arg.s == "repeats-along-path";
        }
        EXPECT_TRUE(found);
    }
}

TEST(PipelineRemarks, EveryRemarkIsSchemaValid)
{
    sched::PipelineOptions options;
    options.scheme = sched::RegionScheme::TreegionTailDup;
    const RemarkRun run = compileWithRemarks(sharedTailDiamond(), options);
    ASSERT_GT(run.stream.size(), 0u);
    for (const Remark &r : run.stream.remarks()) {
        Remark back;
        std::string error;
        ASSERT_TRUE(parseRemarkJson(r.toJson(), back, &error))
            << r.toJson() << ": " << error;
        EXPECT_EQ(back, r);
    }
}

/** Load and profile examples/sum_loop.tir (as treegionc would). */
std::unique_ptr<ir::Module>
loadSumLoop()
{
    std::ifstream file(std::string(TREEGION_EXAMPLES_DIR) +
                       "/sum_loop.tir");
    if (!file)
        return nullptr;
    std::ostringstream buffer;
    buffer << file.rdbuf();
    std::string error;
    auto mod = ir::parseModule(buffer.str(), &error);
    if (mod) {
        for (const auto &fn : mod->functions())
            workloads::profileFunction(*fn, mod->memWords());
    }
    return mod;
}

TEST(PipelineRemarks, SumLoopCoversEveryKindOnce)
{
    auto mod = loadSumLoop();
    ASSERT_NE(mod, nullptr);

    sched::PipelineOptions options;
    options.scheme = sched::RegionScheme::TreegionTailDup;
    const RemarkRun run = compileWithRemarks(mod->function("main"), options);
    const auto counts = countByKind(run.stream);
    for (const RemarkKind kind : kAllRemarkKinds) {
        EXPECT_TRUE(counts.count(kind))
            << "kind " << remarkKindName(kind)
            << " never emitted for sum_loop";
    }
}

TEST(PipelineRemarks, CountsMatchSchedulerStatistics)
{
    auto mod = loadSumLoop();
    ASSERT_NE(mod, nullptr);

    sched::PipelineOptions options;
    options.scheme = sched::RegionScheme::TreegionTailDup;
    const RemarkRun run = compileWithRemarks(mod->function("main"), options);
    auto counts = countByKind(run.stream);

    // Every speculated / renamed / elided op appears as exactly one
    // remark: the remark counts equal the scheduler's own statistics.
    EXPECT_EQ(counts[RemarkKind::Speculated],
              run.result.total_sched_stats.speculated_ops);
    EXPECT_EQ(counts[RemarkKind::Renamed],
              run.result.total_sched_stats.renamed_defs);
    EXPECT_EQ(counts[RemarkKind::Elided],
              run.result.total_sched_stats.elided_ops);
    // ...and every cloned block has exactly one tail-duplicated remark.
    EXPECT_EQ(counts[RemarkKind::TailDuplicated], run.dup_blocks);

    // Each tail-dup refusal is reported exactly once per (edge,
    // reason), despite the expansion loop re-scanning candidates.
    std::set<std::string> refusals;
    for (const Remark &r : run.stream.remarks()) {
        if (r.kind != RemarkKind::TailDupRefused)
            continue;
        EXPECT_TRUE(refusals.insert(r.toJson()).second)
            << "duplicate refusal remark: " << r.toJson();
    }
    EXPECT_GT(refusals.size(), 0u);
}

TEST(PipelineRemarks, DisabledCollectionIsFree)
{
    auto mod = loadSumLoop();
    ASSERT_NE(mod, nullptr);
    // No scope: the pipeline must run remark-free (and not crash on
    // any emission site).
    ir::Function clone = mod->function("main").clone();
    sched::PipelineOptions options;
    options.scheme = sched::RegionScheme::TreegionTailDup;
    const auto result = sched::runPipeline(clone, options);
    EXPECT_GT(result.estimated_time, 0.0);
    EXPECT_EQ(currentRemarkStream(), nullptr);
}

// ---- graphviz annotation (satellite) -------------------------------

TEST(GraphvizRemarks, TailDuplicatedBlocksAreAnnotated)
{
    Function fn = sharedTailDiamond();
    region::TailDupLimits limits;
    region::RegionSet set = region::formTreegionsTailDup(fn, limits);

    std::ostringstream os;
    region::writeDot(os, fn, set, {});
    const std::string dot = os.str();
    // The duplicated tail is labeled with its original and filled
    // distinctly; region boundaries use a heavy border.
    EXPECT_NE(dot.find("(dup of bb"), std::string::npos) << dot;
    EXPECT_NE(dot.find("fillcolor=\"#ffe9a8\""), std::string::npos);
    EXPECT_NE(dot.find("penwidth=2.5"), std::string::npos);
    EXPECT_NE(dot.find("(root bb"), std::string::npos);
}

} // namespace
} // namespace treegion::support
