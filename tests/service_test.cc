/**
 * @file
 * Tests for the compile service: cache keys, the LRU cache, the wire
 * protocol, and a live server end to end over a Unix-domain socket —
 * caching (with the bit-identity invariant verified), deadlines,
 * backpressure, oversized frames, stats, plain-HTTP /stats, and
 * graceful drain.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "ir/parser.h"
#include "ir/printer.h"
#include "sched/mem_estimate.h"
#include "sched/pipeline.h"
#include "service/cache.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "support/string_utils.h"

namespace treegion::service {
namespace {

void
replaceAll(std::string &text, const std::string &from,
           const std::string &to)
{
    for (size_t pos = 0;
         (pos = text.find(from, pos)) != std::string::npos;
         pos += to.size())
        text.replace(pos, from.size(), to);
}

/** A small but non-trivial module: a loop plus a diamond. */
const char *kModule = R"(module sum_loop mem=1024
func @main entry=bb0 gprs=16 preds=4 {
  block bb0 weight=1 edges=[1] {
    r0 = MOVI 0
    r1 = MOVI 0
    r2 = MOVI 0
    BRU bb1
  }
  block bb1 weight=11 edges=[10,1] {
    p0 = CMPP.LT r1, 10
    BRCT p0, bb2, bb5
  }
  block bb2 weight=10 edges=[2,8] {
    r3 = LD [r0 + 4]
    r4 = ADD r3, r1
    p1 = CMPP.GT r4, 100
    BRCT p1, bb4, bb3
  }
  block bb3 weight=8 edges=[8] {
    r2 = ADD r2, r4
    BRU bb4
  }
  block bb4 weight=10 edges=[10] {
    r1 = ADD r1, 1
    BRU bb1
  }
  block bb5 weight=1 {
    ST [r0 + 64], r2
    RET r2
  }
}
)";

ir::Function &
firstFunction(std::unique_ptr<ir::Module> &mod,
              const std::string &text = kModule)
{
    std::string error;
    mod = ir::parseModule(text, &error);
    EXPECT_TRUE(mod) << error;
    return *mod->functions().front();
}

// ---------------------------------------------------------------
// Cache keys
// ---------------------------------------------------------------

TEST(CacheKey, CanonicalTextIsAPrintFixedPoint)
{
    std::unique_ptr<ir::Module> mod;
    const std::string once = canonicalFunctionText(firstFunction(mod));

    // Re-parse the printed text and print again: identical, so the
    // key is stable across any number of print->parse round trips.
    std::string error;
    auto reparsed = ir::parseModule(
        "module m mem=1024\n" + once, &error);
    ASSERT_TRUE(reparsed) << error;
    const std::string twice =
        canonicalFunctionText(*reparsed->functions().front());
    EXPECT_EQ(once, twice);
    EXPECT_EQ(makeCacheKey(once, "cfg"), makeCacheKey(twice, "cfg"));
}

TEST(CacheKey, InsensitiveToSurfaceFormatting)
{
    // Extra blank lines don't change the parsed function, so they
    // must not change the canonical text either.
    std::unique_ptr<ir::Module> mod1, mod2;
    std::string spaced = kModule;
    replaceAll(spaced, "\n  block", "\n\n  block");
    EXPECT_EQ(canonicalFunctionText(firstFunction(mod1)),
              canonicalFunctionText(firstFunction(mod2, spaced)));
}

TEST(CacheKey, DependsOnFunctionAndConfig)
{
    const CacheKey base = makeCacheKey("fn-a", "cfg-a");
    EXPECT_NE(base, makeCacheKey("fn-b", "cfg-a"));
    EXPECT_NE(base, makeCacheKey("fn-a", "cfg-b"));
    // The two halves must not be confusable: moving a byte across
    // the separator changes the key.
    EXPECT_NE(makeCacheKey("ab", "c"), makeCacheKey("a", "bc"));
    EXPECT_EQ(base.str().size(), 32u);  // 128 bits in hex
}

TEST(CacheKey, EveryPipelineOptionFieldChangesTheKey)
{
    // One mutator per PipelineOptions field. If someone adds a field
    // and forgets to encode it, the encoding (and hence the key)
    // stays put — this test pins the contract for the fields we have.
    using Mut = void (*)(sched::PipelineOptions &);
    const Mut mutators[] = {
        [](sched::PipelineOptions &o) {
            o.scheme = sched::RegionScheme::Superblock;
        },
        [](sched::PipelineOptions &o) {
            o.sched.heuristic = sched::Heuristic::ExitCount;
        },
        [](sched::PipelineOptions &o) {
            o.model = sched::MachineModel::custom(7);
        },
        [](sched::PipelineOptions &o) {
            o.sched.dominator_parallelism =
                !o.sched.dominator_parallelism;
        },
        [](sched::PipelineOptions &o) {
            o.sched.materialize_pbr = !o.sched.materialize_pbr;
        },
        [](sched::PipelineOptions &o) {
            o.tail_dup.expansion_limit += 0.25;
        },
        [](sched::PipelineOptions &o) { o.tail_dup.path_limit += 1; },
        [](sched::PipelineOptions &o) { o.tail_dup.merge_limit += 1; },
        [](sched::PipelineOptions &o) {
            o.tail_dup.max_region_blocks += 1;
        },
        [](sched::PipelineOptions &o) {
            o.superblock.cold_edge_weight += 0.5;
        },
        [](sched::PipelineOptions &o) {
            o.superblock.min_edge_prob += 0.01;
        },
        [](sched::PipelineOptions &o) {
            o.superblock.mutual_most_likely =
                !o.superblock.mutual_most_likely;
        },
        [](sched::PipelineOptions &o) {
            o.superblock.max_blocks += 1;
        },
        [](sched::PipelineOptions &o) {
            o.hyperblock.min_weight_ratio += 0.01;
        },
        [](sched::PipelineOptions &o) { o.hyperblock.max_blocks += 1; },
        [](sched::PipelineOptions &o) { o.hyperblock.path_limit += 1; },
    };

    const sched::PipelineOptions base;
    Request req;
    req.options = sched::encodePipelineOptions(base);
    const CacheKey base_key =
        makeCacheKey("fn", req.configFingerprint());

    for (const Mut mutate : mutators) {
        sched::PipelineOptions mutated = base;
        mutate(mutated);
        Request changed;
        changed.options = sched::encodePipelineOptions(mutated);
        EXPECT_NE(changed.options, req.options);
        EXPECT_NE(makeCacheKey("fn", changed.configFingerprint()),
                  base_key)
            << changed.options;
    }
}

TEST(CacheKey, RequestFieldsThatShapeTheBodyChangeTheKey)
{
    Request base;
    const CacheKey key = makeCacheKey("fn", base.configFingerprint());

    Request schedule = base;
    schedule.want_schedule = true;
    EXPECT_NE(makeCacheKey("fn", schedule.configFingerprint()), key);

    Request profile = base;
    profile.profile = false;
    EXPECT_NE(makeCacheKey("fn", profile.configFingerprint()), key);

    Request seed = base;
    seed.profile_seed += 1;
    EXPECT_NE(makeCacheKey("fn", seed.configFingerprint()), key);

    Request runs = base;
    runs.profile_runs += 1;
    EXPECT_NE(makeCacheKey("fn", runs.configFingerprint()), key);

    // deadline-ms and no-cache do NOT shape the body, so they must
    // NOT fragment the cache.
    Request deadline = base;
    deadline.deadline_ms = 500;
    deadline.no_cache = true;
    EXPECT_EQ(makeCacheKey("fn", deadline.configFingerprint()), key);
}

TEST(PipelineOptions, EncodeParseRoundTrip)
{
    sched::PipelineOptions options;
    options.scheme = sched::RegionScheme::TreegionTailDup;
    options.sched.heuristic = sched::Heuristic::WeightedCount;
    options.model = sched::MachineModel::custom(6);
    options.sched.materialize_pbr = true;
    options.tail_dup.expansion_limit = 1.7320508075688772;
    options.superblock.min_edge_prob = 0.7;
    options.hyperblock.path_limit = 9;

    const std::string encoded = sched::encodePipelineOptions(options);
    sched::PipelineOptions parsed;
    std::string error;
    ASSERT_TRUE(sched::parsePipelineOptions(encoded, parsed, &error))
        << error;
    // The encoding is canonical: round-tripping reproduces it
    // byte-for-byte (doubles included, via %.17g).
    EXPECT_EQ(sched::encodePipelineOptions(parsed), encoded);
}

TEST(PipelineOptions, ParseRejectsUnknownKeysAndBadValues)
{
    sched::PipelineOptions out;
    std::string error;
    EXPECT_FALSE(sched::parsePipelineOptions("bogus=1", out, &error));
    EXPECT_FALSE(
        sched::parsePipelineOptions("scheme=warp", out, &error));
    EXPECT_FALSE(
        sched::parsePipelineOptions("heuristic=magic", out, &error));
    EXPECT_FALSE(sched::parsePipelineOptions("width=0", out, &error));
    EXPECT_FALSE(sched::parsePipelineOptions("width", out, &error));
    EXPECT_TRUE(sched::parsePipelineOptions("", out, &error)) << error;
    EXPECT_TRUE(
        sched::parsePipelineOptions("scheme=sb width=2", out, &error))
        << error;
    EXPECT_EQ(out.scheme, sched::RegionScheme::Superblock);
    EXPECT_EQ(out.model.issue_width, 2);
}

// ---------------------------------------------------------------
// CompileCache
// ---------------------------------------------------------------

TEST(CompileCache, HitMissAndLruEviction)
{
    CompileCache cache(/*max_bytes=*/10);
    const CacheKey a{1, 0}, b{2, 0}, c{3, 0};

    EXPECT_FALSE(cache.lookup(a).has_value());
    cache.insert(a, "aaaa");  // 4 bytes
    cache.insert(b, "bbbb");  // 8 bytes total
    ASSERT_TRUE(cache.lookup(a).has_value());
    EXPECT_EQ(*cache.lookup(a), "aaaa");

    // a was just refreshed, so inserting 4 more bytes evicts b.
    cache.insert(c, "cccc");
    EXPECT_TRUE(cache.lookup(a).has_value());
    EXPECT_FALSE(cache.lookup(b).has_value());
    EXPECT_TRUE(cache.lookup(c).has_value());

    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 4u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.insertions, 3u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.bytes, 8u);
}

TEST(CompileCache, ReinsertRefreshesPayloadAndOversizedIsDropped)
{
    CompileCache cache(/*max_bytes=*/16);
    const CacheKey k{7, 7};
    cache.insert(k, "old");
    cache.insert(k, "newer");
    EXPECT_EQ(*cache.lookup(k), "newer");
    EXPECT_EQ(cache.stats().bytes, 5u);

    // A payload larger than the whole budget is not cached (and must
    // not wipe the existing entries to make room for nothing).
    cache.insert(CacheKey{8, 8}, std::string(64, 'x'));
    EXPECT_FALSE(cache.lookup(CacheKey{8, 8}).has_value());
    EXPECT_TRUE(cache.lookup(k).has_value());

    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);
    EXPECT_FALSE(cache.lookup(k).has_value());
}

TEST(CompileCache, ZeroBudgetDisablesCaching)
{
    CompileCache cache(0);
    cache.insert(CacheKey{1, 1}, "x");
    EXPECT_FALSE(cache.lookup(CacheKey{1, 1}).has_value());
    EXPECT_EQ(cache.stats().insertions, 0u);
}

// ---------------------------------------------------------------
// Protocol round trips
// ---------------------------------------------------------------

TEST(Protocol, RequestRoundTrip)
{
    Request req;
    req.verb = "compile";
    req.options = "scheme=tree heuristic=gw width=4";
    req.function = "main";
    req.deadline_ms = 1500;
    req.want_schedule = true;
    req.no_cache = true;
    req.profile = false;
    req.profile_seed = 99;
    req.profile_runs = 7;
    req.module_text = "module m mem=16\nbody with\n\nblank lines\n";

    Request parsed;
    std::string error;
    ASSERT_TRUE(parseRequest(encodeRequest(req), parsed, &error))
        << error;
    EXPECT_EQ(parsed.verb, req.verb);
    EXPECT_EQ(parsed.options, req.options);
    EXPECT_EQ(parsed.function, req.function);
    EXPECT_EQ(parsed.deadline_ms, req.deadline_ms);
    EXPECT_EQ(parsed.want_schedule, req.want_schedule);
    EXPECT_EQ(parsed.no_cache, req.no_cache);
    EXPECT_EQ(parsed.profile, req.profile);
    EXPECT_EQ(parsed.profile_seed, req.profile_seed);
    EXPECT_EQ(parsed.profile_runs, req.profile_runs);
    EXPECT_EQ(parsed.module_text, req.module_text);
}

TEST(Protocol, ResponseRoundTrip)
{
    Response resp;
    resp.status = status::kRejected;
    resp.error = "queue full";
    resp.retry_after_ms = 250;
    resp.cached = true;
    resp.compile_ms = 12.5;
    resp.body = "line1\nline2\n";

    Response parsed;
    std::string error;
    ASSERT_TRUE(parseResponse(encodeResponse(resp), parsed, &error))
        << error;
    EXPECT_EQ(parsed.status, resp.status);
    EXPECT_EQ(parsed.error, resp.error);
    EXPECT_EQ(parsed.retry_after_ms, resp.retry_after_ms);
    EXPECT_EQ(parsed.cached, resp.cached);
    EXPECT_DOUBLE_EQ(parsed.compile_ms, resp.compile_ms);
    EXPECT_EQ(parsed.body, resp.body);
}

TEST(Protocol, ParseRejectsGarbage)
{
    Request req;
    Response resp;
    std::string error;
    EXPECT_FALSE(parseRequest("not a frame", req, &error));
    EXPECT_FALSE(parseResponse("treegion-req/1\n\n", resp, &error));
    EXPECT_FALSE(parseRequest(
        "treegion-req/1\nverb: explode\n\n", req, &error));
}

TEST(Protocol, UnknownHeadersAreIgnored)
{
    Request req;
    std::string error;
    ASSERT_TRUE(parseRequest("treegion-req/1\nverb: ping\n"
                             "x-new-feature: 1\n\n",
                             req, &error))
        << error;
    EXPECT_EQ(req.verb, "ping");
}

// ---------------------------------------------------------------
// Live server, end to end over a Unix-domain socket
// ---------------------------------------------------------------

class ServiceEndToEnd : public ::testing::Test
{
  protected:
    std::string
    socketPath() const
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        return support::strprintf("/tmp/tg-test-%d-%s.sock",
                                  static_cast<int>(getpid()),
                                  info->name());
    }

    /** Start a server on a per-test socket. */
    void
    startServer(ServerOptions options)
    {
        options.unix_path = socketPath();
        options.threads = options.threads ? options.threads : 2;
        server_ = std::make_unique<Server>(std::move(options));
        std::string error;
        ASSERT_TRUE(server_->start(&error)) << error;
    }

    void
    TearDown() override
    {
        if (server_) {
            server_->requestStop();
            server_->waitUntilStopped();
        }
        ::unlink(socketPath().c_str());
    }

    Response
    callOnce(const Request &req)
    {
        std::string error;
        auto client = Client::connect(socketPath(), &error);
        EXPECT_TRUE(client) << error;
        Response resp;
        if (client)
            EXPECT_TRUE(client->call(req, &resp, &error)) << error;
        return resp;
    }

    static Request
    compileRequest()
    {
        Request req;
        req.options = "scheme=tree heuristic=gw width=4";
        req.profile_runs = 2;
        req.module_text = kModule;
        return req;
    }

    std::unique_ptr<Server> server_;
};

TEST_F(ServiceEndToEnd, PingAndStats)
{
    startServer({});
    Request ping;
    ping.verb = "ping";
    const Response pong = callOnce(ping);
    EXPECT_EQ(pong.status, status::kOk);
    EXPECT_EQ(pong.body, "pong\n");

    Request stats;
    stats.verb = "stats";
    const Response resp = callOnce(stats);
    EXPECT_EQ(resp.status, status::kOk);
    EXPECT_NE(resp.body.find("\"cache\""), std::string::npos);
    EXPECT_NE(resp.body.find("\"requests_total\""),
              std::string::npos);
}

TEST_F(ServiceEndToEnd, CompileThenBitIdenticalCacheHit)
{
    ServerOptions options;
    // Determinism invariant enforced for real: every hit below is
    // also recompiled and compared byte-for-byte inside the server.
    options.verify_hits = true;
    startServer(std::move(options));

    const Request req = compileRequest();
    const Response first = callOnce(req);
    ASSERT_EQ(first.status, status::kOk) << first.error;
    EXPECT_FALSE(first.cached);
    EXPECT_GT(first.compile_ms, 0.0);
    EXPECT_NE(first.body.find("function: main"), std::string::npos);
    EXPECT_NE(first.body.find("verify: ok"), std::string::npos);

    const Response second = callOnce(req);
    ASSERT_EQ(second.status, status::kOk) << second.error;
    EXPECT_TRUE(second.cached);
    EXPECT_EQ(second.body, first.body);  // bit-identical replay

    // Formatting-only changes to the module hit the same entry.
    Request spaced = req;
    replaceAll(spaced.module_text, "\n  block",
                        "\n\n  block");
    const Response third = callOnce(spaced);
    ASSERT_EQ(third.status, status::kOk) << third.error;
    EXPECT_TRUE(third.cached);
    EXPECT_EQ(third.body, first.body);

    // no-cache bypasses the cache but must still agree bitwise.
    Request uncached = req;
    uncached.no_cache = true;
    const Response fourth = callOnce(uncached);
    ASSERT_EQ(fourth.status, status::kOk) << fourth.error;
    EXPECT_FALSE(fourth.cached);
    EXPECT_EQ(fourth.body, first.body);

    // A different configuration is a different entry.
    Request other = req;
    other.options = "scheme=sb heuristic=gw width=4";
    const Response fifth = callOnce(other);
    ASSERT_EQ(fifth.status, status::kOk) << fifth.error;
    EXPECT_FALSE(fifth.cached);
    EXPECT_NE(fifth.body, first.body);

    EXPECT_GE(server_->metrics().counter("cache_verified_hits"), 2u);
}

TEST_F(ServiceEndToEnd, ScheduleEchoIsCachedDistinctly)
{
    startServer({});
    Request req = compileRequest();
    req.want_schedule = true;
    const Response with = callOnce(req);
    ASSERT_EQ(with.status, status::kOk) << with.error;
    EXPECT_NE(with.body.find("schedule:"), std::string::npos);

    req.want_schedule = false;
    const Response without = callOnce(req);
    ASSERT_EQ(without.status, status::kOk) << without.error;
    EXPECT_FALSE(without.cached);  // different key, not a hit
    EXPECT_EQ(without.body.find("schedule:"), std::string::npos);
}

TEST_F(ServiceEndToEnd, BadRequestsAreErrors)
{
    startServer({});

    Request bad_module = compileRequest();
    bad_module.module_text = "this is not IR";
    EXPECT_EQ(callOnce(bad_module).status, status::kError);

    Request bad_function = compileRequest();
    bad_function.function = "no_such_fn";
    EXPECT_EQ(callOnce(bad_function).status, status::kError);

    Request bad_options = compileRequest();
    bad_options.options = "scheme=bogus";
    EXPECT_EQ(callOnce(bad_options).status, status::kError);

    Request empty = compileRequest();
    empty.module_text.clear();
    EXPECT_EQ(callOnce(empty).status, status::kError);

    // The connection (and the server) survives all of the above.
    Request ping;
    ping.verb = "ping";
    EXPECT_EQ(callOnce(ping).status, status::kOk);
}

TEST_F(ServiceEndToEnd, DeadlineExpiredInQueueIsCancelled)
{
    ServerOptions options;
    options.debug_queue_delay_ms = 30;
    startServer(std::move(options));

    Request req = compileRequest();
    req.deadline_ms = 1;  // expires while parked in the queue
    const Response resp = callOnce(req);
    EXPECT_EQ(resp.status, status::kDeadline);
    EXPECT_EQ(server_->metrics().counter("requests_deadline"), 1u);

    // Without a deadline the same request compiles fine.
    req.deadline_ms = 0;
    EXPECT_EQ(callOnce(req).status, status::kOk);
}

TEST_F(ServiceEndToEnd, SaturatedQueueRejectsWithRetryAfter)
{
    ServerOptions options;
    options.threads = 1;
    options.queue_limit = 1;
    options.debug_queue_delay_ms = 200;
    startServer(std::move(options));

    constexpr int kClients = 3;
    std::vector<Response> responses(kClients);
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            responses[i] = callOnce(compileRequest());
        });
    }
    for (auto &t : threads)
        t.join();

    int ok = 0, rejected = 0;
    for (const auto &resp : responses) {
        if (resp.status == status::kOk) {
            ++ok;
        } else {
            ASSERT_EQ(resp.status, status::kRejected) << resp.error;
            ++rejected;
            // Backpressure comes with a usable retry hint.
            EXPECT_GE(resp.retry_after_ms, 10);
            EXPECT_LE(resp.retry_after_ms, 1000);
        }
    }
    // The saturated queue rejected instead of stalling or crashing,
    // and at least one admitted request completed.
    EXPECT_GE(ok, 1);
    EXPECT_GE(rejected, 1);
    EXPECT_EQ(ok + rejected, kClients);
    EXPECT_EQ(server_->metrics().counter("backpressure_rejections"),
              static_cast<uint64_t>(rejected));

    // Once the queue drains, service resumes.
    EXPECT_EQ(callOnce(compileRequest()).status, status::kOk);
}

TEST_F(ServiceEndToEnd, ColdRetryHintIsPinned)
{
    ServerOptions options;
    options.threads = 1;
    options.queue_limit = 1;
    options.debug_queue_delay_ms = 200;
    startServer(std::move(options));

    // Two concurrent compiles against a one-slot queue: exactly one
    // is rejected, and it is rejected while the request histogram is
    // still empty (the admitted compile is sleeping in the debug
    // delay). The hint must be the documented cold floor — an empty
    // histogram's p50 of 0 would tell clients to hammer a server
    // that has not proven it can answer anything yet.
    constexpr int kClients = 2;
    std::vector<Response> responses(kClients);
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            responses[i] = callOnce(compileRequest());
        });
    }
    for (auto &t : threads)
        t.join();

    int ok = 0, rejected = 0;
    for (const auto &resp : responses) {
        if (resp.status == status::kOk) {
            ++ok;
        } else {
            ASSERT_EQ(resp.status, status::kRejected) << resp.error;
            ++rejected;
            EXPECT_EQ(resp.retry_after_ms, kColdRetryHintMs);
        }
    }
    EXPECT_EQ(ok, 1);
    EXPECT_EQ(rejected, 1);
}

/** The projection treegiond computes for kModule at @p options. */
uint64_t
projectedBytesFor(const char *pipeline_options)
{
    sched::PipelineOptions opts;
    std::string error;
    EXPECT_TRUE(
        sched::parsePipelineOptions(pipeline_options, opts, &error))
        << error;
    return sched::estimatePeakBytes(
        sched::estimateShapeFromText(kModule), opts);
}

TEST_F(ServiceEndToEnd, MemoryBudgetParksThenCompletesCompiles)
{
    const uint64_t projected =
        projectedBytesFor("scheme=tree heuristic=gw width=4");
    ASSERT_GT(projected, 0u);

    ServerOptions options;
    options.threads = 2;
    options.debug_queue_delay_ms = 200;
    // One projection fits, two do not: the second concurrent compile
    // must park, then complete once the first releases its
    // reservation.
    options.mem_budget_bytes = projected + projected / 2;
    startServer(std::move(options));

    constexpr int kClients = 2;
    std::vector<Response> responses(kClients);
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            responses[i] = callOnce(compileRequest());
        });
    }
    for (auto &t : threads)
        t.join();

    for (const auto &resp : responses)
        EXPECT_EQ(resp.status, status::kOk) << resp.error;
    EXPECT_EQ(server_->metrics().counter("mem_queued"), 1u);
    EXPECT_EQ(server_->metrics().counter("mem_rejected"), 0u);
    EXPECT_EQ(server_->metrics().counter("mem_projected_bytes"), 0u)
        << "every reservation must be released on completion";
}

TEST_F(ServiceEndToEnd, MemoryBudgetRejectsWhenParkingListIsFull)
{
    const uint64_t projected =
        projectedBytesFor("scheme=tree heuristic=gw width=4");

    ServerOptions options;
    options.threads = 2;
    options.queue_limit = 1;  // bounds the parked list too
    options.debug_queue_delay_ms = 200;
    options.mem_budget_bytes = projected + projected / 2;
    startServer(std::move(options));

    // Three concurrent compiles: one admitted, one parked, and the
    // third bounces off the full parking list with a retry hint.
    constexpr int kClients = 3;
    std::vector<Response> responses(kClients);
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            responses[i] = callOnce(compileRequest());
        });
    }
    for (auto &t : threads)
        t.join();

    int ok = 0, rejected = 0;
    for (const auto &resp : responses) {
        if (resp.status == status::kOk) {
            ++ok;
        } else {
            ASSERT_EQ(resp.status, status::kRejected) << resp.error;
            ++rejected;
            EXPECT_NE(resp.error.find("memory budget"),
                      std::string::npos)
                << resp.error;
            EXPECT_GE(resp.retry_after_ms, 10);
            EXPECT_LE(resp.retry_after_ms, 1000);
        }
    }
    EXPECT_EQ(ok, 2) << "the parked compile must complete";
    EXPECT_EQ(rejected, 1);
    EXPECT_EQ(server_->metrics().counter("mem_queued"), 1u);
    EXPECT_EQ(server_->metrics().counter("mem_rejected"), 1u);

    // The budget frees up once the batch drains.
    EXPECT_EQ(callOnce(compileRequest()).status, status::kOk);
}

TEST_F(ServiceEndToEnd, StatsExposeMemoryAdmissionGauges)
{
    ServerOptions options;
    options.mem_budget_bytes = 123456789;
    startServer(std::move(options));

    Request stats;
    stats.verb = "stats";
    const Response resp = callOnce(stats);
    ASSERT_EQ(resp.status, status::kOk);
    EXPECT_NE(resp.body.find("\"mem_budget_bytes\":123456789"),
              std::string::npos)
        << resp.body;
    EXPECT_NE(resp.body.find("\"mem_projected_bytes\":0"),
              std::string::npos)
        << resp.body;
    EXPECT_NE(resp.body.find("\"mem_parked\":0"), std::string::npos)
        << resp.body;
}

TEST_F(ServiceEndToEnd, OversizedRequestIsRejected)
{
    ServerOptions options;
    options.max_frame_bytes = 512;
    startServer(std::move(options));

    Request big = compileRequest();
    big.module_text.append(std::string(4096, '#'));
    const Response resp = callOnce(big);
    EXPECT_EQ(resp.status, status::kRejected);
    EXPECT_NE(resp.error.find("limit"), std::string::npos);
    EXPECT_EQ(server_->metrics().counter("oversized_frames"), 1u);

    // Small requests still fit.
    Request ping;
    ping.verb = "ping";
    EXPECT_EQ(callOnce(ping).status, status::kOk);
}

TEST_F(ServiceEndToEnd, PipelinedRequestsAnswerInOrder)
{
    startServer({});

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath().c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    // Write all frames back to back before reading anything: the
    // event loop must batch them to the pool, finish them in any
    // order, and still answer in request order.
    constexpr int kRounds = 4;
    std::string error;
    for (int i = 0; i < kRounds; ++i) {
        Request compile = compileRequest();
        compile.profile_seed = 7000 + static_cast<uint64_t>(i);
        ASSERT_TRUE(
            writeFrame(fd, encodeRequest(compile), &error))
            << error;
        Request ping;
        ping.verb = "ping";
        ASSERT_TRUE(writeFrame(fd, encodeRequest(ping), &error))
            << error;
    }

    for (int i = 0; i < kRounds; ++i) {
        std::string payload;
        Response resp;
        ASSERT_EQ(readFrame(fd, &payload, kDefaultMaxFrameBytes,
                            &error),
                  FrameStatus::Ok)
            << error;
        ASSERT_TRUE(parseResponse(payload, resp, &error)) << error;
        EXPECT_EQ(resp.status, status::kOk) << resp.error;
        EXPECT_NE(resp.body.find("function: main"),
                  std::string::npos);

        ASSERT_EQ(readFrame(fd, &payload, kDefaultMaxFrameBytes,
                            &error),
                  FrameStatus::Ok)
            << error;
        ASSERT_TRUE(parseResponse(payload, resp, &error)) << error;
        EXPECT_EQ(resp.body, "pong\n");
    }
    ::close(fd);

    EXPECT_EQ(server_->metrics().counter("requests_total"),
              2u * kRounds);
}

TEST_F(ServiceEndToEnd, HttpGetStatsOnTheSameListener)
{
    startServer({});

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath().c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char *get = "GET /stats HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::send(fd, get, std::strlen(get), MSG_NOSIGNAL),
              static_cast<ssize_t>(std::strlen(get)));
    std::string reply;
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0)
        reply.append(buf, static_cast<size_t>(n));
    ::close(fd);
    EXPECT_NE(reply.find("200 OK"), std::string::npos) << reply;
    EXPECT_NE(reply.find("application/json"), std::string::npos);
    EXPECT_NE(reply.find("\"cache\""), std::string::npos);
}

TEST_F(ServiceEndToEnd, TcpListenerServesTheSameProtocol)
{
    ServerOptions options;
    options.tcp_port = 0;  // ephemeral
    startServer(std::move(options));
    ASSERT_GT(server_->tcpPort(), 0);

    std::string error;
    auto client = Client::connectTcp("127.0.0.1", server_->tcpPort(),
                                     &error);
    ASSERT_TRUE(client) << error;
    Response resp;
    ASSERT_TRUE(client->call(compileRequest(), &resp, &error))
        << error;
    EXPECT_EQ(resp.status, status::kOk) << resp.error;
}

TEST_F(ServiceEndToEnd, GracefulDrainRefusesNewWorkThenStops)
{
    ServerOptions options;
    options.metrics_path = socketPath() + ".metrics.json";
    startServer(std::move(options));

    // Park a connection, then start the drain. The ping makes sure
    // the connection has actually been accepted — a connect() alone
    // may still be sitting in the listen backlog, and backlogged
    // connections are dropped with the listener when the drain
    // closes it.
    std::string error;
    auto client = Client::connect(socketPath(), &error);
    ASSERT_TRUE(client) << error;
    Request ping;
    ping.verb = "ping";
    Response pong;
    ASSERT_TRUE(client->call(ping, &pong, &error)) << error;
    server_->requestStop();

    // An already-open connection gets a clean refusal, not a hang.
    Response resp;
    ASSERT_TRUE(client->call(compileRequest(), &resp, &error))
        << error;
    EXPECT_EQ(resp.status, status::kShuttingDown);

    server_->waitUntilStopped();

    // The drain flushed a metrics snapshot.
    std::ifstream metrics(socketPath() + ".metrics.json");
    ASSERT_TRUE(metrics.good());
    std::ostringstream contents;
    contents << metrics.rdbuf();
    EXPECT_NE(contents.str().find("\"requests_total\""),
              std::string::npos);
    ::unlink((socketPath() + ".metrics.json").c_str());

    // New connections are refused after the drain.
    EXPECT_FALSE(Client::connect(socketPath(), &error));
    server_.reset();
}

} // namespace
} // namespace treegion::service
