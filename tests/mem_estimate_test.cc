/**
 * @file
 * Error-band pin for the compile-job peak-memory estimator
 * (sched/mem_estimate.h) on the golden corpus: for every golden
 * input under tree, tree-td, and hyper (the latter fit its own
 * per-op coefficient from the --calibrate sweep), the projection
 * must land within 2x of the measured peak in both directions. The admission gate treats projections as hard
 * reservations, so under-projection risks blowing the budget and
 * gross over-projection serializes jobs that would have fit.
 *
 * This binary links the tests/alloc_guard.h interposer (the one TU
 * rule), so measured peaks come from the same live-heap counters the
 * memsched bench calibrates against.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "alloc_guard.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "sched/mem_estimate.h"
#include "sched/pipeline.h"
#include "support/memstat.h"
#include "workloads/profiler.h"

namespace treegion::sched {
namespace {

namespace fs = std::filesystem;

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** The golden corpus: examples plus the frozen fuzz inputs. */
std::vector<fs::path>
goldenInputs()
{
    std::vector<fs::path> inputs;
    for (const char *dir :
         {TREEGION_EXAMPLES_DIR, TREEGION_GOLDEN_DIR "/inputs"}) {
        for (const auto &entry : fs::directory_iterator(dir)) {
            if (entry.path().extension() == ".tir")
                inputs.push_back(entry.path());
        }
    }
    std::sort(inputs.begin(), inputs.end());
    return inputs;
}

std::unique_ptr<ir::Module>
loadProgram(const fs::path &path)
{
    std::string error;
    auto mod = ir::parseModule(readFile(path), &error);
    EXPECT_TRUE(mod) << path << ": " << error;
    if (mod)
        workloads::profileFunction(mod->function("main"),
                                   mod->memWords());
    return mod;
}

/** The goldens' schemes at their memory-heavy widths. */
std::vector<PipelineOptions>
corpusConfigs()
{
    PipelineOptions tree;
    tree.scheme = RegionScheme::Treegion;
    tree.model = MachineModel::wide8U();
    PipelineOptions tree_td;
    tree_td.scheme = RegionScheme::TreegionTailDup;
    tree_td.model = MachineModel::wide4U();
    PipelineOptions hyper;
    hyper.scheme = RegionScheme::Hyperblock;
    hyper.model = MachineModel::wide4U();
    return {tree, tree_td, hyper};
}

/** Peak live-heap growth of one compile, measured alone. */
uint64_t
measuredPeakBytes(const ir::Function &fn,
                  const PipelineOptions &options)
{
    const uint64_t start_live = support::memstatResetWindow();
    const auto run = runPipelineOnClone(fn, options);
    (void)run;
    const uint64_t peak = support::memstatWindowPeakBytes();
    return peak > start_live ? peak - start_live : 0;
}

TEST(MemEstimate, WithinTwoXOfMeasuredOnGoldenCorpus)
{
    ASSERT_TRUE(support::memstatActive())
        << "alloc_guard interposer is not feeding memstat";
    const auto inputs = goldenInputs();
    ASSERT_FALSE(inputs.empty());
    for (const fs::path &path : inputs) {
        const auto mod = loadProgram(path);
        ASSERT_TRUE(mod);
        const ir::Function &fn = mod->function("main");
        for (const PipelineOptions &options : corpusConfigs()) {
            const uint64_t predicted =
                estimatePeakBytes(measureShape(fn), options);
            // Warm-up run first: one-time lazy state (arena blocks
            // retained across compiles, libstdc++ locale/stream
            // internals) would otherwise inflate the first measured
            // peak only.
            measuredPeakBytes(fn, options);
            const uint64_t measured = measuredPeakBytes(fn, options);
            ASSERT_GT(measured, 0u) << path;
            const double ratio = static_cast<double>(predicted) /
                                 static_cast<double>(measured);
            if (measured >= 96 * 1024) {
                // The relative band only means something once the
                // job outweighs the model's constant term.
                EXPECT_GE(ratio, 0.5)
                    << path << " " << encodePipelineOptions(options)
                    << ": predicted " << predicted
                    << " vs measured " << measured;
                EXPECT_LE(ratio, 2.0)
                    << path << " " << encodePipelineOptions(options)
                    << ": predicted " << predicted
                    << " vs measured " << measured;
            } else {
                // Tiny jobs: the base constant dominates, so pin
                // absolute conservatism instead — never
                // under-project (the projection is a hard
                // reservation), never reserve more than a fixed
                // small ceiling.
                EXPECT_GE(ratio, 1.0)
                    << path << " " << encodePipelineOptions(options)
                    << ": predicted " << predicted
                    << " vs measured " << measured;
                EXPECT_LE(predicted, 256u * 1024)
                    << path << " " << encodePipelineOptions(options);
            }
        }
    }
}

TEST(MemEstimate, TextShapeAgreesWithMeasuredShape)
{
    for (const fs::path &path : goldenInputs()) {
        const std::string text = readFile(path);
        const auto mod = loadProgram(path);
        ASSERT_TRUE(mod);
        const MemShape exact = measureShape(mod->function("main"));
        const MemShape approx = estimateShapeFromText(text);
        // The text scan is an over-approximation (it cannot drop
        // dead blocks and counts every line that is not a header),
        // so it must cover the exact shape without drifting past
        // double it.
        EXPECT_GE(approx.blocks, exact.blocks) << path;
        EXPECT_GE(approx.edges, exact.edges) << path;
        EXPECT_GE(approx.ops, exact.ops) << path;
        EXPECT_LE(approx.ops, 2 * exact.ops + 16) << path;
    }
}

TEST(MemEstimate, SchemeFactorsOrderExpansionRisk)
{
    MemShape shape;
    shape.ops = 1000;
    shape.blocks = 100;
    shape.edges = 150;
    auto at = [&](RegionScheme scheme) {
        PipelineOptions options;
        options.scheme = scheme;
        options.model = MachineModel::wide4U();
        return estimatePeakBytes(shape, options);
    };
    // Tail duplication and if-conversion both multiply transient
    // state relative to plain treegions; basic blocks carry the
    // least.
    EXPECT_LT(at(RegionScheme::BasicBlock),
              at(RegionScheme::Treegion));
    EXPECT_LT(at(RegionScheme::Treegion),
              at(RegionScheme::TreegionTailDup));
    EXPECT_LT(at(RegionScheme::Treegion),
              at(RegionScheme::Hyperblock));
}

TEST(MemEstimate, WiderIssueProjectsMoreMemory)
{
    MemShape shape;
    shape.ops = 1000;
    shape.blocks = 100;
    shape.edges = 150;
    PipelineOptions narrow;
    narrow.model = MachineModel::scalar1U();
    PipelineOptions wide;
    wide.model = MachineModel::wide8U();
    EXPECT_LT(estimatePeakBytes(shape, narrow),
              estimatePeakBytes(shape, wide));
}

} // namespace
} // namespace treegion::sched
