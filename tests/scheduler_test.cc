/**
 * @file
 * List scheduler tests: legality invariants (resources, latencies,
 * memory order), heuristic behavior, dominator parallelism, and the
 * DDG's height computation.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "analysis/liveness.h"
#include "ir/builder.h"
#include "region/formation.h"
#include "sched/ddg.h"
#include "sched/perf_model.h"
#include "sched/pipeline.h"
#include "sched/schedule_verifier.h"
#include "workloads/profiler.h"
#include "workloads/synthetic.h"

namespace treegion::sched {
namespace {

using ir::BlockId;
using ir::Builder;
using ir::CmpKind;
using ir::Function;
using ir::Opcode;
using ir::Reg;

/**
 * Check a region schedule's legality:
 *  - at most `width` ops per cycle, unique slots;
 *  - every register read happens at least `latency` cycles after its
 *    (unique GPR / any predicate) writer issues;
 *  - memory ops that the lowering ordered (same path) stay ordered,
 *    approximated here by slot order within a cycle;
 *  - exit cycles recorded in the exit table match the branch ops.
 */
void
checkLegality(const RegionSchedule &sched, int width)
{
    std::unordered_map<int, int> per_cycle;
    for (const ScheduledOp &sop : sched.ops) {
        EXPECT_GE(sop.cycle, 0);
        EXPECT_LT(sop.cycle, sched.length);
        EXPECT_GE(sop.slot, 0);
        EXPECT_LT(sop.slot, width);
        ++per_cycle[sop.cycle];
    }
    for (const auto &[cycle, count] : per_cycle)
        EXPECT_LE(count, width) << "cycle " << cycle;

    // Writer map (predicates may have several writers; readers must
    // follow all of them).
    std::unordered_map<ir::Reg, std::vector<const ScheduledOp *>>
        writers;
    for (const ScheduledOp &sop : sched.ops) {
        for (const ir::Reg &d : sop.op.dsts)
            writers[d].push_back(&sop);
    }
    for (const ScheduledOp &sop : sched.ops) {
        for (const ir::Reg &use : sop.op.usedRegs()) {
            auto it = writers.find(use);
            if (it == writers.end())
                continue;
            for (const ScheduledOp *w : it->second) {
                if (w == &sop)
                    continue;
                EXPECT_GE(sop.cycle, w->cycle + w->op.latency())
                    << sop.op.str() << " reads " << use.str()
                    << " written by " << w->op.str();
            }
        }
    }

    for (const ScheduledExit &exit : sched.exits) {
        ASSERT_LT(exit.op_index, sched.ops.size());
        EXPECT_EQ(exit.cycle, sched.ops[exit.op_index].cycle);
        EXPECT_TRUE(sched.ops[exit.op_index].op.isBranch());
    }
}

TEST(Scheduler, RespectsWidthAndLatencies)
{
    for (const uint64_t seed : {2u, 9u, 31u}) {
        workloads::GenParams p;
        p.seed = seed;
        p.top_units = 6;
        p.mem_words = 1024;
        auto mod = workloads::generateProgram("x", p);
        ir::Function &fn = mod->function("main");
        workloads::profileFunction(fn, 1024);

        for (const int width : {1, 2, 4, 8}) {
            ir::Function f = fn.clone();
            PipelineOptions options;
            options.scheme = RegionScheme::Treegion;
            options.model = MachineModel::custom(width);
            const auto result = runPipeline(f, options);
            for (const auto &[root, rs] : result.schedule.regions)
                checkLegality(rs, width);
        }
    }
}

TEST(Scheduler, OneWideIsSequential)
{
    workloads::GenParams p;
    p.seed = 4;
    p.top_units = 4;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("x", p);
    ir::Function &fn = mod->function("main");
    workloads::profileFunction(fn, 1024);
    PipelineOptions options;
    options.scheme = RegionScheme::BasicBlock;
    options.model = MachineModel::scalar1U();
    const auto result = runPipeline(fn, options);
    for (const auto &[root, rs] : result.schedule.regions) {
        for (const ScheduledOp &sop : rs.ops)
            EXPECT_EQ(sop.slot, 0);
    }
}

TEST(Scheduler, WiderMachinesNeverSlower)
{
    workloads::GenParams p;
    p.seed = 6;
    p.top_units = 8;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("x", p);
    ir::Function &fn = mod->function("main");
    workloads::profileFunction(fn, 1024);

    double prev = 1e300;
    for (const int width : {1, 2, 4, 8, 16}) {
        ir::Function f = fn.clone();
        PipelineOptions options;
        options.scheme = RegionScheme::Treegion;
        options.model = MachineModel::custom(width);
        const auto result = runPipeline(f, options);
        // Greedy list scheduling admits small Graham-style anomalies,
        // so allow a few percent of slack.
        EXPECT_LE(result.estimated_time, prev * 1.05)
            << "width " << width;
        prev = result.estimated_time;
    }
}

TEST(Scheduler, DominatorParallelismElidesDuplicates)
{
    // Diamond whose sides both need the shared tail: tail duplication
    // clones it, and the duplicated ops (identical sources) must be
    // elided when speculated into the common dominator.
    Function fn("f");
    Builder bu(fn);
    const BlockId a = bu.newBlock();
    const BlockId b = bu.newBlock();
    const BlockId c = bu.newBlock();
    const BlockId tail = bu.newBlock();
    fn.setEntry(a);

    bu.setInsertPoint(a);
    const Reg base = bu.movi(0);
    const Reg x = bu.load(base, 1);
    bu.condBr(CmpKind::LT, Builder::R(x), Builder::I(50), b, c);
    bu.setInsertPoint(b);
    bu.store(base, 2, Builder::I(1));
    bu.bru(tail);
    bu.setInsertPoint(c);
    bu.store(base, 3, Builder::I(2));
    bu.bru(tail);
    bu.setInsertPoint(tail);
    // The tail computes from values defined above the branch: its
    // clones are identical and exhibit dominator parallelism.
    const Reg t = bu.binary(Opcode::MUL, Builder::R(x), Builder::I(3));
    const Reg u = bu.binary(Opcode::ADD, Builder::R(t), Builder::I(7));
    bu.ret(Builder::R(u));

    fn.forEachBlockMut([](ir::BasicBlock &blk) {
        blk.setWeight(2.0);
        blk.edgeWeights().assign(blk.successors().size(),
                                 2.0 / std::max<size_t>(
                                           1,
                                           blk.successors().size()));
    });

    PipelineOptions with_dp;
    with_dp.scheme = RegionScheme::TreegionTailDup;
    with_dp.model = MachineModel::wide8U();
    ir::Function f1 = fn.clone();
    const auto r1 = runPipeline(f1, with_dp);
    EXPECT_GT(r1.total_sched_stats.elided_ops, 0u);

    PipelineOptions without_dp = with_dp;
    without_dp.sched.dominator_parallelism = false;
    ir::Function f2 = fn.clone();
    const auto r2 = runPipeline(f2, without_dp);
    EXPECT_EQ(r2.total_sched_stats.elided_ops, 0u);
    // Elision can only help (fewer slots consumed).
    EXPECT_LE(r1.estimated_time, r2.estimated_time + 1e-9);
}

TEST(Scheduler, HeuristicsProduceDifferentSchedules)
{
    workloads::GenParams p;
    p.seed = 10;
    p.top_units = 10;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("x", p);
    ir::Function &fn = mod->function("main");
    workloads::profileFunction(fn, 1024);

    std::vector<double> times;
    for (const Heuristic h : kAllHeuristics) {
        ir::Function f = fn.clone();
        PipelineOptions options;
        options.scheme = RegionScheme::Treegion;
        options.model = MachineModel::wide4U();
        options.sched.heuristic = h;
        times.push_back(runPipeline(f, options).estimated_time);
    }
    // All four produce valid estimates; at least two differ.
    bool any_diff = false;
    for (double t : times) {
        EXPECT_GT(t, 0.0);
        any_diff |= (t != times[0]);
    }
    EXPECT_TRUE(any_diff);
}

TEST(Ddg, HeightsRespectLatencies)
{
    // LD (2) -> ADD (1) -> FMUL (3) -> ST chain: the load's height
    // sees the whole chain.
    Function fn("f");
    Builder bu(fn);
    const BlockId a = bu.newBlock();
    fn.setEntry(a);
    bu.setInsertPoint(a);
    const Reg base = bu.movi(0);
    const Reg x = bu.load(base, 1);
    const Reg y = bu.binary(Opcode::ADD, Builder::R(x), Builder::I(1));
    const Reg z = bu.binary(Opcode::FMUL, Builder::R(y), Builder::I(2));
    bu.store(base, 2, Builder::R(z));
    bu.ret(Builder::I(0));

    region::RegionSet set = region::formBasicBlockRegions(fn);
    analysis::Liveness live(fn);
    const region::Region &r = set.regions()[set.regionIndexOf(a)];
    LoweredRegion lowered = lowerRegion(fn, r, live);
    Ddg ddg(lowered);

    // Find the load and the store in the lowered ops.
    int load_height = -1, store_height = -1, fmul_height = -1;
    for (size_t i = 0; i < lowered.ops.size(); ++i) {
        if (lowered.ops[i].op.isLoad())
            load_height = ddg.height(i);
        if (lowered.ops[i].op.isStore())
            store_height = ddg.height(i);
        if (lowered.ops[i].op.opcode == Opcode::FMUL)
            fmul_height = ddg.height(i);
    }
    // Store is a sink feeding the RET exit pin: height small.
    ASSERT_GE(store_height, 1);
    EXPECT_GE(fmul_height, 3 + 1);          // FMUL latency + store
    EXPECT_GE(load_height, 2 + 1 + 3 + 1);  // whole chain
}

TEST(Ddg, BackedgeExitGetsRecurrenceFloor)
{
    // Counted loop: the back-edge exit's height is floored above
    // everything else, which in turn raises the induction update.
    Function fn("f");
    Builder bu(fn);
    const BlockId pre = bu.newBlock();
    const BlockId header = bu.newBlock();
    const BlockId body = bu.newBlock();
    const BlockId exit = bu.newBlock();
    fn.setEntry(pre);
    bu.setInsertPoint(pre);
    const Reg base = bu.movi(0);
    const Reg i = bu.movi(0);
    bu.bru(header);
    bu.setInsertPoint(header);
    bu.condBr(CmpKind::LT, Builder::R(i), Builder::I(9), body, exit);
    bu.setInsertPoint(body);
    const Reg v = bu.load(base, 3);
    bu.store(base, 4, Builder::R(v));
    fn.appendOp(body, ir::makeBinary(Opcode::ADD, i, Builder::R(i),
                                     Builder::I(1)));
    bu.bru(header);
    bu.setInsertPoint(exit);
    bu.ret(Builder::R(i));

    fn.forEachBlockMut([](ir::BasicBlock &blk) {
        blk.setWeight(1.0);
        blk.edgeWeights().assign(blk.successors().size(), 0.5);
    });

    region::RegionSet set = region::formTreegions(fn);
    analysis::Liveness live(fn);
    const region::Region &loop =
        set.regions()[set.regionIndexOf(header)];
    LoweredRegion lowered = lowerRegion(fn, loop, live);
    Ddg ddg(lowered);

    const LoweredExit *backedge = nullptr;
    for (const LoweredExit &e : lowered.exits) {
        if (!e.is_ret && e.target == header)
            backedge = &e;
    }
    ASSERT_NE(backedge, nullptr);
    const int backedge_height =
        ddg.height(backedge->op_index);

    // The floor makes the back edge at least as tall as any BRANCH,
    // and it propagates through the exit's reconciliation copy into
    // the induction update, which would otherwise be a low-height
    // sink.
    ASSERT_EQ(backedge->copies.size(), 1u);
    int update_height = -1;
    for (size_t k = 0; k < lowered.ops.size(); ++k) {
        for (const ir::Reg &d : lowered.ops[k].op.dsts) {
            if (d == backedge->copies[0].src)
                update_height = ddg.height(k);
        }
    }
    ASSERT_GE(update_height, 0);
    EXPECT_GE(update_height, backedge_height);
    for (size_t k = 0; k < lowered.ops.size(); ++k) {
        if (lowered.ops[k].kind == LoweredKind::ExitBranch &&
            k != backedge->op_index) {
            EXPECT_GE(backedge_height, ddg.height(k));
        }
    }
}

TEST(Scheduler, PaperHeuristicNamesAreStable)
{
    EXPECT_EQ(heuristicName(Heuristic::DependenceHeight), "dep-height");
    EXPECT_EQ(heuristicName(Heuristic::ExitCount), "exit-count");
    EXPECT_EQ(heuristicName(Heuristic::GlobalWeight), "global-weight");
    EXPECT_EQ(heuristicName(Heuristic::WeightedCount),
              "weighted-count");
}

/** Place @p op at (cycle, slot) with program-order id @p id. */
ScheduledOp
placed(ir::Op op, ir::OpId id, int cycle, int slot)
{
    ScheduledOp sop;
    sop.op = std::move(op);
    sop.op.id = id;
    sop.cycle = cycle;
    sop.slot = slot;
    return sop;
}

// A store reordered past a load of the same path must be rejected:
// with both ops in one home block, ascending op id is program order,
// and the load here follows the store (it reads what was written).
TEST(ScheduleVerifier, RejectsStoreReorderedPastDependentLoad)
{
    RegionSchedule sched;
    sched.length = 2;
    // Program order: ST [r0+4] <- r1 (id 10), then r2 = LD [r0+4]
    // (id 20). r0/r1 are region live-ins.
    sched.ops.push_back(
        placed(ir::makeStore(ir::gpr(0), 4,
                             ir::Operand::makeReg(ir::gpr(1))),
               10, 1, 0));
    sched.ops.push_back(
        placed(ir::makeLoad(ir::gpr(2), ir::gpr(0), 4), 20, 0, 0));
    const auto problems = verifySchedule(sched, 4);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems.front().find("memory order"), std::string::npos)
        << problems.front();

    // The program-order placement is legal.
    RegionSchedule fixed = sched;
    fixed.ops[0].cycle = 0;
    fixed.ops[1].cycle = 1;
    EXPECT_TRUE(verifySchedule(fixed, 4).empty());
}

// Memory ops in region blocks on disjoint paths never execute in the
// same traversal, so their relative order is unconstrained.
TEST(ScheduleVerifier, AllowsStoreLoadReorderAcrossDisjointPaths)
{
    RegionSchedule sched;
    sched.root = 0;
    sched.length = 2;
    sched.succs_in_region[0] = {1, 2};  // diamond: root forks to 1, 2
    ScheduledOp st = placed(
        ir::makeStore(ir::gpr(0), 4, ir::Operand::makeReg(ir::gpr(1))),
        10, 1, 0);
    st.home = 1;
    ScheduledOp ld =
        placed(ir::makeLoad(ir::gpr(2), ir::gpr(0), 4), 20, 0, 0);
    ld.home = 2;
    sched.ops.push_back(st);
    sched.ops.push_back(ld);
    EXPECT_TRUE(verifySchedule(sched, 4).empty());

    // Same pair with the load downstream of the store is ordered.
    sched.succs_in_region[1] = {2};
    EXPECT_FALSE(verifySchedule(sched, 4).empty());
}

// Every predicate is synthesized inside the region (path predicates,
// guards, branch conditions), so a guard read with no in-schedule
// writer is an undefined predicate, not a live-in.
TEST(ScheduleVerifier, RejectsUndefinedGuardPredicate)
{
    RegionSchedule sched;
    sched.length = 3;
    ScheduledOp guarded =
        placed(ir::makeBinary(Opcode::ADD, ir::gpr(1),
                              ir::Operand::makeReg(ir::gpr(0)),
                              ir::Operand::makeImm(1)),
               10, 2, 0);
    guarded.op.guard = ir::pred(0);
    sched.ops.push_back(guarded);
    const auto problems = verifySchedule(sched, 4);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems.front().find("guard predicate"),
              std::string::npos)
        << problems.front();

    // Defining the guard early enough makes the schedule legal.
    RegionSchedule fixed = sched;
    fixed.ops.push_back(
        placed(ir::makeCmpp1(CmpKind::LT,  ir::pred(0),
                             ir::Operand::makeReg(ir::gpr(0)),
                             ir::Operand::makeImm(5)),
               5, 0, 0));
    EXPECT_TRUE(verifySchedule(fixed, 4).empty());
}

// A fall-through exit has no branch op: the path stays in the region
// for the whole schedule, so it costs weight x length (DESIGN.md §6).
TEST(PerfModel, FallthroughExitCostsFullScheduleLength)
{
    RegionSchedule sched;
    sched.length = 5;
    ScheduledExit exit;
    exit.op_index = ScheduledExit::kFallthrough;
    exit.weight = 2.0;
    sched.exits.push_back(exit);
    EXPECT_DOUBLE_EQ(estimateRegionTime(sched), 2.0 * 5);
    EXPECT_TRUE(verifySchedule(sched, 4).empty());
}

// Never-taken exits (zero profile weight) contribute nothing, even
// with nonsense cycles; only executed paths cost time.
TEST(PerfModel, ZeroWeightExitContributesNothing)
{
    RegionSchedule sched;
    sched.length = 4;
    ScheduledExit dead;
    dead.op_index = ScheduledExit::kFallthrough;
    dead.weight = 0.0;
    dead.cycle = 1 << 20;
    sched.exits.push_back(dead);
    ScheduledExit hot;
    hot.op_index = ScheduledExit::kFallthrough;
    hot.weight = 3.0;
    sched.exits.push_back(hot);
    EXPECT_DOUBLE_EQ(estimateRegionTime(sched), 3.0 * 4);
}

} // namespace
} // namespace treegion::sched
