/**
 * @file
 * Tests for the schedule legality verifier, the Graphviz exporter,
 * and a brute-force cross-check of the dominator tree on generated
 * CFGs.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "analysis/dominators.h"
#include "region/formation.h"
#include "region/graphviz.h"
#include "sched/pipeline.h"
#include "sched/schedule_verifier.h"
#include "workloads/profiler.h"
#include "vliw/equivalence.h"
#include "workloads/synthetic.h"

namespace treegion {
namespace {

TEST(ScheduleVerifier, AcceptsPipelineOutput)
{
    workloads::GenParams p;
    p.seed = 9;
    p.top_units = 8;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("x", p);
    ir::Function &fn = mod->function("main");
    workloads::profileFunction(fn, 1024);

    for (const auto scheme :
         {sched::RegionScheme::Treegion, sched::RegionScheme::Superblock,
          sched::RegionScheme::TreegionTailDup,
          sched::RegionScheme::Hyperblock}) {
        ir::Function f = fn.clone();
        sched::PipelineOptions options;
        options.scheme = scheme;
        options.model = sched::MachineModel::wide4U();
        const auto result = sched::runPipeline(f, options);
        const auto problems = sched::verifyFunctionSchedule(
            result.schedule, options.model.issue_width);
        EXPECT_TRUE(problems.empty())
            << sched::regionSchemeName(scheme) << ": "
            << problems.front();
    }
}

TEST(ScheduleVerifier, CatchesPlantedViolations)
{
    workloads::GenParams p;
    p.seed = 9;
    p.top_units = 3;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("x", p);
    ir::Function &fn = mod->function("main");
    workloads::profileFunction(fn, 1024);
    sched::PipelineOptions options;
    options.model = sched::MachineModel::wide4U();
    auto result = sched::runPipeline(fn, options);

    // Find a region with at least two ops and corrupt it.
    for (auto &[root, rs] : result.schedule.regions) {
        if (rs.ops.size() < 2)
            continue;
        auto corrupted = rs;
        // Put two ops in the same slot of the same cycle.
        corrupted.ops[1].cycle = corrupted.ops[0].cycle;
        corrupted.ops[1].slot = corrupted.ops[0].slot;
        EXPECT_FALSE(sched::verifySchedule(corrupted, 4).empty());

        auto too_wide = rs;
        too_wide.ops[0].slot = 99;
        EXPECT_FALSE(sched::verifySchedule(too_wide, 4).empty());

        auto bad_exit = rs;
        if (!bad_exit.exits.empty()) {
            bad_exit.exits[0].cycle += 1;
            EXPECT_FALSE(sched::verifySchedule(bad_exit, 4).empty());
        }
        break;
    }
}

TEST(Graphviz, EmitsClustersAndEdges)
{
    workloads::GenParams p;
    p.seed = 3;
    p.top_units = 4;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("x", p);
    ir::Function &fn = mod->function("main");
    workloads::profileFunction(fn, 1024);
    const auto set = region::formTreegions(fn);

    std::ostringstream os;
    region::GraphvizOptions options;
    options.title = "test graph";
    region::writeDot(os, fn, set, options);
    const std::string dot = os.str();
    EXPECT_NE(dot.find("digraph cfg {"), std::string::npos);
    EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
    EXPECT_NE(dot.find("label=\"test graph\""), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
    // One cluster per region.
    size_t clusters = 0, pos = 0;
    while ((pos = dot.find("subgraph cluster_", pos)) !=
           std::string::npos) {
        ++clusters;
        pos += 1;
    }
    EXPECT_EQ(clusters, set.regions().size());
}

/** O(n^2) reference dominator computation by path enumeration. */
bool
dominatesBruteForce(ir::Function &fn, ir::BlockId a, ir::BlockId b)
{
    // a dominates b iff removing a makes b unreachable from entry.
    if (a == b)
        return true;
    std::unordered_set<ir::BlockId> seen = {a};
    std::vector<ir::BlockId> stack = {fn.entry()};
    while (!stack.empty()) {
        const ir::BlockId id = stack.back();
        stack.pop_back();
        if (!seen.insert(id).second)
            continue;
        if (id == b)
            return false;
        for (const ir::BlockId succ : fn.block(id).successors()) {
            if (succ != ir::kNoBlock)
                stack.push_back(succ);
        }
    }
    return true;
}

TEST(Dominators, MatchesBruteForceOnGeneratedCfgs)
{
    for (uint64_t seed : {2u, 6u, 18u}) {
        workloads::GenParams p;
        p.seed = seed;
        p.top_units = 5;
        p.mem_words = 1024;
        auto mod = workloads::generateProgram("x", p);
        ir::Function &fn = mod->function("main");
        analysis::DominatorTree dom(fn);
        const auto ids = fn.blockIds();
        // Sample pairs (full n^2 would be slow on big graphs).
        for (size_t i = 0; i < ids.size(); i += 3) {
            for (size_t j = 0; j < ids.size(); j += 2) {
                EXPECT_EQ(dom.dominates(ids[i], ids[j]),
                          dominatesBruteForce(fn, ids[i], ids[j]))
                    << "seed " << seed << ": bb" << ids[i] << " vs bb"
                    << ids[j];
            }
        }
    }
}

TEST(Regression, TransitiveElisionMustNotAliasUnwrittenRegs)
{
    // Regression for a real bug: dominator-parallelism elision once
    // aliased an op to an already-elided twin, leaving its consumers
    // reading a register that was never written. The configuration
    // below reproduced it (three tail copies of one block, two of
    // which elide into the first).
    workloads::GenParams p;
    p.seed = 23;
    p.top_units = 6;
    p.max_depth = 2;
    p.mem_words = 1024;
    auto mod = workloads::generateProgram("prog", p);
    ir::Function &original = mod->function("main");
    workloads::profileFunction(original, 1024);

    ir::Function transformed = original.clone();
    sched::PipelineOptions options;
    options.scheme = sched::RegionScheme::TreegionTailDup;
    options.model = sched::MachineModel::scalar1U();
    const auto result = sched::runPipeline(transformed, options);
    auto memory = workloads::makeInputMemory(1024, 1003, 100);
    const auto report = vliw::checkEquivalence(original, transformed,
                                               result.schedule, memory);
    EXPECT_TRUE(report.ok) << report.detail;
}

} // namespace
} // namespace treegion
