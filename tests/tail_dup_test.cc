/**
 * @file
 * Tail duplication tests: semantic preservation, profile flow
 * conservation, and the Fig. 12 example (duplicating a merge point
 * into a treegion).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/profile.h"
#include "ir/builder.h"
#include "region/formation.h"
#include "vliw/interpreter.h"
#include "workloads/profiler.h"
#include "workloads/synthetic.h"

namespace treegion::region {
namespace {

using ir::BlockId;
using ir::Builder;
using ir::CmpKind;
using ir::Function;
using ir::Reg;

/** Diamond with a shared tail: a -> (b|c) -> tail -> ret. */
struct SharedTail
{
    Function fn{"f"};
    BlockId a, b, c, tail;

    SharedTail()
    {
        Builder bu(fn);
        a = bu.newBlock();
        b = bu.newBlock();
        c = bu.newBlock();
        tail = bu.newBlock();
        fn.setEntry(a);

        bu.setInsertPoint(a);
        const Reg base = bu.movi(0);
        const Reg x = bu.load(base, 1);
        bu.condBr(CmpKind::LT, Builder::R(x), Builder::I(50), b, c);

        bu.setInsertPoint(b);
        bu.store(base, 2, Builder::I(1));
        bu.bru(tail);

        bu.setInsertPoint(c);
        bu.store(base, 2, Builder::I(2));
        bu.bru(tail);

        bu.setInsertPoint(tail);
        const Reg y = bu.load(base, 2);
        bu.ret(Builder::R(y));

        fn.block(a).setWeight(10);
        fn.block(a).edgeWeights() = {6, 4};
        fn.block(b).setWeight(6);
        fn.block(b).edgeWeights() = {6};
        fn.block(c).setWeight(4);
        fn.block(c).edgeWeights() = {4};
        fn.block(tail).setWeight(10);
    }
};

TEST(TailDuplicateEdge, SplitsProfileFlow)
{
    SharedTail g;
    const BlockId clone = tailDuplicateEdge(g.fn, g.b, 0);
    EXPECT_EQ(g.fn.block(clone).originalId(), g.tail);
    EXPECT_DOUBLE_EQ(g.fn.block(clone).weight(), 6.0);
    EXPECT_DOUBLE_EQ(g.fn.block(g.tail).weight(), 4.0);
    // b now targets the clone; c still targets the original.
    EXPECT_EQ(g.fn.block(g.b).successors()[0], clone);
    EXPECT_EQ(g.fn.block(g.c).successors()[0], g.tail);
    EXPECT_FALSE(g.fn.isMergePoint(g.tail));
    EXPECT_TRUE(analysis::checkProfileConsistency(g.fn).empty());
}

TEST(TailDuplicateEdge, PreservesSemantics)
{
    SharedTail g;
    Function copy = g.fn.clone();
    tailDuplicateEdge(copy, g.b, 0);

    for (int64_t x : {10, 90}) {
        std::vector<int64_t> mem(64, 0);
        mem[1] = x;
        const auto before = vliw::runSequential(g.fn, mem);
        const auto after = vliw::runSequential(copy, mem);
        ASSERT_TRUE(before.completed && after.completed);
        EXPECT_EQ(before.ret_value, after.ret_value);
        EXPECT_EQ(before.memory, after.memory);
    }
}

TEST(TreegionTailDup, Fig12AbsorbsBothCopies)
{
    SharedTail g;
    TailDupLimits limits;
    RegionSet set = formTreegionsTailDup(g.fn, limits);
    EXPECT_TRUE(set.validate(g.fn).empty());
    // The whole CFG becomes one treegion: tail is duplicated for one
    // side and directly absorbed for the other (Fig. 12), so every
    // original execution path is a unique tree path.
    EXPECT_EQ(set.regions().size(), 1u);
    const Region &tree = set.regions()[0];
    EXPECT_EQ(tree.pathCount(), 2u);
    EXPECT_EQ(tree.size(), 5u);
}

TEST(TreegionTailDup, MergeLimitBlocksWideMerges)
{
    // A 5-way merge with merge_limit 4 must stay unduplicated unless
    // it is a function exit.
    Function fn("f");
    Builder bu(fn);
    const BlockId entry = bu.newBlock();
    std::vector<BlockId> arms;
    for (int i = 0; i < 5; ++i)
        arms.push_back(bu.newBlock());
    const BlockId join = bu.newBlock();
    const BlockId done = bu.newBlock();
    fn.setEntry(entry);

    bu.setInsertPoint(entry);
    const Reg base = bu.movi(0);
    const Reg x = bu.load(base, 1);
    const Reg sel = bu.binary(ir::Opcode::REM, Builder::R(x),
                              Builder::I(5));
    bu.mwbr(sel, arms);
    for (const BlockId arm : arms) {
        bu.setInsertPoint(arm);
        bu.store(base, 3, Builder::I(arm));
        bu.bru(join);
    }
    bu.setInsertPoint(join);
    bu.store(base, 4, Builder::I(9));
    bu.bru(done);
    bu.setInsertPoint(done);
    bu.ret(Builder::I(0));
    workloads::GenParams dummy;
    (void)dummy;
    fn.forEachBlockMut([](ir::BasicBlock &blk) {
        blk.setWeight(1.0);
        blk.edgeWeights().assign(blk.successors().size(),
                                 1.0 /
                                     std::max<size_t>(
                                         1, blk.successors().size()));
    });

    TailDupLimits limits;
    limits.merge_limit = 4;
    ir::Function f = fn.clone();
    RegionSet set = formTreegionsTailDup(f, limits);
    EXPECT_TRUE(set.validate(f).empty());
    // join (5 preds, has successors) must not be duplicated: the
    // total op count is unchanged except possibly for `done`
    // (single-pred absorption adds nothing).
    EXPECT_EQ(f.totalOps(), fn.totalOps());

    // Raising the limit to 5 lets the join be duplicated.
    TailDupLimits loose;
    loose.merge_limit = 5;
    loose.expansion_limit = 8.0;
    ir::Function f2 = fn.clone();
    formTreegionsTailDup(f2, loose);
    EXPECT_GT(f2.totalOps(), fn.totalOps());
}

TEST(TreegionTailDup, FunctionExitsExemptFromMergeLimit)
{
    // A RET block with many predecessors is still duplicated
    // ("merge points with no successors in the CFG, such as function
    // exits").
    Function fn("f");
    Builder bu(fn);
    const BlockId entry = bu.newBlock();
    std::vector<BlockId> arms;
    for (int i = 0; i < 6; ++i)
        arms.push_back(bu.newBlock());
    const BlockId ret = bu.newBlock();
    fn.setEntry(entry);

    bu.setInsertPoint(entry);
    const Reg base = bu.movi(0);
    const Reg x = bu.load(base, 1);
    const Reg sel = bu.binary(ir::Opcode::REM, Builder::R(x),
                              Builder::I(6));
    bu.mwbr(sel, arms);
    for (const BlockId arm : arms) {
        bu.setInsertPoint(arm);
        bu.store(base, 2, Builder::I(arm));
        bu.bru(ret);
    }
    bu.setInsertPoint(ret);
    const Reg y = bu.load(base, 2);
    bu.ret(Builder::R(y));
    fn.forEachBlockMut([](ir::BasicBlock &blk) {
        blk.setWeight(1.0);
        blk.edgeWeights().assign(blk.successors().size(),
                                 1.0 /
                                     std::max<size_t>(
                                         1, blk.successors().size()));
    });

    TailDupLimits limits;
    limits.merge_limit = 4;
    limits.expansion_limit = 4.0;
    RegionSet set = formTreegionsTailDup(fn, limits);
    EXPECT_TRUE(set.validate(fn).empty());
    // The RET block was duplicated into the arms.
    size_t ret_copies = 0;
    fn.forEachBlock([&](const ir::BasicBlock &blk) {
        if (blk.originalId() == ret)
            ++ret_copies;
    });
    EXPECT_GT(ret_copies, 1u);
}

TEST(TailDup, SemanticsPreservedOnGeneratedPrograms)
{
    for (uint64_t seed : {3u, 14u, 159u}) {
        workloads::GenParams p;
        p.seed = seed;
        p.top_units = 8;
        p.mem_words = 1024;
        auto mod = workloads::generateProgram("x", p);
        ir::Function &fn = mod->function("main");
        workloads::profileFunction(fn, 1024);

        for (int variant = 0; variant < 2; ++variant) {
            ir::Function f = fn.clone();
            if (variant == 0)
                formTreegionsTailDup(f, {});
            else
                formSuperblocks(f, {});
            EXPECT_TRUE(
                analysis::checkProfileConsistency(f, 1e-6).empty())
                << "seed " << seed << " variant " << variant;
            for (uint64_t input = 0; input < 3; ++input) {
                auto mem = workloads::makeInputMemory(1024,
                                                      500 + input, 100);
                const auto before = vliw::runSequential(fn, mem);
                const auto after = vliw::runSequential(f, mem);
                ASSERT_TRUE(before.completed && after.completed);
                EXPECT_EQ(before.ret_value, after.ret_value);
                EXPECT_EQ(before.memory, after.memory);
            }
        }
    }
}

} // namespace
} // namespace treegion::region
