/**
 * @file
 * Tests for the treegiond compile farm: the consistent-hash ring
 * (shard balance, minimal key movement on membership change), peer
 * cache-fill forwarding between live replicas, and the chaos path —
 * a replica dies mid-stream, the cluster client reroutes over the
 * ring of survivors, and the per-replica /stats ledger still
 * reconciles exactly against what the client observed.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include "service/client.h"
#include "service/ring.h"
#include "service/server.h"
#include "support/hash.h"
#include "support/spans.h"
#include "support/string_utils.h"

namespace treegion::service {
namespace {

/** Synthetic but well-mixed cache keys for ring statistics. */
CacheKey
syntheticKey(uint64_t i)
{
    CacheKey key;
    key.lo = support::fnv1a64(support::strprintf("key-%llu",
                                                 static_cast<unsigned long long>(i)));
    key.hi = support::fnv1a64(
        support::strprintf("key-%llu", static_cast<unsigned long long>(i)),
        support::kFnvOffsetBasisAlt);
    return key;
}

std::vector<std::string>
memberNames(size_t n)
{
    std::vector<std::string> members;
    for (size_t i = 0; i < n; ++i)
        members.push_back(support::strprintf("replica-%zu:90%02zu", i, i));
    return members;
}

// ---------------------------------------------------------------
// HashRing
// ---------------------------------------------------------------

TEST(HashRing, VirtualNodesBalanceShards)
{
    constexpr size_t kKeys = 10000;
    const HashRing ring(memberNames(4));
    std::vector<size_t> load(4, 0);
    for (uint64_t i = 0; i < kKeys; ++i)
        ++load[ring.ownerIndex(syntheticKey(i))];

    size_t min_load = kKeys, max_load = 0;
    for (const size_t l : load) {
        min_load = std::min(min_load, l);
        max_load = std::max(max_load, l);
    }
    ASSERT_GT(min_load, 0u);
    // Virtual nodes keep shards within 25% of each other; without
    // them (one point per member) the ratio routinely exceeds 2x.
    EXPECT_LE(static_cast<double>(max_load) / min_load, 1.25)
        << "loads: " << load[0] << " " << load[1] << " " << load[2]
        << " " << load[3];
}

TEST(HashRing, OwnerIgnoresMemberOrder)
{
    std::vector<std::string> forward = memberNames(5);
    std::vector<std::string> backward(forward.rbegin(),
                                      forward.rend());
    const HashRing a(forward), b(backward);
    for (uint64_t i = 0; i < 1000; ++i) {
        const CacheKey key = syntheticKey(i);
        EXPECT_EQ(a.owner(key), b.owner(key));
    }
}

TEST(HashRing, JoinMovesAboutOneNthOfKeys)
{
    constexpr size_t kKeys = 10000;
    const HashRing before(memberNames(3));
    std::vector<std::string> grown = memberNames(3);
    grown.push_back("replica-new:9099");
    const HashRing after(grown);

    size_t moved = 0;
    for (uint64_t i = 0; i < kKeys; ++i) {
        const CacheKey key = syntheticKey(i);
        const std::string &was = before.owner(key);
        const std::string &now = after.owner(key);
        if (was != now) {
            ++moved;
            // Every moved key moved TO the new member — a join never
            // shuffles keys between the existing members.
            EXPECT_EQ(now, "replica-new:9099");
        }
    }
    // The new member should own about 1/4 of the key space.
    EXPECT_GE(moved, kKeys / 10);
    EXPECT_LE(moved, kKeys * 35 / 100);
}

TEST(HashRing, LeaveOnlyMovesTheDepartedKeys)
{
    const std::vector<std::string> full = memberNames(4);
    const HashRing before(full);
    std::vector<std::string> survivors(full.begin(), full.end() - 1);
    const HashRing after(survivors);

    for (uint64_t i = 0; i < 10000; ++i) {
        const CacheKey key = syntheticKey(i);
        const std::string &was = before.owner(key);
        if (was != full.back()) {
            // A survivor's keys stay put: removing a member only
            // reassigns the departed member's arcs.
            EXPECT_EQ(after.owner(key), was);
        }
    }
}

// ---------------------------------------------------------------
// Live cluster, in process
// ---------------------------------------------------------------

/** The module every cluster request compiles (key varies by seed). */
const char *kModule = R"(module sum_loop mem=1024
func @main entry=bb0 gprs=16 preds=4 {
  block bb0 weight=1 edges=[1] {
    r0 = MOVI 0
    r1 = MOVI 0
    r2 = MOVI 0
    BRU bb1
  }
  block bb1 weight=11 edges=[10,1] {
    p0 = CMPP.LT r1, 10
    BRCT p0, bb2, bb5
  }
  block bb2 weight=10 edges=[2,8] {
    r3 = LD [r0 + 4]
    r4 = ADD r3, r1
    p1 = CMPP.GT r4, 100
    BRCT p1, bb4, bb3
  }
  block bb3 weight=8 edges=[8] {
    r2 = ADD r2, r4
    BRU bb4
  }
  block bb4 weight=10 edges=[10] {
    r1 = ADD r1, 1
    BRU bb1
  }
  block bb5 weight=1 {
    ST [r0 + 64], r2
    RET r2
  }
}
)";

class ClusterEndToEnd : public ::testing::Test
{
  protected:
    static constexpr size_t kReplicas = 3;

    std::string
    address(size_t i) const
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        return support::strprintf("unix:/tmp/tg-cluster-%d-%s-%zu.sock",
                                  static_cast<int>(getpid()),
                                  info->name(), i);
    }

    void
    SetUp() override
    {
        for (size_t i = 0; i < kReplicas; ++i)
            peers_.push_back(address(i));
        for (size_t i = 0; i < kReplicas; ++i) {
            ServerOptions options;
            // address(i) is "unix:/path"; the server binds the path.
            options.unix_path = peers_[i].substr(5);
            options.threads = 2;
            options.peers = peers_;
            options.self_address = peers_[i];
            servers_.push_back(
                std::make_unique<Server>(std::move(options)));
            std::string error;
            ASSERT_TRUE(servers_[i]->start(&error)) << error;
        }
    }

    void
    TearDown() override
    {
        for (auto &server : servers_) {
            if (server) {
                server->requestStop();
                server->waitUntilStopped();
            }
        }
        for (size_t i = 0; i < kReplicas; ++i)
            ::unlink(address(i).substr(5).c_str());
    }

    /** Stop replica @p i for good (chaos). The Server object stays
     * alive so its metrics remain readable for the ledger. */
    void
    stopReplica(size_t i)
    {
        servers_[i]->requestStop();
        servers_[i]->waitUntilStopped();
    }

    Request
    compileRequest(uint64_t seed) const
    {
        Request req;
        req.module_text = kModule;
        req.profile_seed = seed;  // distinct seed => distinct key
        req.profile_runs = 2;
        return req;
    }

    std::vector<std::string> peers_;
    std::vector<std::unique_ptr<Server>> servers_;
};

TEST_F(ClusterEndToEnd, ClientRoutesToTheRingOwner)
{
    ClusterClient client(peers_);
    const HashRing ring(peers_);
    for (uint64_t seed = 0; seed < 8; ++seed) {
        const Request req = compileRequest(seed);
        Response resp;
        std::string error;
        ASSERT_TRUE(client.call(req, &resp, &error)) << error;
        EXPECT_EQ(resp.status, status::kOk) << resp.error;
        EXPECT_FALSE(resp.cached);
        EXPECT_EQ(client.lastMember(),
                  ring.owner(requestRoutingKey(req)));
    }
    // The same requests again are all warm on their owners.
    for (uint64_t seed = 0; seed < 8; ++seed) {
        Response resp;
        std::string error;
        ASSERT_TRUE(
            client.call(compileRequest(seed), &resp, &error))
            << error;
        EXPECT_EQ(resp.status, status::kOk);
        EXPECT_TRUE(resp.cached);
    }
}

TEST_F(ClusterEndToEnd, MisroutedCompileFillsTheOwnerCache)
{
    const HashRing ring(peers_);

    // Find a request whose owner is replica 0, then send it straight
    // to a non-owner — the situation a stale client (or a rebalanced
    // ring) produces.
    uint64_t seed = 1000;
    while (ring.ownerIndex(requestRoutingKey(compileRequest(seed))) !=
           0)
        ++seed;
    const Request req = compileRequest(seed);

    std::string error;
    auto direct = Client::connect(peers_[1], &error);
    ASSERT_TRUE(direct) << error;
    Response resp;
    ASSERT_TRUE(direct->call(req, &resp, &error)) << error;
    EXPECT_EQ(resp.status, status::kOk) << resp.error;
    EXPECT_FALSE(resp.cached);

    // The non-owner compiled it (foreign shard) and forwarded the
    // result; the owner's cache is warm although it never compiled.
    EXPECT_EQ(servers_[1]->metrics().counter("shard_foreign_requests"),
              1u);
    EXPECT_EQ(servers_[1]->metrics().counter("fills_sent"), 1u);
    EXPECT_EQ(servers_[0]->metrics().counter("fills_received"), 1u);

    ClusterClient routed(peers_);
    Response hit;
    ASSERT_TRUE(routed.call(req, &hit, &error)) << error;
    EXPECT_EQ(routed.lastMember(), peers_[0]);
    EXPECT_EQ(hit.status, status::kOk);
    EXPECT_TRUE(hit.cached);
    EXPECT_EQ(hit.body, resp.body);
}

TEST_F(ClusterEndToEnd, ReplicaDeathReroutesAndLedgerReconciles)
{
    constexpr uint64_t kRequests = 30;
    ClusterClient client(peers_);

    // Phase 1: spread unique keys across all three replicas.
    for (uint64_t seed = 0; seed < kRequests / 2; ++seed) {
        Response resp;
        std::string error;
        ASSERT_TRUE(
            client.call(compileRequest(seed), &resp, &error))
            << error;
        ASSERT_EQ(resp.status, status::kOk) << resp.error;
    }

    // Chaos: replica 1 dies mid-stream.
    stopReplica(1);

    // Phase 2: the remaining requests — including keys replica 1
    // owned — are all answered by the survivors.
    for (uint64_t seed = kRequests / 2; seed < kRequests; ++seed) {
        Response resp;
        std::string error;
        ASSERT_TRUE(
            client.call(compileRequest(seed), &resp, &error))
            << error;
        ASSERT_EQ(resp.status, status::kOk) << resp.error;
    }
    EXPECT_EQ(client.aliveMembers().size(), kReplicas - 1);

    // Every request was answered exactly once: the ledger's observed
    // responses add up to the request count, nothing lost.
    uint64_t observed = 0, observed_ok = 0;
    for (const auto &[addr, led] : client.ledger()) {
        observed += led.calls;
        observed_ok += led.ok;
    }
    EXPECT_EQ(observed_ok, kRequests);
    EXPECT_GE(observed, kRequests);  // + any shutting-down answers

    // Nothing compiled twice: every key is unique and every ok
    // response was a cold compile, so the replicas' compile counts
    // (cache insertions) sum to exactly the request count.
    uint64_t insertions = 0;
    for (const auto &server : servers_)
        insertions += server->cacheStats().insertions;
    EXPECT_EQ(insertions, kRequests);

    // Exact per-replica reconciliation: a replica's requests_total
    // is what this client observed from it plus the fills its peers
    // pushed to it (phase-2 foreign compiles of replica-1 keys).
    for (size_t i = 0; i < kReplicas; ++i) {
        const auto &metrics = servers_[i]->metrics();
        const auto it = client.ledger().find(peers_[i]);
        const uint64_t client_calls =
            it == client.ledger().end() ? 0 : it->second.calls;
        EXPECT_EQ(metrics.counter("requests_total"),
                  client_calls + metrics.counter("fills_received"))
            << "replica " << i;
    }
}

/**
 * The end-to-end distributed-tracing property the whole span
 * subsystem exists for: one trace id follows a misrouted compile
 * from the client through the non-owner replica into the fill it
 * forwards to the owner, and the merged span set forms a single
 * connected tree across all three parties. In-process replicas
 * share the one SpanCollector singleton, so this sees every
 * service's spans without any file plumbing.
 */
TEST_F(ClusterEndToEnd, TraceContextPropagatesAcrossFillForward)
{
    auto &collector = support::SpanCollector::instance();
    collector.setEnabled(false);
    collector.clear();
    collector.configure(1.0);

    const HashRing ring(peers_);
    uint64_t seed = 2000;
    while (ring.ownerIndex(requestRoutingKey(compileRequest(seed))) !=
           0)
        ++seed;
    const Request req = compileRequest(seed);

    // Misroute on purpose: send an owner-0 key straight to replica
    // 1, forcing the compile there plus a fill RPC to replica 0.
    std::string error;
    auto direct = Client::connect(peers_[1], &error);
    ASSERT_TRUE(direct) << error;
    Response resp;
    ASSERT_TRUE(direct->call(req, &resp, &error)) << error;
    ASSERT_EQ(resp.status, status::kOk) << resp.error;

    // The response-write span is noted on the owner's event loop
    // after the reply is already on the wire; give it a moment.
    const auto pick = [](const std::vector<support::TraceSpan> &all,
                         const char *name) {
        std::vector<support::TraceSpan> out;
        for (const auto &s : all) {
            if (s.name == name)
                out.push_back(s);
        }
        return out;
    };
    for (int i = 0;
         i < 500 &&
         pick(collector.snapshot(), "response-write").empty();
         ++i)
        ::usleep(10 * 1000);

    const std::vector<support::TraceSpan> spans =
        collector.snapshot();
    collector.setEnabled(false);
    collector.clear();
    const auto named = [&](const char *name) {
        return pick(spans, name);
    };

    const auto call = named("call");
    const auto request = named("request");
    const auto fill_send = named("fill-send");
    const auto fill_apply = named("fill-apply");
    // Exactly one client call, one server request, one fill hop.
    ASSERT_EQ(call.size(), 2u);  // outer compile + inner fill RPC
    ASSERT_EQ(request.size(), 1u);
    ASSERT_EQ(fill_send.size(), 1u);
    ASSERT_EQ(fill_apply.size(), 1u);
    ASSERT_GE(named("compile").size(), 1u);
    ASSERT_GE(named("queue-wait").size(), 1u);
    ASSERT_GE(named("response-write").size(), 1u);

    // One trace id across every span of every service.
    for (const support::TraceSpan &s : spans) {
        EXPECT_EQ(s.trace_hi, request[0].trace_hi) << s.name;
        EXPECT_EQ(s.trace_lo, request[0].trace_lo) << s.name;
    }

    // Services: the request and the fill-send ran on the non-owner,
    // the fill-apply on the owner.
    EXPECT_EQ(request[0].service, peers_[1]);
    EXPECT_EQ(fill_send[0].service, peers_[1]);
    EXPECT_EQ(fill_apply[0].service, peers_[0]);

    // Edges: client call -> server request -> ... -> fill-send ->
    // fill RPC call -> fill-apply, one connected tree.
    const support::TraceSpan &outer_call =
        call[0].parent == 0 ? call[0] : call[1];
    const support::TraceSpan &fill_call =
        call[0].parent == 0 ? call[1] : call[0];
    EXPECT_EQ(outer_call.parent, 0u);
    EXPECT_EQ(request[0].parent, outer_call.span);
    EXPECT_EQ(fill_call.parent, fill_send[0].span);
    EXPECT_EQ(fill_apply[0].parent, fill_call.span);
    // fill-send sits somewhere under the request span.
    std::map<uint64_t, uint64_t> parent_of;
    for (const support::TraceSpan &s : spans)
        parent_of[s.span] = s.parent;
    uint64_t walk = fill_send[0].span;
    bool reached_request = false;
    for (int depth = 0; depth < 16 && walk != 0; ++depth) {
        if (walk == request[0].span) {
            reached_request = true;
            break;
        }
        walk = parent_of[walk];
    }
    EXPECT_TRUE(reached_request);

    // The per-verb span counters fold into /stats.
    EXPECT_EQ(servers_[1]->metrics().counter("spans_compile"), 1u);
    EXPECT_EQ(servers_[0]->metrics().counter("spans_fill"), 1u);
}

} // namespace
} // namespace treegion::service
