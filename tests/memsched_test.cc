/**
 * @file
 * Memory-budgeted batch scheduling (ISSUE 8 tentpole): the
 * support::MemoryGate admission primitive and the budgeted
 * runPipelineParallel driver built on it.
 *
 * The pinned properties:
 *  - the gate never lets the aggregate reservation exceed the budget
 *    (a 100-job stress run observes the high water through an
 *    external gate),
 *  - a job projected larger than the whole budget still runs — solo —
 *    instead of deadlocking the pool,
 *  - budgeted results are bit-identical to the unbudgeted path, in
 *    input order,
 *  - a sink receives every result exactly once and the driver then
 *    returns nothing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "sched/mem_estimate.h"
#include "sched/pipeline.h"
#include "support/thread_pool.h"
#include "workloads/profiler.h"
#include "workloads/spec_proxy.h"

namespace treegion::sched {
namespace {

TEST(MemoryGate, TracksReservationsUnderTheBudget)
{
    support::MemoryGate gate(1000);
    EXPECT_EQ(gate.budgetBytes(), 1000u);
    EXPECT_TRUE(gate.tryAdmit(600));
    EXPECT_EQ(gate.inUseBytes(), 600u);
    EXPECT_TRUE(gate.tryAdmit(400));
    EXPECT_EQ(gate.inUseBytes(), 1000u);
    EXPECT_FALSE(gate.tryAdmit(1)) << "budget is full";
    gate.release(400);
    EXPECT_EQ(gate.inUseBytes(), 600u);
    EXPECT_TRUE(gate.tryAdmit(400));
    gate.release(600);
    gate.release(400);
    EXPECT_EQ(gate.inUseBytes(), 0u);
    EXPECT_EQ(gate.highWaterBytes(), 1000u);
}

TEST(MemoryGate, OversizedRequestAdmitsOnlyWhenIdle)
{
    support::MemoryGate gate(100);
    // The progress guarantee: an empty gate admits any size.
    EXPECT_TRUE(gate.tryAdmit(5000));
    // ...and while the oversized job holds it, nothing else enters.
    EXPECT_FALSE(gate.tryAdmit(1));
    gate.release(5000);
    EXPECT_TRUE(gate.tryAdmit(1));
    gate.release(1);
    EXPECT_EQ(gate.highWaterBytes(), 5000u);
}

TEST(MemoryGate, ReleaseWakesWaiters)
{
    support::MemoryGate gate(100);
    ASSERT_TRUE(gate.tryAdmit(100));
    const uint64_t gen = gate.generation();
    std::atomic<bool> woke{false};
    std::thread waiter([&] {
        gate.waitForRelease(gen);
        woke.store(true);
    });
    gate.release(100);
    waiter.join();
    EXPECT_TRUE(woke.load());
    EXPECT_NE(gate.generation(), gen);
}

TEST(MemoryGate, UnlimitedGateAdmitsEverything)
{
    support::MemoryGate gate(0);
    EXPECT_TRUE(gate.tryAdmit(1u << 30));
    EXPECT_TRUE(gate.tryAdmit(1u << 30));
    gate.release(1u << 30);
    gate.release(1u << 30);
}

/** Batched jobs over the two smallest SPEC proxies. */
class MemSchedTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto proxies = workloads::specint95Proxies();
        for (const size_t idx : {size_t{0}, size_t{4}}) {
            auto mod = workloads::buildProxy(proxies[idx]);
            workloads::profileFunction(
                mod->function("main"), proxies[idx].params.mem_words);
            modules_.push_back(std::move(mod));
        }
    }

    /** @p count jobs cycling functions x schemes x widths. */
    std::vector<PipelineJob>
    makeJobs(size_t count) const
    {
        const RegionScheme schemes[] = {
            RegionScheme::Treegion,
            RegionScheme::TreegionTailDup,
            RegionScheme::Hyperblock,
        };
        const int widths[] = {4, 8};
        std::vector<PipelineJob> jobs;
        for (size_t i = 0; i < count; ++i) {
            PipelineJob job;
            job.fn = &modules_[i % modules_.size()]->function("main");
            job.options.scheme = schemes[i % std::size(schemes)];
            job.options.model = MachineModel::custom(
                widths[i % std::size(widths)]);
            std::ostringstream label;
            label << "job" << i;
            job.label = label.str();
            jobs.push_back(std::move(job));
        }
        return jobs;
    }

    std::vector<std::unique_ptr<ir::Module>> modules_;
};

TEST_F(MemSchedTest, BudgetRespectedAcross100JobStress)
{
    const auto jobs = makeJobs(100);
    uint64_t largest = 0;
    for (const PipelineJob &job : jobs)
        largest = std::max(largest, estimateJobPeakBytes(job));
    // Room for a couple of concurrent jobs but far fewer than the
    // worker count, so admission has to throttle constantly — and no
    // job is oversized, so the solo rule never licenses an overshoot.
    const uint64_t budget = 5 * largest / 2;
    support::MemoryGate gate(budget);

    ParallelRunOptions run;
    run.num_threads = 8;
    run.gate = &gate;
    const auto results = runPipelineParallel(jobs, run);

    ASSERT_EQ(results.size(), jobs.size());
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].label, jobs[i].label) << "input order";
        EXPECT_GT(results[i].projected_peak_bytes, 0u);
    }
    EXPECT_EQ(gate.inUseBytes(), 0u) << "every reservation returned";
    EXPECT_LE(gate.highWaterBytes(), budget)
        << "aggregate projected peak escaped the budget";
    EXPECT_GT(gate.highWaterBytes(), largest)
        << "throttled run should still overlap jobs";
}

TEST_F(MemSchedTest, OversizedJobRunsSoloInsteadOfDeadlocking)
{
    const auto jobs = makeJobs(8);
    uint64_t largest = 0;
    for (const PipelineJob &job : jobs)
        largest = std::max(largest, estimateJobPeakBytes(job));
    // Every projection dwarfs this budget, so each job only enters
    // through the idle-gate progress guarantee.
    support::MemoryGate gate(1024);

    ParallelRunOptions run;
    run.num_threads = 4;
    run.gate = &gate;
    const auto results = runPipelineParallel(jobs, run);

    ASSERT_EQ(results.size(), jobs.size());
    for (size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].label, jobs[i].label);
    EXPECT_EQ(gate.inUseBytes(), 0u);
    EXPECT_EQ(gate.highWaterBytes(), largest)
        << "oversized jobs must have run one at a time";
}

TEST_F(MemSchedTest, BudgetedResultsMatchUnbudgetedBitForBit)
{
    const auto jobs = makeJobs(24);
    const auto plain = runPipelineParallel(jobs, 4);

    ParallelRunOptions run;
    run.num_threads = 4;
    uint64_t largest = 0;
    for (const PipelineJob &job : jobs)
        largest = std::max(largest, estimateJobPeakBytes(job));
    run.mem_budget_bytes = 2 * largest;
    const auto budgeted = runPipelineParallel(jobs, run);

    ASSERT_EQ(plain.size(), budgeted.size());
    for (size_t i = 0; i < plain.size(); ++i) {
        std::ostringstream a, b;
        a << std::hexfloat << plain[i].result.estimated_time;
        b << std::hexfloat << budgeted[i].result.estimated_time;
        EXPECT_EQ(a.str(), b.str()) << jobs[i].label;
        EXPECT_EQ(plain[i].result.code_expansion,
                  budgeted[i].result.code_expansion) << jobs[i].label;
    }
}

TEST_F(MemSchedTest, InlineBudgetedPathPreservesInputOrder)
{
    const auto jobs = makeJobs(6);
    ParallelRunOptions run;
    run.num_threads = 1;
    run.mem_budget_bytes = 1;  // everything oversized: solo anyway
    const auto results = runPipelineParallel(jobs, run);
    ASSERT_EQ(results.size(), jobs.size());
    for (size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].label, jobs[i].label);
}

TEST_F(MemSchedTest, SinkReceivesEveryResultExactlyOnce)
{
    const auto jobs = makeJobs(24);
    uint64_t largest = 0;
    for (const PipelineJob &job : jobs)
        largest = std::max(largest, estimateJobPeakBytes(job));

    for (const uint64_t budget : {uint64_t{0}, 2 * largest}) {
        ParallelRunOptions run;
        run.num_threads = 4;
        run.mem_budget_bytes = budget;
        std::multiset<std::string> seen;
        run.sink = [&seen](PipelineJobResult &&result) {
            seen.insert(result.label);
        };
        const auto results = runPipelineParallel(jobs, run);
        EXPECT_TRUE(results.empty())
            << "a sink consumes the batch; nothing should be "
               "returned";
        std::multiset<std::string> expected;
        for (const PipelineJob &job : jobs)
            expected.insert(job.label);
        EXPECT_EQ(seen, expected) << "budget=" << budget;
    }
}

} // namespace
} // namespace treegion::sched
