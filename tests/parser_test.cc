/**
 * @file
 * Textual IR printer/parser tests, including whole-module round trips
 * of generated programs.
 */

#include <gtest/gtest.h>

#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "workloads/spec_proxy.h"

namespace treegion::ir {
namespace {

TEST(Parser, MinimalModule)
{
    const char *text = R"(
module tiny mem=128
func @main entry=bb0 gprs=2 preds=1 {
  block bb0 weight=1 {
    r0 = MOVI 5
    r1 = ADD r0, 2
    RET r1
  }
}
)";
    std::string error;
    auto mod = parseModule(text, &error);
    ASSERT_NE(mod, nullptr) << error;
    EXPECT_EQ(mod->name(), "tiny");
    EXPECT_EQ(mod->memWords(), 128u);
    Function &fn = mod->function("main");
    EXPECT_EQ(fn.entry(), 0u);
    EXPECT_EQ(fn.block(0).ops().size(), 3u);
    EXPECT_TRUE(verifyFunction(fn, VerifyLevel::Schedulable).empty());
}

TEST(Parser, BranchesAndWeights)
{
    const char *text = R"(
module m mem=64
func @main entry=bb0 gprs=4 preds=2 {
  block bb0 weight=10 edges=[7,3] {
    r0 = MOVI 0
    r1 = LD [r0 + 3]
    p0 = CMPP.LT r1, 50
    BRCT p0, bb1, bb2
  }
  block bb1 weight=7 {
    RET r1
  }
  block bb2 weight=3 {
    RET 0
  }
}
)";
    std::string error;
    auto mod = parseModule(text, &error);
    ASSERT_NE(mod, nullptr) << error;
    Function &fn = mod->function("main");
    EXPECT_DOUBLE_EQ(fn.block(0).weight(), 10.0);
    ASSERT_EQ(fn.block(0).edgeWeights().size(), 2u);
    EXPECT_DOUBLE_EQ(fn.block(0).edgeWeights()[0], 7.0);
    EXPECT_EQ(fn.block(0).terminator().opcode, Opcode::BRCT);
}

TEST(Parser, Mwbr)
{
    const char *text = R"(
module m mem=64
func @main entry=bb0 gprs=2 preds=0 {
  block bb0 weight=0 {
    r0 = MOVI 1
    MWBR r0 [0:bb1, 1:bb2]
  }
  block bb1 weight=0 {
    RET 1
  }
  block bb2 weight=0 {
    RET 2
  }
}
)";
    std::string error;
    auto mod = parseModule(text, &error);
    ASSERT_NE(mod, nullptr) << error;
    const Op &term = mod->function("main").block(0).terminator();
    EXPECT_EQ(term.opcode, Opcode::MWBR);
    EXPECT_EQ(term.targets, (std::vector<BlockId>{1, 2}));
    EXPECT_EQ(term.caseValues, (std::vector<int64_t>{0, 1}));
}

TEST(Parser, ReportsErrors)
{
    std::string error;
    EXPECT_EQ(parseModule("nonsense", &error), nullptr);
    EXPECT_FALSE(error.empty());

    EXPECT_EQ(parseModule("module m mem=64\nfunc @f entry=bb0 {\n"
                          "  block bb0 weight=0 {\n    FROB r1\n  }\n}\n",
                          &error),
              nullptr);
    EXPECT_NE(error.find("unknown opcode"), std::string::npos);
}

TEST(Parser, RejectsBranchToUndefinedBlock)
{
    std::string error;
    const char *text = R"(
module m mem=64
func @main entry=bb0 gprs=1 preds=0 {
  block bb0 weight=0 {
    BRU bb7
  }
}
)";
    EXPECT_EQ(parseModule(text, &error), nullptr);
    EXPECT_NE(error.find("undefined block"), std::string::npos);
}

TEST(Parser, NegativeImmediates)
{
    const char *text = R"(
module m mem=64
func @main entry=bb0 gprs=2 preds=0 {
  block bb0 weight=0 {
    r0 = MOVI -42
    r1 = ADD r0, -1
    RET r1
  }
}
)";
    std::string error;
    auto mod = parseModule(text, &error);
    ASSERT_NE(mod, nullptr) << error;
    EXPECT_EQ(mod->function("main").block(0).ops()[0].srcs[0].imm, -42);
}

/** Parse @p text, print, reparse, print; both prints must match. */
void
expectRoundTripFixedPoint(const char *text)
{
    std::string error;
    auto mod = parseModule(text, &error);
    ASSERT_NE(mod, nullptr) << error;
    const std::string once = moduleToString(*mod);
    auto reparsed = parseModule(once, &error);
    ASSERT_NE(reparsed, nullptr) << error;
    EXPECT_EQ(once, moduleToString(*reparsed));
}

// Edge inputs exercised by the differential fuzzer's round-trip
// oracle. None of these ever failed (the fuzz campaigns found no
// printer/parser mismatch); they are pinned so that stays true.
TEST(Parser, RoundTripExtremeImmediates)
{
    expectRoundTripFixedPoint(R"(
module m mem=64
func @main entry=bb0 gprs=2 preds=0 {
  block bb0 weight=0 {
    r0 = MOVI -9223372036854775808
    r1 = ADD r0, -9223372036854775807
    RET r1
  }
}
)");
}

TEST(Parser, RoundTripNegativeMemoryOffsets)
{
    expectRoundTripFixedPoint(R"(
module m mem=64
func @main entry=bb0 gprs=3 preds=0 {
  block bb0 weight=0 {
    r0 = MOVI 32
    r1 = LD [r0 + -4]
    ST [r0 + -8], r1
    RET r1
  }
}
)");
}

TEST(Parser, RoundTripFractionalWeights)
{
    // %.6g printing must be a fixed point even for weights that are
    // not exactly representable or exceed six significant digits.
    expectRoundTripFixedPoint(R"(
module m mem=64
func @main entry=bb0 gprs=2 preds=1 {
  block bb0 weight=0.30000000000000004 edges=[0.1,0.2] {
    p0 = CMPP.LT r0, 5
    BRCT p0 bb1, bb2
  }
  block bb1 weight=1234567.25 {
    BRU bb2
  }
  block bb2 weight=1e9 {
    r1 = MOVI 0
    RET r1
  }
}
)");
}

TEST(Parser, AcceptsCrlfTabsAndComments)
{
    // Repro files carry "# " header lines, and foreign editors
    // introduce CRLF endings and tab indentation; none of it may
    // change the parse.
    const char *base = R"(
# treegion-fuzz repro
module m mem=64
# comment between declarations
func @main entry=bb0 gprs=2 preds=0 {
  block bb0 weight=0 {
    # comment inside a block
    r0 = MOVI 7
    r1 = ADD r0, 1
    RET r1
  }
}
)";
    std::string error;
    auto plain = parseModule(base, &error);
    ASSERT_NE(plain, nullptr) << error;

    std::string mangled;
    for (const char *p = base; *p; ++p) {
        if (*p == '\n')
            mangled += '\r';
        mangled += *p;
    }
    size_t pos;
    while ((pos = mangled.find("  ")) != std::string::npos)
        mangled.replace(pos, 2, "\t");
    auto parsed = parseModule(mangled, &error);
    ASSERT_NE(parsed, nullptr) << error;
    EXPECT_EQ(moduleToString(*plain), moduleToString(*parsed));
}

TEST(Parser, RoundTripGeneratedProxies)
{
    // Print-then-parse every SPECint95 proxy and check the round trip
    // is a fixpoint (second print equals the first).
    for (const auto &spec : workloads::specint95Proxies()) {
        auto mod = workloads::buildProxy(spec);
        const std::string once = moduleToString(*mod);
        std::string error;
        auto reparsed = parseModule(once, &error);
        ASSERT_NE(reparsed, nullptr) << spec.name << ": " << error;
        const std::string twice = moduleToString(*reparsed);
        EXPECT_EQ(once, twice) << spec.name;
        ir::Function &fn = reparsed->function("main");
        EXPECT_TRUE(
            verifyFunction(fn, VerifyLevel::Schedulable).empty())
            << spec.name;
    }
}

} // namespace
} // namespace treegion::ir
