/**
 * @file
 * Unit tests for the support utilities.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "support/bitvector.h"
#include "support/metrics.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/string_utils.h"
#include "support/table.h"

namespace treegion::support {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleUnit)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoolProbabilityRoughlyRespected)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, WeightedRespectsZeroWeights)
{
    Rng rng(17);
    std::vector<double> w = {0.0, 1.0, 0.0, 3.0};
    for (int i = 0; i < 1000; ++i) {
        const size_t idx = rng.nextWeighted(w);
        EXPECT_TRUE(idx == 1 || idx == 3);
    }
}

TEST(Rng, ForkIndependent)
{
    Rng a(5);
    Rng child = a.fork();
    EXPECT_NE(a.next(), child.next());
}

TEST(BitVector, SetTestReset)
{
    BitVector bv(130);
    EXPECT_TRUE(bv.none());
    bv.set(0);
    bv.set(64);
    bv.set(129);
    EXPECT_TRUE(bv.test(0));
    EXPECT_TRUE(bv.test(64));
    EXPECT_TRUE(bv.test(129));
    EXPECT_FALSE(bv.test(1));
    EXPECT_EQ(bv.count(), 3u);
    bv.reset(64);
    EXPECT_FALSE(bv.test(64));
    EXPECT_EQ(bv.count(), 2u);
}

TEST(BitVector, SetAllRespectsSize)
{
    BitVector bv(70);
    bv.setAll();
    EXPECT_EQ(bv.count(), 70u);
}

TEST(BitVector, UnionReportsChange)
{
    BitVector a(100), b(100);
    b.set(42);
    EXPECT_TRUE(a.unionWith(b));
    EXPECT_FALSE(a.unionWith(b));
    EXPECT_TRUE(a.test(42));
}

TEST(BitVector, SubtractAndIntersect)
{
    BitVector a(64), b(64);
    a.set(1);
    a.set(2);
    b.set(2);
    b.set(3);
    BitVector inter = a;
    EXPECT_TRUE(inter.intersectWith(b));
    EXPECT_EQ(inter.count(), 1u);
    EXPECT_TRUE(inter.test(2));
    EXPECT_TRUE(a.subtract(b));
    EXPECT_TRUE(a.test(1));
    EXPECT_FALSE(a.test(2));
}

TEST(BitVector, ForEachSetAscending)
{
    BitVector bv(200);
    bv.set(3);
    bv.set(77);
    bv.set(199);
    EXPECT_EQ(bv.toIndices(), (std::vector<size_t>{3, 77, 199}));
}

TEST(Accumulator, Basic)
{
    Accumulator acc;
    acc.add(2.0);
    acc.add(4.0);
    acc.add(6.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 6.0);
}

TEST(Accumulator, MergeMatchesSequentialAdds)
{
    Accumulator a, b, all;
    for (const double v : {1.0, 5.0, 9.0}) {
        a.add(v);
        all.add(v);
    }
    for (const double v : {2.0, 4.0}) {
        b.add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.mean(), all.mean());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());

    // Merging an empty accumulator changes nothing, either way.
    Accumulator empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), all.count());
    empty.merge(a);
    EXPECT_EQ(empty.count(), all.count());
    EXPECT_DOUBLE_EQ(empty.min(), all.min());
}

TEST(Histogram, CountSumMinMax)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.p50(), 0.0);
    h.add(3.0);
    h.add(1.0);
    h.add(2.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 6.0);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(Histogram, PercentilesAreBucketAccurate)
{
    // Log-bucketed at 4 sub-buckets per octave: each bucket spans
    // x2^(1/4), so any percentile is within ~19% of the true value
    // and always clamped to the observed range.
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.add(static_cast<double>(i));
    EXPECT_NEAR(h.p50(), 500.0, 500.0 * 0.2);
    EXPECT_NEAR(h.p95(), 950.0, 950.0 * 0.2);
    EXPECT_NEAR(h.p99(), 990.0, 990.0 * 0.2);
    EXPECT_GE(h.percentile(0.0), 1.0);
    EXPECT_LE(h.percentile(100.0), 1000.0);
    EXPECT_LE(h.p50(), h.p95());
    EXPECT_LE(h.p95(), h.p99());
}

TEST(Histogram, SingleValueHasFlatPercentiles)
{
    Histogram h;
    h.add(42.0);
    EXPECT_DOUBLE_EQ(h.p50(), 42.0);
    EXPECT_DOUBLE_EQ(h.p99(), 42.0);
}

TEST(Histogram, ExtremesLandInOverflowBuckets)
{
    Histogram h;
    h.add(0.0);     // below the smallest bucket
    h.add(1e300);   // above the largest
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 1e300);
    // Percentiles stay clamped to observed values.
    EXPECT_GE(h.p50(), 0.0);
    EXPECT_LE(h.p99(), 1e300);
}

TEST(Histogram, ToJsonCarriesCountAndExtremes)
{
    Histogram h;
    h.add(1.0);
    h.add(2.0);
    h.add(3.0);
    const std::string json = h.toJson();
    EXPECT_NE(json.find("\"count\":3"), std::string::npos) << json;
    EXPECT_NE(json.find("\"mean\":2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"min\":1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"max\":3"), std::string::npos) << json;
    for (const char *key : {"\"p50\":", "\"p95\":", "\"p99\":"})
        EXPECT_NE(json.find(key), std::string::npos) << json;

    const Histogram empty;
    EXPECT_NE(empty.toJson().find("\"count\":0"), std::string::npos);
}

TEST(Histogram, MergeMatchesCombinedStream)
{
    Histogram a, b, all;
    for (int i = 1; i <= 100; ++i) {
        ((i % 2) ? a : b).add(static_cast<double>(i));
        all.add(static_cast<double>(i));
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.sum(), all.sum());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
    // Same buckets either way, so identical percentiles.
    EXPECT_DOUBLE_EQ(a.p50(), all.p50());
    EXPECT_DOUBLE_EQ(a.p95(), all.p95());
    EXPECT_DOUBLE_EQ(a.p99(), all.p99());
}

TEST(GeoMean, Basic)
{
    GeoMean gm;
    gm.add(2.0);
    gm.add(8.0);
    EXPECT_NEAR(gm.value(), 4.0, 1e-9);
}

TEST(GeoMean, EmptyIsOne)
{
    GeoMean gm;
    EXPECT_DOUBLE_EQ(gm.value(), 1.0);
}

TEST(StringUtils, Split)
{
    const auto parts = splitString("a,bb,,c", ',');
    EXPECT_EQ(parts, (std::vector<std::string>{"a", "bb", "c"}));
}

TEST(StringUtils, Trim)
{
    EXPECT_EQ(trim("  x y \t\n"), "x y");
    EXPECT_EQ(trim("   "), "");
}

TEST(StringUtils, StartsWith)
{
    EXPECT_TRUE(startsWith("block bb3", "block"));
    EXPECT_FALSE(startsWith("bb", "block"));
}

TEST(StringUtils, Strprintf)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
}

TEST(MetricsRegistry, CountersAndHistograms)
{
    MetricsRegistry metrics;
    EXPECT_EQ(metrics.counter("absent"), 0u);
    metrics.add("requests");
    metrics.add("requests", 4);
    metrics.set("gauge", 17);
    EXPECT_EQ(metrics.counter("requests"), 5u);
    EXPECT_EQ(metrics.counter("gauge"), 17u);

    metrics.observe("latency_ms", 10.0);
    metrics.observe("latency_ms", 20.0);
    EXPECT_EQ(metrics.histogram("latency_ms").count(), 2u);
    EXPECT_EQ(metrics.histogram("absent").count(), 0u);

    const std::string json = metrics.toJson();
    EXPECT_NE(json.find("\"requests\":5"), std::string::npos) << json;
    EXPECT_NE(json.find("\"latency_ms\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);

    metrics.clear();
    EXPECT_EQ(metrics.counter("requests"), 0u);
    EXPECT_EQ(metrics.histogram("latency_ms").count(), 0u);
}

TEST(MetricsRegistry, ConcurrentUpdatesDontLoseCounts)
{
    MetricsRegistry metrics;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 1000; ++i) {
                metrics.add("hits");
                metrics.observe("v", 1.0);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(metrics.counter("hits"), 4000u);
    EXPECT_EQ(metrics.histogram("v").count(), 4000u);
}

TEST(Table, AlignsAndCounts)
{
    Table t({"name", "value"});
    t.addRow({"a", Table::fmt(1.5, 1)});
    t.addRow({"long-name", Table::fmt(12LL)});
    EXPECT_EQ(t.rowCount(), 2u);
    std::ostringstream os;
    t.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("long-name"), std::string::npos);
    EXPECT_NE(text.find("1.5"), std::string::npos);
    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_NE(csv.str().find("name,value"), std::string::npos);
}

} // namespace
} // namespace treegion::support
