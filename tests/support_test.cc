/**
 * @file
 * Unit tests for the support utilities.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/bitvector.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/string_utils.h"
#include "support/table.h"

namespace treegion::support {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleUnit)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoolProbabilityRoughlyRespected)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, WeightedRespectsZeroWeights)
{
    Rng rng(17);
    std::vector<double> w = {0.0, 1.0, 0.0, 3.0};
    for (int i = 0; i < 1000; ++i) {
        const size_t idx = rng.nextWeighted(w);
        EXPECT_TRUE(idx == 1 || idx == 3);
    }
}

TEST(Rng, ForkIndependent)
{
    Rng a(5);
    Rng child = a.fork();
    EXPECT_NE(a.next(), child.next());
}

TEST(BitVector, SetTestReset)
{
    BitVector bv(130);
    EXPECT_TRUE(bv.none());
    bv.set(0);
    bv.set(64);
    bv.set(129);
    EXPECT_TRUE(bv.test(0));
    EXPECT_TRUE(bv.test(64));
    EXPECT_TRUE(bv.test(129));
    EXPECT_FALSE(bv.test(1));
    EXPECT_EQ(bv.count(), 3u);
    bv.reset(64);
    EXPECT_FALSE(bv.test(64));
    EXPECT_EQ(bv.count(), 2u);
}

TEST(BitVector, SetAllRespectsSize)
{
    BitVector bv(70);
    bv.setAll();
    EXPECT_EQ(bv.count(), 70u);
}

TEST(BitVector, UnionReportsChange)
{
    BitVector a(100), b(100);
    b.set(42);
    EXPECT_TRUE(a.unionWith(b));
    EXPECT_FALSE(a.unionWith(b));
    EXPECT_TRUE(a.test(42));
}

TEST(BitVector, SubtractAndIntersect)
{
    BitVector a(64), b(64);
    a.set(1);
    a.set(2);
    b.set(2);
    b.set(3);
    BitVector inter = a;
    EXPECT_TRUE(inter.intersectWith(b));
    EXPECT_EQ(inter.count(), 1u);
    EXPECT_TRUE(inter.test(2));
    EXPECT_TRUE(a.subtract(b));
    EXPECT_TRUE(a.test(1));
    EXPECT_FALSE(a.test(2));
}

TEST(BitVector, ForEachSetAscending)
{
    BitVector bv(200);
    bv.set(3);
    bv.set(77);
    bv.set(199);
    EXPECT_EQ(bv.toIndices(), (std::vector<size_t>{3, 77, 199}));
}

TEST(Accumulator, Basic)
{
    Accumulator acc;
    acc.add(2.0);
    acc.add(4.0);
    acc.add(6.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 6.0);
}

TEST(GeoMean, Basic)
{
    GeoMean gm;
    gm.add(2.0);
    gm.add(8.0);
    EXPECT_NEAR(gm.value(), 4.0, 1e-9);
}

TEST(GeoMean, EmptyIsOne)
{
    GeoMean gm;
    EXPECT_DOUBLE_EQ(gm.value(), 1.0);
}

TEST(StringUtils, Split)
{
    const auto parts = splitString("a,bb,,c", ',');
    EXPECT_EQ(parts, (std::vector<std::string>{"a", "bb", "c"}));
}

TEST(StringUtils, Trim)
{
    EXPECT_EQ(trim("  x y \t\n"), "x y");
    EXPECT_EQ(trim("   "), "");
}

TEST(StringUtils, StartsWith)
{
    EXPECT_TRUE(startsWith("block bb3", "block"));
    EXPECT_FALSE(startsWith("bb", "block"));
}

TEST(StringUtils, Strprintf)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
}

TEST(Table, AlignsAndCounts)
{
    Table t({"name", "value"});
    t.addRow({"a", Table::fmt(1.5, 1)});
    t.addRow({"long-name", Table::fmt(12LL)});
    EXPECT_EQ(t.rowCount(), 2u);
    std::ostringstream os;
    t.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("long-name"), std::string::npos);
    EXPECT_NE(text.find("1.5"), std::string::npos);
    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_NE(csv.str().find("name,value"), std::string::npos);
}

} // namespace
} // namespace treegion::support
