/**
 * @file
 * Unit tests for the support utilities.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "support/arena.h"
#include "support/bitvector.h"
#include "support/metrics.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/string_utils.h"
#include "support/table.h"

namespace treegion::support {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleUnit)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoolProbabilityRoughlyRespected)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, WeightedRespectsZeroWeights)
{
    Rng rng(17);
    std::vector<double> w = {0.0, 1.0, 0.0, 3.0};
    for (int i = 0; i < 1000; ++i) {
        const size_t idx = rng.nextWeighted(w);
        EXPECT_TRUE(idx == 1 || idx == 3);
    }
}

TEST(Rng, ForkIndependent)
{
    Rng a(5);
    Rng child = a.fork();
    EXPECT_NE(a.next(), child.next());
}

TEST(BitVector, SetTestReset)
{
    BitVector bv(130);
    EXPECT_TRUE(bv.none());
    bv.set(0);
    bv.set(64);
    bv.set(129);
    EXPECT_TRUE(bv.test(0));
    EXPECT_TRUE(bv.test(64));
    EXPECT_TRUE(bv.test(129));
    EXPECT_FALSE(bv.test(1));
    EXPECT_EQ(bv.count(), 3u);
    bv.reset(64);
    EXPECT_FALSE(bv.test(64));
    EXPECT_EQ(bv.count(), 2u);
}

TEST(BitVector, SetAllRespectsSize)
{
    BitVector bv(70);
    bv.setAll();
    EXPECT_EQ(bv.count(), 70u);
}

TEST(BitVector, UnionReportsChange)
{
    BitVector a(100), b(100);
    b.set(42);
    EXPECT_TRUE(a.unionWith(b));
    EXPECT_FALSE(a.unionWith(b));
    EXPECT_TRUE(a.test(42));
}

TEST(BitVector, SubtractAndIntersect)
{
    BitVector a(64), b(64);
    a.set(1);
    a.set(2);
    b.set(2);
    b.set(3);
    BitVector inter = a;
    EXPECT_TRUE(inter.intersectWith(b));
    EXPECT_EQ(inter.count(), 1u);
    EXPECT_TRUE(inter.test(2));
    EXPECT_TRUE(a.subtract(b));
    EXPECT_TRUE(a.test(1));
    EXPECT_FALSE(a.test(2));
}

TEST(BitVector, ForEachSetAscending)
{
    BitVector bv(200);
    bv.set(3);
    bv.set(77);
    bv.set(199);
    EXPECT_EQ(bv.toIndices(), (std::vector<size_t>{3, 77, 199}));
}

TEST(Accumulator, Basic)
{
    Accumulator acc;
    acc.add(2.0);
    acc.add(4.0);
    acc.add(6.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 6.0);
}

TEST(Accumulator, MergeMatchesSequentialAdds)
{
    Accumulator a, b, all;
    for (const double v : {1.0, 5.0, 9.0}) {
        a.add(v);
        all.add(v);
    }
    for (const double v : {2.0, 4.0}) {
        b.add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.mean(), all.mean());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());

    // Merging an empty accumulator changes nothing, either way.
    Accumulator empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), all.count());
    empty.merge(a);
    EXPECT_EQ(empty.count(), all.count());
    EXPECT_DOUBLE_EQ(empty.min(), all.min());
}

TEST(Histogram, CountSumMinMax)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.p50(), 0.0);
    h.add(3.0);
    h.add(1.0);
    h.add(2.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 6.0);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(Histogram, PercentilesAreBucketAccurate)
{
    // Log-bucketed at 4 sub-buckets per octave: each bucket spans
    // x2^(1/4), so any percentile is within ~19% of the true value
    // and always clamped to the observed range.
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.add(static_cast<double>(i));
    EXPECT_NEAR(h.p50(), 500.0, 500.0 * 0.2);
    EXPECT_NEAR(h.p95(), 950.0, 950.0 * 0.2);
    EXPECT_NEAR(h.p99(), 990.0, 990.0 * 0.2);
    EXPECT_GE(h.percentile(0.0), 1.0);
    EXPECT_LE(h.percentile(100.0), 1000.0);
    EXPECT_LE(h.p50(), h.p95());
    EXPECT_LE(h.p95(), h.p99());
}

TEST(Histogram, SingleValueHasFlatPercentiles)
{
    Histogram h;
    h.add(42.0);
    EXPECT_DOUBLE_EQ(h.p50(), 42.0);
    EXPECT_DOUBLE_EQ(h.p99(), 42.0);
}

TEST(Histogram, ExtremesLandInOverflowBuckets)
{
    Histogram h;
    h.add(0.0);     // below the smallest bucket
    h.add(1e300);   // above the largest
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 1e300);
    // Percentiles stay clamped to observed values.
    EXPECT_GE(h.p50(), 0.0);
    EXPECT_LE(h.p99(), 1e300);
}

TEST(Histogram, ToJsonCarriesCountAndExtremes)
{
    Histogram h;
    h.add(1.0);
    h.add(2.0);
    h.add(3.0);
    const std::string json = h.toJson();
    EXPECT_NE(json.find("\"count\":3"), std::string::npos) << json;
    EXPECT_NE(json.find("\"mean\":2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"min\":1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"max\":3"), std::string::npos) << json;
    for (const char *key : {"\"p50\":", "\"p95\":", "\"p99\":"})
        EXPECT_NE(json.find(key), std::string::npos) << json;

    const Histogram empty;
    EXPECT_NE(empty.toJson().find("\"count\":0"), std::string::npos);
}

TEST(Histogram, MergeMatchesCombinedStream)
{
    Histogram a, b, all;
    for (int i = 1; i <= 100; ++i) {
        ((i % 2) ? a : b).add(static_cast<double>(i));
        all.add(static_cast<double>(i));
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.sum(), all.sum());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
    // Same buckets either way, so identical percentiles.
    EXPECT_DOUBLE_EQ(a.p50(), all.p50());
    EXPECT_DOUBLE_EQ(a.p95(), all.p95());
    EXPECT_DOUBLE_EQ(a.p99(), all.p99());
}

TEST(GeoMean, Basic)
{
    GeoMean gm;
    gm.add(2.0);
    gm.add(8.0);
    EXPECT_NEAR(gm.value(), 4.0, 1e-9);
}

TEST(GeoMean, EmptyIsOne)
{
    GeoMean gm;
    EXPECT_DOUBLE_EQ(gm.value(), 1.0);
}

TEST(StringUtils, Split)
{
    const auto parts = splitString("a,bb,,c", ',');
    EXPECT_EQ(parts, (std::vector<std::string>{"a", "bb", "c"}));
}

TEST(StringUtils, Trim)
{
    EXPECT_EQ(trim("  x y \t\n"), "x y");
    EXPECT_EQ(trim("   "), "");
}

TEST(StringUtils, StartsWith)
{
    EXPECT_TRUE(startsWith("block bb3", "block"));
    EXPECT_FALSE(startsWith("bb", "block"));
}

TEST(StringUtils, Strprintf)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
}

TEST(MetricsRegistry, CountersAndHistograms)
{
    MetricsRegistry metrics;
    EXPECT_EQ(metrics.counter("absent"), 0u);
    metrics.add("requests");
    metrics.add("requests", 4);
    metrics.set("gauge", 17);
    EXPECT_EQ(metrics.counter("requests"), 5u);
    EXPECT_EQ(metrics.counter("gauge"), 17u);

    metrics.observe("latency_ms", 10.0);
    metrics.observe("latency_ms", 20.0);
    EXPECT_EQ(metrics.histogram("latency_ms").count(), 2u);
    EXPECT_EQ(metrics.histogram("absent").count(), 0u);

    const std::string json = metrics.toJson();
    EXPECT_NE(json.find("\"requests\":5"), std::string::npos) << json;
    EXPECT_NE(json.find("\"latency_ms\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);

    metrics.clear();
    EXPECT_EQ(metrics.counter("requests"), 0u);
    EXPECT_EQ(metrics.histogram("latency_ms").count(), 0u);
}

TEST(MetricsRegistry, ConcurrentUpdatesDontLoseCounts)
{
    MetricsRegistry metrics;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 1000; ++i) {
                metrics.add("hits");
                metrics.observe("v", 1.0);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(metrics.counter("hits"), 4000u);
    EXPECT_EQ(metrics.histogram("v").count(), 4000u);
}

TEST(Table, AlignsAndCounts)
{
    Table t({"name", "value"});
    t.addRow({"a", Table::fmt(1.5, 1)});
    t.addRow({"long-name", Table::fmt(12LL)});
    EXPECT_EQ(t.rowCount(), 2u);
    std::ostringstream os;
    t.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("long-name"), std::string::npos);
    EXPECT_NE(text.find("1.5"), std::string::npos);
    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_NE(csv.str().find("name,value"), std::string::npos);
}

// ---------------------------------------------------------------------
// Arena

TEST(Arena, AllocatesAlignedAndTracksUsage)
{
    Arena arena(64);
    auto *a = arena.allocArray<int32_t>(4);
    auto *b = arena.allocZeroed<int64_t>(3);
    auto *c = arena.allocFilled<int32_t>(2, -7);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(int32_t), 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(int64_t), 0u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(b[i], 0);
    EXPECT_EQ(c[0], -7);
    EXPECT_EQ(c[1], -7);
    EXPECT_GE(arena.used(), 4 * sizeof(int32_t) + 3 * sizeof(int64_t) +
                                2 * sizeof(int32_t));
    EXPECT_GE(arena.capacity(), arena.used());
}

TEST(Arena, ResetRetainsBlocksAndRecordsHighWater)
{
    Arena arena(128);
    (void)arena.allocArray<char>(4000);  // forces growth
    const size_t used_first = arena.used();
    const size_t cap_first = arena.capacity();
    arena.reset();
    EXPECT_EQ(arena.used(), 0u);
    EXPECT_GE(arena.highWater(), used_first);
    // Replaying the same allocation reuses retained blocks: capacity
    // must not grow.
    (void)arena.allocArray<char>(4000);
    EXPECT_EQ(arena.capacity(), cap_first);
}

TEST(Arena, VectorGrowsAndTruncates)
{
    Arena arena;
    ArenaVector<uint32_t> v(arena);
    for (uint32_t i = 0; i < 100; ++i)
        v.push_back(i);
    ASSERT_EQ(v.size(), 100u);
    for (uint32_t i = 0; i < 100; ++i)
        EXPECT_EQ(v[i], i);
    v.resize(10);
    EXPECT_EQ(v.size(), 10u);
    v.resize(12, 7u);
    EXPECT_EQ(v.size(), 12u);
    EXPECT_EQ(v[9], 9u);
    EXPECT_EQ(v[11], 7u);
    v.clear();
    EXPECT_TRUE(v.empty());
}

// ---------------------------------------------------------------------
// Bench JSON schema (BENCH_scheduler.json / throughput_scheduler
// --json). The schema is part of the repo's perf-tracking contract:
// CI's perf-smoke job and humans appending entries both rely on these
// exact keys, units and config names. Changing any of them requires a
// version bump of the "schema" tag.

/** Minimal JSON value (enough for the bench schema). */
struct Json
{
    enum class Kind { Null, Bool, Num, Str, Arr, Obj };
    Kind kind = Kind::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    const Json &
    operator[](const std::string &key) const
    {
        static const Json null;
        auto it = obj.find(key);
        return it == obj.end() ? null : it->second;
    }
};

/** Tiny recursive-descent JSON parser (asserts on malformed input). */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Json
    parse()
    {
        const Json v = value();
        skipWs();
        EXPECT_EQ(pos_, text_.size()) << "trailing garbage";
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        EXPECT_EQ(peek(), c);
        ++pos_;
    }

    Json
    value()
    {
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': {
            Json v;
            v.kind = Json::Kind::Str;
            v.str = string();
            return v;
          }
          case 't':
          case 'f': {
            Json v;
            v.kind = Json::Kind::Bool;
            v.b = text_[pos_] == 't';
            pos_ += v.b ? 4 : 5;
            return v;
          }
          default: return number();
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            EXPECT_NE(text_[pos_], '\\') << "escapes not in schema";
            out += text_[pos_++];
        }
        expect('"');
        return out;
    }

    Json
    number()
    {
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                strchr("+-.eE", text_[pos_])))
            ++pos_;
        Json v;
        v.kind = Json::Kind::Num;
        EXPECT_GT(pos_, start) << "expected a number";
        v.num = std::strtod(text_.c_str() + start, nullptr);
        return v;
    }

    Json
    array()
    {
        expect('[');
        Json v;
        v.kind = Json::Kind::Arr;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.arr.push_back(value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    Json
    object()
    {
        expect('{');
        Json v;
        v.kind = Json::Kind::Obj;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            const std::string key = string();
            expect(':');
            v.obj.emplace(key, value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

Json
loadBenchHistory()
{
    std::ifstream in(TREEGION_BENCH_JSON);
    EXPECT_TRUE(in.good()) << "missing " << TREEGION_BENCH_JSON;
    std::stringstream ss;
    ss << in.rdbuf();
    return JsonParser(ss.str()).parse();
}

/** The config names throughput_scheduler emits, in emission order. */
const char *const kBenchConfigNames[] = {
    "bb/4U",   "slr/4U",  "sb/4U",      "tree/1U",
    "tree/4U", "tree/8U", "tree-td/4U", "hyper/4U",
};

TEST(BenchSchema, HistoryIsArrayOfV1Entries)
{
    const Json hist = loadBenchHistory();
    ASSERT_EQ(hist.kind, Json::Kind::Arr);
    ASSERT_FALSE(hist.arr.empty());
    for (const Json &entry : hist.arr) {
        ASSERT_EQ(entry.kind, Json::Kind::Obj);
        EXPECT_EQ(entry["schema"].str, "treegion-sched-bench/v1");
        EXPECT_EQ(entry["label"].kind, Json::Kind::Str);
        EXPECT_FALSE(entry["label"].str.empty());
        EXPECT_EQ(entry["bench_seed"].kind, Json::Kind::Num);
        EXPECT_EQ(entry["threads"].num, 1.0) << "single-thread bench";
        const Json &workload = entry["workload"];
        ASSERT_EQ(workload.kind, Json::Kind::Obj);
        EXPECT_EQ(workload["name"].str, "specint95-proxies");
        EXPECT_GT(workload["functions"].num, 0.0);
        EXPECT_GT(workload["ops_per_sweep"].num, 0.0);
    }
}

TEST(BenchSchema, ConfigNamesAndUnitsArePinned)
{
    const Json hist = loadBenchHistory();
    ASSERT_EQ(hist.kind, Json::Kind::Arr);
    for (const Json &entry : hist.arr) {
        const Json &configs = entry["configs"];
        ASSERT_EQ(configs.kind, Json::Kind::Arr);
        ASSERT_EQ(configs.arr.size(), std::size(kBenchConfigNames));
        const double functions = entry["workload"]["functions"].num;
        const double ops_sweep = entry["workload"]["ops_per_sweep"].num;
        for (size_t i = 0; i < configs.arr.size(); ++i) {
            const Json &c = configs.arr[i];
            EXPECT_EQ(c["name"].str, kBenchConfigNames[i]);
            // Units: compiles = whole-function pipeline runs, sweeps =
            // passes over the workload set, rates are per wall-clock
            // second. All self-consistent within float rounding.
            const double sweeps = c["sweeps"].num;
            const double compiles = c["compiles"].num;
            const double wall_s = c["wall_s"].num;
            EXPECT_GT(sweeps, 0.0);
            EXPECT_GT(wall_s, 0.0);
            EXPECT_EQ(compiles, sweeps * functions);
            EXPECT_NEAR(c["compiles_per_s"].num, compiles / wall_s,
                        0.01 * compiles / wall_s);
            EXPECT_NEAR(c["ops_per_s"].num, sweeps * ops_sweep / wall_s,
                        0.01 * sweeps * ops_sweep / wall_s);
        }
    }
}

TEST(BenchSchema, EntriesShareTheSeededWorkload)
{
    // Before/after comparisons (CI perf-smoke, the 2x acceptance bar)
    // only make sense when every entry measured the same programs:
    // same bench seed implies identical function count and op count.
    const Json hist = loadBenchHistory();
    ASSERT_EQ(hist.kind, Json::Kind::Arr);
    ASSERT_FALSE(hist.arr.empty());
    const Json &first = hist.arr.front();
    for (const Json &entry : hist.arr) {
        if (entry["bench_seed"].num != first["bench_seed"].num)
            continue;
        EXPECT_EQ(entry["workload"]["functions"].num,
                  first["workload"]["functions"].num);
        EXPECT_EQ(entry["workload"]["ops_per_sweep"].num,
                  first["workload"]["ops_per_sweep"].num);
    }
}

Json
loadClusterBenchHistory()
{
    std::ifstream in(TREEGION_CLUSTER_BENCH_JSON);
    EXPECT_TRUE(in.good()) << "missing " << TREEGION_CLUSTER_BENCH_JSON;
    std::stringstream ss;
    ss << in.rdbuf();
    return JsonParser(ss.str()).parse();
}

/** The config names throughput_cluster emits, in emission order. */
const char *const kClusterConfigNames[] = {
    "cold-1r", "warm-1r", "cold-2r", "warm-2r", "cold-4r", "warm-4r",
};

TEST(ClusterBenchSchema, HistoryIsArrayOfV1Entries)
{
    const Json hist = loadClusterBenchHistory();
    ASSERT_EQ(hist.kind, Json::Kind::Arr);
    ASSERT_FALSE(hist.arr.empty());
    for (const Json &entry : hist.arr) {
        ASSERT_EQ(entry.kind, Json::Kind::Obj);
        EXPECT_EQ(entry["schema"].str, "treegion-cluster-bench/v1");
        EXPECT_FALSE(entry["label"].str.empty());
        const Json &workload = entry["workload"];
        ASSERT_EQ(workload.kind, Json::Kind::Obj);
        EXPECT_EQ(workload["name"].str, "pinned-service-time");
        EXPECT_GT(workload["clients"].num, 0.0);
        EXPECT_GT(workload["keys"].num, 0.0);
        EXPECT_GT(workload["delay_ms"].num, 0.0)
            << "capacity must be pinned for cross-machine comparison";
        const Json &configs = entry["configs"];
        ASSERT_EQ(configs.kind, Json::Kind::Arr);
        ASSERT_EQ(configs.arr.size(), std::size(kClusterConfigNames));
        for (size_t i = 0; i < configs.arr.size(); ++i) {
            const Json &c = configs.arr[i];
            EXPECT_EQ(c["name"].str, kClusterConfigNames[i]);
            EXPECT_GT(c["replicas"].num, 0.0);
            EXPECT_GT(c["wall_s"].num, 0.0);
            EXPECT_NEAR(c["reqs_per_s"].num,
                        c["requests"].num / c["wall_s"].num,
                        0.01 * c["reqs_per_s"].num);
        }
    }
}

Json
loadMemschedBenchHistory()
{
    std::ifstream in(TREEGION_MEMSCHED_BENCH_JSON);
    EXPECT_TRUE(in.good()) << "missing " << TREEGION_MEMSCHED_BENCH_JSON;
    std::stringstream ss;
    ss << in.rdbuf();
    return JsonParser(ss.str()).parse();
}

/** The frontier points throughput_memsched emits, in emission order. */
const char *const kMemschedConfigNames[] = {
    "fifo", "budget-75", "budget-50", "budget-35",
};

TEST(MemschedBenchSchema, HistoryIsArrayOfV1Entries)
{
    const Json hist = loadMemschedBenchHistory();
    ASSERT_EQ(hist.kind, Json::Kind::Arr);
    ASSERT_FALSE(hist.arr.empty());
    for (const Json &entry : hist.arr) {
        ASSERT_EQ(entry.kind, Json::Kind::Obj);
        EXPECT_EQ(entry["schema"].str, "treegion-memsched-bench/v1");
        EXPECT_FALSE(entry["label"].str.empty());
        EXPECT_GT(entry["jobs"].num, 0.0);
        EXPECT_GT(entry["threads"].num, 1.0)
            << "budgeted admission is only exercised concurrently";
        const Json &configs = entry["configs"];
        ASSERT_EQ(configs.kind, Json::Kind::Arr);
        ASSERT_EQ(configs.arr.size(),
                  std::size(kMemschedConfigNames));
        for (size_t i = 0; i < configs.arr.size(); ++i) {
            const Json &c = configs.arr[i];
            EXPECT_EQ(c["name"].str, kMemschedConfigNames[i]);
            EXPECT_GT(c["peak_bytes"].num, 0.0);
            EXPECT_GT(c["makespan_s"].num, 0.0);
            EXPECT_NEAR(c["jobs_per_s"].num,
                        entry["jobs"].num / c["makespan_s"].num,
                        0.01 * c["jobs_per_s"].num);
        }
        // The unbudgeted baseline leads; budgets tighten after it.
        EXPECT_EQ(configs.arr[0]["budget_bytes"].num, 0.0);
        for (size_t i = 2; i < configs.arr.size(); ++i) {
            EXPECT_LT(configs.arr[i]["budget_bytes"].num,
                      configs.arr[i - 1]["budget_bytes"].num);
        }
    }
}

TEST(MemschedBenchSchema, FrontierMeetsTheAcceptanceBar)
{
    // The committed baseline must demonstrate ISSUE 8's bar: at the
    // tightest budget, peak memory drops >= 30% below unbudgeted
    // FIFO while the makespan inflates <= 15%.
    const Json hist = loadMemschedBenchHistory();
    ASSERT_EQ(hist.kind, Json::Kind::Arr);
    ASSERT_FALSE(hist.arr.empty());
    const Json &configs = hist.arr.back()["configs"];
    const Json &fifo = configs.arr.front();
    const Json &tightest = configs.arr.back();
    EXPECT_LE(tightest["peak_bytes"].num,
              0.70 * fifo["peak_bytes"].num)
        << "committed memsched baseline lost its peak reduction";
    EXPECT_LE(tightest["makespan_s"].num,
              1.15 * fifo["makespan_s"].num)
        << "committed memsched baseline pays too much makespan";
}

Json
loadOooBenchHistory()
{
    std::ifstream in(TREEGION_OOO_BENCH_JSON);
    EXPECT_TRUE(in.good()) << "missing " << TREEGION_OOO_BENCH_JSON;
    std::stringstream ss;
    ss << in.rdbuf();
    return JsonParser(ss.str()).parse();
}

/** The backend configs throughput_ooo emits, in emission order. */
const char *const kOooConfigNames[] = {
    "vliw", "ooo-small", "ooo-wide",
};

TEST(OooBenchSchema, HistoryIsArrayOfV1Entries)
{
    const Json hist = loadOooBenchHistory();
    ASSERT_EQ(hist.kind, Json::Kind::Arr);
    ASSERT_FALSE(hist.arr.empty());
    for (const Json &entry : hist.arr) {
        ASSERT_EQ(entry.kind, Json::Kind::Obj);
        EXPECT_EQ(entry["schema"].str, "treegion-ooo-bench/v1");
        EXPECT_FALSE(entry["label"].str.empty());
        EXPECT_GT(entry["bench_seed"].num, 0.0);
        const Json &configs = entry["configs"];
        ASSERT_EQ(configs.kind, Json::Kind::Arr);
        ASSERT_EQ(configs.arr.size(), std::size(kOooConfigNames));
        for (size_t i = 0; i < configs.arr.size(); ++i) {
            const Json &c = configs.arr[i];
            EXPECT_EQ(c["name"].str, kOooConfigNames[i]);
            // Units: a cell is one simulated execution of one
            // scheduled proxy on one input image; rates are per
            // wall-clock second and must be self-consistent.
            const double cells = c["cells"].num;
            const double wall_s = c["wall_s"].num;
            EXPECT_GT(cells, 0.0);
            EXPECT_GT(wall_s, 0.0);
            EXPECT_NEAR(c["cells_per_s"].num, cells / wall_s,
                        0.01 * cells / wall_s);
            EXPECT_GT(c["mcycles_per_s"].num, 0.0);
        }
    }
}

TEST(ClusterBenchSchema, WarmScalingMeetsTheAcceptanceBar)
{
    // The committed baseline must demonstrate >= 3x warm throughput
    // at 4 replicas vs 1: sharding has to pay for its routing.
    const Json hist = loadClusterBenchHistory();
    ASSERT_EQ(hist.kind, Json::Kind::Arr);
    ASSERT_FALSE(hist.arr.empty());
    const Json &configs = hist.arr.back()["configs"];
    double warm_1r = 0.0, warm_4r = 0.0;
    for (const Json &c : configs.arr) {
        if (c["name"].str == "warm-1r")
            warm_1r = c["reqs_per_s"].num;
        if (c["name"].str == "warm-4r")
            warm_4r = c["reqs_per_s"].num;
    }
    ASSERT_GT(warm_1r, 0.0);
    EXPECT_GE(warm_4r / warm_1r, 3.0)
        << "committed cluster baseline lost its scaling headroom";
}

} // namespace
} // namespace treegion::support
