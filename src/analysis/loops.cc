#include "analysis/loops.h"

#include <algorithm>

#include "analysis/dominators.h"
#include "support/logging.h"

namespace treegion::analysis {

using ir::BlockId;
using ir::kNoBlock;

LoopInfo::LoopInfo(ir::Function &fn)
{
    DominatorTree dom(fn);

    // A back edge is an edge whose target dominates its source.
    for (const BlockId id : dom.reversePostorder()) {
        for (const BlockId succ : fn.block(id).successors()) {
            if (succ != kNoBlock && dom.dominates(succ, id))
                back_edges_.emplace_back(id, succ);
        }
    }

    // Group back edges by header and flood the loop body backwards
    // from each latch up to the header.
    std::vector<BlockId> headers;
    for (const auto &[latch, header] : back_edges_) {
        if (std::find(headers.begin(), headers.end(), header) ==
            headers.end()) {
            headers.push_back(header);
        }
    }
    for (const BlockId header : headers) {
        Loop loop;
        loop.header = header;
        loop.blocks.insert(header);
        for (const auto &[latch, h] : back_edges_) {
            if (h != header)
                continue;
            loop.latches.push_back(latch);
            std::vector<BlockId> work = {latch};
            while (!work.empty()) {
                const BlockId id = work.back();
                work.pop_back();
                if (!loop.blocks.insert(id).second)
                    continue;
                for (const BlockId pred : fn.predsOf(id)) {
                    if (dom.reachable(pred))
                        work.push_back(pred);
                }
            }
        }
        loops_.push_back(std::move(loop));
    }
}

bool
LoopInfo::isHeader(BlockId id) const
{
    for (const Loop &loop : loops_) {
        if (loop.header == id)
            return true;
    }
    return false;
}

} // namespace treegion::analysis
