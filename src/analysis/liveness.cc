#include "analysis/liveness.h"

#include "support/logging.h"

namespace treegion::analysis {

using ir::BlockId;
using support::BitVector;

Liveness::Liveness(ir::Function &fn)
    : num_gprs_(fn.numGprs()),
      num_preds_(fn.numPreds()),
      num_regs_(static_cast<size_t>(num_gprs_) + num_preds_)
{
    // use[b]: read before any write in b; def[b]: written in b.
    std::unordered_map<BlockId, BitVector> use, def;
    const auto ids = fn.blockIds();
    for (const BlockId id : ids) {
        BitVector u(num_regs_), d(num_regs_);
        for (const ir::Op &op : fn.block(id).ops()) {
            for (const ir::Reg r : op.usedRegs()) {
                if (r.cls == ir::RegClass::Btr)
                    continue;
                const size_t idx = regIndex(r);
                if (!d.test(idx))
                    u.set(idx);
            }
            for (const ir::Reg r : op.dsts) {
                if (r.cls == ir::RegClass::Btr)
                    continue;
                d.set(regIndex(r));
            }
        }
        use.emplace(id, std::move(u));
        def.emplace(id, std::move(d));
        live_in_.emplace(id, BitVector(num_regs_));
        live_out_.emplace(id, BitVector(num_regs_));
    }

    bool changed = true;
    while (changed) {
        changed = false;
        // Iterate in reverse id order as a cheap approximation of
        // reverse program order; the fixpoint is order-insensitive.
        for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
            const BlockId id = *it;
            BitVector &out = live_out_.at(id);
            for (const BlockId succ : fn.block(id).successors()) {
                if (succ != ir::kNoBlock)
                    changed |= out.unionWith(live_in_.at(succ));
            }
            BitVector in = out;
            in.subtract(def.at(id));
            in.unionWith(use.at(id));
            if (!(in == live_in_.at(id))) {
                live_in_.at(id) = std::move(in);
                changed = true;
            }
        }
    }
}

size_t
Liveness::regIndex(ir::Reg r) const
{
    switch (r.cls) {
      case ir::RegClass::Gpr:
        TG_ASSERT(r.idx < num_gprs_);
        return r.idx;
      case ir::RegClass::Pred:
        TG_ASSERT(r.idx < num_preds_);
        return num_gprs_ + r.idx;
      default:
        TG_PANIC("BTRs are not tracked by liveness");
    }
}

bool
Liveness::liveIn(BlockId id, ir::Reg r) const
{
    return live_in_.at(id).test(regIndex(r));
}

bool
Liveness::liveOut(BlockId id, ir::Reg r) const
{
    return live_out_.at(id).test(regIndex(r));
}

const BitVector &
Liveness::liveInSet(BlockId id) const
{
    return live_in_.at(id);
}

} // namespace treegion::analysis
