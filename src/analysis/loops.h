/**
 * @file
 * Back-edge and natural-loop detection.
 *
 * Treegions are acyclic by construction (every reachable cycle header
 * is a merge point, and merge points delimit treegions), but loop
 * information is used by the workload generators for statistics, by
 * tests for the acyclicity property, and by the profiler's sanity
 * checks.
 */

#ifndef TREEGION_ANALYSIS_LOOPS_H
#define TREEGION_ANALYSIS_LOOPS_H

#include <unordered_set>
#include <utility>
#include <vector>

#include "ir/function.h"

namespace treegion::analysis {

/** One natural loop. */
struct Loop
{
    ir::BlockId header;                       ///< loop header block
    std::vector<ir::BlockId> latches;         ///< back-edge sources
    std::unordered_set<ir::BlockId> blocks;   ///< all member blocks
};

/** Loop structure of one function. */
class LoopInfo
{
  public:
    /** Analyze @p fn. */
    explicit LoopInfo(ir::Function &fn);

    /** @return (source, header) pairs for every back edge. */
    const std::vector<std::pair<ir::BlockId, ir::BlockId>> &
    backEdges() const
    {
        return back_edges_;
    }

    /** @return detected natural loops (one per header). */
    const std::vector<Loop> &loops() const { return loops_; }

    /** @return true when @p id is a loop header. */
    bool isHeader(ir::BlockId id) const;

  private:
    std::vector<std::pair<ir::BlockId, ir::BlockId>> back_edges_;
    std::vector<Loop> loops_;
};

} // namespace treegion::analysis

#endif // TREEGION_ANALYSIS_LOOPS_H
