#include "analysis/dominators.h"

#include <algorithm>

#include "support/logging.h"

namespace treegion::analysis {

using ir::BlockId;
using ir::kNoBlock;

std::vector<BlockId>
reversePostorder(const ir::Function &fn)
{
    std::vector<BlockId> postorder;
    std::unordered_map<BlockId, int> state;  // 0 = new, 1 = open, 2 = done
    // Iterative DFS with an explicit stack of (block, next-succ-index).
    std::vector<std::pair<BlockId, size_t>> stack;
    stack.emplace_back(fn.entry(), 0);
    state[fn.entry()] = 1;
    while (!stack.empty()) {
        auto &[id, next] = stack.back();
        const auto succs = fn.block(id).successors();
        bool descended = false;
        while (next < succs.size()) {
            const BlockId succ = succs[next++];
            if (succ == kNoBlock || state[succ] != 0)
                continue;
            state[succ] = 1;
            stack.emplace_back(succ, 0);
            descended = true;
            break;
        }
        if (!descended && next >= succs.size()) {
            state[id] = 2;
            postorder.push_back(id);
            stack.pop_back();
        }
    }
    std::reverse(postorder.begin(), postorder.end());
    return postorder;
}

DominatorTree::DominatorTree(ir::Function &fn)
{
    rpo_ = analysis::reversePostorder(fn);
    for (size_t i = 0; i < rpo_.size(); ++i)
        rpo_index_[rpo_[i]] = i;

    // Cooper-Harvey-Kennedy iteration.
    idom_[fn.entry()] = fn.entry();

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (rpo_index_.at(a) > rpo_index_.at(b))
                a = idom_.at(a);
            while (rpo_index_.at(b) > rpo_index_.at(a))
                b = idom_.at(b);
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (const BlockId id : rpo_) {
            if (id == fn.entry())
                continue;
            BlockId new_idom = kNoBlock;
            for (const BlockId pred : fn.predsOf(id)) {
                if (!rpo_index_.count(pred) || !idom_.count(pred))
                    continue;
                new_idom = (new_idom == kNoBlock)
                               ? pred
                               : intersect(new_idom, pred);
            }
            if (new_idom == kNoBlock)
                continue;
            auto it = idom_.find(id);
            if (it == idom_.end() || it->second != new_idom) {
                idom_[id] = new_idom;
                changed = true;
            }
        }
    }
    // Store the entry's idom as "none".
    idom_[fn.entry()] = kNoBlock;
}

BlockId
DominatorTree::idom(BlockId id) const
{
    auto it = idom_.find(id);
    return it == idom_.end() ? kNoBlock : it->second;
}

bool
DominatorTree::dominates(BlockId a, BlockId b) const
{
    if (!reachable(a) || !reachable(b))
        return false;
    while (b != kNoBlock) {
        if (a == b)
            return true;
        b = idom(b);
    }
    return false;
}

std::vector<BlockId>
DominatorTree::children(BlockId id) const
{
    std::vector<BlockId> out;
    for (const auto &[child, parent] : idom_) {
        if (parent == id)
            out.push_back(child);
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool
DominatorTree::reachable(BlockId id) const
{
    return rpo_index_.count(id) != 0;
}

} // namespace treegion::analysis
