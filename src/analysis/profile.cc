#include "analysis/profile.h"

#include <cmath>

#include "support/string_utils.h"

namespace treegion::analysis {

using ir::BasicBlock;
using ir::BlockId;

void
applyUniformProfile(ir::Function &fn, double weight)
{
    fn.forEachBlockMut([&](BasicBlock &b) {
        b.setWeight(weight);
        const size_t n = b.successors().size();
        b.edgeWeights().assign(n, n ? weight / static_cast<double>(n)
                                    : 0.0);
    });
}

void
clearProfile(ir::Function &fn)
{
    fn.forEachBlockMut([&](BasicBlock &b) {
        b.setWeight(0.0);
        b.edgeWeights().assign(b.successors().size(), 0.0);
    });
}

void
scaleProfile(ir::Function &fn, double factor)
{
    fn.forEachBlockMut([&](BasicBlock &b) {
        b.setWeight(b.weight() * factor);
        for (double &w : b.edgeWeights())
            w *= factor;
    });
}

std::vector<std::string>
checkProfileConsistency(ir::Function &fn, double tolerance)
{
    std::vector<std::string> problems;

    // Outgoing flow: edge weights sum to the block weight (RET blocks
    // have no outgoing edges).
    fn.forEachBlock([&](const BasicBlock &b) {
        if (b.edgeWeights().empty())
            return;
        double out = 0.0;
        for (double w : b.edgeWeights())
            out += w;
        if (std::abs(out - b.weight()) >
            tolerance * std::max(1.0, b.weight())) {
            problems.push_back(support::strprintf(
                "bb%u: outgoing edge weight %.6g != block weight %.6g",
                b.id(), out, b.weight()));
        }
    });

    // Incoming flow: sum of incoming edge weights equals the block
    // weight (entry gets one free unit of inflow per program run, so
    // it is exempt).
    std::unordered_map<BlockId, double> inflow;
    fn.forEachBlock([&](const BasicBlock &b) {
        const auto succs = b.successors();
        for (size_t i = 0; i < succs.size() &&
                           i < b.edgeWeights().size(); ++i) {
            if (succs[i] != ir::kNoBlock)
                inflow[succs[i]] += b.edgeWeights()[i];
        }
    });
    fn.forEachBlock([&](const BasicBlock &b) {
        if (b.id() == fn.entry())
            return;
        const double in = inflow.count(b.id()) ? inflow.at(b.id()) : 0.0;
        if (std::abs(in - b.weight()) >
            tolerance * std::max(1.0, b.weight())) {
            problems.push_back(support::strprintf(
                "bb%u: incoming edge weight %.6g != block weight %.6g",
                b.id(), in, b.weight()));
        }
    });
    return problems;
}

double
weightedOpCount(const ir::Function &fn)
{
    double total = 0.0;
    fn.forEachBlock([&](const BasicBlock &b) {
        total += b.weight() * static_cast<double>(b.ops().size());
    });
    return total;
}

} // namespace treegion::analysis
