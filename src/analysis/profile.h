/**
 * @file
 * Profile-weight utilities.
 *
 * Execution counts live directly on BasicBlock (block weight plus
 * per-successor edge weights). These helpers install synthetic
 * profiles, validate flow conservation, and scale/clear profiles.
 * Real profiles are collected by workloads::Profiler, which executes
 * the sequential program in the simulator.
 */

#ifndef TREEGION_ANALYSIS_PROFILE_H
#define TREEGION_ANALYSIS_PROFILE_H

#include <string>
#include <vector>

#include "ir/function.h"

namespace treegion::analysis {

/** Set every block weight to @p weight and split edges uniformly. */
void applyUniformProfile(ir::Function &fn, double weight = 1.0);

/** Zero all block and edge weights. */
void clearProfile(ir::Function &fn);

/** Multiply all block and edge weights by @p factor. */
void scaleProfile(ir::Function &fn, double factor);

/**
 * Check flow conservation: each block's edge weights sum to its
 * weight, and (except for the entry) incoming edge weight equals the
 * block weight, within @p tolerance.
 *
 * @return problems found (empty when consistent)
 */
std::vector<std::string> checkProfileConsistency(ir::Function &fn,
                                                 double tolerance = 1e-6);

/** Total profile-weighted op count (used by code expansion stats). */
double weightedOpCount(const ir::Function &fn);

} // namespace treegion::analysis

#endif // TREEGION_ANALYSIS_PROFILE_H
