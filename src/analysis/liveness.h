/**
 * @file
 * Classic backward live-variable analysis over virtual registers.
 *
 * The region schedulers consult live-in sets at region exits to decide
 * which renamed values need reconciliation copies, exactly the
 * live-out information the paper's renaming step requires.
 */

#ifndef TREEGION_ANALYSIS_LIVENESS_H
#define TREEGION_ANALYSIS_LIVENESS_H

#include <unordered_map>

#include "ir/function.h"
#include "support/bitvector.h"

namespace treegion::analysis {

/** Live-in / live-out register sets per basic block. */
class Liveness
{
  public:
    /** Run the fixpoint for @p fn. */
    explicit Liveness(ir::Function &fn);

    /** @return true if register @p r is live on entry to @p id. */
    bool liveIn(ir::BlockId id, ir::Reg r) const;

    /** @return true if register @p r is live on exit from @p id. */
    bool liveOut(ir::BlockId id, ir::Reg r) const;

    /** @return the live-in set of @p id as a bit vector. */
    const support::BitVector &liveInSet(ir::BlockId id) const;

    /** Dense index of @p r in the bit vectors. */
    size_t regIndex(ir::Reg r) const;

    /** Total number of tracked registers. */
    size_t numRegs() const { return num_regs_; }

  private:
    uint32_t num_gprs_;
    uint32_t num_preds_;
    size_t num_regs_;
    std::unordered_map<ir::BlockId, support::BitVector> live_in_;
    std::unordered_map<ir::BlockId, support::BitVector> live_out_;
};

} // namespace treegion::analysis

#endif // TREEGION_ANALYSIS_LIVENESS_H
