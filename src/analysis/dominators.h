/**
 * @file
 * Dominator tree construction (Cooper-Harvey-Kennedy).
 *
 * Inside a treegion every block dominates its subtree by construction;
 * the full CFG dominator tree is used by the verifier-level sanity
 * checks, by tests, and to reason about dominator parallelism across
 * region boundaries.
 */

#ifndef TREEGION_ANALYSIS_DOMINATORS_H
#define TREEGION_ANALYSIS_DOMINATORS_H

#include <unordered_map>
#include <vector>

#include "ir/function.h"

namespace treegion::analysis {

/** Immediate-dominator tree for one function. */
class DominatorTree
{
  public:
    /** Build the tree for @p fn (reachable blocks only). */
    explicit DominatorTree(ir::Function &fn);

    /**
     * @return the immediate dominator of @p id, or ir::kNoBlock for
     * the entry (and for unreachable blocks)
     */
    ir::BlockId idom(ir::BlockId id) const;

    /** @return true when @p a dominates @p b (reflexive). */
    bool dominates(ir::BlockId a, ir::BlockId b) const;

    /** @return blocks whose immediate dominator is @p id. */
    std::vector<ir::BlockId> children(ir::BlockId id) const;

    /** @return reverse postorder of reachable blocks. */
    const std::vector<ir::BlockId> &reversePostorder() const {
        return rpo_;
    }

    /** @return true if @p id is reachable from the entry. */
    bool reachable(ir::BlockId id) const;

  private:
    std::unordered_map<ir::BlockId, ir::BlockId> idom_;
    std::unordered_map<ir::BlockId, size_t> rpo_index_;
    std::vector<ir::BlockId> rpo_;
};

/** Compute the reverse postorder of reachable blocks of @p fn. */
std::vector<ir::BlockId> reversePostorder(const ir::Function &fn);

} // namespace treegion::analysis

#endif // TREEGION_ANALYSIS_DOMINATORS_H
