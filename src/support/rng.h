/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in the library (workload generation, synthetic inputs,
 * property-test sweeps) flows through Rng so that every experiment is
 * reproducible from a single 64-bit seed. The implementation is
 * xoshiro256** seeded via splitmix64, which is fast, well distributed,
 * and has no global state.
 */

#ifndef TREEGION_SUPPORT_RNG_H
#define TREEGION_SUPPORT_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace treegion::support {

/** A small, deterministic, seedable PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit value. */
    uint64_t next();

    /** @return a uniform value in [0, bound). @p bound must be > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** @return a uniform value in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** @return a uniform double in [0, 1). */
    double nextDouble();

    /** @return true with probability @p p (clamped to [0,1]). */
    bool nextBool(double p = 0.5);

    /**
     * Sample an index according to non-negative weights.
     *
     * @param weights per-index weights; at least one must be positive
     * @return index in [0, weights.size())
     */
    size_t nextWeighted(const std::vector<double> &weights);

    /** Derive an independent child stream (for nested generators). */
    Rng fork();

  private:
    uint64_t s_[4];
};

} // namespace treegion::support

#endif // TREEGION_SUPPORT_RNG_H
