#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/logging.h"

namespace treegion::support {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    TG_ASSERT(!headers_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    TG_ASSERT(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
Table::fmt(long long value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", value);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << "| " << row[c]
               << std::string(widths[c] - row[c].size() + 1, ' ');
        }
        os << "|\n";
    };

    auto emit_rule = [&]() {
        for (size_t c = 0; c < widths.size(); ++c)
            os << "|" << std::string(widths[c] + 2, '-');
        os << "|\n";
    };

    emit_rule();
    emit_row(headers_);
    emit_rule();
    for (const auto &row : rows_)
        emit_row(row);
    emit_rule();
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace treegion::support
