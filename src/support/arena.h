/**
 * @file
 * Chunked bump allocator for per-job scratch memory.
 *
 * The scheduling hot path allocates all of its transient structures
 * (DDG edge lists, priority tables, ready-list state) from one Arena
 * that is reset — not freed — between compile jobs, so steady-state
 * compiles perform no per-op heap traffic (DESIGN.md §11).
 *
 * Ownership rules:
 *  - An Arena owns its blocks; reset() retains them for reuse and
 *    only the destructor returns memory to the heap.
 *  - Objects allocated from an arena are never destroyed
 *    individually: allocation is only suitable for trivially
 *    destructible payloads (PODs, ids, spans), which is exactly what
 *    the SoA scheduling tables are.
 *  - Anything that outlives the compile job (the RegionSchedule, the
 *    IR itself) must NOT live in the arena.
 */

#ifndef TREEGION_SUPPORT_ARENA_H
#define TREEGION_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace treegion::support {

/** Chunked bump allocator; see file header for the ownership rules. */
class Arena
{
  public:
    /** @param first_block byte size of the first chunk. */
    explicit Arena(size_t first_block = 1u << 16);
    ~Arena();

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Bump-allocate @p bytes aligned to @p align. */
    void *
    allocate(size_t bytes, size_t align)
    {
        uintptr_t p = reinterpret_cast<uintptr_t>(ptr_);
        p = (p + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
        char *aligned = reinterpret_cast<char *>(p);
        if (aligned + bytes > end_)
            return refill(bytes, align);
        used_ += static_cast<size_t>(aligned - ptr_) + bytes;
        ptr_ = aligned + bytes;
        return aligned;
    }

    /** Allocate an uninitialized array of @p count T. */
    template <typename T>
    T *
    allocArray(size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena objects are never destroyed");
        return static_cast<T *>(allocate(count * sizeof(T), alignof(T)));
    }

    /** Allocate an array of @p count T, value-initialized. */
    template <typename T>
    T *
    allocZeroed(size_t count)
    {
        T *out = allocArray<T>(count);
        std::memset(static_cast<void *>(out), 0, count * sizeof(T));
        return out;
    }

    /** Allocate an array of @p count T, each set to @p value. */
    template <typename T>
    T *
    allocFilled(size_t count, const T &value)
    {
        T *out = allocArray<T>(count);
        for (size_t i = 0; i < count; ++i)
            out[i] = value;
        return out;
    }

    /**
     * Forget every allocation but retain the blocks: the next job
     * bump-allocates into the same memory with no heap traffic.
     */
    void reset();

    /**
     * reset(), then return every block to the allocator and start
     * block sizing over from the constructor's first_block. The
     * arena's idle footprint drops to zero at the price of regrowing
     * on the next job — the trade memory-budgeted drivers make so a
     * worker's retained arena cannot escape the budget between jobs.
     * The high-water mark survives (it describes past jobs).
     */
    void trim();

    /** Bytes handed out since the last reset (including padding). */
    size_t used() const { return used_; }

    /** Largest used() ever observed at reset time or now. */
    size_t highWater() const { return used_ > high_water_ ? used_ : high_water_; }

    /** Total bytes of owned blocks. */
    size_t capacity() const { return capacity_; }

  private:
    struct Block
    {
        Block *next;
        size_t size;  ///< payload bytes following this header
        char *data() { return reinterpret_cast<char *>(this + 1); }
    };

    /** Slow path: move to the next retained block or grow. */
    void *refill(size_t bytes, size_t align);

    Block *head_ = nullptr;  ///< block list in allocation order
    Block *cur_ = nullptr;   ///< block being bumped
    char *ptr_ = nullptr;
    char *end_ = nullptr;
    size_t used_ = 0;
    size_t high_water_ = 0;
    size_t capacity_ = 0;
    size_t next_block_size_;
    const size_t first_block_size_;  ///< trim() restarts sizing here
};

/**
 * Minimal growable array of trivially destructible T inside an Arena.
 * Growth abandons the old buffer in the arena (reclaimed at reset);
 * this is the intended trade for malloc-free push.
 */
template <typename T>
class ArenaVector
{
    static_assert(std::is_trivially_destructible_v<T>);

  public:
    explicit ArenaVector(Arena &arena) : arena_(&arena) {}

    void
    push_back(const T &value)
    {
        if (size_ == cap_)
            grow();
        data_[size_++] = value;
    }

    void
    resize(size_t n, const T &value = T())
    {
        reserve(n);
        for (size_t i = size_; i < n; ++i)
            data_[i] = value;
        size_ = n;
    }

    void
    reserve(size_t n)
    {
        if (n <= cap_)
            return;
        T *grown = arena_->allocArray<T>(n);
        if (size_)
            std::memcpy(static_cast<void *>(grown), data_,
                        size_ * sizeof(T));
        data_ = grown;
        cap_ = n;
    }

    void pop_back() { --size_; }
    void clear() { size_ = 0; }
    T &operator[](size_t i) { return data_[i]; }
    const T &operator[](size_t i) const { return data_[i]; }
    T &back() { return data_[size_ - 1]; }
    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

  private:
    void
    grow()
    {
        reserve(cap_ ? cap_ * 2 : 8);
    }

    Arena *arena_;
    T *data_ = nullptr;
    size_t size_ = 0;
    size_t cap_ = 0;
};

/** Non-owning view over a contiguous arena-backed array. */
template <typename T>
struct Span
{
    const T *data = nullptr;
    size_t count = 0;

    const T *begin() const { return data; }
    const T *end() const { return data + count; }
    const T &operator[](size_t i) const { return data[i]; }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }
};

} // namespace treegion::support

#endif // TREEGION_SUPPORT_ARENA_H
