#include "support/flightrec.h"

#include <atomic>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

namespace treegion::support::flightrec {

namespace {

struct Event
{
    int64_t t_us = 0;     ///< CLOCK_REALTIME microseconds
    uint64_t a = 0;
    uint64_t b = 0;
    char tag[kTagChars] = {};
    char detail[kDetailChars] = {};
};

struct Ring
{
    std::atomic<uint32_t> head{0}; ///< next write index (monotonic)
    std::atomic<uint32_t> tid{0};  ///< claiming thread's small id
    Event events[kRingEvents];
};

// All storage is static: the recorder must work when the heap is the
// thing that broke.
Ring g_rings[kMaxThreads];
std::atomic<uint32_t> g_claimed{0};
std::atomic<uint64_t> g_notes{0};
std::atomic<uint64_t> g_lost{0};
std::atomic<uint32_t> g_next_tid{0};
std::atomic<bool> g_dumped{false};
char g_dump_path[512] = {};

int64_t
wallUs()
{
    struct timespec ts;
    clock_gettime(CLOCK_REALTIME, &ts);
    return static_cast<int64_t>(ts.tv_sec) * 1000000 +
           ts.tv_nsec / 1000;
}

/** The calling thread's ring, claimed on first use; nullptr once the
 * slots are exhausted. */
Ring *
myRing()
{
    thread_local Ring *ring = []() -> Ring * {
        const uint32_t slot =
            g_claimed.fetch_add(1, std::memory_order_relaxed);
        if (slot >= kMaxThreads)
            return nullptr;
        g_rings[slot].tid.store(
            g_next_tid.fetch_add(1, std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
        return &g_rings[slot];
    }();
    return ring;
}

void
copyField(char *dst, int cap, const char *src)
{
    int k = 0;
    if (src) {
        for (; k < cap - 1 && src[k]; ++k)
            dst[k] = src[k];
    }
    dst[k] = '\0';
}

// ---- async-signal-safe formatting ---------------------------------

void
putRaw(int fd, const char *data, size_t len)
{
    size_t off = 0;
    while (off < len) {
        const ssize_t n = ::write(fd, data + off, len - off);
        if (n <= 0)
            return;
        off += static_cast<size_t>(n);
    }
}

void
putStr(int fd, const char *s)
{
    putRaw(fd, s, std::strlen(s));
}

void
putU64(int fd, uint64_t v)
{
    char buf[24];
    int k = sizeof(buf);
    do {
        buf[--k] = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v);
    putRaw(fd, buf + k, sizeof(buf) - k);
}

void
putI64(int fd, int64_t v)
{
    if (v < 0) {
        putStr(fd, "-");
        putU64(fd, static_cast<uint64_t>(-(v + 1)) + 1);
    } else {
        putU64(fd, static_cast<uint64_t>(v));
    }
}

/** JSON string body: printable ASCII passes, quote/backslash escape,
 * everything else becomes '?' (a crash dump is not the place for
 * \uXXXX machinery). */
void
putEscaped(int fd, const char *s)
{
    for (; *s; ++s) {
        const unsigned char c = static_cast<unsigned char>(*s);
        if (c == '"' || c == '\\') {
            const char esc[2] = {'\\', static_cast<char>(c)};
            putRaw(fd, esc, 2);
        } else if (c >= 0x20 && c < 0x7f) {
            putRaw(fd, reinterpret_cast<const char *>(&c), 1);
        } else {
            putStr(fd, "?");
        }
    }
}

void
crashHandler(int sig)
{
    dumpConfigured();
    // Restore the default disposition and re-raise so the process
    // still dies with the original signal (and core-dumps when
    // configured to).
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SIG_DFL;
    sigaction(sig, &sa, nullptr);
    raise(sig);
}

} // namespace

void
note(const char *tag, const char *detail, uint64_t a, uint64_t b)
{
    g_notes.fetch_add(1, std::memory_order_relaxed);
    Ring *ring = myRing();
    if (!ring) {
        g_lost.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const uint32_t idx =
        ring->head.load(std::memory_order_relaxed);
    Event &e = ring->events[idx % kRingEvents];
    e.t_us = wallUs();
    e.a = a;
    e.b = b;
    copyField(e.tag, kTagChars, tag);
    copyField(e.detail, kDetailChars, detail);
    // Publish after the payload so a post-join reader sees complete
    // events; a mid-crash reader may see a torn latest entry, which
    // the dump format tolerates.
    ring->head.store(idx + 1, std::memory_order_release);
}

uint64_t
noteCount()
{
    return g_notes.load(std::memory_order_relaxed);
}

uint64_t
lostThreadNotes()
{
    return g_lost.load(std::memory_order_relaxed);
}

void
setDumpPath(const char *path)
{
    if (!path || std::strlen(path) >= sizeof(g_dump_path)) {
        g_dump_path[0] = '\0';
        return;
    }
    std::strncpy(g_dump_path, path, sizeof(g_dump_path) - 1);
    g_dump_path[sizeof(g_dump_path) - 1] = '\0';
}

void
dump(int fd)
{
    const uint32_t claimed = g_claimed.load(std::memory_order_relaxed);
    const uint32_t rings =
        claimed < kMaxThreads ? claimed : kMaxThreads;
    for (uint32_t r = 0; r < rings; ++r) {
        Ring &ring = g_rings[r];
        const uint32_t head =
            ring.head.load(std::memory_order_acquire);
        const uint32_t count =
            head < kRingEvents ? head : kRingEvents;
        const uint32_t tid = ring.tid.load(std::memory_order_relaxed);
        for (uint32_t k = 0; k < count; ++k) {
            const Event &e =
                ring.events[(head - count + k) % kRingEvents];
            putStr(fd, "{\"t_us\":");
            putI64(fd, e.t_us);
            putStr(fd, ",\"tid\":");
            putU64(fd, tid);
            putStr(fd, ",\"tag\":\"");
            putEscaped(fd, e.tag);
            putStr(fd, "\",\"detail\":\"");
            putEscaped(fd, e.detail);
            putStr(fd, "\",\"a\":");
            putU64(fd, e.a);
            putStr(fd, ",\"b\":");
            putU64(fd, e.b);
            putStr(fd, "}\n");
        }
    }
    const uint64_t lost = g_lost.load(std::memory_order_relaxed);
    if (lost) {
        putStr(fd, "{\"t_us\":0,\"tid\":0,\"tag\":\"flightrec\","
                   "\"detail\":\"notes lost to thread cap\",\"a\":");
        putU64(fd, lost);
        putStr(fd, ",\"b\":0}\n");
    }
}

bool
dumpToFile(const char *path)
{
    const int fd =
        ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    dump(fd);
    ::close(fd);
    return true;
}

void
dumpConfigured()
{
    bool expected = false;
    if (!g_dumped.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel))
        return;
    if (g_dump_path[0] != '\0') {
        if (dumpToFile(g_dump_path))
            return;
    }
    dump(STDERR_FILENO);
}

bool
installCrashHandlers()
{
    static const int kSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL,
                                   SIGABRT};
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &crashHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_NODEFER;
    bool ok = true;
    for (const int sig : kSignals)
        ok = sigaction(sig, &sa, nullptr) == 0 && ok;
    return ok;
}

} // namespace treegion::support::flightrec
