#include "support/build_info.h"

#include <chrono>
#include <sstream>

#include "support/trace.h" // jsonEscape

#ifndef TG_GIT_DESCRIBE
#define TG_GIT_DESCRIBE "unknown"
#endif
#ifndef TG_BUILD_TYPE
#define TG_BUILD_TYPE "unknown"
#endif

namespace treegion::support {

namespace {

std::chrono::steady_clock::time_point
processEpoch()
{
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return epoch;
}

// Resolve the epoch during static initialization so uptime counts
// from (approximately) process start, not from the first /stats hit.
const bool g_epoch_primed = (processEpoch(), true);

} // namespace

const char *
buildGitDescribe()
{
    return TG_GIT_DESCRIBE;
}

const char *
buildType()
{
    return TG_BUILD_TYPE;
}

const char *
buildCompiler()
{
#ifdef __clang__
    return "clang " __VERSION__;
#elif defined(__GNUC__)
    return "gcc " __VERSION__;
#else
    return __VERSION__;
#endif
}

std::string
buildInfoJson()
{
    std::ostringstream os;
    os << "{\"git\":\"" << jsonEscape(buildGitDescribe())
       << "\",\"compiler\":\"" << jsonEscape(buildCompiler())
       << "\",\"build_type\":\"" << jsonEscape(buildType())
       << "\",\"span_schema\":\"treegion-span/v1\""
       << ",\"protocol\":\"treegion-req/1\"}";
    return os.str();
}

double
uptimeSeconds()
{
    (void)g_epoch_primed;
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - processEpoch())
        .count();
}

} // namespace treegion::support
