#include "support/metrics.h"

#include <sstream>

#include "support/string_utils.h"
#include "support/trace.h"

namespace treegion::support {

void
MetricsRegistry::add(const std::string &name, uint64_t delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

void
MetricsRegistry::set(const std::string &name, uint64_t value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] = value;
}

uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
MetricsRegistry::observe(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    histograms_[name].add(value);
}

Histogram
MetricsRegistry::histogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? Histogram{} : it->second;
}

std::map<std::string, uint64_t>
MetricsRegistry::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        os << (first ? "" : ",") << '"' << jsonEscape(name)
           << "\":" << value;
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        os << (first ? "" : ",") << '"' << jsonEscape(name) << "\":"
           << h.toJson();
        first = false;
    }
    os << "}}";
    return os.str();
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    histograms_.clear();
}

} // namespace treegion::support
