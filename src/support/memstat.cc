#include "support/memstat.h"

#include <atomic>

namespace treegion::support {

namespace {

// Called from inside operator new/delete: these must never allocate
// and never take a lock. Live bytes are signed so a free of a block
// allocated before the process's interposer was reachable (static
// initialization order) cannot wrap the counter; reads clamp at zero.
std::atomic<int64_t> g_live{0};
std::atomic<int64_t> g_window_peak{0};
std::atomic<bool> g_active{false};

void
raisePeak(int64_t live)
{
    int64_t seen = g_window_peak.load(std::memory_order_relaxed);
    while (seen < live &&
           !g_window_peak.compare_exchange_weak(
               seen, live, std::memory_order_relaxed)) {
    }
}

} // namespace

void
memstatOnAlloc(std::size_t bytes) noexcept
{
    if (!g_active.load(std::memory_order_relaxed))
        g_active.store(true, std::memory_order_relaxed);
    const int64_t live =
        g_live.fetch_add(static_cast<int64_t>(bytes),
                         std::memory_order_relaxed) +
        static_cast<int64_t>(bytes);
    raisePeak(live);
}

void
memstatOnFree(std::size_t bytes) noexcept
{
    g_live.fetch_sub(static_cast<int64_t>(bytes),
                     std::memory_order_relaxed);
}

bool
memstatActive() noexcept
{
    return g_active.load(std::memory_order_relaxed);
}

uint64_t
memstatLiveBytes() noexcept
{
    const int64_t live = g_live.load(std::memory_order_relaxed);
    return live > 0 ? static_cast<uint64_t>(live) : 0;
}

uint64_t
memstatWindowPeakBytes() noexcept
{
    const int64_t peak = g_window_peak.load(std::memory_order_relaxed);
    return peak > 0 ? static_cast<uint64_t>(peak) : 0;
}

uint64_t
memstatResetWindow() noexcept
{
    const int64_t live = g_live.load(std::memory_order_relaxed);
    g_window_peak.store(live, std::memory_order_relaxed);
    return live > 0 ? static_cast<uint64_t>(live) : 0;
}

namespace {
std::atomic<bool> g_stage_profiling{false};
} // namespace

void
memstatSetStageProfiling(bool enabled) noexcept
{
    g_stage_profiling.store(enabled, std::memory_order_relaxed);
}

bool
memstatStageProfiling() noexcept
{
    return g_stage_profiling.load(std::memory_order_relaxed);
}

} // namespace treegion::support
