#include "support/bitvector.h"

#include "support/logging.h"

namespace treegion::support {

BitVector::BitVector(size_t size)
{
    resize(size);
}

void
BitVector::resize(size_t size)
{
    size_ = size;
    words_.assign((size + 63) / 64, 0);
}

void
BitVector::set(size_t idx)
{
    TG_ASSERT(idx < size_);
    words_[idx / 64] |= (uint64_t{1} << (idx % 64));
}

void
BitVector::reset(size_t idx)
{
    TG_ASSERT(idx < size_);
    words_[idx / 64] &= ~(uint64_t{1} << (idx % 64));
}

bool
BitVector::test(size_t idx) const
{
    TG_ASSERT(idx < size_);
    return (words_[idx / 64] >> (idx % 64)) & 1;
}

void
BitVector::clear()
{
    for (auto &w : words_)
        w = 0;
}

void
BitVector::setAll()
{
    for (auto &w : words_)
        w = ~uint64_t{0};
    // Clear bits beyond size_ in the final word.
    if (size_ % 64 != 0 && !words_.empty())
        words_.back() &= (uint64_t{1} << (size_ % 64)) - 1;
}

size_t
BitVector::count() const
{
    size_t n = 0;
    for (uint64_t w : words_)
        n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
}

bool
BitVector::none() const
{
    for (uint64_t w : words_) {
        if (w)
            return false;
    }
    return true;
}

bool
BitVector::unionWith(const BitVector &other)
{
    TG_ASSERT(size_ == other.size_);
    bool changed = false;
    for (size_t i = 0; i < words_.size(); ++i) {
        const uint64_t merged = words_[i] | other.words_[i];
        changed |= (merged != words_[i]);
        words_[i] = merged;
    }
    return changed;
}

bool
BitVector::intersectWith(const BitVector &other)
{
    TG_ASSERT(size_ == other.size_);
    bool changed = false;
    for (size_t i = 0; i < words_.size(); ++i) {
        const uint64_t merged = words_[i] & other.words_[i];
        changed |= (merged != words_[i]);
        words_[i] = merged;
    }
    return changed;
}

bool
BitVector::subtract(const BitVector &other)
{
    TG_ASSERT(size_ == other.size_);
    bool changed = false;
    for (size_t i = 0; i < words_.size(); ++i) {
        const uint64_t merged = words_[i] & ~other.words_[i];
        changed |= (merged != words_[i]);
        words_[i] = merged;
    }
    return changed;
}

bool
BitVector::operator==(const BitVector &other) const
{
    return size_ == other.size_ && words_ == other.words_;
}

std::vector<size_t>
BitVector::toIndices() const
{
    std::vector<size_t> out;
    forEachSet([&](size_t idx) { out.push_back(idx); });
    return out;
}

} // namespace treegion::support
