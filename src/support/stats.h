/**
 * @file
 * Small statistics accumulators used by region statistics and benches.
 */

#ifndef TREEGION_SUPPORT_STATS_H
#define TREEGION_SUPPORT_STATS_H

#include <cstdint>

namespace treegion::support {

/** Running mean / min / max / count accumulator. */
class Accumulator
{
  public:
    /** Add one sample. */
    void add(double value);

    /** @return number of samples added. */
    uint64_t count() const { return count_; }

    /** @return sum of samples. */
    double sum() const { return sum_; }

    /** @return mean of samples (0 when empty). */
    double mean() const;

    /** @return smallest sample (0 when empty). */
    double min() const;

    /** @return largest sample (0 when empty). */
    double max() const;

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Geometric mean accumulator (used for speedup averages, matching the
 * paper's cross-benchmark summary bars).
 */
class GeoMean
{
  public:
    /** Add one strictly positive sample. */
    void add(double value);

    /** @return geometric mean (1.0 when empty). */
    double value() const;

    /** @return number of samples. */
    uint64_t count() const { return count_; }

  private:
    uint64_t count_ = 0;
    double log_sum_ = 0.0;
};

} // namespace treegion::support

#endif // TREEGION_SUPPORT_STATS_H
