/**
 * @file
 * Small statistics accumulators used by region statistics and benches.
 */

#ifndef TREEGION_SUPPORT_STATS_H
#define TREEGION_SUPPORT_STATS_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace treegion::support {

/** Running mean / min / max / count accumulator. */
class Accumulator
{
  public:
    /** Add one sample. */
    void add(double value);

    /** Fold @p other's samples into this accumulator. */
    void merge(const Accumulator &other);

    /** @return number of samples added. */
    uint64_t count() const { return count_; }

    /** @return sum of samples. */
    double sum() const { return sum_; }

    /** @return mean of samples (0 when empty). */
    double mean() const;

    /** @return smallest sample (0 when empty). */
    double min() const;

    /** @return largest sample (0 when empty). */
    double max() const;

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed log-bucket histogram with quantile estimates.
 *
 * Buckets are geometric: kSubBuckets per power of two, spanning
 * [2^kMinExp, 2^kMaxExp), plus an underflow bucket (everything <=
 * 2^kMinExp, including zero and negatives) and an overflow bucket.
 * The layout is identical for every instance, so histograms merge by
 * adding bucket counts — per-thread histograms can be combined after
 * a parallel run with no loss beyond the bucket resolution.
 *
 * percentile() interpolates within the winning bucket and clamps to
 * the observed [min, max], so the relative error of a quantile is
 * bounded by the bucket ratio 2^(1/kSubBuckets) (about 19%); in
 * practice, clamping makes small-count histograms exact at the
 * extremes.
 */
class Histogram
{
  public:
    /** Add one sample. */
    void add(double value);

    /** Fold @p other's samples into this histogram. */
    void merge(const Histogram &other);

    /** @return number of samples added. */
    uint64_t count() const { return acc_.count(); }

    /** @return sum of samples. */
    double sum() const { return acc_.sum(); }

    /** @return mean of samples (0 when empty). */
    double mean() const { return acc_.mean(); }

    /** @return smallest sample (0 when empty). */
    double min() const { return acc_.min(); }

    /** @return largest sample (0 when empty). */
    double max() const { return acc_.max(); }

    /**
     * @return the value at percentile @p pct (0..100), estimated from
     * the bucket counts; 0 when empty.
     */
    double percentile(double pct) const;

    /** Median estimate. */
    double p50() const { return percentile(50.0); }

    /** 95th-percentile estimate. */
    double p95() const { return percentile(95.0); }

    /** 99th-percentile estimate. */
    double p99() const { return percentile(99.0); }

    /**
     * @return one JSON object with the full summary —
     * {"count":..,"mean":..,"min":..,"max":..,"p50":..,"p95":..,
     * "p99":..} — so dashboards get the sample count and range, not
     * just the quantiles.
     */
    std::string toJson() const;

  private:
    static constexpr int kSubBuckets = 4;  ///< buckets per octave
    static constexpr int kMinExp = -20;    ///< 2^-20 ~ 1e-6
    static constexpr int kMaxExp = 44;     ///< 2^44 ~ 1.8e13
    static constexpr size_t kNumBuckets =
        static_cast<size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

    static size_t bucketIndex(double value);

    /** Lower bound of bucket @p index (index >= 1). */
    static double bucketLowerBound(size_t index);

    std::array<uint64_t, kNumBuckets> buckets_{};
    Accumulator acc_;
};

/**
 * Geometric mean accumulator (used for speedup averages, matching the
 * paper's cross-benchmark summary bars).
 */
class GeoMean
{
  public:
    /** Add one strictly positive sample. */
    void add(double value);

    /** @return geometric mean (1.0 when empty). */
    double value() const;

    /** @return number of samples. */
    uint64_t count() const { return count_; }

  private:
    uint64_t count_ = 0;
    double log_sum_ = 0.0;
};

} // namespace treegion::support

#endif // TREEGION_SUPPORT_STATS_H
