/**
 * @file
 * Named runtime metrics for long-lived processes (the compile
 * service): monotonic counters plus latency histograms, collected
 * from any number of threads and exported as one JSON object.
 *
 * This is deliberately simpler than TraceCollector: traces answer
 * "what happened when" for one run, metrics answer "how is the
 * process doing" over its whole lifetime. A registry is cheap enough
 * to update on every request (one mutex acquisition), and snapshots
 * are consistent — toJson() sees counters and histograms from the
 * same instant.
 */

#ifndef TREEGION_SUPPORT_METRICS_H
#define TREEGION_SUPPORT_METRICS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "support/stats.h"

namespace treegion::support {

/** Thread-safe named counters + histograms with JSON export. */
class MetricsRegistry
{
  public:
    /** Add @p delta to counter @p name (created at 0 on first use). */
    void add(const std::string &name, uint64_t delta = 1);

    /** Set counter @p name to @p value (for gauges like cache bytes). */
    void set(const std::string &name, uint64_t value);

    /** @return counter @p name's value (0 when never touched). */
    uint64_t counter(const std::string &name) const;

    /** Record @p value into histogram @p name. */
    void observe(const std::string &name, double value);

    /** @return a copy of histogram @p name (empty when never touched). */
    Histogram histogram(const std::string &name) const;

    /** @return a consistent snapshot of all counters. */
    std::map<std::string, uint64_t> counters() const;

    /**
     * Render everything as one JSON object:
     * {"counters":{...},"histograms":{"name":{"count":...,"mean":...,
     * "min":...,"max":...,"p50":...,"p95":...,"p99":...}}}
     */
    std::string toJson() const;

    /** Drop all counters and histograms. */
    void clear();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace treegion::support

#endif // TREEGION_SUPPORT_METRICS_H
