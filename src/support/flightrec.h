/**
 * @file
 * Crash flight recorder: a fixed-size, lock-free, per-thread ring of
 * recent events that costs nothing to keep on and can be dumped from
 * the places where nothing else works — TG_PANIC, fatal signal
 * handlers, and the SIGTERM drain path.
 *
 * Tracing and metrics explain the runs that finish; the flight
 * recorder explains the one that did not. Every note() is a handful
 * of plain stores into a statically allocated ring owned by the
 * calling thread (no heap, no locks, no syscalls), so hot paths can
 * note unconditionally. On a crash the handler walks all claimed
 * rings and writes the last events of every thread as JSON lines
 * using only async-signal-safe primitives (open/write, hand-rolled
 * formatting — no stdio, no malloc).
 *
 * Capacity is static: kMaxThreads rings of kRingEvents events.
 * Threads beyond the claim limit note into nothing (counted), which
 * keeps note() branch-cheap and the whole structure allocation-free
 * for any thread count.
 */

#ifndef TREEGION_SUPPORT_FLIGHTREC_H
#define TREEGION_SUPPORT_FLIGHTREC_H

#include <cstdint>

namespace treegion::support::flightrec {

/** Rings available before extra threads start noting into nothing. */
constexpr int kMaxThreads = 64;
/** Events retained per thread (power of two; older ones overwrite). */
constexpr int kRingEvents = 256;
/** Capacity of the fixed tag / detail character fields (including
 * the NUL; longer strings truncate). */
constexpr int kTagChars = 24;
constexpr int kDetailChars = 40;

/**
 * Record one event in the calling thread's ring: a short static tag
 * (e.g. "req", "panic"), an optional free-form detail, and two
 * numeric payloads. Always on, allocation-free, lock-free.
 */
void note(const char *tag, const char *detail = nullptr,
          uint64_t a = 0, uint64_t b = 0);

/** Total events ever noted (including overwritten ones). */
uint64_t noteCount();

/** Events that fell on the floor because more than kMaxThreads
 * threads noted. */
uint64_t lostThreadNotes();

/**
 * Set the file the crash/drain dumps write to (path copied into a
 * static buffer; empty or overlong paths reset to stderr). Safe to
 * call once at startup, before handlers can fire.
 */
void setDumpPath(const char *path);

/**
 * Dump every claimed ring, oldest event first per thread, as JSON
 * lines to @p fd. Async-signal-safe: no allocation, no stdio, no
 * locks (events being written concurrently with a crash dump may
 * read torn — acceptable for a post-mortem artifact).
 */
void dump(int fd);

/** dump() to @p path (O_CREAT|O_TRUNC). @return false when the file
 * cannot be opened. */
bool dumpToFile(const char *path);

/** dump() to the setDumpPath() target, or stderr when none is
 * configured. Re-entry safe: the second and later calls are no-ops,
 * so a panic hook followed by the SIGABRT handler dumps once. */
void dumpConfigured();

/**
 * Install handlers for SIGSEGV, SIGBUS, SIGFPE, SIGILL and SIGABRT
 * that dumpConfigured() and then re-raise with the default
 * disposition. @return false if any sigaction failed.
 */
bool installCrashHandlers();

} // namespace treegion::support::flightrec

#endif // TREEGION_SUPPORT_FLIGHTREC_H
