#include "support/arena.h"

namespace treegion::support {

Arena::Arena(size_t first_block)
    : next_block_size_(first_block), first_block_size_(first_block)
{
}

Arena::~Arena()
{
    Block *b = head_;
    while (b) {
        Block *next = b->next;
        ::operator delete(static_cast<void *>(b));
        b = next;
    }
}

void
Arena::reset()
{
    if (used_ > high_water_)
        high_water_ = used_;
    used_ = 0;
    cur_ = head_;
    if (cur_) {
        ptr_ = cur_->data();
        end_ = ptr_ + cur_->size;
    } else {
        ptr_ = end_ = nullptr;
    }
}

void
Arena::trim()
{
    reset();
    Block *b = head_;
    while (b) {
        Block *next = b->next;
        ::operator delete(static_cast<void *>(b));
        b = next;
    }
    head_ = cur_ = nullptr;
    ptr_ = end_ = nullptr;
    capacity_ = 0;
    // Without this, trim-per-job runs would double the first block
    // on every job (refill doubles next_block_size_ each time it
    // allocates) and the arena would grow without bound.
    next_block_size_ = first_block_size_;
}

void *
Arena::refill(size_t bytes, size_t align)
{
    // Waste the tail of the current block; count it as used so the
    // high-water mark reflects real footprint.
    used_ += static_cast<size_t>(end_ - ptr_);

    // Reuse the next retained block when it fits.
    Block *next = cur_ ? cur_->next : head_;
    while (next && next->size < bytes + align) {
        // Too small for this request: skip it (stays retained for the
        // next reset; sizes double, so skips are rare).
        used_ += next->size;
        cur_ = next;
        next = next->next;
    }
    if (!next) {
        size_t want = next_block_size_;
        while (want < bytes + align)
            want *= 2;
        next_block_size_ = want * 2;
        next = static_cast<Block *>(
            ::operator new(sizeof(Block) + want));
        next->next = nullptr;
        next->size = want;
        if (cur_)
            cur_->next = next;
        else
            head_ = next;
        capacity_ += want;
    }
    cur_ = next;
    ptr_ = cur_->data();
    end_ = ptr_ + cur_->size;

    uintptr_t p = reinterpret_cast<uintptr_t>(ptr_);
    p = (p + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
    char *aligned = reinterpret_cast<char *>(p);
    used_ += static_cast<size_t>(aligned - ptr_) + bytes;
    ptr_ = aligned + bytes;
    return aligned;
}

} // namespace treegion::support
