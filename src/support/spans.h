/**
 * @file
 * Request-scoped distributed tracing: 128-bit trace contexts that
 * cross process boundaries, wall-clock spans that nest into one tree
 * per request, and a process-wide collector that serializes them as
 * schema-stable JSONL (`treegion-span/v1`).
 *
 * Where support/trace.h answers "how long did stage X take in this
 * process", a span answers "where did *this request* spend its time
 * across the whole farm": the client mints a trace id, forwards it as
 * `trace-id`/`parent-span` protocol headers, every replica that
 * touches the request (queue, memory gate, cache, compile stages,
 * peer fill, response write) records children of the client's span,
 * and `treegion-report --trace-merge` reassembles the files from all
 * parties into one tree per request.
 *
 * Design, mirroring support/remarks.h:
 *
 *  - A TraceSpan serializes to one JSON line with a fixed key order and
 *    parses back losslessly through a strict parser that rejects
 *    unknown fields, duplicates, missing fields and trailing bytes —
 *    the span stream is a wire format, not debug output.
 *
 *  - Propagation is ambient and thread-local. A SpanContextScope
 *    installs the incoming request's context for the current thread;
 *    every SpanScope below it (including the ones embedded in
 *    TraceScope) becomes a child automatically. With no ambient
 *    context and the collector disabled, a SpanScope is inert: one
 *    thread-local read, one relaxed atomic load, zero allocation —
 *    the zero-allocation steady-state pin covers this path.
 *
 *  - Sampling is decided once, at the root: an unsampled trace
 *    propagates nothing and records nothing downstream. Timestamps
 *    are wall-clock microseconds (CLOCK_REALTIME) so files from
 *    different hosts can be aligned by the ping-based clock sync.
 */

#ifndef TREEGION_SUPPORT_SPANS_H
#define TREEGION_SUPPORT_SPANS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace treegion::support {

/** Current wall-clock time in microseconds since the Unix epoch. */
int64_t epochUs();

/** @return a fresh non-zero 64-bit id (thread-local splitmix64
 * seeded from the system entropy source). */
uint64_t mintSpanId();

/** Render @p hi:@p lo as 32 lowercase hex digits (the `trace-id`
 * wire form). */
std::string traceIdHex(uint64_t hi, uint64_t lo);

/** Render @p id as 16 lowercase hex digits (the `parent-span` wire
 * form). */
std::string spanIdHex(uint64_t id);

/** Parse the 32-hex-digit traceIdHex form. @return false unless
 * @p hex is exactly 32 hex digits. */
bool parseTraceIdHex(const std::string &hex, uint64_t *hi,
                     uint64_t *lo);

/** Parse the 16-hex-digit spanIdHex form. @return false unless
 * @p hex is exactly 16 hex digits. */
bool parseSpanIdHex(const std::string &hex, uint64_t *id);

/**
 * The propagated half of a trace: which trace a piece of work
 * belongs to, which span is its parent, and whether the root decided
 * to sample it. `service` names the party recording (stable storage
 * owned by the installer — a server's self-address or a client tool
 * name); null falls back to the collector's default service.
 */
struct SpanContext
{
    uint64_t trace_hi = 0;
    uint64_t trace_lo = 0;
    uint64_t span = 0;
    bool sampled = false;
    const char *service = nullptr;

    bool
    valid() const
    {
        return (trace_hi | trace_lo) != 0 && span != 0;
    }
};

/** @return the context installed for this thread (invalid when
 * none). */
SpanContext currentSpanContext();

/**
 * RAII installation of @p ctx as the current thread's ambient trace
 * context. Nests: the previous context is restored on destruction.
 */
class SpanContextScope
{
  public:
    explicit SpanContextScope(const SpanContext &ctx);
    ~SpanContextScope();

    SpanContextScope(const SpanContextScope &) = delete;
    SpanContextScope &operator=(const SpanContextScope &) = delete;

  private:
    SpanContext prev_;
};

/** One named argument of a span (ordered; order is schema). */
struct SpanArg
{
    enum class Type { Int, Float, Str };

    std::string key;
    Type type = Type::Int;
    int64_t i = 0;
    double f = 0.0;
    std::string s;

    bool operator==(const SpanArg &other) const = default;
};

/** One completed span: a named interval inside one trace. */
struct TraceSpan
{
    uint64_t trace_hi = 0;
    uint64_t trace_lo = 0;
    uint64_t span = 0;
    uint64_t parent = 0;    ///< 0 = root of its trace
    std::string name;
    std::string service;
    uint32_t tid = 0;
    int64_t start_us = 0;   ///< wall clock (epochUs)
    int64_t dur_us = 0;
    std::vector<SpanArg> args;

    bool operator==(const TraceSpan &other) const = default;

    /**
     * Serialize as one JSON object (no trailing newline), stable key
     * order: trace, span, parent ("" for roots), name, svc, tid,
     * start_us, dur_us, args. Floats use %.17g so the line
     * round-trips bit-exactly through parseSpanJson.
     */
    std::string toJson() const;
};

/**
 * Parse one JSON line produced by TraceSpan::toJson back into a TraceSpan,
 * enforcing the schema: "trace" 32 hex digits, "span"/"parent" 16
 * hex digits (parent may be ""), "name"/"svc" strings, "tid"/
 * "start_us"/"dur_us" integers, "args" an object of int/float/string
 * values, every field present exactly once, no unknown keys, nothing
 * after the closing brace. @return false and set @p error on any
 * violation.
 */
bool parseSpanJson(const std::string &line, TraceSpan &out,
                   std::string *error = nullptr);

/**
 * Process-wide sink for completed spans. Off by default; while off,
 * recording sites are inert. On, spans buffer in memory (bounded —
 * overflow increments dropped()) until written as JSONL.
 */
class SpanCollector
{
  public:
    static SpanCollector &instance();

    /**
     * Enable collection with sampling rate @p sample_rate in [0, 1]
     * (the probability a freshly minted root trace is sampled;
     * propagated contexts keep their root's decision).
     */
    void configure(double sample_rate);

    void setEnabled(bool enabled);

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    double sampleRate() const;

    /** Roll the sampling decision for a new root trace. */
    bool sampleNewTrace();

    /** Default `svc` stamp for contexts that carry none. */
    void setService(std::string service);
    std::string service() const;

    /** Append @p s (dropped beyond the buffer cap). */
    void record(TraceSpan s);

    /** @return a copy of the buffered spans, in record order. */
    std::vector<TraceSpan> snapshot() const;

    /** @return spans dropped at the buffer cap since clear(). */
    uint64_t dropped() const;

    /** @return buffered span count. */
    size_t size() const;

    /**
     * Write the buffered spans as JSON lines to @p path (append or
     * truncate) and drop them from the buffer. @return false when
     * the file cannot be written (buffer is kept).
     */
    bool writeJsonl(const std::string &path, bool append = false);

    /** Drop buffered spans and the drop counter. */
    void clear();

  private:
    SpanCollector() = default;

    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    double sample_rate_ = 1.0;
    std::string service_ = "treegion";
    std::vector<TraceSpan> spans_;
    uint64_t dropped_ = 0;
};

/**
 * RAII span covering its own lifetime. Three behaviours, decided at
 * construction:
 *
 *  - the ambient context is sampled: live, a child of the ambient
 *    span; installs itself as the ambient context so nested scopes
 *    chain.
 *  - no usable ambient context, Root::IfEnabled, collector enabled:
 *    mints a fresh trace (sampled per the collector's rate).
 *  - otherwise inert: no clock read, no allocation.
 */
class SpanScope
{
  public:
    enum class Root {
        No,        ///< child-only: inert without a sampled ambient
        IfEnabled, ///< mint a new trace when there is no ambient
    };

    /** @p service, when given, overrides the recording service name
     * for this span and everything nested under it (used by servers
     * to stamp their self-address on in-process shared collectors). */
    explicit SpanScope(const char *name, Root root = Root::No,
                       const char *service = nullptr);
    ~SpanScope();

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    bool live() const { return live_; }

    /** The context naming this span as parent (for propagation). */
    const SpanContext &context() const { return ctx_; }

    /**
     * Record the span now instead of at scope exit (idempotent; the
     * destructor then only restores the ambient context). Lets a
     * server close its "request" span before handing the response to
     * another thread, so the recorded interval does not stretch over
     * the lambda's teardown. context() stays valid afterwards.
     */
    void finish();

    SpanScope &arg(const char *key, std::string value);
    SpanScope &arg(const char *key, const char *value);
    SpanScope &arg(const char *key, int64_t value);
    SpanScope &arg(const char *key, double value);

  private:
    bool live_ = false;
    bool installed_ = false;
    const char *name_;
    SpanContext ctx_;       ///< this span as the parent of children
    uint64_t parent_ = 0;
    int64_t start_us_ = 0;
    std::vector<SpanArg> args_;
    SpanContext saved_;
};

/**
 * Record an already-elapsed interval [@p start_us, @p end_us] as a
 * completed child of @p parent (queue waits and write latencies are
 * measured before any scope can exist). Inert unless @p parent is
 * sampled and the collector is enabled.
 */
void noteSpan(const SpanContext &parent, const char *name,
              int64_t start_us, int64_t end_us,
              std::vector<SpanArg> args = {});

} // namespace treegion::support

#endif // TREEGION_SUPPORT_SPANS_H
