#include "support/remarks.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "support/logging.h"
#include "support/metrics.h"
#include "support/string_utils.h"
#include "support/trace.h"  // jsonEscape

namespace treegion::support {

const char *
remarkKindName(RemarkKind kind)
{
    switch (kind) {
      case RemarkKind::BlockAccepted: return "block-accepted";
      case RemarkKind::GrowthStopped: return "growth-stopped";
      case RemarkKind::RegionFormed: return "region-formed";
      case RemarkKind::TailDuplicated: return "tail-duplicated";
      case RemarkKind::TailDupRefused: return "tail-dup-refused";
      case RemarkKind::TailDupStopped: return "tail-dup-stopped";
      case RemarkKind::Renamed: return "renamed";
      case RemarkKind::Speculated: return "speculated";
      case RemarkKind::Elided: return "elided";
      case RemarkKind::ExitMerged: return "exit-merged";
      case RemarkKind::TieBreak: return "tie-break";
      case RemarkKind::ExitCost: return "exit-cost";
    }
    TG_PANIC("bad RemarkKind");
}

const char *
remarkPassName(RemarkKind kind)
{
    switch (kind) {
      case RemarkKind::BlockAccepted:
      case RemarkKind::GrowthStopped:
      case RemarkKind::RegionFormed:
        return "formation";
      case RemarkKind::TailDuplicated:
      case RemarkKind::TailDupRefused:
      case RemarkKind::TailDupStopped:
        return "tail-dup";
      case RemarkKind::Renamed:
      case RemarkKind::Speculated:
      case RemarkKind::Elided:
      case RemarkKind::ExitMerged:
      case RemarkKind::TieBreak:
        return "sched";
      case RemarkKind::ExitCost:
        return "perf";
    }
    TG_PANIC("bad RemarkKind");
}

bool
parseRemarkKind(const std::string &name, RemarkKind &out)
{
    for (const RemarkKind kind : kAllRemarkKinds) {
        if (name == remarkKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

namespace {

/**
 * Render a float so it round-trips bit-exactly through strtod AND
 * stays typed: integral values get a trailing ".0" so a reparse
 * yields a Float arg again, not an Int.
 */
std::string
floatText(double value)
{
    std::string text = strprintf("%.17g", value);
    if (text.find_first_of(".eE") == std::string::npos &&
        text.find_first_not_of("-0123456789") == std::string::npos)
        text += ".0";
    return text;
}

} // namespace

std::string
Remark::toJson() const
{
    std::ostringstream os;
    os << "{\"pass\":\"" << remarkPassName(kind) << "\",\"kind\":\""
       << remarkKindName(kind) << "\",\"fn\":\""
       << jsonEscape(function) << '"';
    if (block >= 0)
        os << ",\"block\":" << block;
    if (op >= 0)
        os << ",\"op\":" << op;
    if (!args.empty()) {
        os << ",\"args\":{";
        bool first = true;
        for (const RemarkArg &a : args) {
            os << (first ? "" : ",") << '"' << jsonEscape(a.key)
               << "\":";
            switch (a.type) {
              case RemarkArg::Type::Int:
                os << a.i;
                break;
              case RemarkArg::Type::Float:
                os << floatText(a.f);
                break;
              case RemarkArg::Type::Str:
                os << '"' << jsonEscape(a.s) << '"';
                break;
            }
            first = false;
        }
        os << '}';
    }
    os << '}';
    return os.str();
}

namespace {

/**
 * Minimal recursive-descent parser for the remark schema: one JSON
 * object of strings, integers, floats, and one nested flat "args"
 * object. Not a general JSON parser — exactly the subset
 * Remark::toJson emits, strictly validated.
 */
class RemarkParser
{
  public:
    RemarkParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    run(Remark &out)
    {
        skipWs();
        if (!expect('{'))
            return false;
        bool have_pass = false, have_kind = false, have_fn = false;
        std::string pass;
        bool first = true;
        for (;;) {
            skipWs();
            if (peek() == '}') {
                ++pos_;
                break;
            }
            if (!first && !expect(','))
                return false;
            first = false;
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!expect(':'))
                return false;
            skipWs();
            if (key == "pass") {
                if (!parseString(pass))
                    return false;
                have_pass = true;
            } else if (key == "kind") {
                std::string name;
                if (!parseString(name))
                    return false;
                if (!parseRemarkKind(name, out.kind))
                    return fail("unknown kind '" + name + "'");
                have_kind = true;
            } else if (key == "fn") {
                if (!parseString(out.function))
                    return false;
                have_fn = true;
            } else if (key == "block" || key == "op") {
                RemarkArg num;
                if (!parseNumber(num))
                    return false;
                if (num.type != RemarkArg::Type::Int || num.i < 0)
                    return fail("'" + key +
                                "' must be a non-negative integer");
                (key == "block" ? out.block : out.op) = num.i;
            } else if (key == "args") {
                if (!parseArgs(out.args))
                    return false;
            } else {
                return fail("unknown field '" + key + "'");
            }
        }
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after the remark object");
        if (!have_pass)
            return fail("missing required field 'pass'");
        if (!have_kind)
            return fail("missing required field 'kind'");
        if (!have_fn)
            return fail("missing required field 'fn'");
        if (pass != remarkPassName(out.kind)) {
            return fail("pass '" + pass + "' does not match kind '" +
                        remarkKindName(out.kind) + "' (expected '" +
                        remarkPassName(out.kind) + "')");
        }
        return true;
    }

  private:
    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    fail(const std::string &why)
    {
        if (error_)
            *error_ = why;
        return false;
    }

    bool
    expect(char c)
    {
        if (peek() != c)
            return fail(strprintf("expected '%c' at offset %zu", c,
                                  pos_));
        ++pos_;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // jsonEscape only emits \u00xx control codes; encode
                // anything else as UTF-8 for completeness.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail(strprintf("bad escape '\\%c'", esc));
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(RemarkArg &out)
    {
        const size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        bool is_float = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                is_float = true;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            return fail("expected a number");
        const std::string token = text_.substr(start, pos_ - start);
        errno = 0;
        char *end = nullptr;
        if (is_float) {
            out.type = RemarkArg::Type::Float;
            out.f = std::strtod(token.c_str(), &end);
        } else {
            out.type = RemarkArg::Type::Int;
            out.i = std::strtoll(token.c_str(), &end, 10);
        }
        if (errno == ERANGE || end == nullptr || *end != '\0')
            return fail("bad number '" + token + "'");
        return true;
    }

    bool
    parseArgs(std::vector<RemarkArg> &out)
    {
        if (!expect('{'))
            return false;
        out.clear();
        bool first = true;
        for (;;) {
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            if (!first && !expect(','))
                return false;
            first = false;
            skipWs();
            RemarkArg a;
            if (!parseString(a.key))
                return false;
            skipWs();
            if (!expect(':'))
                return false;
            skipWs();
            if (peek() == '"') {
                a.type = RemarkArg::Type::Str;
                if (!parseString(a.s))
                    return false;
            } else if (peek() == '{' || peek() == '[') {
                return fail("argument '" + a.key +
                            "' must be a scalar");
            } else {
                if (!parseNumber(a))
                    return false;
            }
            out.push_back(std::move(a));
        }
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

} // namespace

bool
parseRemarkJson(const std::string &line, Remark &out,
                std::string *error)
{
    out = Remark{};
    return RemarkParser(line, error).run(out);
}

std::string
RemarkStream::toJsonLines() const
{
    std::string out;
    for (const Remark &r : remarks_) {
        out += r.toJson();
        out += '\n';
    }
    return out;
}

void
RemarkStream::foldInto(MetricsRegistry &metrics) const
{
    for (const Remark &r : remarks_) {
        std::string name = std::string("remarks_") +
                           remarkKindName(r.kind);
        std::replace(name.begin(), name.end(), '-', '_');
        metrics.add(name);
    }
    metrics.add("remarks_total", remarks_.size());
}

namespace {

thread_local RemarkStream *t_current_stream = nullptr;

} // namespace

RemarkStream *
currentRemarkStream()
{
    return t_current_stream;
}

RemarkScope::RemarkScope(RemarkStream *stream) : prev_(t_current_stream)
{
    t_current_stream = stream;
}

RemarkScope::~RemarkScope()
{
    t_current_stream = prev_;
}

} // namespace treegion::support
