#include "support/spans.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <sstream>

#include <time.h>

#include "support/string_utils.h"
#include "support/trace.h" // jsonEscape, currentThreadId

namespace treegion::support {

int64_t
epochUs()
{
    struct timespec ts;
    clock_gettime(CLOCK_REALTIME, &ts);
    return static_cast<int64_t>(ts.tv_sec) * 1000000 +
           ts.tv_nsec / 1000;
}

namespace {

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t &
idState()
{
    thread_local uint64_t state = [] {
        std::random_device rd;
        uint64_t seed = (static_cast<uint64_t>(rd()) << 32) ^ rd();
        seed ^= static_cast<uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count());
        seed ^= static_cast<uint64_t>(TraceCollector::currentThreadId())
                << 48;
        return seed;
    }();
    return state;
}

thread_local SpanContext t_ambient;

char
hexDigit(unsigned v)
{
    return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

void
appendHex64(std::string &out, uint64_t v)
{
    for (int shift = 60; shift >= 0; shift -= 4)
        out += hexDigit(static_cast<unsigned>((v >> shift) & 0xf));
}

bool
parseHex64(const char *p, uint64_t *out)
{
    uint64_t v = 0;
    for (int k = 0; k < 16; ++k) {
        const char c = p[k];
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            v |= static_cast<uint64_t>(c - 'A' + 10);
        else
            return false;
    }
    *out = v;
    return true;
}

/** floatText twin of remarks.cc: %.17g, integral values keep their
 * Float type through a reparse via a trailing ".0". */
std::string
floatText(double value)
{
    std::string text = strprintf("%.17g", value);
    if (text.find_first_of(".eE") == std::string::npos &&
        text.find_first_not_of("-0123456789") == std::string::npos)
        text += ".0";
    return text;
}

} // namespace

uint64_t
mintSpanId()
{
    uint64_t id;
    do {
        id = splitmix64(idState());
    } while (id == 0);
    return id;
}

std::string
traceIdHex(uint64_t hi, uint64_t lo)
{
    std::string out;
    out.reserve(32);
    appendHex64(out, hi);
    appendHex64(out, lo);
    return out;
}

std::string
spanIdHex(uint64_t id)
{
    std::string out;
    out.reserve(16);
    appendHex64(out, id);
    return out;
}

bool
parseTraceIdHex(const std::string &hex, uint64_t *hi, uint64_t *lo)
{
    if (hex.size() != 32)
        return false;
    return parseHex64(hex.data(), hi) && parseHex64(hex.data() + 16, lo);
}

bool
parseSpanIdHex(const std::string &hex, uint64_t *id)
{
    if (hex.size() != 16)
        return false;
    return parseHex64(hex.data(), id);
}

SpanContext
currentSpanContext()
{
    return t_ambient;
}

SpanContextScope::SpanContextScope(const SpanContext &ctx)
    : prev_(t_ambient)
{
    t_ambient = ctx;
}

SpanContextScope::~SpanContextScope()
{
    t_ambient = prev_;
}

// ---- serialization -------------------------------------------------

std::string
TraceSpan::toJson() const
{
    std::ostringstream os;
    os << "{\"trace\":\"" << traceIdHex(trace_hi, trace_lo)
       << "\",\"span\":\"" << spanIdHex(span) << "\",\"parent\":\""
       << (parent ? spanIdHex(parent) : std::string())
       << "\",\"name\":\"" << jsonEscape(name) << "\",\"svc\":\""
       << jsonEscape(service) << "\",\"tid\":" << tid
       << ",\"start_us\":" << start_us << ",\"dur_us\":" << dur_us
       << ",\"args\":{";
    bool first = true;
    for (const SpanArg &a : args) {
        os << (first ? "" : ",") << '"' << jsonEscape(a.key) << "\":";
        switch (a.type) {
          case SpanArg::Type::Int:
            os << a.i;
            break;
          case SpanArg::Type::Float:
            os << floatText(a.f);
            break;
          case SpanArg::Type::Str:
            os << '"' << jsonEscape(a.s) << '"';
            break;
        }
        first = false;
    }
    os << "}}";
    return os.str();
}

namespace {

/**
 * Strict recursive-descent parser for the span schema — the exact
 * subset TraceSpan::toJson emits, in the same spirit as remarks.cc's
 * RemarkParser: unknown fields, duplicated fields, missing fields,
 * non-scalar args and trailing bytes are all hard errors.
 */
class SpanParser
{
  public:
    SpanParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    run(TraceSpan &out)
    {
        skipWs();
        if (!expect('{'))
            return false;
        bool seen[8] = {false, false, false, false,
                        false, false, false, false};
        static const char *const kFields[8] = {
            "trace", "span", "parent", "name",
            "svc",   "tid",  "start_us", "dur_us"};
        bool have_args = false;
        bool first = true;
        for (;;) {
            skipWs();
            if (peek() == '}') {
                ++pos_;
                break;
            }
            if (!first && !expect(','))
                return false;
            first = false;
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!expect(':'))
                return false;
            skipWs();
            int field = -1;
            for (int k = 0; k < 8; ++k) {
                if (key == kFields[k]) {
                    field = k;
                    break;
                }
            }
            if (field >= 0) {
                if (seen[field])
                    return fail("duplicate field '" + key + "'");
                seen[field] = true;
            }
            if (key == "trace") {
                std::string hex;
                if (!parseString(hex))
                    return false;
                if (!parseTraceIdHex(hex, &out.trace_hi,
                                     &out.trace_lo))
                    return fail("'trace' must be 32 hex digits");
                if ((out.trace_hi | out.trace_lo) == 0)
                    return fail("'trace' must be non-zero");
            } else if (key == "span") {
                std::string hex;
                if (!parseString(hex))
                    return false;
                if (!parseSpanIdHex(hex, &out.span))
                    return fail("'span' must be 16 hex digits");
                if (out.span == 0)
                    return fail("'span' must be non-zero");
            } else if (key == "parent") {
                std::string hex;
                if (!parseString(hex))
                    return false;
                if (hex.empty())
                    out.parent = 0;
                else if (!parseSpanIdHex(hex, &out.parent))
                    return fail(
                        "'parent' must be 16 hex digits or \"\"");
            } else if (key == "name") {
                if (!parseString(out.name))
                    return false;
            } else if (key == "svc") {
                if (!parseString(out.service))
                    return false;
            } else if (key == "tid" || key == "start_us" ||
                       key == "dur_us") {
                SpanArg num;
                if (!parseNumber(num))
                    return false;
                if (num.type != SpanArg::Type::Int)
                    return fail("'" + key + "' must be an integer");
                if (key == "tid") {
                    if (num.i < 0)
                        return fail("'tid' must be non-negative");
                    out.tid = static_cast<uint32_t>(num.i);
                } else if (key == "start_us") {
                    out.start_us = num.i;
                } else {
                    out.dur_us = num.i;
                }
            } else if (key == "args") {
                if (have_args)
                    return fail("duplicate field 'args'");
                have_args = true;
                if (!parseArgs(out.args))
                    return false;
            } else {
                return fail("unknown field '" + key + "'");
            }
        }
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after the span object");
        for (int k = 0; k < 8; ++k) {
            if (!seen[k])
                return fail(std::string("missing required field '") +
                            kFields[k] + "'");
        }
        if (!have_args)
            return fail("missing required field 'args'");
        return true;
    }

  private:
    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    fail(const std::string &why)
    {
        if (error_)
            *error_ = why;
        return false;
    }

    bool
    expect(char c)
    {
        if (peek() != c)
            return fail(strprintf("expected '%c' at offset %zu", c,
                                  pos_));
        ++pos_;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail(strprintf("bad escape '\\%c'", esc));
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(SpanArg &out)
    {
        const size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        bool is_float = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                is_float = true;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            return fail("expected a number");
        const std::string token = text_.substr(start, pos_ - start);
        errno = 0;
        char *end = nullptr;
        if (is_float) {
            out.type = SpanArg::Type::Float;
            out.f = std::strtod(token.c_str(), &end);
        } else {
            out.type = SpanArg::Type::Int;
            out.i = std::strtoll(token.c_str(), &end, 10);
        }
        if (errno == ERANGE || end == nullptr || *end != '\0')
            return fail("bad number '" + token + "'");
        return true;
    }

    bool
    parseArgs(std::vector<SpanArg> &out)
    {
        if (!expect('{'))
            return false;
        out.clear();
        bool first = true;
        for (;;) {
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            if (!first && !expect(','))
                return false;
            first = false;
            skipWs();
            SpanArg a;
            if (!parseString(a.key))
                return false;
            skipWs();
            if (!expect(':'))
                return false;
            skipWs();
            if (peek() == '"') {
                a.type = SpanArg::Type::Str;
                if (!parseString(a.s))
                    return false;
            } else if (peek() == '{' || peek() == '[') {
                return fail("argument '" + a.key +
                            "' must be a scalar");
            } else {
                if (!parseNumber(a))
                    return false;
            }
            out.push_back(std::move(a));
        }
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

} // namespace

bool
parseSpanJson(const std::string &line, TraceSpan &out, std::string *error)
{
    out = TraceSpan{};
    return SpanParser(line, error).run(out);
}

// ---- collector -----------------------------------------------------

namespace {
/** Buffer cap: always-on tracing must stay bounded even when nobody
 * drains (a misconfigured daemon, the in-memory bench). */
constexpr size_t kMaxBufferedSpans = 65536;
} // namespace

SpanCollector &
SpanCollector::instance()
{
    static SpanCollector collector;
    return collector;
}

void
SpanCollector::configure(double sample_rate)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (sample_rate < 0.0)
            sample_rate = 0.0;
        if (sample_rate > 1.0)
            sample_rate = 1.0;
        sample_rate_ = sample_rate;
    }
    enabled_.store(true, std::memory_order_relaxed);
}

void
SpanCollector::setEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
}

double
SpanCollector::sampleRate() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sample_rate_;
}

bool
SpanCollector::sampleNewTrace()
{
    double rate;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        rate = sample_rate_;
    }
    if (rate >= 1.0)
        return true;
    if (rate <= 0.0)
        return false;
    // 53 uniform mantissa bits from the id generator; no extra state.
    const double u =
        static_cast<double>(mintSpanId() >> 11) * 0x1.0p-53;
    return u < rate;
}

void
SpanCollector::setService(std::string service)
{
    std::lock_guard<std::mutex> lock(mutex_);
    service_ = std::move(service);
}

std::string
SpanCollector::service() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return service_;
}

void
SpanCollector::record(TraceSpan s)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (spans_.size() >= kMaxBufferedSpans) {
        ++dropped_;
        return;
    }
    spans_.push_back(std::move(s));
}

std::vector<TraceSpan>
SpanCollector::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

uint64_t
SpanCollector::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

size_t
SpanCollector::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_.size();
}

bool
SpanCollector::writeJsonl(const std::string &path, bool append)
{
    std::vector<TraceSpan> spans;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        spans.swap(spans_);
    }
    FILE *f = std::fopen(path.c_str(), append ? "a" : "w");
    if (!f) {
        std::lock_guard<std::mutex> lock(mutex_);
        // Put the spans back so a later flush can still succeed.
        spans.insert(spans.end(),
                     std::make_move_iterator(spans_.begin()),
                     std::make_move_iterator(spans_.end()));
        spans_.swap(spans);
        return false;
    }
    for (const TraceSpan &s : spans) {
        const std::string line = s.toJson();
        std::fwrite(line.data(), 1, line.size(), f);
        std::fputc('\n', f);
    }
    std::fclose(f);
    return true;
}

void
SpanCollector::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.clear();
    dropped_ = 0;
}

// ---- scopes --------------------------------------------------------

SpanScope::SpanScope(const char *name, Root root,
                     const char *service)
    : name_(name)
{
    const SpanContext &ambient = t_ambient;
    SpanCollector &collector = SpanCollector::instance();
    if (ambient.valid()) {
        if (!ambient.sampled || !collector.enabled())
            return;
        ctx_ = ambient;
        parent_ = ambient.span;
    } else {
        if (root != Root::IfEnabled || !collector.enabled())
            return;
        ctx_.trace_hi = mintSpanId();
        ctx_.trace_lo = mintSpanId();
        ctx_.sampled = collector.sampleNewTrace();
        if (!ctx_.sampled)
            return;
        parent_ = 0;
    }
    if (service)
        ctx_.service = service;
    ctx_.span = mintSpanId();
    live_ = true;
    start_us_ = epochUs();
    saved_ = t_ambient;
    t_ambient = ctx_;
    installed_ = true;
}

SpanScope::~SpanScope()
{
    if (installed_)
        t_ambient = saved_;
    finish();
}

void
SpanScope::finish()
{
    if (!live_)
        return;
    live_ = false;
    SpanCollector &collector = SpanCollector::instance();
    TraceSpan s;
    s.trace_hi = ctx_.trace_hi;
    s.trace_lo = ctx_.trace_lo;
    s.span = ctx_.span;
    s.parent = parent_;
    s.name = name_;
    s.service = ctx_.service ? ctx_.service : collector.service();
    s.tid = TraceCollector::currentThreadId();
    s.start_us = start_us_;
    s.dur_us = epochUs() - start_us_;
    s.args = std::move(args_);
    collector.record(std::move(s));
}

SpanScope &
SpanScope::arg(const char *key, std::string value)
{
    if (live_) {
        SpanArg a;
        a.key = key;
        a.type = SpanArg::Type::Str;
        a.s = std::move(value);
        args_.push_back(std::move(a));
    }
    return *this;
}

SpanScope &
SpanScope::arg(const char *key, const char *value)
{
    return arg(key, std::string(value));
}

SpanScope &
SpanScope::arg(const char *key, int64_t value)
{
    if (live_) {
        SpanArg a;
        a.key = key;
        a.type = SpanArg::Type::Int;
        a.i = value;
        args_.push_back(std::move(a));
    }
    return *this;
}

SpanScope &
SpanScope::arg(const char *key, double value)
{
    if (live_) {
        SpanArg a;
        a.key = key;
        a.type = SpanArg::Type::Float;
        a.f = value;
        args_.push_back(std::move(a));
    }
    return *this;
}

void
noteSpan(const SpanContext &parent, const char *name,
         int64_t start_us, int64_t end_us, std::vector<SpanArg> args)
{
    if (!parent.valid() || !parent.sampled)
        return;
    SpanCollector &collector = SpanCollector::instance();
    if (!collector.enabled())
        return;
    TraceSpan s;
    s.trace_hi = parent.trace_hi;
    s.trace_lo = parent.trace_lo;
    s.span = mintSpanId();
    s.parent = parent.span;
    s.name = name;
    s.service =
        parent.service ? parent.service : collector.service();
    s.tid = TraceCollector::currentThreadId();
    s.start_us = start_us;
    s.dur_us = end_us > start_us ? end_us - start_us : 0;
    s.args = std::move(args);
    collector.record(std::move(s));
}

} // namespace treegion::support
