#include "support/rng.h"

#include "support/logging.h"

namespace treegion::support {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    TG_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    TG_ASSERT(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(span == 0 ? next() : nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    TG_ASSERT(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
        TG_ASSERT(w >= 0.0);
        total += w;
    }
    TG_ASSERT(total > 0.0);
    double pick = nextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        pick -= weights[i];
        if (pick <= 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace treegion::support
