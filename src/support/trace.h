/**
 * @file
 * Structured tracing and metrics for the compilation pipeline.
 *
 * The collector records *complete* events (a named span with a start
 * timestamp and a duration, Chrome trace phase "X") plus named
 * monotonic counters, from any number of threads at once. The
 * pipeline wraps each stage (formation, lowering, DDG build, list
 * scheduling, verification) in a TraceScope; the result can be
 * dumped as Chrome trace event JSON and loaded in chrome://tracing
 * or https://ui.perfetto.dev.
 *
 * Tracing is globally disabled by default and costs one relaxed
 * atomic load per scope when off. Spans are coarse (one per pipeline
 * stage per region, not per op), so a single mutex around the event
 * buffer is cheap relative to the work being measured and keeps the
 * collector trivially race-free under TSan.
 */

#ifndef TREEGION_SUPPORT_TRACE_H
#define TREEGION_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "support/spans.h"

namespace treegion::support {

/** One completed span ("X" phase in the Chrome trace format). */
struct TraceEvent
{
    std::string name;      ///< stage name, e.g. "formation"
    std::string category;  ///< Chrome "cat", e.g. "pipeline"
    int64_t start_us = 0;  ///< microseconds since process trace epoch
    int64_t duration_us = 0;
    uint32_t tid = 0;      ///< stable small per-thread id
    /** Extra key/value detail rendered into the event's "args". */
    std::vector<std::pair<std::string, std::string>> args;
};

/** Process-wide trace event and counter sink. */
class TraceCollector
{
  public:
    /** @return the process-wide collector. */
    static TraceCollector &instance();

    /** Turn collection on or off (off by default). */
    void setEnabled(bool enabled);

    /** @return true when spans/counters are being recorded. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Append one completed event (no-op when disabled). */
    void record(TraceEvent event);

    /** Add @p delta to counter @p name (no-op when disabled). */
    void addCounter(const std::string &name, uint64_t delta);

    /** @return a snapshot of all recorded events. */
    std::vector<TraceEvent> events() const;

    /** @return a snapshot of all counters. */
    std::map<std::string, uint64_t> counters() const;

    /** Drop all recorded events and counters. */
    void clear();

    /**
     * Write everything recorded so far as Chrome trace event JSON
     * (the "JSON object format": a traceEvents array plus metadata).
     * Counters are emitted as one "C" event each at the time of the
     * last recorded span.
     */
    void writeChromeTrace(std::ostream &os) const;

    /** writeChromeTrace to @p path. @return false on I/O failure. */
    bool writeChromeTraceFile(const std::string &path) const;

    /** Microseconds since the process trace epoch (monotonic). */
    static int64_t nowUs();

    /** Stable small id of the calling thread (assigned on first use). */
    static uint32_t currentThreadId();

  private:
    TraceCollector() = default;

    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    std::map<std::string, uint64_t> counters_;
};

/**
 * RAII span: records one complete event covering its own lifetime.
 * When the collector is disabled at construction time the scope is
 * inert (destruction records nothing even if tracing is enabled in
 * between, so event streams never contain torn spans).
 *
 * A TraceScope is also a distributed-tracing emission site: when the
 * current thread carries a sampled SpanContext (a request being
 * traced across the farm, see support/spans.h), the same interval is
 * recorded as a child span of that context. With no ambient context
 * the embedded SpanScope is inert, so local-only paths pay nothing
 * extra.
 */
class TraceScope
{
  public:
    /** Open a span named @p name in @p category. */
    explicit TraceScope(const char *name,
                        const char *category = "pipeline");

    /** Attach one key/value detail to the span. */
    TraceScope &arg(const char *key, std::string value);

    ~TraceScope();

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    bool live_ = false;  ///< collector was enabled at construction
    TraceEvent event_;
    SpanScope span_;     ///< distributed twin (inert without ambient)
};

/**
 * Escape @p s for inclusion inside a JSON string literal (quotes,
 * backslashes, control characters).
 */
std::string jsonEscape(const std::string &s);

} // namespace treegion::support

#endif // TREEGION_SUPPORT_TRACE_H
