/**
 * @file
 * Structured optimization remarks: typed "why" records for every
 * decision the pipeline makes — where treegion growth stopped, which
 * limit refused a tail duplication, which ops were speculated,
 * renamed or elided, how each exit's weighted height contributes to
 * the performance estimate.
 *
 * Remarks are the audit trail the aggregate traces and counters
 * cannot give: a TraceScope says formation took 40 us, a remark says
 * growth stopped at bb7 because it is a merge point. Every bench
 * deviation becomes a grep instead of a debugger session, and two
 * runs (heuristic A vs B, -j1 vs -j8) can be diffed decision by
 * decision (tools/treegion-report).
 *
 * Design:
 *
 *  - A Remark is a typed record: a RemarkKind (which implies its
 *    pass), the function, optional block/op ids, and an ordered list
 *    of integer/float/string arguments. It serializes to one JSON
 *    line with a stable schema and parses back losslessly.
 *
 *  - Collection is opt-in and thread-local. A RemarkScope installs a
 *    RemarkStream for the current thread; emission sites call
 *    remark(kind) and are inert (one thread-local load) when no
 *    stream is installed, so the fuzzer's hot loop pays nothing.
 *
 *  - Determinism: a stream is private to one pipeline run on one
 *    thread, so the remark sequence is a pure function of the input —
 *    the parallel driver collects one stream per job and returns
 *    them in input order, bit-identical to a sequential run for any
 *    worker count.
 */

#ifndef TREEGION_SUPPORT_REMARKS_H
#define TREEGION_SUPPORT_REMARKS_H

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace treegion::support {

class MetricsRegistry;

/**
 * Every decision the pipeline explains. The kind implies the pass
 * (remarkPassName): formation, tail-dup, sched, or perf.
 */
enum class RemarkKind {
    // -- formation (treegion growth, paper Fig. 2)
    BlockAccepted,   ///< block absorbed into a region tree
    GrowthStopped,   ///< growth past an edge refused (merge/claimed)
    RegionFormed,    ///< a region was completed

    // -- tail duplication (paper Fig. 11)
    TailDuplicated,  ///< a sapling was cloned below an exit edge
    TailDupRefused,  ///< a sapling failed a limit check
    TailDupStopped,  ///< the expansion loop for a region ended

    // -- scheduling
    Renamed,         ///< a destination got a fresh compile-time name
    Speculated,      ///< an op issued above a branch it followed
    Elided,          ///< dominator parallelism removed a twin op
    ExitMerged,      ///< >1 predicated exit branches share a cycle
    TieBreak,        ///< priority tie resolved by lowering order

    // -- performance model
    ExitCost,        ///< one exit's weighted height contribution
};

/** All kinds, in declaration order (for tests and the checker). */
inline constexpr RemarkKind kAllRemarkKinds[] = {
    RemarkKind::BlockAccepted,  RemarkKind::GrowthStopped,
    RemarkKind::RegionFormed,   RemarkKind::TailDuplicated,
    RemarkKind::TailDupRefused, RemarkKind::TailDupStopped,
    RemarkKind::Renamed,        RemarkKind::Speculated,
    RemarkKind::Elided,         RemarkKind::ExitMerged,
    RemarkKind::TieBreak,       RemarkKind::ExitCost,
};

/** @return the stable wire name, e.g. "tail-dup-refused". */
const char *remarkKindName(RemarkKind kind);

/** @return the pass a kind belongs to: "formation" / "tail-dup" /
 * "sched" / "perf". */
const char *remarkPassName(RemarkKind kind);

/** Parse a remarkKindName() token. @return false on error. */
bool parseRemarkKind(const std::string &name, RemarkKind &out);

/** One named argument of a remark (ordered; order is schema). */
struct RemarkArg
{
    enum class Type { Int, Float, Str };

    std::string key;
    Type type = Type::Int;
    int64_t i = 0;
    double f = 0.0;
    std::string s;

    bool operator==(const RemarkArg &other) const = default;
};

/** One structured decision record. */
struct Remark
{
    RemarkKind kind = RemarkKind::BlockAccepted;
    std::string function;   ///< function the decision concerns
    int64_t block = -1;     ///< block id the decision anchors to, -1 none
    int64_t op = -1;        ///< op id the decision anchors to, -1 none
    std::vector<RemarkArg> args;

    bool operator==(const Remark &other) const = default;

    /**
     * Serialize as one JSON object (no trailing newline), stable key
     * order: pass, kind, fn, then block/op when present, then args in
     * emission order. Floats use %.17g so the line round-trips
     * bit-exactly through parseRemarkJson.
     */
    std::string toJson() const;
};

/**
 * Parse one JSON line produced by Remark::toJson back into a Remark,
 * enforcing the schema: known "kind", "pass" matching the kind's
 * pass, "fn" present, "block"/"op" integers, "args" an object of
 * int/float/string values, no unknown top-level keys, nothing after
 * the closing brace. @return false and set @p error on any violation.
 */
bool parseRemarkJson(const std::string &line, Remark &out,
                     std::string *error = nullptr);

/** Per-job collection of remarks, in emission order. */
class RemarkStream
{
  public:
    /** Stamp @p name into subsequently emitted remarks that carry no
     * function of their own. */
    void setFunction(std::string name) { function_ = std::move(name); }

    /** @return the current function stamp. */
    const std::string &function() const { return function_; }

    /** Append @p r (stamping the current function when empty). */
    void
    emit(Remark r)
    {
        if (r.function.empty())
            r.function = function_;
        remarks_.push_back(std::move(r));
    }

    /** @return all remarks, in emission order. */
    const std::vector<Remark> &remarks() const { return remarks_; }

    /** @return number of collected remarks. */
    size_t size() const { return remarks_.size(); }

    /** Serialize every remark as JSON lines (one per line, each
     * newline-terminated). */
    std::string toJsonLines() const;

    /**
     * Fold per-kind counts into @p metrics as "remarks_<kind>"
     * counters ('-' mapped to '_') plus a "remarks_total", so a
     * long-lived service surfaces decision mix on /stats.
     */
    void foldInto(MetricsRegistry &metrics) const;

    /** Drop everything (function stamp included). */
    void
    clear()
    {
        function_.clear();
        remarks_.clear();
    }

  private:
    std::string function_;
    std::vector<Remark> remarks_;
};

/** @return the stream installed for this thread, or nullptr. */
RemarkStream *currentRemarkStream();

/** @return true when a stream is installed (cheap gate for emission
 * sites whose argument computation is not free). */
inline bool
remarksEnabled()
{
    return currentRemarkStream() != nullptr;
}

/**
 * RAII installation of @p stream as the current thread's remark
 * sink. Nests: the previous stream is restored on destruction.
 */
class RemarkScope
{
  public:
    explicit RemarkScope(RemarkStream *stream);
    ~RemarkScope();

    RemarkScope(const RemarkScope &) = delete;
    RemarkScope &operator=(const RemarkScope &) = delete;

  private:
    RemarkStream *prev_;
};

/**
 * Fluent emission: accumulates one Remark and hands it to the stream
 * on destruction. Inert (every method an early-out) when @p stream
 * is null.
 */
class RemarkBuilder
{
  public:
    RemarkBuilder(RemarkStream *stream, RemarkKind kind)
        : stream_(stream)
    {
        remark_.kind = kind;
    }

    ~RemarkBuilder()
    {
        if (stream_)
            stream_->emit(std::move(remark_));
    }

    RemarkBuilder(const RemarkBuilder &) = delete;
    RemarkBuilder &operator=(const RemarkBuilder &) = delete;

    /** Anchor to block @p id. */
    RemarkBuilder &
    block(int64_t id)
    {
        if (stream_)
            remark_.block = id;
        return *this;
    }

    /** Anchor to op @p id. */
    RemarkBuilder &
    op(int64_t id)
    {
        if (stream_)
            remark_.op = id;
        return *this;
    }

    /** Append an integer argument. */
    template <typename T,
              std::enable_if_t<std::is_integral_v<T>, int> = 0>
    RemarkBuilder &
    arg(const char *key, T value)
    {
        if (stream_) {
            RemarkArg a;
            a.key = key;
            a.type = RemarkArg::Type::Int;
            a.i = static_cast<int64_t>(value);
            remark_.args.push_back(std::move(a));
        }
        return *this;
    }

    /** Append a float argument. */
    RemarkBuilder &
    arg(const char *key, double value)
    {
        if (stream_) {
            RemarkArg a;
            a.key = key;
            a.type = RemarkArg::Type::Float;
            a.f = value;
            remark_.args.push_back(std::move(a));
        }
        return *this;
    }

    /** Append a string argument. */
    RemarkBuilder &
    arg(const char *key, std::string value)
    {
        if (stream_) {
            RemarkArg a;
            a.key = key;
            a.type = RemarkArg::Type::Str;
            a.s = std::move(value);
            remark_.args.push_back(std::move(a));
        }
        return *this;
    }

    /** Append a string argument (literal overload). */
    RemarkBuilder &
    arg(const char *key, const char *value)
    {
        return arg(key, std::string(value));
    }

  private:
    RemarkStream *stream_;
    Remark remark_;
};

/** Open a remark of @p kind against the current thread's stream. */
inline RemarkBuilder
remark(RemarkKind kind)
{
    return RemarkBuilder(currentRemarkStream(), kind);
}

} // namespace treegion::support

#endif // TREEGION_SUPPORT_REMARKS_H
