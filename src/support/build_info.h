/**
 * @file
 * Build identification for telemetry: which exact binary produced a
 * span file, a metrics dump or a bench JSON line. The git describe
 * string and build type are baked in at configure time (CMake passes
 * TG_GIT_DESCRIBE / TG_BUILD_TYPE as compile definitions of
 * build_info.cc only, so touching the git head rebuilds one file);
 * the compiler comes from __VERSION__.
 */

#ifndef TREEGION_SUPPORT_BUILD_INFO_H
#define TREEGION_SUPPORT_BUILD_INFO_H

#include <string>

namespace treegion::support {

/** `git describe --always --dirty` at configure time ("unknown"
 * outside a work tree). */
const char *buildGitDescribe();

/** CMAKE_BUILD_TYPE the binary was configured with. */
const char *buildType();

/** Compiler banner (__VERSION__). */
const char *buildCompiler();

/**
 * One JSON object (stable key order: git, compiler, build_type,
 * span_schema, protocol) tying telemetry to an exact binary —
 * embedded in /stats as the "build_info" block.
 */
std::string buildInfoJson();

/** Seconds since this process initialized (static-init epoch). */
double uptimeSeconds();

} // namespace treegion::support

#endif // TREEGION_SUPPORT_BUILD_INFO_H
