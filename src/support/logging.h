/**
 * @file
 * Fatal/panic error reporting and lightweight logging.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (library bugs), fatal() is for user errors (bad input,
 * bad configuration). Both print a message with source location and
 * terminate; panic() aborts (core dump friendly), fatal() exits(1).
 */

#ifndef TREEGION_SUPPORT_LOGGING_H
#define TREEGION_SUPPORT_LOGGING_H

#include <cstdarg>
#include <string>

namespace treegion::support {

/** Verbosity levels for the global logger. */
enum class LogLevel {
    Quiet = 0,   ///< Only fatal/panic output.
    Info = 1,    ///< High-level progress messages.
    Debug = 2,   ///< Per-region detail.
    Trace = 3,   ///< Per-op detail; very verbose.
};

/** Set the global log verbosity. Thread-unsafe by design (set once). */
void setLogLevel(LogLevel level);

/** @return the current global log verbosity. */
LogLevel logLevel();

/**
 * Print a printf-style message to stderr when @p level is enabled.
 *
 * @param level level the message belongs to
 * @param fmt printf format string
 */
void logPrintf(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Install a hook that panicImpl runs after printing the panic
 * message and before abort(). Long-lived processes use it to flush
 * in-memory telemetry (flight recorder, spans, metrics) so a panic
 * leaves evidence; it runs in normal (non-signal) context. Returns
 * the previous hook. Pass nullptr to clear.
 */
using PanicHook = void (*)();
PanicHook setPanicHook(PanicHook hook);

/** Internal: report and abort. Use the panic() macro instead. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

/** Internal: report and exit(1). Use the fatal() macro instead. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

} // namespace treegion::support

/** Report an internal library bug and abort. */
#define TG_PANIC(...)                                                       \
    ::treegion::support::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Report an unrecoverable user error and exit. */
#define TG_FATAL(...)                                                       \
    ::treegion::support::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an internal invariant; panics with the condition text. */
#define TG_ASSERT(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::treegion::support::panicImpl(__FILE__, __LINE__,              \
                                           "assertion failed: %s", #cond); \
        }                                                                   \
    } while (0)

/** Log at Info level. */
#define TG_INFO(...)                                                        \
    ::treegion::support::logPrintf(::treegion::support::LogLevel::Info,    \
                                   __VA_ARGS__)

/** Log at Debug level. */
#define TG_DEBUG(...)                                                       \
    ::treegion::support::logPrintf(::treegion::support::LogLevel::Debug,   \
                                   __VA_ARGS__)

#endif // TREEGION_SUPPORT_LOGGING_H
