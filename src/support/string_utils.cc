#include "support/string_utils.h"

#include <cstdarg>
#include <cstdio>

namespace treegion::support {

std::vector<std::string>
splitString(std::string_view text, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= text.size()) {
        size_t end = text.find(sep, start);
        if (end == std::string_view::npos)
            end = text.size();
        if (end > start)
            out.emplace_back(text.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

std::string_view
trim(std::string_view text)
{
    const char *ws = " \t\r\n";
    const size_t begin = text.find_first_not_of(ws);
    if (begin == std::string_view::npos)
        return {};
    const size_t end = text.find_last_not_of(ws);
    return text.substr(begin, end - begin + 1);
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    const int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out(static_cast<size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    va_end(args2);
    return out;
}

} // namespace treegion::support
