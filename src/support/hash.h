/**
 * @file
 * Small non-cryptographic content hashing (FNV-1a, 64-bit).
 *
 * Used for content addressing in the compile cache: two 64-bit
 * FNV-1a streams with different offset bases give a 128-bit key,
 * which makes accidental collisions on cache-sized working sets
 * astronomically unlikely. Not collision-resistant against an
 * adversary — callers that need an integrity guarantee must compare
 * payloads (the cache's debug verify mode does exactly that).
 */

#ifndef TREEGION_SUPPORT_HASH_H
#define TREEGION_SUPPORT_HASH_H

#include <cstdint>
#include <string_view>

namespace treegion::support {

/** FNV-1a offset basis (the standard 64-bit one). */
inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;

/** An alternate basis for the second, independent hash stream. */
inline constexpr uint64_t kFnvOffsetBasisAlt = 0x84222325cbf29ce4ull;

/** @return the 64-bit FNV-1a hash of @p data, folded into @p seed. */
inline constexpr uint64_t
fnv1a64(std::string_view data, uint64_t seed = kFnvOffsetBasis)
{
    uint64_t hash = seed;
    for (const char c : data) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

} // namespace treegion::support

#endif // TREEGION_SUPPORT_HASH_H
