/**
 * @file
 * ASCII table formatting for benchmark output.
 *
 * Every bench binary reproduces one of the paper's tables or figures;
 * Table renders the rows in a stable, diffable plain-text layout and
 * can also emit CSV for downstream plotting.
 */

#ifndef TREEGION_SUPPORT_TABLE_H
#define TREEGION_SUPPORT_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace treegion::support {

/** A simple column-aligned text table. */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p precision digits after the point. */
    static std::string fmt(double value, int precision = 2);

    /** Format an integer. */
    static std::string fmt(long long value);

    /** Render the table, column aligned, to @p os. */
    void print(std::ostream &os) const;

    /** Render the table as CSV to @p os. */
    void printCsv(std::ostream &os) const;

    /** @return number of data rows. */
    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace treegion::support

#endif // TREEGION_SUPPORT_TABLE_H
