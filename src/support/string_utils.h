/**
 * @file
 * String helpers shared by the IR printer/parser and bench output.
 */

#ifndef TREEGION_SUPPORT_STRING_UTILS_H
#define TREEGION_SUPPORT_STRING_UTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace treegion::support {

/** Split @p text on @p sep, dropping empty pieces. */
std::vector<std::string> splitString(std::string_view text, char sep);

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view text);

/** True if @p text begins with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace treegion::support

#endif // TREEGION_SUPPORT_STRING_UTILS_H
