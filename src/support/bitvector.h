/**
 * @file
 * Dense, fixed-size bit vector used by dataflow analyses.
 *
 * std::vector<bool> is avoided on purpose (proxy reference pitfalls,
 * no word-level operations); BitVector exposes the bulk set operations
 * that liveness and dominator computations need (unionWith,
 * intersectWith, subtract) and reports whether the receiver changed,
 * which drives the fixpoint loops.
 */

#ifndef TREEGION_SUPPORT_BITVECTOR_H
#define TREEGION_SUPPORT_BITVECTOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace treegion::support {

/** A dense bit vector with word-at-a-time set operations. */
class BitVector
{
  public:
    /** Construct with @p size bits, all clear. */
    explicit BitVector(size_t size = 0);

    /** @return the number of bits. */
    size_t size() const { return size_; }

    /** Resize to @p size bits; new bits are clear. */
    void resize(size_t size);

    /** Set bit @p idx. */
    void set(size_t idx);

    /** Clear bit @p idx. */
    void reset(size_t idx);

    /** @return bit @p idx. */
    bool test(size_t idx) const;

    /** Clear all bits. */
    void clear();

    /** Set all bits. */
    void setAll();

    /** @return the number of set bits. */
    size_t count() const;

    /** @return true if no bit is set. */
    bool none() const;

    /** OR @p other into this. @return true if any bit changed. */
    bool unionWith(const BitVector &other);

    /** AND @p other into this. @return true if any bit changed. */
    bool intersectWith(const BitVector &other);

    /** Clear every bit set in @p other. @return true if changed. */
    bool subtract(const BitVector &other);

    /** @return true if this and @p other have equal contents. */
    bool operator==(const BitVector &other) const;

    /**
     * Visit every set bit in ascending order.
     *
     * @param fn callable invoked with each set index
     */
    template <typename Fn>
    void
    forEachSet(Fn &&fn) const
    {
        for (size_t w = 0; w < words_.size(); ++w) {
            uint64_t word = words_[w];
            while (word) {
                const int bit = __builtin_ctzll(word);
                fn(w * 64 + static_cast<size_t>(bit));
                word &= word - 1;
            }
        }
    }

    /** Collect the set bit indices into a vector. */
    std::vector<size_t> toIndices() const;

  private:
    size_t size_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace treegion::support

#endif // TREEGION_SUPPORT_BITVECTOR_H
