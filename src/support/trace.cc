#include "support/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace treegion::support {

namespace {

using Clock = std::chrono::steady_clock;

/** Process trace epoch: first use of the clock. */
Clock::time_point
traceEpoch()
{
    static const Clock::time_point epoch = Clock::now();
    return epoch;
}

} // namespace

TraceCollector &
TraceCollector::instance()
{
    static TraceCollector collector;
    return collector;
}

void
TraceCollector::setEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
}

void
TraceCollector::record(TraceEvent event)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

void
TraceCollector::addCounter(const std::string &name, uint64_t delta)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

std::vector<TraceEvent>
TraceCollector::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

std::map<std::string, uint64_t>
TraceCollector::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
TraceCollector::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    counters_.clear();
}

void
TraceCollector::writeChromeTrace(std::ostream &os) const
{
    std::vector<TraceEvent> events;
    std::map<std::string, uint64_t> counters;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        events = events_;
        counters = counters_;
    }

    os << "{\"traceEvents\":[";
    bool first = true;
    int64_t last_ts = 0;
    char buf[64];
    for (const TraceEvent &e : events) {
        if (!first)
            os << ",";
        first = false;
        last_ts = std::max(last_ts, e.start_us + e.duration_us);
        os << "{\"name\":\"" << jsonEscape(e.name) << "\",\"cat\":\""
           << jsonEscape(e.category) << "\",\"ph\":\"X\"";
        std::snprintf(buf, sizeof buf,
                      ",\"ts\":%" PRId64 ",\"dur\":%" PRId64
                      ",\"pid\":1,\"tid\":%u",
                      e.start_us, e.duration_us, e.tid);
        os << buf;
        if (!e.args.empty()) {
            os << ",\"args\":{";
            bool first_arg = true;
            for (const auto &[key, value] : e.args) {
                if (!first_arg)
                    os << ",";
                first_arg = false;
                os << "\"" << jsonEscape(key) << "\":\""
                   << jsonEscape(value) << "\"";
            }
            os << "}";
        }
        os << "}";
    }
    // Counters become one "C" sample each at the end of the trace so
    // chrome://tracing shows them as totals alongside the spans.
    for (const auto &[name, value] : counters) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"" << jsonEscape(name)
           << "\",\"cat\":\"counters\",\"ph\":\"C\"";
        std::snprintf(buf, sizeof buf,
                      ",\"ts\":%" PRId64 ",\"pid\":1,\"tid\":0",
                      last_ts);
        os << buf;
        std::snprintf(buf, sizeof buf, "%" PRIu64, value);
        os << ",\"args\":{\"value\":" << buf << "}}";
    }
    os << "],\"displayTimeUnit\":\"ms\"}\n";
}

bool
TraceCollector::writeChromeTraceFile(const std::string &path) const
{
    std::ofstream file(path);
    if (!file)
        return false;
    writeChromeTrace(file);
    return file.good();
}

int64_t
TraceCollector::nowUs()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - traceEpoch())
        .count();
}

uint32_t
TraceCollector::currentThreadId()
{
    static std::atomic<uint32_t> next{0};
    thread_local const uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

TraceScope::TraceScope(const char *name, const char *category)
    : span_(name)
{
    TraceCollector &collector = TraceCollector::instance();
    if (!collector.enabled())
        return;
    live_ = true;
    event_.name = name;
    event_.category = category;
    event_.tid = TraceCollector::currentThreadId();
    event_.start_us = TraceCollector::nowUs();
}

TraceScope &
TraceScope::arg(const char *key, std::string value)
{
    if (span_.live())
        span_.arg(key, value);
    if (live_)
        event_.args.emplace_back(key, std::move(value));
    return *this;
}

TraceScope::~TraceScope()
{
    if (!live_)
        return;
    event_.duration_us = TraceCollector::nowUs() - event_.start_us;
    TraceCollector::instance().record(std::move(event_));
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace treegion::support
