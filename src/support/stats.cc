#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"
#include "support/string_utils.h"

namespace treegion::support {

void
Accumulator::add(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        if (value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }
    sum_ += value;
    ++count_;
}

double
Accumulator::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Accumulator::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
Accumulator::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    if (other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
    sum_ += other.sum_;
    count_ += other.count_;
}

size_t
Histogram::bucketIndex(double value)
{
    if (!(value > 0.0))
        return 0;
    const double octave = std::log2(value) - kMinExp;
    if (octave < 0.0)
        return 0;
    const auto index =
        1 + static_cast<size_t>(octave * kSubBuckets);
    return index >= kNumBuckets ? kNumBuckets - 1 : index;
}

double
Histogram::bucketLowerBound(size_t index)
{
    return std::exp2(kMinExp + static_cast<double>(index - 1) /
                                   kSubBuckets);
}

void
Histogram::add(double value)
{
    ++buckets_[bucketIndex(value)];
    acc_.add(value);
}

void
Histogram::merge(const Histogram &other)
{
    for (size_t i = 0; i < kNumBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    acc_.merge(other.acc_);
}

double
Histogram::percentile(double pct) const
{
    if (acc_.count() == 0)
        return 0.0;
    TG_ASSERT(pct >= 0.0 && pct <= 100.0);
    // Rank of the sample that covers this percentile (1-based,
    // nearest-rank definition).
    const double exact = pct / 100.0 * static_cast<double>(acc_.count());
    uint64_t rank = static_cast<uint64_t>(std::ceil(exact));
    if (rank == 0)
        rank = 1;

    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
        seen += buckets_[i];
        if (seen < rank)
            continue;
        double estimate;
        if (i == 0) {
            estimate = acc_.min();
        } else if (i == kNumBuckets - 1) {
            estimate = acc_.max();
        } else {
            // Geometric midpoint of the bucket's bounds.
            const double lo = bucketLowerBound(i);
            const double hi = bucketLowerBound(i + 1);
            estimate = std::sqrt(lo * hi);
        }
        // The true quantile can never leave the observed range.
        return std::min(std::max(estimate, acc_.min()), acc_.max());
    }
    return acc_.max();
}

std::string
Histogram::toJson() const
{
    return strprintf("{\"count\":%llu,\"mean\":%.6g,\"min\":%.6g,"
                     "\"max\":%.6g,\"p50\":%.6g,\"p95\":%.6g,"
                     "\"p99\":%.6g}",
                     static_cast<unsigned long long>(count()), mean(),
                     min(), max(), p50(), p95(), p99());
}

void
GeoMean::add(double value)
{
    TG_ASSERT(value > 0.0);
    log_sum_ += std::log(value);
    ++count_;
}

double
GeoMean::value() const
{
    return count_ == 0 ? 1.0
                       : std::exp(log_sum_ / static_cast<double>(count_));
}

} // namespace treegion::support
