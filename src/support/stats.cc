#include "support/stats.h"

#include <cmath>

#include "support/logging.h"

namespace treegion::support {

void
Accumulator::add(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        if (value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }
    sum_ += value;
    ++count_;
}

double
Accumulator::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Accumulator::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
Accumulator::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

void
GeoMean::add(double value)
{
    TG_ASSERT(value > 0.0);
    log_sum_ += std::log(value);
    ++count_;
}

double
GeoMean::value() const
{
    return count_ == 0 ? 1.0
                       : std::exp(log_sum_ / static_cast<double>(count_));
}

} // namespace treegion::support
