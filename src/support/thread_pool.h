/**
 * @file
 * A work-stealing thread pool for the parallel compilation driver.
 *
 * Each worker owns a deque: it pops work from the front of its own
 * deque and, when empty, steals from the back of a victim's. Tasks
 * are distributed round-robin at submission, so a batch of uniform
 * jobs starts out balanced and stealing only has to absorb the
 * variance (the same shard-and-schedule structure as parallel
 * scheduling of independent task trees — Eyraud-Dubois et al. 2014).
 *
 * submit() returns a std::future so exceptions thrown by a task
 * propagate to whoever joins on the result; parallelFor() rethrows
 * the first failure after the loop drains. The destructor finishes
 * every task already submitted before joining the workers.
 */

#ifndef TREEGION_SUPPORT_THREAD_POOL_H
#define TREEGION_SUPPORT_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace treegion::support {

/** Fixed-size work-stealing worker pool. */
class ThreadPool
{
  public:
    /**
     * Start @p num_threads workers; 0 means hardwareThreads().
     */
    explicit ThreadPool(size_t num_threads = 0);

    /** Finishes all submitted tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return the number of worker threads. */
    size_t numThreads() const { return workers_.size(); }

    /** @return the machine's hardware thread count (at least 1). */
    static size_t hardwareThreads();

    /**
     * Enqueue @p task and @return a future for its result. The
     * future rethrows anything the task throws.
     */
    template <typename F>
    auto
    submit(F &&task) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto packaged = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(task));
        std::future<R> result = packaged->get_future();
        enqueue([packaged]() { (*packaged)(); });
        return result;
    }

    /**
     * Run body(0) .. body(n-1) across the pool and wait for all of
     * them. Rethrows the first exception any iteration threw (the
     * remaining iterations still run to completion first).
     */
    void parallelFor(size_t n,
                     const std::function<void(size_t)> &body);

  private:
    /** One worker's deque; mutex-guarded so stealing is race-free. */
    struct Worker
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void enqueue(std::function<void()> task);
    void workerLoop(size_t self);

    /** Pop own front, else steal a victim's back. */
    bool takeTask(size_t self, std::function<void()> &out);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;
    std::mutex wake_mutex_;
    std::condition_variable wake_cv_;
    std::atomic<size_t> next_worker_{0};  ///< round-robin target
    std::atomic<size_t> pending_{0};      ///< queued, not yet taken
    std::atomic<bool> stop_{false};
};

/**
 * Byte-budget admission gate for memory-bounded job scheduling.
 *
 * A coordinator (sched::runPipelineParallel, treegiond's admission)
 * reserves each job's projected peak footprint before submitting it
 * to the pool and releases the reservation when the job finishes, so
 * the aggregate projected peak of everything running never exceeds
 * the budget (the memory-bounded schedules of the ROMA papers —
 * Eyraud-Dubois et al.). Pool workers themselves never block on the
 * gate; only the coordinator waits, so admission can never deadlock
 * the pool.
 *
 * Progress guarantee: tryAdmit always succeeds when nothing is
 * admitted, whatever the request size. A job projected larger than
 * the whole budget therefore runs — solo, since while it holds more
 * than the budget nothing else fits — instead of waiting forever.
 */
class MemoryGate
{
  public:
    /** @param budget_bytes byte ceiling; 0 = unlimited. */
    explicit MemoryGate(uint64_t budget_bytes)
        : budget_(budget_bytes)
    {
    }

    MemoryGate(const MemoryGate &) = delete;
    MemoryGate &operator=(const MemoryGate &) = delete;

    /**
     * Reserve @p bytes if they fit under the budget (or nothing is
     * currently admitted — see the progress guarantee above).
     * @return true and record the reservation, or false untouched.
     */
    bool tryAdmit(uint64_t bytes);

    /** Return @p bytes reserved by a successful tryAdmit. */
    void release(uint64_t bytes);

    /**
     * Block until the gate changes from the state observed as
     * @p seen_generation (a release happened), then return. Spurious
     * returns are fine: callers re-scan their candidates anyway.
     */
    void waitForRelease(uint64_t seen_generation);

    /** Opaque state stamp for waitForRelease. */
    uint64_t generation() const;

    /** @return the configured budget (0 = unlimited). */
    uint64_t budgetBytes() const { return budget_; }

    /** @return currently reserved bytes. */
    uint64_t inUseBytes() const;

    /**
     * @return the largest reservation total ever observed. Exceeds
     * the budget only if an oversized job was admitted solo.
     */
    uint64_t highWaterBytes() const;

  private:
    const uint64_t budget_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    uint64_t in_use_ = 0;
    uint64_t high_water_ = 0;
    uint64_t generation_ = 0;
};

} // namespace treegion::support

#endif // TREEGION_SUPPORT_THREAD_POOL_H
