/**
 * @file
 * A work-stealing thread pool for the parallel compilation driver.
 *
 * Each worker owns a deque: it pops work from the front of its own
 * deque and, when empty, steals from the back of a victim's. Tasks
 * are distributed round-robin at submission, so a batch of uniform
 * jobs starts out balanced and stealing only has to absorb the
 * variance (the same shard-and-schedule structure as parallel
 * scheduling of independent task trees — Eyraud-Dubois et al. 2014).
 *
 * submit() returns a std::future so exceptions thrown by a task
 * propagate to whoever joins on the result; parallelFor() rethrows
 * the first failure after the loop drains. The destructor finishes
 * every task already submitted before joining the workers.
 */

#ifndef TREEGION_SUPPORT_THREAD_POOL_H
#define TREEGION_SUPPORT_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace treegion::support {

/** Fixed-size work-stealing worker pool. */
class ThreadPool
{
  public:
    /**
     * Start @p num_threads workers; 0 means hardwareThreads().
     */
    explicit ThreadPool(size_t num_threads = 0);

    /** Finishes all submitted tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return the number of worker threads. */
    size_t numThreads() const { return workers_.size(); }

    /** @return the machine's hardware thread count (at least 1). */
    static size_t hardwareThreads();

    /**
     * Enqueue @p task and @return a future for its result. The
     * future rethrows anything the task throws.
     */
    template <typename F>
    auto
    submit(F &&task) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto packaged = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(task));
        std::future<R> result = packaged->get_future();
        enqueue([packaged]() { (*packaged)(); });
        return result;
    }

    /**
     * Run body(0) .. body(n-1) across the pool and wait for all of
     * them. Rethrows the first exception any iteration threw (the
     * remaining iterations still run to completion first).
     */
    void parallelFor(size_t n,
                     const std::function<void(size_t)> &body);

  private:
    /** One worker's deque; mutex-guarded so stealing is race-free. */
    struct Worker
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void enqueue(std::function<void()> task);
    void workerLoop(size_t self);

    /** Pop own front, else steal a victim's back. */
    bool takeTask(size_t self, std::function<void()> &out);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;
    std::mutex wake_mutex_;
    std::condition_variable wake_cv_;
    std::atomic<size_t> next_worker_{0};  ///< round-robin target
    std::atomic<size_t> pending_{0};      ///< queued, not yet taken
    std::atomic<bool> stop_{false};
};

} // namespace treegion::support

#endif // TREEGION_SUPPORT_THREAD_POOL_H
