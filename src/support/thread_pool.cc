#include "support/thread_pool.h"

#include <algorithm>

#include "support/logging.h"

namespace treegion::support {

ThreadPool::ThreadPool(size_t num_threads)
{
    if (num_threads == 0)
        num_threads = hardwareThreads();
    // A negative count cast to size_t, or a misread config, should
    // fail loudly here rather than as std::thread exhaustion.
    TG_ASSERT(num_threads <= 4096);
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        stop_.store(true);
    }
    wake_cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

size_t
ThreadPool::hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    TG_ASSERT(!stop_.load(), "submit() on a stopping ThreadPool");
    const size_t target =
        next_worker_.fetch_add(1, std::memory_order_relaxed) %
        workers_.size();
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->tasks.push_back(std::move(task));
    }
    const size_t outstanding =
        pending_.fetch_add(1, std::memory_order_release) + 1;
    {
        // Empty critical section pairs with the waiters' predicate
        // check so a wakeup between check and wait is never lost.
        std::lock_guard<std::mutex> lock(wake_mutex_);
    }
    // One notify per enqueue is lossy under bursts: a worker that
    // wakes early and drains several tasks absorbs the signals meant
    // for its siblings, which then sleep until the next enqueue. Wake
    // everyone while more work is outstanding than one wakeup covers.
    if (outstanding > 1)
        wake_cv_.notify_all();
    else
        wake_cv_.notify_one();
}

bool
ThreadPool::takeTask(size_t self, std::function<void()> &out)
{
    // Own deque first, oldest task first.
    {
        Worker &own = *workers_[self];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            out = std::move(own.tasks.front());
            own.tasks.pop_front();
            pending_.fetch_sub(1, std::memory_order_relaxed);
            return true;
        }
    }
    // Steal the newest task from the first non-empty victim.
    const size_t n = workers_.size();
    for (size_t k = 1; k < n; ++k) {
        Worker &victim = *workers_[(self + k) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.back());
            victim.tasks.pop_back();
            pending_.fetch_sub(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(size_t self)
{
    for (;;) {
        std::function<void()> task;
        if (takeTask(self, task)) {
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(wake_mutex_);
        if (stop_.load() && pending_.load() == 0)
            return;
        wake_cv_.wait(lock, [this] {
            return stop_.load() ||
                   pending_.load(std::memory_order_acquire) > 0;
        });
        // Drain outstanding work before honoring stop: the loop goes
        // back to takeTask first, so ~ThreadPool never drops tasks.
    }
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &body)
{
    if (n == 0)
        return;
    // The counter lives under done_mutex so the last decrement and
    // its notification are atomic with respect to the waiter: once
    // the caller observes remaining == 0 the workers are done with
    // every local below, and returning is safe.
    std::mutex done_mutex;
    std::condition_variable done_cv;
    size_t remaining = n;
    std::exception_ptr first_error;

    for (size_t i = 0; i < n; ++i) {
        enqueue([&, i] {
            std::exception_ptr error;
            try {
                body(i);
            } catch (...) {
                error = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(done_mutex);
            if (error && !first_error)
                first_error = error;
            if (--remaining == 0)
                done_cv.notify_one();
        });
    }
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
    if (first_error)
        std::rethrow_exception(first_error);
}

bool
MemoryGate::tryAdmit(uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const bool unlimited = budget_ == 0;
    const bool fits = in_use_ + bytes <= budget_;
    if (!unlimited && !fits && in_use_ != 0)
        return false;
    in_use_ += bytes;
    if (in_use_ > high_water_)
        high_water_ = in_use_;
    return true;
}

void
MemoryGate::release(uint64_t bytes)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        TG_ASSERT(bytes <= in_use_, "release without admission");
        in_use_ -= bytes;
        ++generation_;
    }
    cv_.notify_all();
}

void
MemoryGate::waitForRelease(uint64_t seen_generation)
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return generation_ != seen_generation; });
}

uint64_t
MemoryGate::generation() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return generation_;
}

uint64_t
MemoryGate::inUseBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return in_use_;
}

uint64_t
MemoryGate::highWaterBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
}

} // namespace treegion::support
