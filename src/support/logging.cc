#include "support/logging.h"

#include <cstdio>
#include <cstdlib>

namespace treegion::support {

namespace {
LogLevel g_level = LogLevel::Quiet;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
logPrintf(LogLevel level, const char *fmt, ...)
{
    if (static_cast<int>(level) > static_cast<int>(g_level))
        return;
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::exit(1);
}

} // namespace treegion::support
