#include "support/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace treegion::support {

namespace {
LogLevel g_level = LogLevel::Quiet;
std::atomic<PanicHook> g_panic_hook{nullptr};
} // namespace

PanicHook
setPanicHook(PanicHook hook)
{
    return g_panic_hook.exchange(hook, std::memory_order_acq_rel);
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
logPrintf(LogLevel level, const char *fmt, ...)
{
    if (static_cast<int>(level) > static_cast<int>(g_level))
        return;
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    // Best-effort telemetry flush: the message above is already out,
    // so a hook that itself dies cannot eat the diagnosis. Take the
    // hook exactly once so a panic inside the hook cannot recurse.
    if (PanicHook hook =
            g_panic_hook.exchange(nullptr, std::memory_order_acq_rel))
        hook();
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::exit(1);
}

} // namespace treegion::support
