/**
 * @file
 * Hook-based heap accounting for memory-budget calibration.
 *
 * The library never interposes malloc itself. A test or bench binary
 * that links an allocation interposer (tests/alloc_guard.h) forwards
 * every successful allocation and free here, and the counters below
 * track live heap bytes and the peak observed inside a measurement
 * window. Binaries without an interposer pay nothing: the hooks are
 * never called, memstatActive() stays false, and every counter reads
 * zero.
 *
 * The window peak is process-global. Per-stage measurements (the
 * mem_estimate calibration, the per-stage numbers in PipelineResult)
 * are therefore only meaningful when exactly one thread is compiling;
 * the whole-process peak used by the memsched bench is meaningful
 * under any concurrency.
 */

#ifndef TREEGION_SUPPORT_MEMSTAT_H
#define TREEGION_SUPPORT_MEMSTAT_H

#include <cstddef>
#include <cstdint>

namespace treegion::support {

/** Interposer hook: @p bytes were allocated (usable size). */
void memstatOnAlloc(std::size_t bytes) noexcept;

/** Interposer hook: @p bytes were freed (usable size). */
void memstatOnFree(std::size_t bytes) noexcept;

/** True once any interposer hook has fired in this process. */
bool memstatActive() noexcept;

/** Current live heap bytes (allocated minus freed since start). */
uint64_t memstatLiveBytes() noexcept;

/** Largest live-byte count observed since the last window reset. */
uint64_t memstatWindowPeakBytes() noexcept;

/**
 * Start a new measurement window: the window peak restarts from the
 * current live bytes. @return the live bytes at the reset, so a
 * caller can report the window's peak growth as peak - start.
 */
uint64_t memstatResetWindow() noexcept;

/**
 * Opt runPipeline's per-stage footprint instrumentation in or out
 * (default: out). Stage measurement resets the process-global window
 * at every stage boundary, so it MUST stay off while a whole-run
 * window measurement is in progress or any other thread compiles —
 * enable it only for single-threaded calibration.
 */
void memstatSetStageProfiling(bool enabled) noexcept;

/** True when per-stage profiling was requested. */
bool memstatStageProfiling() noexcept;

} // namespace treegion::support

#endif // TREEGION_SUPPORT_MEMSTAT_H
