#include "ooo/ooo_sim.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "support/logging.h"
#include "vliw/machine_state.h"
#include "vliw/op_semantics.h"

namespace treegion::ooo {

using ir::BlockId;
using ir::Op;
using ir::Opcode;
using ir::RegClass;
using sched::RegionSchedule;
using sched::ScheduledExit;
using sched::ScheduledOp;
using vliw::sem::BranchOutcome;

OooConfig
oooSmall()
{
    OooConfig config;
    config.name = "ooo-small";
    config.fetch_width = 2;
    config.issue_width = 2;
    config.retire_width = 2;
    config.window_size = 16;
    config.rob_size = 32;
    config.phys_gpr_headroom = 24;
    config.phys_pred_headroom = 12;
    return config;
}

OooConfig
oooWide()
{
    OooConfig config;
    config.name = "ooo-wide";
    config.fetch_width = 8;
    config.issue_width = 8;
    config.retire_width = 8;
    config.window_size = 64;
    config.rob_size = 128;
    config.phys_gpr_headroom = 96;
    config.phys_pred_headroom = 48;
    return config;
}

const std::vector<OooConfig> &
oooConfigs()
{
    static const std::vector<OooConfig> configs = {oooSmall(),
                                                   oooWide()};
    return configs;
}

bool
parseOooConfig(const std::string &name, OooConfig &out)
{
    for (const OooConfig &config : oooConfigs()) {
        if (config.name == name) {
            out = config;
            return true;
        }
    }
    return false;
}

namespace {

using PhysId = uint32_t;

/** One physical register: a value plus a Tomasulo ready bit. */
struct PhysReg
{
    int64_t value = 0;
    bool ready = true;
};

/**
 * One physical register file (GPR or predicate class) with its
 * architectural rename map and free list. The architectural file is
 * virtual-register sized; the physical file adds config headroom.
 */
struct PhysFile
{
    std::vector<PhysReg> regs;
    std::vector<PhysId> map;   ///< architectural index -> physical
    std::vector<PhysId> free;  ///< free-list stack

    void
    init(uint32_t arch_count, int headroom)
    {
        regs.assign(arch_count + static_cast<uint32_t>(headroom), {});
        map.resize(arch_count);
        for (uint32_t i = 0; i < arch_count; ++i)
            map[i] = i;
        for (uint32_t i = arch_count; i < regs.size(); ++i)
            free.push_back(i);
    }
};

/** A destination rename performed at dispatch. */
struct Rename
{
    ir::Reg arch;
    PhysId phys;  ///< freshly allocated physical register
    PhysId prev;  ///< previous mapping (freed at retire, restored on
                  ///< squash, and the copy-through source when a
                  ///< conditional write is suppressed)
};

/** A source operand resolved at dispatch. */
struct SrcMap
{
    ir::Reg arch;
    PhysId phys;
};

/** One reorder-buffer entry. */
struct RobEntry
{
    const ScheduledOp *sop = nullptr;
    size_t op_index = 0;  ///< index into RegionSchedule::ops
    uint32_t row = 0;     ///< schedule row (cycle) within the region

    std::vector<Rename> renames;
    std::vector<SrcMap> src_map;

    bool issued = false;
    bool completed = false;
    bool mem_done = false;  ///< memory effect performed (LD/ST)
    uint64_t complete_cycle = 0;

    bool resolved = false;  ///< branch outcome known
    BranchOutcome outcome;
    const ScheduledExit *exit = nullptr;  ///< non-null when the branch
                                          ///< fires a region exit
};

/** Per-region fetch stream plus exit lookup, precomputed. */
struct RegionStream
{
    const RegionSchedule *rs = nullptr;
    /** exits by (op index in RegionSchedule::ops). */
    std::unordered_map<size_t, std::vector<const ScheduledExit *>> exits;
};

/**
 * Map a fired branch to its exit record, or nullptr for an MWBR case
 * edge that falls through internally (target == kNoBlock). Mirrors
 * the in-order simulator's resolution exactly.
 */
const ScheduledExit *
resolveExit(const RegionStream &stream, size_t op_index, const Op &op,
            size_t slot)
{
    auto eit = stream.exits.find(op_index);
    if (op.opcode == Opcode::MWBR) {
        if (op.targets[slot] == ir::kNoBlock)
            return nullptr;  // internal fall-through case edge
        TG_ASSERT(eit != stream.exits.end());
        for (const ScheduledExit *cand : eit->second) {
            if (cand->target_slot == slot)
                return cand;
        }
        TG_PANIC("MWBR slot %zu has no exit record", slot);
    }
    TG_ASSERT(eit != stream.exits.end());
    return eit->second.front();
}

/**
 * Whether @p op's destination writes are conditional, making the
 * rename a read-modify-write: the previous mapping must be readable
 * so a suppressed write copies the old value through. CMPP, PSET,
 * PCLR and LD write unconditionally; CMPPA/CMPPO are keyed on their
 * comparison; every other guarded writer is keyed on its guard.
 */
bool
conditionalWriter(const Op &op)
{
    if (op.opcode == Opcode::CMPPA || op.opcode == Opcode::CMPPO)
        return true;
    if (!op.guard)
        return false;
    switch (op.opcode) {
      case Opcode::CMPP:
      case Opcode::PSET:
      case Opcode::PCLR:
      case Opcode::LD:
        return false;
      default:
        return !op.dsts.empty();
    }
}

} // namespace

OooResult
runOutOfOrder(ir::Function &fn, const sched::FunctionSchedule &sched,
              std::vector<int64_t> memory, const OooConfig &config)
{
    OooResult result;
    vliw::VliwResult &arch = result.arch;
    OooStats &stats = result.stats;

    // Memory lives in a MachineState (register files unused) so the
    // dismissible wrap semantics are byte-identical to the other
    // engines.
    vliw::MachineState mem_state(0, 0, std::move(memory));

    PhysFile gprs;
    PhysFile preds;
    gprs.init(fn.numGprs(), config.phys_gpr_headroom);
    preds.init(fn.numPreds(), config.phys_pred_headroom);

    auto file = [&](RegClass cls) -> PhysFile & {
        return cls == RegClass::Pred ? preds : gprs;
    };
    auto clamp = [](ir::Reg r, int64_t value) {
        return r.cls == RegClass::Pred ? (value ? 1 : 0) : value;
    };

    // Precompute fetch streams. RegionSchedule::ops is already sorted
    // by (cycle, slot) — exactly fetch order.
    std::unordered_map<BlockId, RegionStream> streams;
    for (const auto &[root, rs] : sched.regions) {
        RegionStream &stream = streams[root];
        stream.rs = &rs;
        for (const ScheduledExit &exit : rs.exits)
            stream.exits[exit.op_index].push_back(&exit);
    }

    BlockId cur = sched.entry;
    const RegionStream *stream = nullptr;
    size_t fetch_pos = 0;

    auto enterRegion = [&](BlockId root) {
        auto it = streams.find(root);
        if (it == streams.end())
            TG_PANIC("no region schedule rooted at bb%u", root);
        cur = root;
        stream = &it->second;
        fetch_pos = 0;
        arch.trace.push_back(root);
        ++arch.regions_executed;
    };
    enterRegion(cur);

    std::deque<RobEntry> rob;
    uint64_t head_seq = 0;  ///< sequence number of rob.front()
    std::vector<uint64_t> iq;  ///< dispatched, unissued (age order)

    auto entryAt = [&](uint64_t seq) -> RobEntry & {
        return rob[static_cast<size_t>(seq - head_seq)];
    };

    struct Exiting
    {
        bool active = false;
        uint32_t row = 0;
        const ScheduledExit *exit = nullptr;
        int64_t ret_value = 0;
    } exiting;

    // Squash every ROB entry younger than sequence @p keep_end:
    // restore the rename map youngest-first, refill the free lists,
    // drop the entries from the window.
    auto squashYoungerThan = [&](uint64_t keep_end) {
        while (head_seq + rob.size() > keep_end) {
            RobEntry &e = rob.back();
            TG_ASSERT(!(e.sop->op.isStore() && e.mem_done) &&
                      "squashed a store that wrote memory");
            for (auto it = e.renames.rbegin(); it != e.renames.rend();
                 ++it) {
                PhysFile &f = file(it->arch.cls);
                f.map[it->arch.idx] = it->prev;
                f.free.push_back(it->phys);
            }
            ++stats.squashed;
            rob.pop_back();
        }
        std::erase_if(iq,
                      [&](uint64_t seq) { return seq >= keep_end; });
    };

    for (;;) {
        if (arch.cycles >= config.limits.max_cycles) {
            // Budget exhausted: halt with completed = false (never
            // abort) so campaigns can't hang on either backend.
            arch.memory = mem_state.memory();
            return result;
        }
        ++arch.cycles;

        // ---- Completion: results finishing now become readable
        // (tag broadcast; wakeup is the ready-bit check at select).
        for (RobEntry &e : rob) {
            if (e.issued && !e.completed &&
                e.complete_cycle <= arch.cycles) {
                e.completed = true;
                for (const Rename &r : e.renames)
                    file(r.arch.cls).regs[r.phys].ready = true;
            }
        }

        // ---- Retire: in order, up to retire_width.
        int retired_now = 0;
        while (retired_now < config.retire_width && !rob.empty() &&
               rob.front().completed) {
            RobEntry &e = rob.front();
            if (e.exit != nullptr) {
                TG_ASSERT(!exiting.active &&
                          "two exits fired in one cycle");
                exiting.active = true;
                exiting.row = e.row;
                exiting.exit = e.exit;
                exiting.ret_value = e.outcome.ret_value;
                // Ops beyond the exit row were fetched down a dead
                // path; the exit row itself retires in full (MultiOp
                // rows execute whole).
                uint64_t keep_end = head_seq + 1;
                while (keep_end - head_seq < rob.size() &&
                       entryAt(keep_end).row <= e.row)
                    ++keep_end;
                squashYoungerThan(keep_end);
            }
            for (const Rename &r : e.renames)
                file(r.arch.cls).free.push_back(r.prev);
            ++stats.retired;
            ++arch.ops_executed;
            rob.pop_front();
            ++head_seq;
            ++retired_now;
        }

        // The exit row executes in full (MultiOp rows are atomic in
        // the architectural model): any of its ops the front-end had
        // not fetched when the branch retired must still be fetched,
        // executed and retired before the region boundary.
        auto exitRowUnfetched = [&]() {
            return fetch_pos < stream->rs->ops.size() &&
                   static_cast<uint32_t>(
                       stream->rs->ops[fetch_pos].cycle) <=
                       exiting.row;
        };

        bool redirected = false;
        if (exiting.active && rob.empty() && !exitRowUnfetched()) {
            // Region boundary: reconciliation copies are one parallel
            // MultiOp (read all, then write all).
            arch.copies_applied += vliw::sem::applyExitCopies(
                exiting.exit->copies,
                [&](ir::Reg r) {
                    return r.cls == RegClass::Btr
                               ? 0
                               : file(r.cls)
                                     .regs[file(r.cls).map[r.idx]]
                                     .value;
                },
                [&](ir::Reg r, int64_t value) {
                    if (r.cls == RegClass::Btr)
                        return;
                    file(r.cls).regs[file(r.cls).map[r.idx]].value =
                        clamp(r, value);
                });
            if (exiting.exit->is_ret) {
                arch.completed = true;
                arch.ret_value = exiting.ret_value;
                arch.memory = mem_state.memory();
                return result;
            }
            const BlockId target = exiting.exit->target;
            exiting = {};
            enterRegion(target);
            redirected = true;  // one-cycle fetch redirect bubble
        }

        // A drained machine with nothing left to fetch and no exit in
        // flight means the region ran off its end — a scheduler bug,
        // same panic as the in-order engine.
        if (rob.empty() && !exiting.active && !redirected &&
            fetch_pos >= stream->rs->ops.size())
            TG_PANIC("region bb%u fell through without an exit", cur);

        // ---- Select/execute: issue ready ops oldest-first.
        int issued_now = 0;
        for (auto it = iq.begin();
             it != iq.end() && issued_now < config.issue_width;) {
            RobEntry &e = entryAt(*it);
            const Op &op = e.sop->op;

            bool ready = true;
            for (const SrcMap &s : e.src_map) {
                if (!file(s.arch.cls).regs[s.phys].ready)
                    ready = false;
            }
            if (conditionalWriter(op)) {
                // Read-modify-write: the previous mapping is an
                // implicit source (copy-through on suppression).
                for (const Rename &r : e.renames) {
                    if (!file(r.arch.cls).regs[r.prev].ready)
                        ready = false;
                }
            }
            if (!ready) {
                ++it;
                continue;
            }

            // Conservative memory discipline: total memory order in
            // fetch order, and stores only once squash-proof.
            if (op.isMemory()) {
                bool allowed = true;
                for (uint64_t seq = head_seq; seq < *it && allowed;
                     ++seq) {
                    const RobEntry &older = entryAt(seq);
                    const Op &oop = older.sop->op;
                    if (op.isLoad()) {
                        if (oop.isStore() && !older.mem_done)
                            allowed = false;
                    } else {
                        if (oop.isMemory() && !older.mem_done)
                            allowed = false;
                        if (oop.isBranch() && older.row < e.row &&
                            (!older.resolved || older.exit != nullptr))
                            allowed = false;
                    }
                }
                if (!allowed) {
                    ++it;
                    continue;
                }
            }

            // Execute: shared op semantics against the renamed
            // physical sources.
            auto read = [&](ir::Reg r) -> int64_t {
                if (r.cls == RegClass::Btr)
                    return 0;
                for (const SrcMap &s : e.src_map) {
                    if (s.arch == r)
                        return file(r.cls).regs[s.phys].value;
                }
                TG_PANIC("op reads unrenamed register %s",
                         r.str().c_str());
            };
            int max_delay = 1;
            if (op.isBranch()) {
                e.outcome = vliw::sem::evalBranch(op, read);
                if (e.outcome.kind ==
                    BranchOutcome::Kind::kMalformedMwbr)
                    TG_PANIC("MWBR selector matches no case");
                e.resolved = true;
                if (e.outcome.kind == BranchOutcome::Kind::kFire) {
                    e.exit = resolveExit(*stream, e.op_index, op,
                                         e.outcome.slot);
                }
            } else {
                std::vector<bool> wrote(e.renames.size(), false);
                vliw::sem::execDataOp(
                    op, read, mem_state,
                    [&](ir::Reg dst, int64_t value, int delay) {
                        for (size_t k = 0; k < e.renames.size(); ++k) {
                            if (e.renames[k].arch == dst) {
                                file(dst.cls)
                                    .regs[e.renames[k].phys]
                                    .value = clamp(dst, value);
                                wrote[k] = true;
                                max_delay = std::max(max_delay, delay);
                                return;
                            }
                        }
                        TG_PANIC("op writes unrenamed register %s",
                                 dst.str().c_str());
                    });
                // Suppressed conditional writes copy the previous
                // mapping through, so the new physical register
                // always holds the architectural value.
                for (size_t k = 0; k < e.renames.size(); ++k) {
                    if (!wrote[k]) {
                        PhysFile &f = file(e.renames[k].arch.cls);
                        f.regs[e.renames[k].phys].value =
                            f.regs[e.renames[k].prev].value;
                    }
                }
                if (op.isMemory())
                    e.mem_done = true;
            }
            e.issued = true;
            e.complete_cycle =
                arch.cycles + static_cast<uint64_t>(max_delay);
            ++issued_now;
            it = iq.erase(it);
        }

        // ---- Fetch/rename/dispatch: in (row, slot) order. While an
        // exit drains, only the remainder of its row may be fetched.
        if (!redirected && (!exiting.active || exitRowUnfetched())) {
            int fetched = 0;
            while (fetched < config.fetch_width &&
                   fetch_pos < stream->rs->ops.size()) {
                const ScheduledOp &sop = stream->rs->ops[fetch_pos];
                const Op &op = sop.op;
                if (exiting.active &&
                    static_cast<uint32_t>(sop.cycle) > exiting.row)
                    break;  // past the exit row; dead path

                size_t need_gprs = 0;
                size_t need_preds = 0;
                for (ir::Reg dst : op.dsts) {
                    if (dst.cls == RegClass::Gpr)
                        ++need_gprs;
                    else if (dst.cls == RegClass::Pred)
                        ++need_preds;
                }
                if (rob.size() >=
                        static_cast<size_t>(config.rob_size) ||
                    iq.size() >=
                        static_cast<size_t>(config.window_size) ||
                    gprs.free.size() < need_gprs ||
                    preds.free.size() < need_preds) {
                    ++stats.rename_stalls;
                    break;
                }

                RobEntry e;
                e.sop = &sop;
                e.op_index = fetch_pos;
                e.row = static_cast<uint32_t>(sop.cycle);
                op.forEachUsedReg([&](ir::Reg r) {
                    if (r.cls == RegClass::Btr)
                        return;
                    e.src_map.push_back(
                        {r, file(r.cls).map[r.idx]});
                });
                for (ir::Reg dst : op.dsts) {
                    if (dst.cls == RegClass::Btr)
                        continue;  // BTRs carry no semantics
                    PhysFile &f = file(dst.cls);
                    const PhysId phys = f.free.back();
                    f.free.pop_back();
                    f.regs[phys] = {0, false};
                    e.renames.push_back({dst, phys, f.map[dst.idx]});
                    f.map[dst.idx] = phys;
                }
                const uint64_t seq = head_seq + rob.size();
                rob.push_back(std::move(e));
                iq.push_back(seq);
                ++fetch_pos;
                ++fetched;
            }
        }

        stats.window_cycle_sum += rob.size();
    }
}

} // namespace treegion::ooo
