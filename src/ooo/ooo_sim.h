/**
 * @file
 * Out-of-order execution backend: a Tomasulo/ROB machine model that
 * executes the same FunctionSchedule the in-order VLIW simulator
 * does.
 *
 * The front-end fetches the scheduled MultiOp rows of the current
 * region in (cycle, slot) order — the region is the fetch unit, so
 * schedules stay the common input to both backends — renames every
 * destination onto a physical register file, and dispatches into an
 * issue queue. Ready ops issue oldest-first up to the issue width
 * (Tomasulo tag broadcast wakes consumers when results complete);
 * a reorder buffer retires in order up to the retire width. Region
 * exits are resolved at retirement: when a firing branch retires,
 * the remaining ops of its row drain, everything younger is
 * squashed, the exit's reconciliation copies apply, and fetch
 * redirects to the target region.
 *
 * Memory discipline is conservative: loads and stores execute in
 * program order among memory ops (total memory order — exactly the
 * (cycle, slot) order the schedule verifier pins for conflicting
 * pairs), and a store only executes once it can no longer be
 * squashed (every branch in an earlier row of its region instance
 * has resolved as not-taken).
 *
 * Architectural outcome (return value, memory image, region trace,
 * retired-op count) is VliwResult-compatible so the two backends can
 * be differentially compared; op semantics come from the shared
 * vliw/op_semantics.h header, so both engines execute identical
 * operation behaviour by construction and only the machine model
 * differs.
 */

#ifndef TREEGION_OOO_OOO_SIM_H
#define TREEGION_OOO_OOO_SIM_H

#include <string>
#include <vector>

#include "sched/schedule.h"
#include "vliw/vliw_sim.h"

namespace treegion::ooo {

/** One named out-of-order machine configuration. */
struct OooConfig
{
    std::string name = "ooo-small";
    int fetch_width = 2;   ///< ops renamed/dispatched per cycle
    int issue_width = 2;   ///< ready ops selected per cycle
    int retire_width = 2;  ///< ROB entries retired per cycle
    int window_size = 16;  ///< issue-queue (scheduling window) entries
    int rob_size = 32;     ///< reorder-buffer entries

    /**
     * Physical registers beyond the architectural file. The
     * architectural file is virtual-register sized (schedulers rename
     * onto fresh virtual registers), so the physical file is sized
     * arch + headroom and rename stalls when the headroom free list
     * runs dry.
     */
    int phys_gpr_headroom = 24;
    int phys_pred_headroom = 12;

    vliw::SimLimits limits;  ///< shared with the VLIW backend
};

/** The 2-wide small-window baseline configuration. */
OooConfig oooSmall();

/** The 8-wide large-window configuration. */
OooConfig oooWide();

/** All named configurations (for benches and sweeps). */
const std::vector<OooConfig> &oooConfigs();

/**
 * Look up a configuration by name ("ooo-small", "ooo-wide").
 * @return false when @p name is unknown.
 */
bool parseOooConfig(const std::string &name, OooConfig &out);

/** Timing statistics specific to the out-of-order model. */
struct OooStats
{
    uint64_t retired = 0;        ///< ops retired (== arch ops)
    uint64_t squashed = 0;       ///< ops fetched past a firing exit
    uint64_t rename_stalls = 0;  ///< cycles rename blocked on
                                 ///< ROB/window/physical registers
    uint64_t window_cycle_sum = 0;  ///< sum of ROB occupancy per cycle

    /** Retired ops per cycle. */
    double ipc(uint64_t cycles) const
    {
        return cycles ? static_cast<double>(retired) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Mean ROB occupancy over the run. */
    double avgWindowOccupancy(uint64_t cycles) const
    {
        return cycles ? static_cast<double>(window_cycle_sum) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** Outcome of one out-of-order execution. */
struct OooResult
{
    /**
     * Architectural outcome, directly comparable against the in-order
     * backend's: completed, ret_value, memory, trace (region roots),
     * regions_executed, copies_applied, ops_executed (retired ops)
     * are architectural; cycles is this model's own cycle count.
     */
    vliw::VliwResult arch;
    OooStats stats;
};

/**
 * Execute @p sched out of order on @p memory.
 *
 * @param fn the function the schedule was produced from (register
 *        file sizes)
 * @param sched the scheduled code
 * @param memory initial data memory
 * @param config machine configuration (widths, window, limits)
 */
OooResult runOutOfOrder(ir::Function &fn,
                        const sched::FunctionSchedule &sched,
                        std::vector<int64_t> memory,
                        const OooConfig &config = oooSmall());

} // namespace treegion::ooo

#endif // TREEGION_OOO_OOO_SIM_H
