#include "ir/printer.h"

#include <ostream>
#include <sstream>

#include "support/string_utils.h"

namespace treegion::ir {

void
printFunction(std::ostream &os, const Function &fn)
{
    os << "func @" << fn.name() << " entry=bb" << fn.entry() << " gprs="
       << fn.numGprs() << " preds=" << fn.numPreds() << " {\n";
    fn.forEachBlock([&](const BasicBlock &b) {
        os << "  block bb" << b.id();
        os << support::strprintf(" weight=%.6g", b.weight());
        if (!b.edgeWeights().empty()) {
            os << " edges=[";
            for (size_t i = 0; i < b.edgeWeights().size(); ++i) {
                if (i)
                    os << ",";
                os << support::strprintf("%.6g", b.edgeWeights()[i]);
            }
            os << "]";
        }
        os << " {\n";
        for (const Op &op : b.ops())
            os << "    " << op.str() << "\n";
        os << "  }\n";
    });
    os << "}\n";
}

void
printModule(std::ostream &os, const Module &mod)
{
    os << "module " << mod.name() << " mem=" << mod.memWords() << "\n";
    for (const auto &fn : mod.functions())
        printFunction(os, *fn);
}

std::string
moduleToString(const Module &mod)
{
    std::ostringstream os;
    printModule(os, mod);
    return os.str();
}

} // namespace treegion::ir
