/**
 * @file
 * A single IR operation (an "Op" in the paper's Op/MultiOp terminology).
 */

#ifndef TREEGION_IR_OP_H
#define TREEGION_IR_OP_H

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "ir/opcode.h"
#include "ir/operand.h"

namespace treegion::ir {

/** Identifier of a basic block within its function. */
using BlockId = uint32_t;

/** Sentinel for "no block". */
constexpr BlockId kNoBlock = std::numeric_limits<BlockId>::max();

/** Identifier of an op within its function (stable, never reused). */
using OpId = uint32_t;

/**
 * One IR operation.
 *
 * Operand layout conventions by opcode:
 *  - MOVI: dsts=[r], srcs=[imm]
 *  - MOV/COPY: dsts=[r], srcs=[reg]
 *  - binary ALU/FP: dsts=[r], srcs=[a, b]
 *  - LD: dsts=[r], srcs=[base reg, offset imm]
 *  - ST: dsts=[], srcs=[base reg, offset imm, value]
 *  - CMPP: dsts=[p_true] or [p_true, p_false], srcs=[a, b], cmp kind set
 *  - PBR: dsts=[b], targets=[block]
 *  - BRU: targets=[taken]
 *  - BRCT/BRCF: srcs=[pred reg]; targets=[taken] or [taken, fall]
 *  - MWBR: srcs=[selector reg]; caseValues[i] selects targets[i];
 *          an entry with target == kNoBlock means "fall through"
 *          (used in scheduled regions for internal case edges)
 *  - RET: srcs=[result value]
 *
 * The optional @ref guard predicate implements Play-Doh predicated
 * execution: a guarded op only takes effect when the predicate is
 * true. CMPP is special: it writes its destinations unconditionally
 * as (guard AND cmp) / (guard AND NOT cmp), the HPL-PD
 * unconditional-type compare, which is what makes single-register
 * path predicates composable.
 */
struct Op
{
    OpId id = 0;
    Opcode opcode = Opcode::MOVI;
    CmpKind cmp = CmpKind::EQ;         ///< only meaningful for CMPP
    std::vector<Reg> dsts;
    std::vector<Operand> srcs;
    std::optional<Reg> guard;          ///< predicate guard, if any
    std::vector<BlockId> targets;      ///< branch/PBR targets
    std::vector<int64_t> caseValues;   ///< MWBR selector values

    /**
     * Home basic block. In sequential IR this is the containing block;
     * in a region schedule it is the original block the op came from
     * (which determines its path predicate, exit set and profile
     * weight).
     */
    BlockId home = kNoBlock;

    /**
     * Tail-duplication group. Ops cloned from the same original op
     * share a nonzero group id; the scheduler uses this to detect
     * dominator parallelism. Zero means "never duplicated".
     */
    uint32_t dupGroup = 0;

    /** True for BRU/BRCT/BRCF/MWBR/RET. */
    bool isBranch() const { return opcodeInfo(opcode).isBranch; }

    /** True for LD. */
    bool isLoad() const { return opcodeInfo(opcode).isLoad; }

    /** True for ST. */
    bool isStore() const { return opcodeInfo(opcode).isStore; }

    /** True for LD or ST. */
    bool isMemory() const { return isLoad() || isStore(); }

    /** Result latency in cycles. */
    int latency() const { return opcodeInfo(opcode).latency; }

    /**
     * Collect every register this op reads, including the guard.
     */
    std::vector<Reg> usedRegs() const;

    /**
     * Visit every register this op reads (sources then guard), in
     * usedRegs() order but without materializing a vector — the
     * allocation-free form the scheduling hot path uses.
     */
    template <typename F>
    void
    forEachUsedReg(F &&f) const
    {
        for (const Operand &src : srcs) {
            if (src.isReg())
                f(src.reg);
        }
        if (guard)
            f(*guard);
    }

    /** Replace every read of @p from (including guard) with @p to. */
    void renameUses(Reg from, Reg to);

    /** Replace every definition of @p from with @p to. */
    void renameDefs(Reg from, Reg to);

    /** Render in the textual IR syntax (no trailing newline). */
    std::string str() const;
};

/** Build a MOVI op (id/home left for the caller to fill). */
Op makeMovi(Reg dst, int64_t imm);

/** Build a binary computation op. */
Op makeBinary(Opcode opcode, Reg dst, Operand a, Operand b);

/** Build a MOV op. */
Op makeMov(Reg dst, Reg src);

/** Build a COPY op (renaming reconciliation). */
Op makeCopy(Reg dst, Reg src);

/** Build an LD op: dst = mem[base + offset]. */
Op makeLoad(Reg dst, Reg base, int64_t offset);

/** Build an ST op: mem[base + offset] = value. */
Op makeStore(Reg base, int64_t offset, Operand value);

/** Build a two-target CMPP: (pt, pf) = cmp(a, b). */
Op makeCmpp(CmpKind kind, Reg pt, Reg pf, Operand a, Operand b);

/** Build a single-target CMPP: pt = cmp(a, b). */
Op makeCmpp1(CmpKind kind, Reg pt, Operand a, Operand b);

/** Build a BRU to @p target. */
Op makeBru(BlockId target);

/** Build a BRCT: if @p pred then @p taken else @p fall. */
Op makeBrct(Reg pred_reg, BlockId taken, BlockId fall);

/** Build an MWBR over dense selector values 0..n-1. */
Op makeMwbr(Reg selector, std::vector<BlockId> targets);

/** Build a RET yielding @p result. */
Op makeRet(Operand result);

/** Build a PBR: btr = address of @p target. */
Op makePbr(Reg btr_reg, BlockId target);

} // namespace treegion::ir

#endif // TREEGION_IR_OP_H
