/**
 * @file
 * Textual IR output (the module format parse() reads back).
 */

#ifndef TREEGION_IR_PRINTER_H
#define TREEGION_IR_PRINTER_H

#include <iosfwd>
#include <string>

#include "ir/module.h"

namespace treegion::ir {

/** Print @p fn in textual IR form to @p os. */
void printFunction(std::ostream &os, const Function &fn);

/** Print @p mod (header plus all functions) to @p os. */
void printModule(std::ostream &os, const Module &mod);

/** @return @p mod rendered as a string. */
std::string moduleToString(const Module &mod);

} // namespace treegion::ir

#endif // TREEGION_IR_PRINTER_H
