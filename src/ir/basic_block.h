/**
 * @file
 * A basic block: a straight-line op sequence ending in one branch.
 *
 * Every block ends in exactly one terminator (BRU, BRCT, MWBR or RET);
 * fall-through edges are always made explicit as BRU so that CFG
 * structure is fully determined by terminators. Profile data lives
 * directly on the block: an execution weight plus per-successor edge
 * weights aligned with the terminator's target list.
 */

#ifndef TREEGION_IR_BASIC_BLOCK_H
#define TREEGION_IR_BASIC_BLOCK_H

#include <vector>

#include "ir/op.h"

namespace treegion::ir {

/** One CFG node. */
class BasicBlock
{
  public:
    /** Construct block @p id. */
    explicit BasicBlock(BlockId id) : id_(id) {}

    /** @return this block's id. */
    BlockId id() const { return id_; }

    /** @return the ops, terminator last. */
    std::vector<Op> &ops() { return ops_; }
    const std::vector<Op> &ops() const { return ops_; }

    /** @return true once a terminator has been appended. */
    bool hasTerminator() const;

    /** @return the terminator op; asserts one exists. */
    const Op &terminator() const;
    Op &terminator();

    /** @return successor block ids (terminator targets, in order). */
    std::vector<BlockId> successors() const;

    /** @return predecessor ids (maintained by Function). */
    const std::vector<BlockId> &preds() const { return preds_; }

    /** @return profile execution count of this block. */
    double weight() const { return weight_; }

    /** Set the profile execution count. */
    void setWeight(double w) { weight_ = w; }

    /**
     * Per-successor edge weights, aligned with successors().
     * Empty until a profile is applied.
     */
    std::vector<double> &edgeWeights() { return edge_weights_; }
    const std::vector<double> &edgeWeights() const { return edge_weights_; }

    /** Number of non-terminator ops. */
    size_t bodySize() const;

    /**
     * The original block this one was (transitively) tail-duplicated
     * from; its own id when it is not a duplicate.
     */
    BlockId originalId() const { return original_id_; }

  private:
    friend class Function;

    BlockId id_;
    BlockId original_id_ = kNoBlock;
    std::vector<Op> ops_;
    std::vector<BlockId> preds_;
    double weight_ = 0.0;
    std::vector<double> edge_weights_;
};

} // namespace treegion::ir

#endif // TREEGION_IR_BASIC_BLOCK_H
