#include "ir/parser.h"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <vector>

#include "support/string_utils.h"

namespace treegion::ir {

namespace {

using support::startsWith;
using support::strprintf;
using support::trim;

/** Recursive-descent, line-oriented parser. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : error_(error)
    {
        size_t start = 0;
        while (start <= text.size()) {
            size_t end = text.find('\n', start);
            if (end == std::string_view::npos)
                end = text.size();
            lines_.push_back(text.substr(start, end - start));
            start = end + 1;
        }
    }

    std::unique_ptr<Module>
    run()
    {
        std::string_view line;
        if (!nextLine(line) || !startsWith(line, "module "))
            return fail("expected 'module <name> mem=<words>'");
        auto fields = support::splitString(line, ' ');
        if (fields.size() != 3 || !startsWith(fields[2], "mem="))
            return fail("malformed module header");
        auto mod = std::make_unique<Module>(fields[1]);
        mod->setMemWords(std::strtoull(fields[2].c_str() + 4, nullptr, 10));

        while (nextLine(line)) {
            if (!startsWith(line, "func @"))
                return fail("expected 'func @...'");
            if (!parseFunction(*mod, line))
                return nullptr;
        }
        return mod;
    }

  private:
    std::unique_ptr<Module>
    fail(const std::string &msg)
    {
        if (error_)
            *error_ = strprintf("line %zu: %s", line_no_, msg.c_str());
        failed_ = true;
        return nullptr;
    }

    bool
    failb(const std::string &msg)
    {
        fail(msg);
        return false;
    }

    /** Fetch the next non-empty line, trimmed. */
    bool
    nextLine(std::string_view &out)
    {
        while (pos_ < lines_.size()) {
            std::string_view line = trim(lines_[pos_]);
            ++pos_;
            line_no_ = pos_;
            if (!line.empty() && !startsWith(line, "#")) {
                out = line;
                return true;
            }
        }
        return false;
    }

    bool
    parseFunction(Module &mod, std::string_view header)
    {
        // func @name entry=bbN gprs=N preds=N {
        auto fields = support::splitString(header, ' ');
        if (fields.size() < 3 || fields.back() != "{")
            return failb("malformed func header");
        const std::string name = fields[0] == "func" && fields[1][0] == '@'
                                     ? fields[1].substr(1)
                                     : "";
        if (name.empty())
            return failb("missing function name");
        Function &fn = mod.createFunction(name);

        BlockId entry = kNoBlock;
        uint32_t gprs = 0;
        uint32_t preds = 0;
        for (size_t i = 2; i + 1 < fields.size(); ++i) {
            const std::string &f = fields[i];
            if (startsWith(f, "entry=bb"))
                entry = static_cast<BlockId>(std::strtoul(
                    f.c_str() + 8, nullptr, 10));
            else if (startsWith(f, "gprs="))
                gprs = static_cast<uint32_t>(std::strtoul(
                    f.c_str() + 5, nullptr, 10));
            else if (startsWith(f, "preds="))
                preds = static_cast<uint32_t>(std::strtoul(
                    f.c_str() + 6, nullptr, 10));
            else
                return failb("unknown func attribute: " + f);
        }
        fn.reserveRegs(gprs, preds, 0);

        std::vector<bool> defined;
        std::string_view line;
        while (nextLine(line)) {
            if (line == "}")
                break;
            if (!startsWith(line, "block bb"))
                return failb("expected 'block bb<N> ... {'");
            if (!parseBlock(fn, line, defined))
                return false;
        }

        // Remove blocks that were only created to reserve id space.
        fn.invalidatePreds();
        for (BlockId id = 0; id < fn.numBlockIds(); ++id) {
            if (!fn.hasBlock(id) ||
                (id < defined.size() && defined[id])) {
                continue;
            }
            if (!fn.predsOf(id).empty())
                return failb(strprintf("branch to undefined block bb%u",
                                       id));
            fn.removeBlock(id);
        }
        if (entry == kNoBlock || !fn.hasBlock(entry))
            return failb("function entry block missing");
        fn.setEntry(entry);
        return true;
    }

    /** Ensure ids 0..id exist in @p fn. */
    void
    reserveBlocks(Function &fn, BlockId id)
    {
        while (fn.numBlockIds() <= id)
            fn.createBlock();
    }

    bool
    parseBlock(Function &fn, std::string_view header,
               std::vector<bool> &defined)
    {
        auto fields = support::splitString(header, ' ');
        if (fields.size() < 3 || fields.back() != "{")
            return failb("malformed block header");
        const BlockId id = static_cast<BlockId>(
            std::strtoul(fields[1].c_str() + 2, nullptr, 10));
        reserveBlocks(fn, id);
        if (id < defined.size() && defined[id])
            return failb(strprintf("block bb%u defined twice", id));
        if (defined.size() <= id)
            defined.resize(id + 1, false);
        defined[id] = true;
        BasicBlock &b = fn.block(id);

        std::vector<double> edge_weights;
        for (size_t i = 2; i + 1 < fields.size(); ++i) {
            const std::string &f = fields[i];
            if (startsWith(f, "weight="))
                b.setWeight(std::strtod(f.c_str() + 7, nullptr));
            else if (startsWith(f, "edges=[")) {
                std::string inner = f.substr(7);
                if (!inner.empty() && inner.back() == ']')
                    inner.pop_back();
                for (const auto &piece : support::splitString(inner, ','))
                    edge_weights.push_back(
                        std::strtod(piece.c_str(), nullptr));
            } else {
                return failb("unknown block attribute: " + f);
            }
        }

        std::string_view line;
        while (nextLine(line)) {
            if (line == "}")
                break;
            Op op;
            if (!parseOp(fn, line, op))
                return false;
            if (op.isBranch()) {
                if (b.hasTerminator())
                    return failb("multiple terminators in block");
                fn.appendTerminator(id, std::move(op));
            } else {
                if (b.hasTerminator())
                    return failb("op after terminator");
                fn.appendOp(id, std::move(op));
            }
        }
        b.edgeWeights() = std::move(edge_weights);
        return true;
    }

    /** Parse a register name like r3 / p1 / b2. */
    static std::optional<Reg>
    parseReg(std::string_view tok)
    {
        if (tok.size() < 2)
            return std::nullopt;
        RegClass cls;
        if (tok[0] == 'r')
            cls = RegClass::Gpr;
        else if (tok[0] == 'p')
            cls = RegClass::Pred;
        else if (tok[0] == 'b' && !startsWith(tok, "bb"))
            cls = RegClass::Btr;
        else
            return std::nullopt;
        uint32_t idx = 0;
        for (char c : tok.substr(1)) {
            if (!std::isdigit(static_cast<unsigned char>(c)))
                return std::nullopt;
            idx = idx * 10 + static_cast<uint32_t>(c - '0');
        }
        return Reg{cls, idx};
    }

    static std::optional<int64_t>
    parseImm(std::string_view tok)
    {
        if (tok.empty())
            return std::nullopt;
        size_t i = tok[0] == '-' ? 1 : 0;
        if (i == tok.size())
            return std::nullopt;
        for (; i < tok.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(tok[i])))
                return std::nullopt;
        }
        return std::strtoll(std::string(tok).c_str(), nullptr, 10);
    }

    static std::optional<BlockId>
    parseTarget(std::string_view tok)
    {
        if (tok == "fallthru")
            return kNoBlock;
        if (startsWith(tok, "bb")) {
            uint32_t idx = 0;
            if (tok.size() < 3)
                return std::nullopt;
            for (char c : tok.substr(2)) {
                if (!std::isdigit(static_cast<unsigned char>(c)))
                    return std::nullopt;
                idx = idx * 10 + static_cast<uint32_t>(c - '0');
            }
            return idx;
        }
        return std::nullopt;
    }

    /** Split an op body into tokens on spaces/commas, keeping []+?:. */
    static std::vector<std::string>
    tokenize(std::string_view text)
    {
        std::vector<std::string> toks;
        std::string cur;
        auto flush = [&]() {
            if (!cur.empty()) {
                toks.push_back(cur);
                cur.clear();
            }
        };
        for (char c : text) {
            if (c == ' ' || c == ',' || c == '\t') {
                flush();
            } else if (c == '[' || c == ']' || c == '+' || c == '?' ||
                       c == ':') {
                flush();
                toks.push_back(std::string(1, c));
            } else {
                cur += c;
            }
        }
        flush();
        return toks;
    }

    bool
    parseOp(Function &fn, std::string_view line, Op &op)
    {
        // Destinations (before '=').
        std::string_view body = line;
        const size_t eq = line.find(" = ");
        std::vector<Reg> dsts;
        if (eq != std::string_view::npos) {
            for (const auto &d :
                 support::splitString(line.substr(0, eq), ',')) {
                auto r = parseReg(trim(d));
                if (!r)
                    return failb("bad destination register: " + d);
                dsts.push_back(*r);
            }
            body = line.substr(eq + 3);
        }

        auto toks = tokenize(body);
        if (toks.empty())
            return failb("empty op");

        // Mnemonic, possibly with a CMPP kind suffix.
        std::string mnemonic = toks[0];
        CmpKind kind = CmpKind::EQ;
        const size_t dot = mnemonic.find('.');
        if (dot != std::string::npos) {
            if (!parseCmpKind(mnemonic.substr(dot + 1), kind))
                return failb("bad compare kind in " + mnemonic);
            mnemonic = mnemonic.substr(0, dot);
        }
        Opcode opcode;
        if (!parseOpcode(mnemonic, opcode))
            return failb("unknown opcode: " + mnemonic);

        op = Op{};
        op.opcode = opcode;
        op.cmp = kind;
        op.dsts = std::move(dsts);

        // Trailing guard: "? pN".
        size_t end = toks.size();
        if (end >= 2 && toks[end - 2] == "?") {
            auto g = parseReg(toks[end - 1]);
            if (!g || g->cls != RegClass::Pred)
                return failb("bad guard predicate");
            op.guard = *g;
            end -= 2;
        }

        size_t i = 1;
        auto expect = [&](const char *tok) {
            if (i >= end || toks[i] != tok)
                return false;
            ++i;
            return true;
        };

        if (opcode == Opcode::LD || opcode == Opcode::ST) {
            if (!expect("["))
                return failb("expected '[' in memory op");
            auto base = parseReg(i < end ? toks[i] : "");
            if (!base)
                return failb("bad base register");
            ++i;
            if (!expect("+"))
                return failb("expected '+' in memory op");
            auto off = parseImm(i < end ? toks[i] : "");
            if (!off)
                return failb("bad memory offset");
            ++i;
            if (!expect("]"))
                return failb("expected ']' in memory op");
            op.srcs = {Operand::makeReg(*base), Operand::makeImm(*off)};
            if (opcode == Opcode::ST) {
                if (i >= end)
                    return failb("missing store value");
                if (auto r = parseReg(toks[i]))
                    op.srcs.push_back(Operand::makeReg(*r));
                else if (auto imm = parseImm(toks[i]))
                    op.srcs.push_back(Operand::makeImm(*imm));
                else
                    return failb("bad store value");
                ++i;
            }
        } else if (opcode == Opcode::MWBR) {
            auto sel = parseReg(i < end ? toks[i] : "");
            if (!sel)
                return failb("bad MWBR selector");
            ++i;
            op.srcs = {Operand::makeReg(*sel)};
            if (!expect("["))
                return failb("expected '[' in MWBR");
            while (i < end && toks[i] != "]") {
                auto value = parseImm(toks[i]);
                if (!value)
                    return failb("bad MWBR case value");
                ++i;
                if (!expect(":"))
                    return failb("expected ':' in MWBR case");
                auto target = parseTarget(i < end ? toks[i] : "");
                if (!target)
                    return failb("bad MWBR case target");
                ++i;
                op.caseValues.push_back(*value);
                op.targets.push_back(*target);
            }
            if (!expect("]"))
                return failb("expected ']' in MWBR");
        } else {
            // Generic: a mix of operands and branch targets.
            for (; i < end; ++i) {
                const std::string &tok = toks[i];
                if (auto target = parseTarget(tok)) {
                    op.targets.push_back(*target);
                } else if (auto r = parseReg(tok)) {
                    op.srcs.push_back(Operand::makeReg(*r));
                } else if (auto imm = parseImm(tok)) {
                    op.srcs.push_back(Operand::makeImm(*imm));
                } else {
                    return failb("bad operand: " + tok);
                }
            }
            // The printed form of PBR/BRU carries targets only; make
            // sure referenced blocks exist.
        }
        if (i != end)
            return failb("trailing tokens in op");
        for (BlockId t : op.targets) {
            if (t != kNoBlock)
                reserveBlocks(fn, t);
        }
        return true;
    }

    std::string *error_;
    std::vector<std::string_view> lines_;
    size_t pos_ = 0;
    size_t line_no_ = 0;
    bool failed_ = false;
};

} // namespace

std::unique_ptr<Module>
parseModule(std::string_view text, std::string *error)
{
    Parser parser(text, error);
    return parser.run();
}

} // namespace treegion::ir
