#include "ir/function.h"

#include <algorithm>

#include "support/logging.h"

namespace treegion::ir {

Function::Function(std::string name)
    : name_(std::move(name))
{
}

BlockId
Function::createBlock()
{
    const BlockId id = static_cast<BlockId>(blocks_.size());
    blocks_.push_back(std::make_unique<BasicBlock>(id));
    blocks_.back()->original_id_ = id;
    preds_valid_ = false;
    return id;
}

BlockId
Function::cloneBlock(BlockId src)
{
    const BlockId id = createBlock();
    BasicBlock &dst_block = *blocks_[id];
    const BasicBlock &src_block = block(src);
    dst_block.weight_ = 0.0;
    for (const Op &op : src_block.ops()) {
        Op clone = op;
        clone.id = freshOpId();
        clone.home = id;
        // Link clone and original through a shared duplication group
        // so the scheduler can detect dominator parallelism.
        if (op.dupGroup == 0) {
            const uint32_t group = freshDupGroup();
            // Patch the original op as well.
            for (Op &orig : blocks_[src]->ops()) {
                if (orig.id == op.id) {
                    orig.dupGroup = group;
                    break;
                }
            }
            clone.dupGroup = group;
        }
        dst_block.ops_.push_back(std::move(clone));
    }
    dst_block.edge_weights_ = src_block.edge_weights_;
    dst_block.original_id_ = src_block.original_id_;
    preds_valid_ = false;
    return id;
}

BasicBlock &
Function::block(BlockId id)
{
    TG_ASSERT(hasBlock(id));
    return *blocks_[id];
}

const BasicBlock &
Function::block(BlockId id) const
{
    TG_ASSERT(id < blocks_.size() && blocks_[id]);
    return *blocks_[id];
}

bool
Function::hasBlock(BlockId id) const
{
    return id < blocks_.size() && blocks_[id] != nullptr;
}

std::vector<BlockId>
Function::blockIds() const
{
    std::vector<BlockId> ids;
    ids.reserve(blocks_.size());
    for (const auto &b : blocks_) {
        if (b)
            ids.push_back(b->id());
    }
    return ids;
}

void
Function::setEntry(BlockId id)
{
    TG_ASSERT(hasBlock(id));
    entry_ = id;
}

Op &
Function::appendOp(BlockId id, Op op)
{
    BasicBlock &b = block(id);
    TG_ASSERT(!b.hasTerminator());
    TG_ASSERT(!op.isBranch());
    op.id = freshOpId();
    op.home = id;
    b.ops_.push_back(std::move(op));
    return b.ops_.back();
}

Op &
Function::appendTerminator(BlockId id, Op op)
{
    BasicBlock &b = block(id);
    TG_ASSERT(!b.hasTerminator());
    TG_ASSERT(op.isBranch());
    op.id = freshOpId();
    op.home = id;
    b.ops_.push_back(std::move(op));
    preds_valid_ = false;
    return b.ops_.back();
}

void
Function::replaceTerminator(BlockId id, Op op)
{
    BasicBlock &b = block(id);
    TG_ASSERT(b.hasTerminator());
    TG_ASSERT(op.isBranch());
    op.id = freshOpId();
    op.home = id;
    b.ops_.back() = std::move(op);
    b.edge_weights_.clear();
    preds_valid_ = false;
}

void
Function::retargetEdge(BlockId from, BlockId old_to, BlockId new_to)
{
    BasicBlock &b = block(from);
    Op &term = b.terminator();
    auto it = std::find(term.targets.begin(), term.targets.end(), old_to);
    TG_ASSERT(it != term.targets.end());
    *it = new_to;
    preds_valid_ = false;
}

void
Function::removeBlock(BlockId id)
{
    TG_ASSERT(hasBlock(id));
    TG_ASSERT(predsOf(id).empty());
    TG_ASSERT(id != entry_);
    blocks_[id].reset();
    preds_valid_ = false;
}

std::vector<BlockId>
Function::removeUnreachableBlocks()
{
    std::vector<bool> reachable(blocks_.size(), false);
    std::vector<BlockId> stack = {entry_};
    while (!stack.empty()) {
        const BlockId id = stack.back();
        stack.pop_back();
        if (id >= blocks_.size() || !blocks_[id] || reachable[id])
            continue;
        reachable[id] = true;
        for (const BlockId succ : blocks_[id]->successors()) {
            if (succ != kNoBlock)
                stack.push_back(succ);
        }
    }
    std::vector<BlockId> removed;
    for (BlockId id = 0; id < blocks_.size(); ++id) {
        if (blocks_[id] && !reachable[id]) {
            blocks_[id].reset();
            removed.push_back(id);
        }
    }
    if (!removed.empty())
        preds_valid_ = false;
    return removed;
}

Function
Function::clone() const
{
    Function copy(name_);
    copy.blocks_.reserve(blocks_.size());
    for (const auto &b : blocks_) {
        if (!b) {
            copy.blocks_.push_back(nullptr);
            continue;
        }
        auto nb = std::make_unique<BasicBlock>(b->id());
        *nb = *b;
        copy.blocks_.push_back(std::move(nb));
    }
    copy.entry_ = entry_;
    copy.preds_valid_ = false;
    copy.next_gpr_ = next_gpr_;
    copy.next_pred_ = next_pred_;
    copy.next_btr_ = next_btr_;
    copy.next_op_id_ = next_op_id_;
    copy.next_dup_group_ = next_dup_group_;
    return copy;
}

const std::vector<BlockId> &
Function::predsOf(BlockId id)
{
    if (!preds_valid_)
        rebuildPreds();
    return block(id).preds_;
}

bool
Function::isMergePoint(BlockId id)
{
    return predsOf(id).size() > 1;
}

void
Function::reserveRegs(uint32_t gprs, uint32_t preds, uint32_t btrs)
{
    next_gpr_ = std::max(next_gpr_, gprs);
    next_pred_ = std::max(next_pred_, preds);
    next_btr_ = std::max(next_btr_, btrs);
}

size_t
Function::totalOps() const
{
    size_t n = 0;
    forEachBlock([&](const BasicBlock &b) { n += b.ops().size(); });
    return n;
}

void
Function::rebuildPreds()
{
    for (auto &b : blocks_) {
        if (b)
            b->preds_.clear();
    }
    for (auto &b : blocks_) {
        if (!b || !b->hasTerminator())
            continue;
        for (BlockId succ : b->successors()) {
            if (succ != kNoBlock)
                block(succ).preds_.push_back(b->id());
        }
    }
    preds_valid_ = true;
}

} // namespace treegion::ir
