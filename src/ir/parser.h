/**
 * @file
 * Parser for the textual IR format produced by printer.h.
 */

#ifndef TREEGION_IR_PARSER_H
#define TREEGION_IR_PARSER_H

#include <memory>
#include <string>
#include <string_view>

#include "ir/module.h"

namespace treegion::ir {

/**
 * Parse a textual module.
 *
 * @param text module source
 * @param error set to a line-numbered message on failure
 * @return the parsed module, or nullptr on error
 */
std::unique_ptr<Module> parseModule(std::string_view text,
                                    std::string *error);

} // namespace treegion::ir

#endif // TREEGION_IR_PARSER_H
