#include "ir/basic_block.h"

#include "support/logging.h"

namespace treegion::ir {

bool
BasicBlock::hasTerminator() const
{
    return !ops_.empty() && ops_.back().isBranch();
}

const Op &
BasicBlock::terminator() const
{
    TG_ASSERT(hasTerminator());
    return ops_.back();
}

Op &
BasicBlock::terminator()
{
    TG_ASSERT(hasTerminator());
    return ops_.back();
}

std::vector<BlockId>
BasicBlock::successors() const
{
    if (!hasTerminator())
        return {};
    return terminator().targets;
}

size_t
BasicBlock::bodySize() const
{
    return ops_.size() - (hasTerminator() ? 1 : 0);
}

} // namespace treegion::ir
