#include "ir/opcode.h"

#include <array>

#include "support/logging.h"

namespace treegion::ir {

namespace {

constexpr size_t kNumOpcodes = static_cast<size_t>(Opcode::NumOpcodes);

// Order must match the Opcode enum.
const std::array<OpcodeInfo, kNumOpcodes> kInfo = {{
    // name   lat  br     ld     st     dsts srcs
    {"MOVI",  1, false, false, false, 1, 1},
    {"MOV",   1, false, false, false, 1, 1},
    {"COPY",  1, false, false, false, 1, 1},
    {"ADD",   1, false, false, false, 1, 2},
    {"SUB",   1, false, false, false, 1, 2},
    {"MUL",   1, false, false, false, 1, 2},
    {"AND",   1, false, false, false, 1, 2},
    {"OR",    1, false, false, false, 1, 2},
    {"XOR",   1, false, false, false, 1, 2},
    {"SHL",   1, false, false, false, 1, 2},
    {"SHR",   1, false, false, false, 1, 2},
    {"REM",   1, false, false, false, 1, 2},
    {"FADD",  1, false, false, false, 1, 2},
    {"FMUL",  3, false, false, false, 1, 2},
    {"FDIV",  9, false, false, false, 1, 2},
    {"LD",    2, false, true,  false, 1, 2},
    {"ST",    1, false, false, true,  0, 3},
    {"CMPP",  1, false, false, false, 2, 2},
    {"PSET",  1, false, false, false, 1, 0},
    {"PCLR",  1, false, false, false, 1, 0},
    {"CMPPA", 1, false, false, false, 1, 2},
    {"CMPPO", 1, false, false, false, 1, 2},
    {"PBR",   1, false, false, false, 1, 0},
    {"BRU",   1, true,  false, false, 0, 0},
    {"BRCT",  1, true,  false, false, 0, 1},
    {"BRCF",  1, true,  false, false, 0, 1},
    {"MWBR",  1, true,  false, false, 0, 1},
    {"RET",   1, true,  false, false, 0, 1},
}};

const std::array<std::string_view, 6> kCmpNames = {"EQ", "NE", "LT",
                                                   "LE", "GT", "GE"};

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode opcode)
{
    const auto idx = static_cast<size_t>(opcode);
    TG_ASSERT(idx < kNumOpcodes);
    return kInfo[idx];
}

std::string_view
opcodeName(Opcode opcode)
{
    return opcodeInfo(opcode).name;
}

std::string_view
cmpKindName(CmpKind kind)
{
    return kCmpNames[static_cast<size_t>(kind)];
}

bool
parseOpcode(std::string_view name, Opcode &out)
{
    for (size_t i = 0; i < kNumOpcodes; ++i) {
        if (kInfo[i].name == name) {
            out = static_cast<Opcode>(i);
            return true;
        }
    }
    return false;
}

bool
parseCmpKind(std::string_view name, CmpKind &out)
{
    for (size_t i = 0; i < kCmpNames.size(); ++i) {
        if (kCmpNames[i] == name) {
            out = static_cast<CmpKind>(i);
            return true;
        }
    }
    return false;
}

CmpKind
negateCmpKind(CmpKind kind)
{
    switch (kind) {
      case CmpKind::EQ: return CmpKind::NE;
      case CmpKind::NE: return CmpKind::EQ;
      case CmpKind::LT: return CmpKind::GE;
      case CmpKind::GE: return CmpKind::LT;
      case CmpKind::LE: return CmpKind::GT;
      case CmpKind::GT: return CmpKind::LE;
    }
    TG_PANIC("bad CmpKind");
}

bool
evalCmp(CmpKind kind, int64_t a, int64_t b)
{
    switch (kind) {
      case CmpKind::EQ: return a == b;
      case CmpKind::NE: return a != b;
      case CmpKind::LT: return a < b;
      case CmpKind::LE: return a <= b;
      case CmpKind::GT: return a > b;
      case CmpKind::GE: return a >= b;
    }
    TG_PANIC("bad CmpKind");
}

int64_t
evalAlu(Opcode opcode, int64_t a, int64_t b)
{
    using U = uint64_t;
    switch (opcode) {
      case Opcode::MOVI:
      case Opcode::MOV:
      case Opcode::COPY:
        return a;
      case Opcode::ADD:
      case Opcode::FADD:
        return static_cast<int64_t>(static_cast<U>(a) + static_cast<U>(b));
      case Opcode::SUB:
        return static_cast<int64_t>(static_cast<U>(a) - static_cast<U>(b));
      case Opcode::MUL:
      case Opcode::FMUL:
        return static_cast<int64_t>(static_cast<U>(a) * static_cast<U>(b));
      case Opcode::AND:
        return a & b;
      case Opcode::OR:
        return a | b;
      case Opcode::XOR:
        return a ^ b;
      case Opcode::SHL:
        return static_cast<int64_t>(static_cast<U>(a) << (b & 63));
      case Opcode::SHR:
        return static_cast<int64_t>(static_cast<U>(a) >> (b & 63));
      case Opcode::FDIV:
        // Dismissible semantics: divide-by-zero (and the INT_MIN / -1
        // overflow case) yield zero so speculated divides never trap.
        if (b == 0 || (a == INT64_MIN && b == -1))
            return 0;
        return a / b;
      case Opcode::REM:
        if (b == 0 || (a == INT64_MIN && b == -1))
            return 0;
        return a % b;
      default:
        TG_PANIC("evalAlu: not a computation opcode: %s",
                 std::string(opcodeName(opcode)).c_str());
    }
}

} // namespace treegion::ir
