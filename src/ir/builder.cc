#include "ir/builder.h"

#include "support/logging.h"

namespace treegion::ir {

Reg
Builder::movi(int64_t imm)
{
    const Reg dst = fn_.freshGpr();
    fn_.appendOp(cur_, makeMovi(dst, imm));
    return dst;
}

Reg
Builder::mov(Reg src)
{
    const Reg dst = fn_.freshGpr();
    fn_.appendOp(cur_, makeMov(dst, src));
    return dst;
}

Reg
Builder::binary(Opcode opcode, Operand a, Operand b)
{
    const Reg dst = fn_.freshGpr();
    fn_.appendOp(cur_, makeBinary(opcode, dst, a, b));
    return dst;
}

Reg
Builder::load(Reg base, int64_t offset)
{
    const Reg dst = fn_.freshGpr();
    fn_.appendOp(cur_, makeLoad(dst, base, offset));
    return dst;
}

void
Builder::store(Reg base, int64_t offset, Operand value)
{
    fn_.appendOp(cur_, makeStore(base, offset, value));
}

Reg
Builder::cmpp(CmpKind kind, Operand a, Operand b)
{
    const Reg dst = fn_.freshPred();
    fn_.appendOp(cur_, makeCmpp1(kind, dst, a, b));
    return dst;
}

void
Builder::bru(BlockId target)
{
    fn_.appendTerminator(cur_, makeBru(target));
}

void
Builder::brct(Reg pred_reg, BlockId taken, BlockId fall)
{
    fn_.appendTerminator(cur_, makeBrct(pred_reg, taken, fall));
}

void
Builder::condBr(CmpKind kind, Operand a, Operand b, BlockId taken,
                BlockId fall)
{
    const Reg p = cmpp(kind, a, b);
    brct(p, taken, fall);
}

void
Builder::mwbr(Reg selector, std::vector<BlockId> targets)
{
    fn_.appendTerminator(cur_, makeMwbr(selector, std::move(targets)));
}

void
Builder::ret(Operand result)
{
    fn_.appendTerminator(cur_, makeRet(result));
}

} // namespace treegion::ir
