/**
 * @file
 * Opcode definitions and static metadata for the treegion IR.
 *
 * The operation repertoire follows the HPL Play-Doh specification the
 * paper's machine models assume: general-purpose ALU ops, loads and
 * stores, a two-target compare-to-predicate (CMPP), prepare-to-branch
 * (PBR) with branch-target registers, predicated branches (BRCT/BRCF),
 * an unconditional branch (BRU), a multiway branch (MWBR) for switch
 * statements, and COPY ops introduced by compile-time register
 * renaming.
 *
 * Latencies mirror the paper's models: unit latency everywhere except
 * LD (2 cycles), FMUL (3) and FDIV (9); all units are universal and
 * fully pipelined.
 */

#ifndef TREEGION_IR_OPCODE_H
#define TREEGION_IR_OPCODE_H

#include <cstdint>
#include <string_view>

namespace treegion::ir {

/** Operation codes of the IR. */
enum class Opcode : uint8_t {
    // Data movement.
    MOVI,  ///< dst = immediate
    MOV,   ///< dst = src register
    COPY,  ///< renaming reconciliation copy (identical to MOV, but
           ///< marked so the performance model can exclude it)

    // Integer ALU.
    ADD,
    SUB,
    MUL,
    AND,
    OR,
    XOR,
    SHL,
    SHR,
    REM,  ///< remainder; b == 0 yields 0 (dismissible, like FDIV)

    // Floating-point (simulated over the integer register file; they
    // exist to exercise the paper's non-unit latencies).
    FADD,
    FMUL,
    FDIV,

    // Memory.
    LD,  ///< dst = mem[base + offset]; dismissible (non-faulting)
    ST,  ///< mem[base + offset] = src; never speculated

    // Predicate definition.
    CMPP,   ///< pt[, pf] = cmp(s1, s2) ANDed with the guard predicate
    PSET,   ///< dst predicate := 1 (initializer for wired-AND)
    PCLR,   ///< dst predicate := 0 (initializer for wired-OR)
    CMPPA,  ///< and-type compare: clears dst when cmp(s1, s2) is
            ///< false, leaves it untouched otherwise. Multiple CMPPAs
            ///< targeting one predicate commute, so a path predicate
            ///< is computable in a single level (HPL-PD's wired-AND,
            ///< the critical-path-reduction technique of Schlansker
            ///< and Kathail that the paper builds on)
    CMPPO,  ///< or-type compare: sets dst when cmp(s1, s2) is true,
            ///< leaves it untouched otherwise. Used to merge the
            ///< incoming edge predicates of a hyperblock join

    // Branch-related.
    PBR,   ///< btr = block address (prepare-to-branch)
    BRU,   ///< unconditional branch
    BRCT,  ///< branch if predicate true
    BRCF,  ///< branch if predicate false
    MWBR,  ///< multiway branch on a selector register
    RET,   ///< leave the function, yielding the src register

    NumOpcodes,
};

/** Comparison kinds for CMPP. */
enum class CmpKind : uint8_t { EQ, NE, LT, LE, GT, GE };

/** Static properties of one opcode. */
struct OpcodeInfo
{
    std::string_view name;  ///< mnemonic used by printer/parser
    int latency;            ///< cycles until the result is usable
    bool isBranch;          ///< transfers control
    bool isLoad;            ///< reads memory
    bool isStore;           ///< writes memory
    int numDsts;            ///< destination count (CMPP: 1 or 2)
    int numSrcs;            ///< source operand count
};

/** @return static metadata for @p opcode. */
const OpcodeInfo &opcodeInfo(Opcode opcode);

/** @return mnemonic for @p opcode. */
std::string_view opcodeName(Opcode opcode);

/** @return mnemonic suffix for @p kind ("EQ", "LT", ...). */
std::string_view cmpKindName(CmpKind kind);

/**
 * Parse an opcode mnemonic.
 *
 * @param name mnemonic, e.g. "ADD"
 * @param out parsed opcode on success
 * @return true when @p name names an opcode
 */
bool parseOpcode(std::string_view name, Opcode &out);

/** Parse a CMPP kind suffix; @return true on success. */
bool parseCmpKind(std::string_view name, CmpKind &out);

/** @return the complementary comparison (LT <-> GE, etc.). */
CmpKind negateCmpKind(CmpKind kind);

/** Evaluate a comparison. */
bool evalCmp(CmpKind kind, int64_t a, int64_t b);

/**
 * Evaluate a non-memory, non-branch computation.
 *
 * FDIV by zero yields zero (dismissible semantics, so speculated
 * divides are always safe). Shift amounts are masked to 6 bits.
 *
 * @param opcode one of the ALU / FP opcodes
 * @param a first source value
 * @param b second source value (ignored by single-source ops)
 */
int64_t evalAlu(Opcode opcode, int64_t a, int64_t b);

} // namespace treegion::ir

#endif // TREEGION_IR_OPCODE_H
