#include "ir/module.h"

#include "support/logging.h"

namespace treegion::ir {

Module::Module(std::string name)
    : name_(std::move(name))
{
}

Function &
Module::createFunction(std::string fn_name)
{
    TG_ASSERT(!hasFunction(fn_name));
    functions_.push_back(std::make_unique<Function>(std::move(fn_name)));
    return *functions_.back();
}

Function &
Module::function(const std::string &fn_name)
{
    for (auto &fn : functions_) {
        if (fn->name() == fn_name)
            return *fn;
    }
    TG_PANIC("no function named %s", fn_name.c_str());
}

const Function &
Module::function(const std::string &fn_name) const
{
    for (const auto &fn : functions_) {
        if (fn->name() == fn_name)
            return *fn;
    }
    TG_PANIC("no function named %s", fn_name.c_str());
}

bool
Module::hasFunction(const std::string &fn_name) const
{
    for (const auto &fn : functions_) {
        if (fn->name() == fn_name)
            return true;
    }
    return false;
}

} // namespace treegion::ir
