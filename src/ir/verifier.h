/**
 * @file
 * IR well-formedness checking.
 *
 * Two levels: structural (CFG and op-shape invariants that must hold
 * for any function) and schedulable (the stricter preconditions the
 * region schedulers assume about sequential input IR, e.g. predicates
 * defined by a single CMPP feeding only the block's own terminator).
 */

#ifndef TREEGION_IR_VERIFIER_H
#define TREEGION_IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/function.h"

namespace treegion::ir {

/** Verification strictness. */
enum class VerifyLevel {
    Structural,   ///< CFG + op-shape invariants only
    Schedulable,  ///< also the region schedulers' input preconditions
};

/**
 * Verify @p fn.
 *
 * @param fn the function (preds may be rebuilt)
 * @param level strictness
 * @return list of human-readable problems; empty when valid
 */
std::vector<std::string> verifyFunction(Function &fn, VerifyLevel level);

/** Verify and panic with the first problem if any. */
void verifyOrDie(Function &fn, VerifyLevel level);

} // namespace treegion::ir

#endif // TREEGION_IR_VERIFIER_H
