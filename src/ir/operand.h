/**
 * @file
 * Register and immediate operands.
 *
 * The machine has three architectural register classes, mirroring
 * Play-Doh: general-purpose registers ("r"), predicate registers
 * ("p"), and branch-target registers ("b"). Before scheduling, all
 * registers are virtual (unbounded index space); the schedulers
 * allocate fresh virtual registers while renaming.
 */

#ifndef TREEGION_IR_OPERAND_H
#define TREEGION_IR_OPERAND_H

#include <cstdint>
#include <functional>
#include <string>

namespace treegion::ir {

/** Architectural register classes. */
enum class RegClass : uint8_t {
    Gpr,   ///< general-purpose ("r")
    Pred,  ///< predicate ("p")
    Btr,   ///< branch target ("b")
};

/** A (class, index) register name. */
struct Reg
{
    RegClass cls = RegClass::Gpr;
    uint32_t idx = 0;

    bool operator==(const Reg &other) const = default;
    auto operator<=>(const Reg &other) const = default;

    /** Render as "r3" / "p1" / "b2". */
    std::string str() const;
};

/** Construct a GPR. */
inline Reg gpr(uint32_t idx) { return {RegClass::Gpr, idx}; }
/** Construct a predicate register. */
inline Reg pred(uint32_t idx) { return {RegClass::Pred, idx}; }
/** Construct a branch target register. */
inline Reg btr(uint32_t idx) { return {RegClass::Btr, idx}; }

/** A source operand: either a register or a 64-bit immediate. */
struct Operand
{
    enum class Kind : uint8_t { Register, Immediate } kind = Kind::Immediate;
    Reg reg;            ///< valid when kind == Register
    int64_t imm = 0;    ///< valid when kind == Immediate

    /** Make a register operand. */
    static Operand
    makeReg(Reg r)
    {
        Operand op;
        op.kind = Kind::Register;
        op.reg = r;
        return op;
    }

    /** Make an immediate operand. */
    static Operand
    makeImm(int64_t value)
    {
        Operand op;
        op.kind = Kind::Immediate;
        op.imm = value;
        return op;
    }

    bool isReg() const { return kind == Kind::Register; }
    bool isImm() const { return kind == Kind::Immediate; }

    bool operator==(const Operand &other) const = default;

    /** Render as register name or decimal immediate. */
    std::string str() const;
};

} // namespace treegion::ir

template <>
struct std::hash<treegion::ir::Reg>
{
    size_t
    operator()(const treegion::ir::Reg &r) const noexcept
    {
        return (static_cast<size_t>(r.cls) << 32) ^ r.idx;
    }
};

#endif // TREEGION_IR_OPERAND_H
