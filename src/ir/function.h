/**
 * @file
 * A function: the CFG over basic blocks plus virtual register state.
 */

#ifndef TREEGION_IR_FUNCTION_H
#define TREEGION_IR_FUNCTION_H

#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.h"

namespace treegion::ir {

/**
 * A single-entry control flow graph of basic blocks.
 *
 * Block ids are stable and never reused. Predecessor lists are
 * maintained lazily: any terminator mutation must go through
 * Function (appendTerminator, retargetEdge, replaceTerminator) or be
 * followed by invalidatePreds(); predecessor queries rebuild on
 * demand.
 */
class Function
{
  public:
    /** Construct an empty function called @p name. */
    explicit Function(std::string name);

    Function(const Function &) = delete;
    Function &operator=(const Function &) = delete;
    Function(Function &&) = default;
    Function &operator=(Function &&) = default;

    /** @return the function name. */
    const std::string &name() const { return name_; }

    /** Create a new block and @return its id. */
    BlockId createBlock();

    /**
     * Clone @p src into a fresh block (ops copied with fresh op ids;
     * dupGroup links each clone to its original). Used by tail
     * duplication.
     *
     * @return the new block's id
     */
    BlockId cloneBlock(BlockId src);

    /** @return block @p id; asserts it exists. */
    BasicBlock &block(BlockId id);
    const BasicBlock &block(BlockId id) const;

    /** @return number of block ids allocated (including removed). */
    size_t numBlockIds() const { return blocks_.size(); }

    /** @return true if @p id names a live block. */
    bool hasBlock(BlockId id) const;

    /** Visit every live block in id order. */
    template <typename Fn>
    void
    forEachBlock(Fn &&fn) const
    {
        for (const auto &b : blocks_) {
            if (b)
                fn(*b);
        }
    }

    /** Visit every live block in id order (mutable). */
    template <typename Fn>
    void
    forEachBlockMut(Fn &&fn)
    {
        for (auto &b : blocks_) {
            if (b)
                fn(*b);
        }
    }

    /** @return ids of all live blocks, ascending. */
    std::vector<BlockId> blockIds() const;

    /** @return the entry block id. */
    BlockId entry() const { return entry_; }

    /** Set the entry block. */
    void setEntry(BlockId id);

    /** Append a non-terminator op to @p id (fills op id and home). */
    Op &appendOp(BlockId id, Op op);

    /** Append the terminator to @p id (fills op id and home). */
    Op &appendTerminator(BlockId id, Op op);

    /** Replace the terminator of @p id. */
    void replaceTerminator(BlockId id, Op op);

    /**
     * Retarget one edge: the first occurrence of @p old_to in
     * @p from's terminator targets becomes @p new_to.
     */
    void retargetEdge(BlockId from, BlockId old_to, BlockId new_to);

    /** Remove an unreachable block (asserts it has no preds). */
    void removeBlock(BlockId id);

    /**
     * Remove every block not reachable from the entry (e.g. originals
     * orphaned by tail duplication). @return ids removed.
     */
    std::vector<BlockId> removeUnreachableBlocks();

    /** Deep-copy this function (same block/op ids and registers). */
    Function clone() const;

    /** Mark predecessor lists stale after a manual terminator edit. */
    void invalidatePreds() { preds_valid_ = false; }

    /** @return predecessors of @p id (rebuilding if stale). */
    const std::vector<BlockId> &predsOf(BlockId id);

    /** @return true if @p id has more than one predecessor. */
    bool isMergePoint(BlockId id);

    /** Allocate a fresh virtual GPR. */
    Reg freshGpr() { return gpr(next_gpr_++); }

    /** Allocate a fresh virtual predicate register. */
    Reg freshPred() { return pred(next_pred_++); }

    /** Allocate a fresh virtual branch target register. */
    Reg freshBtr() { return btr(next_btr_++); }

    /** Allocate a fresh op id. */
    OpId freshOpId() { return next_op_id_++; }

    /** Allocate a fresh tail-duplication group id. */
    uint32_t freshDupGroup() { return next_dup_group_++; }

    /** @return one-past-the-max virtual GPR index. */
    uint32_t numGprs() const { return next_gpr_; }

    /** @return one-past-the-max virtual predicate index. */
    uint32_t numPreds() const { return next_pred_; }

    /** @return one-past-the-max branch-target register index. */
    uint32_t numBtrs() const { return next_btr_; }

    /** Reserve register name space at least up to the given counts. */
    void reserveRegs(uint32_t gprs, uint32_t preds, uint32_t btrs);

    /** @return total op count over live blocks. */
    size_t totalOps() const;

  private:
    void rebuildPreds();

    std::string name_;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
    BlockId entry_ = kNoBlock;
    bool preds_valid_ = false;
    uint32_t next_gpr_ = 0;
    uint32_t next_pred_ = 0;
    uint32_t next_btr_ = 0;
    OpId next_op_id_ = 0;
    uint32_t next_dup_group_ = 1;
};

} // namespace treegion::ir

#endif // TREEGION_IR_FUNCTION_H
