#include "ir/op.h"

#include "support/logging.h"
#include "support/string_utils.h"

namespace treegion::ir {

std::string
Reg::str() const
{
    const char *prefix = "r";
    if (cls == RegClass::Pred)
        prefix = "p";
    else if (cls == RegClass::Btr)
        prefix = "b";
    return support::strprintf("%s%u", prefix, idx);
}

std::string
Operand::str() const
{
    if (isReg())
        return reg.str();
    return support::strprintf("%lld", static_cast<long long>(imm));
}

std::vector<Reg>
Op::usedRegs() const
{
    std::vector<Reg> regs;
    for (const Operand &src : srcs) {
        if (src.isReg())
            regs.push_back(src.reg);
    }
    if (guard)
        regs.push_back(*guard);
    return regs;
}

void
Op::renameUses(Reg from, Reg to)
{
    for (Operand &src : srcs) {
        if (src.isReg() && src.reg == from)
            src.reg = to;
    }
    if (guard && *guard == from)
        guard = to;
}

void
Op::renameDefs(Reg from, Reg to)
{
    for (Reg &dst : dsts) {
        if (dst == from)
            dst = to;
    }
}

std::string
Op::str() const
{
    std::string out;
    // Destinations.
    for (size_t i = 0; i < dsts.size(); ++i) {
        if (i)
            out += ",";
        out += dsts[i].str();
    }
    if (!dsts.empty())
        out += " = ";

    // Mnemonic.
    out += std::string(opcodeName(opcode));
    if (opcode == Opcode::CMPP || opcode == Opcode::CMPPA ||
        opcode == Opcode::CMPPO) {
        out += ".";
        out += std::string(cmpKindName(cmp));
    }

    // Operands, opcode-specific forms first.
    if (opcode == Opcode::LD) {
        out += support::strprintf(" [%s + %lld]", srcs[0].str().c_str(),
                                  static_cast<long long>(srcs[1].imm));
    } else if (opcode == Opcode::ST) {
        out += support::strprintf(" [%s + %lld], %s", srcs[0].str().c_str(),
                                  static_cast<long long>(srcs[1].imm),
                                  srcs[2].str().c_str());
    } else {
        for (size_t i = 0; i < srcs.size(); ++i) {
            out += (i ? ", " : " ");
            out += srcs[i].str();
        }
    }

    // Branch / PBR targets.
    if (opcode == Opcode::MWBR) {
        out += " [";
        for (size_t i = 0; i < targets.size(); ++i) {
            if (i)
                out += ", ";
            out += support::strprintf(
                "%lld:", static_cast<long long>(caseValues[i]));
            out += targets[i] == kNoBlock
                       ? "fallthru"
                       : support::strprintf("bb%u", targets[i]);
        }
        out += "]";
    } else {
        for (size_t i = 0; i < targets.size(); ++i) {
            out += (srcs.empty() && i == 0) ? " " : ", ";
            out += targets[i] == kNoBlock
                       ? "fallthru"
                       : support::strprintf("bb%u", targets[i]);
        }
    }

    if (guard)
        out += " ? " + guard->str();
    return out;
}

Op
makeMovi(Reg dst, int64_t imm)
{
    Op op;
    op.opcode = Opcode::MOVI;
    op.dsts = {dst};
    op.srcs = {Operand::makeImm(imm)};
    return op;
}

Op
makeBinary(Opcode opcode, Reg dst, Operand a, Operand b)
{
    TG_ASSERT(opcodeInfo(opcode).numSrcs == 2 &&
              !opcodeInfo(opcode).isBranch && opcode != Opcode::CMPP &&
              !opcodeInfo(opcode).isLoad);
    Op op;
    op.opcode = opcode;
    op.dsts = {dst};
    op.srcs = {a, b};
    return op;
}

Op
makeMov(Reg dst, Reg src)
{
    Op op;
    op.opcode = Opcode::MOV;
    op.dsts = {dst};
    op.srcs = {Operand::makeReg(src)};
    return op;
}

Op
makeCopy(Reg dst, Reg src)
{
    Op op;
    op.opcode = Opcode::COPY;
    op.dsts = {dst};
    op.srcs = {Operand::makeReg(src)};
    return op;
}

Op
makeLoad(Reg dst, Reg base, int64_t offset)
{
    Op op;
    op.opcode = Opcode::LD;
    op.dsts = {dst};
    op.srcs = {Operand::makeReg(base), Operand::makeImm(offset)};
    return op;
}

Op
makeStore(Reg base, int64_t offset, Operand value)
{
    Op op;
    op.opcode = Opcode::ST;
    op.srcs = {Operand::makeReg(base), Operand::makeImm(offset), value};
    return op;
}

Op
makeCmpp(CmpKind kind, Reg pt, Reg pf, Operand a, Operand b)
{
    TG_ASSERT(pt.cls == RegClass::Pred && pf.cls == RegClass::Pred);
    Op op;
    op.opcode = Opcode::CMPP;
    op.cmp = kind;
    op.dsts = {pt, pf};
    op.srcs = {a, b};
    return op;
}

Op
makeCmpp1(CmpKind kind, Reg pt, Operand a, Operand b)
{
    TG_ASSERT(pt.cls == RegClass::Pred);
    Op op;
    op.opcode = Opcode::CMPP;
    op.cmp = kind;
    op.dsts = {pt};
    op.srcs = {a, b};
    return op;
}

Op
makeBru(BlockId target)
{
    Op op;
    op.opcode = Opcode::BRU;
    op.targets = {target};
    return op;
}

Op
makeBrct(Reg pred_reg, BlockId taken, BlockId fall)
{
    TG_ASSERT(pred_reg.cls == RegClass::Pred);
    Op op;
    op.opcode = Opcode::BRCT;
    op.srcs = {Operand::makeReg(pred_reg)};
    op.targets = {taken, fall};
    return op;
}

Op
makeMwbr(Reg selector, std::vector<BlockId> targets)
{
    TG_ASSERT(!targets.empty());
    Op op;
    op.opcode = Opcode::MWBR;
    op.srcs = {Operand::makeReg(selector)};
    op.caseValues.resize(targets.size());
    for (size_t i = 0; i < targets.size(); ++i)
        op.caseValues[i] = static_cast<int64_t>(i);
    op.targets = std::move(targets);
    return op;
}

Op
makeRet(Operand result)
{
    Op op;
    op.opcode = Opcode::RET;
    op.srcs = {result};
    return op;
}

Op
makePbr(Reg btr_reg, BlockId target)
{
    TG_ASSERT(btr_reg.cls == RegClass::Btr);
    Op op;
    op.opcode = Opcode::PBR;
    op.dsts = {btr_reg};
    op.targets = {target};
    return op;
}

} // namespace treegion::ir
