/**
 * @file
 * Convenience builder for constructing IR functions.
 *
 * Used by the workload generators, the examples and the tests. The
 * builder keeps an insert point (a block without a terminator yet),
 * allocates fresh virtual registers for results, and provides
 * composite emitters such as condBr (CMPP + BRCT).
 */

#ifndef TREEGION_IR_BUILDER_H
#define TREEGION_IR_BUILDER_H

#include "ir/function.h"

namespace treegion::ir {

/** Fluent construction helper over a Function. */
class Builder
{
  public:
    /** Build into @p fn. */
    explicit Builder(Function &fn) : fn_(fn) {}

    /** @return the function being built. */
    Function &fn() { return fn_; }

    /** Create a block (does not move the insert point). */
    BlockId newBlock() { return fn_.createBlock(); }

    /** Move the insert point to @p id. */
    void
    setInsertPoint(BlockId id)
    {
        cur_ = id;
    }

    /** @return the current insert block. */
    BlockId insertPoint() const { return cur_; }

    /** Emit dst = imm and @return dst. */
    Reg movi(int64_t imm);

    /** Emit dst = src and @return dst. */
    Reg mov(Reg src);

    /** Emit a binary computation and @return its dest. */
    Reg binary(Opcode opcode, Operand a, Operand b);

    /** Emit dst = mem[base + offset] and @return dst. */
    Reg load(Reg base, int64_t offset);

    /** Emit mem[base + offset] = value. */
    void store(Reg base, int64_t offset, Operand value);

    /** Emit p = cmp(a, b) and @return p. */
    Reg cmpp(CmpKind kind, Operand a, Operand b);

    /** Terminate with BRU @p target. */
    void bru(BlockId target);

    /** Terminate with BRCT @p pred_reg, @p taken, @p fall. */
    void brct(Reg pred_reg, BlockId taken, BlockId fall);

    /**
     * Emit CMPP(kind, a, b) then terminate with BRCT to @p taken /
     * @p fall.
     */
    void condBr(CmpKind kind, Operand a, Operand b, BlockId taken,
                BlockId fall);

    /** Terminate with a dense MWBR over @p targets. */
    void mwbr(Reg selector, std::vector<BlockId> targets);

    /** Terminate with RET @p result. */
    void ret(Operand result);

    /** Shorthand register-or-immediate helpers. */
    static Operand R(Reg r) { return Operand::makeReg(r); }
    static Operand I(int64_t v) { return Operand::makeImm(v); }

  private:
    Function &fn_;
    BlockId cur_ = kNoBlock;
};

} // namespace treegion::ir

#endif // TREEGION_IR_BUILDER_H
