/**
 * @file
 * A module: a named collection of functions plus the data memory
 * image the simulator runs against.
 */

#ifndef TREEGION_IR_MODULE_H
#define TREEGION_IR_MODULE_H

#include <memory>
#include <string>
#include <vector>

#include "ir/function.h"

namespace treegion::ir {

/** Top-level IR container. */
class Module
{
  public:
    /** Construct an empty module named @p name. */
    explicit Module(std::string name);

    /** @return the module name. */
    const std::string &name() const { return name_; }

    /** Create a function named @p fn_name and @return a reference. */
    Function &createFunction(std::string fn_name);

    /** @return the function named @p fn_name; asserts it exists. */
    Function &function(const std::string &fn_name);
    const Function &function(const std::string &fn_name) const;

    /** @return true when a function with that name exists. */
    bool hasFunction(const std::string &fn_name) const;

    /** @return all functions in creation order. */
    std::vector<std::unique_ptr<Function>> &functions() {
        return functions_;
    }
    const std::vector<std::unique_ptr<Function>> &functions() const {
        return functions_;
    }

    /** Words of simulated data memory programs in this module use. */
    size_t memWords() const { return mem_words_; }

    /** Set the simulated data memory size. */
    void setMemWords(size_t words) { mem_words_ = words; }

  private:
    std::string name_;
    std::vector<std::unique_ptr<Function>> functions_;
    size_t mem_words_ = 4096;
};

} // namespace treegion::ir

#endif // TREEGION_IR_MODULE_H
