#include "ir/verifier.h"

#include <unordered_map>
#include <unordered_set>

#include "support/logging.h"
#include "support/string_utils.h"

namespace treegion::ir {

namespace {

using support::strprintf;

class Verifier
{
  public:
    Verifier(Function &fn, VerifyLevel level) : fn_(fn), level_(level) {}

    std::vector<std::string>
    run()
    {
        if (fn_.entry() == kNoBlock || !fn_.hasBlock(fn_.entry())) {
            err("missing entry block");
            return problems_;
        }
        fn_.forEachBlock([&](const BasicBlock &b) { checkBlock(b); });
        checkReachability();
        if (level_ == VerifyLevel::Schedulable)
            fn_.forEachBlock(
                [&](const BasicBlock &b) { checkSchedulable(b); });
        return problems_;
    }

  private:
    void
    err(std::string msg)
    {
        problems_.push_back(std::move(msg));
    }

    void
    checkBlock(const BasicBlock &b)
    {
        const auto where = [&](const Op &op) {
            return strprintf("bb%u op%u (%s)", b.id(), op.id,
                             op.str().c_str());
        };

        if (!b.hasTerminator()) {
            err(strprintf("bb%u: no terminator", b.id()));
            return;
        }

        for (size_t i = 0; i < b.ops().size(); ++i) {
            const Op &op = b.ops()[i];
            const bool is_last = (i + 1 == b.ops().size());
            if (op.isBranch() != is_last)
                err(where(op) + ": branch op must be the terminator");
            if (op.home != b.id())
                err(where(op) + ": op.home does not match its block");
            if (!op_ids_.insert(op.id).second)
                err(where(op) + ": duplicate op id");
            checkOpShape(b, op);
        }

        const Op &term = b.terminator();
        for (BlockId target : term.targets) {
            if (target == kNoBlock)
                err(strprintf("bb%u: fallthru target outside a region "
                              "schedule", b.id()));
            else if (!fn_.hasBlock(target))
                err(strprintf("bb%u: branch to dead block bb%u", b.id(),
                              target));
        }
        if (!b.edgeWeights().empty() &&
            b.edgeWeights().size() != term.targets.size()) {
            err(strprintf("bb%u: edge weight count %zu != target count "
                          "%zu", b.id(), b.edgeWeights().size(),
                          term.targets.size()));
        }
    }

    void
    checkOpShape(const BasicBlock &b, const Op &op)
    {
        const OpcodeInfo &info = opcodeInfo(op.opcode);
        const auto where = [&]() {
            return strprintf("bb%u op%u (%s)", b.id(), op.id,
                             op.str().c_str());
        };

        // Destination count and classes.
        if (op.opcode == Opcode::CMPP) {
            if (op.dsts.empty() || op.dsts.size() > 2)
                err(where() + ": CMPP needs 1 or 2 destinations");
            for (const Reg &d : op.dsts) {
                if (d.cls != RegClass::Pred)
                    err(where() + ": CMPP destination must be predicate");
            }
        } else if (op.opcode == Opcode::PSET ||
                   op.opcode == Opcode::PCLR ||
                   op.opcode == Opcode::CMPPA ||
                   op.opcode == Opcode::CMPPO) {
            if (op.dsts.size() != 1 ||
                op.dsts[0].cls != RegClass::Pred) {
                err(where() + ": predicate-define needs one predicate "
                              "destination");
            }
        } else if (static_cast<int>(op.dsts.size()) != info.numDsts) {
            err(where() + ": wrong destination count");
        }
        if (op.opcode == Opcode::PBR && !op.dsts.empty() &&
            op.dsts[0].cls != RegClass::Btr) {
            err(where() + ": PBR destination must be a BTR");
        }
        if (!op.dsts.empty() && op.opcode != Opcode::CMPP &&
            op.opcode != Opcode::PSET && op.opcode != Opcode::PCLR &&
            op.opcode != Opcode::CMPPA && op.opcode != Opcode::CMPPO &&
            op.opcode != Opcode::PBR && op.dsts[0].cls != RegClass::Gpr) {
            err(where() + ": destination must be a GPR");
        }

        // Source count and classes.
        if (static_cast<int>(op.srcs.size()) != info.numSrcs)
            err(where() + ": wrong source count");
        if (op.opcode == Opcode::MOVI && !op.srcs.empty() &&
            !op.srcs[0].isImm()) {
            err(where() + ": MOVI source must be immediate");
        }
        if ((op.isLoad() || op.isStore()) && op.srcs.size() >= 2) {
            if (!op.srcs[0].isReg() || op.srcs[0].reg.cls != RegClass::Gpr)
                err(where() + ": memory base must be a GPR");
            if (!op.srcs[1].isImm())
                err(where() + ": memory offset must be immediate");
        }
        if ((op.opcode == Opcode::BRCT || op.opcode == Opcode::BRCF) &&
            !op.srcs.empty() &&
            (!op.srcs[0].isReg() ||
             op.srcs[0].reg.cls != RegClass::Pred)) {
            err(where() + ": branch condition must be a predicate");
        }
        if (op.guard && op.guard->cls != RegClass::Pred)
            err(where() + ": guard must be a predicate register");

        // Branch target arity.
        switch (op.opcode) {
          case Opcode::BRU:
            if (op.targets.size() != 1)
                err(where() + ": BRU needs exactly one target");
            break;
          case Opcode::BRCT:
          case Opcode::BRCF:
            if (op.targets.empty() || op.targets.size() > 2)
                err(where() + ": BRCT/BRCF need 1 or 2 targets");
            break;
          case Opcode::MWBR:
            if (op.targets.empty())
                err(where() + ": MWBR needs targets");
            if (op.targets.size() != op.caseValues.size())
                err(where() + ": MWBR case/target count mismatch");
            break;
          case Opcode::RET:
            if (!op.targets.empty())
                err(where() + ": RET takes no targets");
            break;
          case Opcode::PBR:
            if (op.targets.size() != 1)
                err(where() + ": PBR needs exactly one target");
            break;
          default:
            if (!op.targets.empty())
                err(where() + ": non-branch op with targets");
            break;
        }
    }

    void
    checkReachability()
    {
        std::unordered_set<BlockId> seen;
        std::vector<BlockId> stack = {fn_.entry()};
        while (!stack.empty()) {
            const BlockId id = stack.back();
            stack.pop_back();
            if (!seen.insert(id).second)
                continue;
            if (!fn_.hasBlock(id))
                continue;
            for (BlockId succ : fn_.block(id).successors()) {
                if (succ != kNoBlock)
                    stack.push_back(succ);
            }
        }
        fn_.forEachBlock([&](const BasicBlock &b) {
            if (!seen.count(b.id()))
                err(strprintf("bb%u unreachable from entry", b.id()));
        });
    }

    /** Scheduler input preconditions. */
    void
    checkSchedulable(const BasicBlock &b)
    {
        // Collect predicate defs in this block.
        std::unordered_map<uint32_t, size_t> pred_def_idx;
        for (size_t i = 0; i < b.ops().size(); ++i) {
            const Op &op = b.ops()[i];
            if (op.guard) {
                err(strprintf("bb%u op%u: guards are a scheduler "
                              "output, not an input", b.id(), op.id));
            }
            if (op.opcode == Opcode::PBR || op.opcode == Opcode::PSET ||
                op.opcode == Opcode::PCLR ||
                op.opcode == Opcode::CMPPA ||
                op.opcode == Opcode::CMPPO) {
                err(strprintf("bb%u op%u: %s is a scheduler output",
                              b.id(), op.id,
                              std::string(opcodeName(op.opcode))
                                  .c_str()));
            }
            if (op.opcode == Opcode::CMPP) {
                if (op.dsts.size() != 1) {
                    err(strprintf("bb%u op%u: sequential CMPP must have "
                                  "one destination", b.id(), op.id));
                }
                for (const Reg &d : op.dsts)
                    pred_def_idx[d.idx] = i;
            }
            // Predicate uses may only be block terminator conditions.
            if (!op.isBranch()) {
                for (const Reg &use : op.usedRegs()) {
                    if (use.cls == RegClass::Pred)
                        err(strprintf("bb%u op%u: predicate used by a "
                                      "non-branch op", b.id(), op.id));
                }
            }
        }
        const Op &term = b.terminator();
        if (term.opcode == Opcode::BRCT || term.opcode == Opcode::BRCF) {
            if (term.targets.size() != 2) {
                err(strprintf("bb%u: sequential conditional branch "
                              "needs taken and fall targets", b.id()));
            }
            const Reg cond = term.srcs[0].reg;
            if (!pred_def_idx.count(cond.idx)) {
                err(strprintf("bb%u: branch condition p%u not defined "
                              "by a CMPP in the same block", b.id(),
                              cond.idx));
            }
        }
        if (term.opcode == Opcode::MWBR) {
            for (size_t i = 0; i < term.caseValues.size(); ++i) {
                if (term.caseValues[i] != static_cast<int64_t>(i))
                    err(strprintf("bb%u: sequential MWBR cases must be "
                                  "dense 0..n-1", b.id()));
            }
        }
    }

    Function &fn_;
    VerifyLevel level_;
    std::vector<std::string> problems_;
    std::unordered_set<OpId> op_ids_;
};

} // namespace

std::vector<std::string>
verifyFunction(Function &fn, VerifyLevel level)
{
    return Verifier(fn, level).run();
}

void
verifyOrDie(Function &fn, VerifyLevel level)
{
    auto problems = verifyFunction(fn, level);
    if (!problems.empty()) {
        TG_PANIC("IR verification failed for %s: %s (and %zu more)",
                 fn.name().c_str(), problems.front().c_str(),
                 problems.size() - 1);
    }
}

} // namespace treegion::ir
