/**
 * @file
 * The four treegion scheduling heuristics (paper Section 3).
 *
 * Each heuristic is a sort of the DDG nodes that the list scheduler
 * consults in order:
 *
 *  - DependenceHeight (critical path): height, descending.
 *  - ExitCount (speculative hedge's helped count): number of region
 *    exits at or below the op's home block, then height.
 *  - GlobalWeight (speculative hedge's helped weight; in a tree the
 *    weight of all exits reached through an op equals its home
 *    block's profile weight): weight, then height.
 *  - WeightedCount: weight, then exit count, then height.
 *
 * All ties finally break on lowering order, keeping schedules
 * deterministic.
 */

#ifndef TREEGION_SCHED_PRIORITY_H
#define TREEGION_SCHED_PRIORITY_H

#include <string>
#include <vector>

#include "ir/function.h"
#include "sched/ddg.h"
#include "sched/lowering.h"

namespace treegion::sched {

/** Priority heuristics for treegion scheduling. */
enum class Heuristic {
    DependenceHeight,
    ExitCount,
    GlobalWeight,
    WeightedCount,
};

/** @return display name, e.g. "global-weight". */
std::string heuristicName(Heuristic heuristic);

/** All four heuristics, in the paper's presentation order. */
inline constexpr Heuristic kAllHeuristics[] = {
    Heuristic::DependenceHeight,
    Heuristic::ExitCount,
    Heuristic::GlobalWeight,
    Heuristic::WeightedCount,
};

/** Per-op priority keys. */
struct PriorityKeys
{
    int height = 0;
    size_t exit_count = 0;
    double weight = 0.0;
};

/**
 * Compute priority keys for every lowered op, allocated in @p arena.
 * Exit counts follow the paper's definition — the number of region
 * exits that follow the op's home block in (region-internal) control
 * flow — generalized through the region's internal successor
 * structure so it also covers DAG regions.
 *
 * @return an array of lowered.ops.size() keys, arena lifetime
 */
const PriorityKeys *computePriorityKeys(ir::Function &fn,
                                        const LoweredRegion &lowered,
                                        const RegionIndex &index,
                                        const Ddg &ddg,
                                        support::Arena &arena);

/**
 * The paper's sortDDGNodesBy*** step: @return an arena array of @p n
 * lowered-op indices in decreasing priority under @p heuristic.
 */
uint32_t *sortByPriority(const PriorityKeys *keys, size_t n,
                         Heuristic heuristic, support::Arena &arena);

} // namespace treegion::sched

#endif // TREEGION_SCHED_PRIORITY_H
