#include "sched/schedule.h"

#include <sstream>

#include "support/logging.h"

namespace treegion::sched {

std::string
RegionSchedule::str(int issue_width) const
{
    // Collect cell text per (cycle, slot).
    std::vector<std::vector<std::string>> grid(
        static_cast<size_t>(length),
        std::vector<std::string>(static_cast<size_t>(issue_width)));
    for (const ScheduledOp &sop : ops) {
        TG_ASSERT(sop.cycle < length && sop.slot < issue_width);
        std::string text = sop.op.str();
        if (sop.speculative)
            text += " *";
        grid[sop.cycle][sop.slot] = std::move(text);
    }

    std::vector<size_t> widths(static_cast<size_t>(issue_width), 5);
    for (const auto &row : grid) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    for (int cyc = 0; cyc < length; ++cyc) {
        os << cyc << ":";
        for (size_t c = 0; c < grid[cyc].size(); ++c) {
            os << " | " << grid[cyc][c]
               << std::string(widths[c] - grid[cyc][c].size(), ' ');
        }
        os << " |\n";
    }
    return os.str();
}

} // namespace treegion::sched
