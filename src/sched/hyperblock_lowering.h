/**
 * @file
 * Hyperblock lowering: if-conversion of a single-entry acyclic DAG
 * region into the flat, predicated op soup the list scheduler
 * consumes (the same LoweredRegion the treegion lowering produces, so
 * the DDG and scheduler are shared).
 *
 * Differences from the tree lowering:
 *
 *  - Block predicates are per-block registers rather than flat
 *    condition lists: an edge predicate is pred(block) AND the edge's
 *    branch condition (an and-type chain), and a merge block's
 *    predicate is the wired-OR (PCLR + or-type compares) of its
 *    incoming edge predicates. Edge predicates of distinct edges are
 *    mutually exclusive, which keeps exits unambiguous.
 *
 *  - Register state merges. When paths with different renamings join,
 *    the lowering inserts one guarded MOV per incoming edge into a
 *    fresh register (a predicated select), for every architectural
 *    register that is live into the join and renamed differently on
 *    the incoming paths. The guards are the (exclusive) edge
 *    predicates, so exactly one MOV fires per execution.
 */

#ifndef TREEGION_SCHED_HYPERBLOCK_LOWERING_H
#define TREEGION_SCHED_HYPERBLOCK_LOWERING_H

#include "sched/lowering.h"

namespace treegion::sched {

/**
 * Lower the hyperblock @p r for scheduling.
 *
 * @param fn the function (fresh registers are allocated from it)
 * @param r a RegionKind::Hyperblock region
 * @param live liveness for @p fn (exit copies and merge selects)
 */
LoweredRegion lowerHyperblock(ir::Function &fn, const region::Region &r,
                              const analysis::Liveness &live);

} // namespace treegion::sched

#endif // TREEGION_SCHED_HYPERBLOCK_LOWERING_H
