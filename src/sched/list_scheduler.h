/**
 * @file
 * Cycle-driven list scheduler for lowered regions (paper Fig. 3).
 *
 * The three-step process: the DDG is built by Ddg, the nodes are
 * sorted by a Heuristic, and this scheduler walks cycles placing the
 * highest-priority ready ops into the machine's issue slots. Every
 * computation op may be speculated (renaming already removed the
 * hazards); guarded stores and exit branches are held back only by
 * their DDG edges.
 *
 * Dominator parallelism (paper Section 4): when an op carrying a
 * tail-duplication group becomes ready and an identical group member
 * (same opcode and identical renamed sources) has already been
 * scheduled in a position that also satisfies this op's memory
 * ordering edges, the op is elided — its destination is aliased to
 * the scheduled twin's and it consumes no issue slot.
 */

#ifndef TREEGION_SCHED_LIST_SCHEDULER_H
#define TREEGION_SCHED_LIST_SCHEDULER_H

#include "sched/machine_model.h"
#include "sched/priority.h"
#include "sched/schedule.h"
#include "support/metrics.h"

namespace treegion::sched {

/** Scheduling options. */
struct SchedOptions
{
    Heuristic heuristic = Heuristic::GlobalWeight;

    /** Elide duplicated ops speculated into a dominator. */
    bool dominator_parallelism = true;

    /** Materialize PBR ops for exit branches (see LowerOptions). */
    bool materialize_pbr = false;
};

/**
 * Schedule one lowered region (any region type: the lowering carries
 * the region's internal control structure).
 *
 * @param fn the function
 * @param lowered lowered ops; consumed (ops are rewritten by
 *        dominator-parallelism elision)
 * @param model the target machine
 * @param options heuristic and feature flags
 */
RegionSchedule scheduleLoweredRegion(ir::Function &fn,
                                     LoweredRegion lowered,
                                     const MachineModel &model,
                                     const SchedOptions &options);

/**
 * Convenience wrapper: lower @p r then schedule it.
 */
RegionSchedule scheduleRegion(ir::Function &fn, const region::Region &r,
                              const analysis::Liveness &live,
                              const MachineModel &model,
                              const SchedOptions &options);

/**
 * Run the scheduling hot path only — DDG construction, priority
 * sorting and op placement — without assembling a RegionSchedule.
 * Placement results stay in the per-job arena, so a warmed-up call
 * performs zero heap allocations; tests/alloc_regression_test.cc
 * pins that property.
 *
 * @return the schedule length in cycles (same value a full run's
 *         RegionSchedule::length would have)
 */
int runPlacementProbe(ir::Function &fn, LoweredRegion lowered,
                      const MachineModel &model,
                      const SchedOptions &options);

/**
 * Report the scheduler's per-thread arena statistics (aggregated over
 * all threads that ever scheduled) into @p metrics:
 * sched.arena.jobs, sched.arena.high_water_bytes,
 * sched.arena.capacity_bytes.
 */
void reportArenaMetrics(support::MetricsRegistry &metrics);

/**
 * @return the calling thread's scheduling-arena high-water mark in
 * bytes (0 if this thread never scheduled). Per-thread, not global:
 * the per-stage memory telemetry in PipelineResult reads this right
 * after the schedule stage it measures.
 */
uint64_t schedArenaHighWaterBytes();

/**
 * Return the calling thread's scheduling arena to the allocator
 * (support::Arena::trim). Memory-budgeted drivers call this after
 * every job, before releasing the job's gate reservation, so a
 * worker's retained arena cannot accumulate outside the budget; the
 * next job on this thread regrows the arena from scratch.
 */
void schedArenaTrim();

} // namespace treegion::sched

#endif // TREEGION_SCHED_LIST_SCHEDULER_H
