/**
 * @file
 * Dense index over a lowered region for the scheduling hot path.
 *
 * LoweredRegion keeps its control structure as hash maps keyed by
 * BlockId, which is the right shape for construction but too slow for
 * the DDG/priority inner loops. RegionIndex renumbers the region's
 * member blocks as contiguous small integers and rebuilds the
 * per-block facts (in-region successors, homed ops, exits) as CSR
 * arrays in a per-job arena — every lookup the DDG walks and the
 * priority pass perform becomes an array index (DESIGN.md §11).
 */

#ifndef TREEGION_SCHED_REGION_INDEX_H
#define TREEGION_SCHED_REGION_INDEX_H

#include <cstdint>

#include "sched/lowering.h"
#include "support/arena.h"

namespace treegion::sched {

/** Dense block renumbering + CSR side tables for one lowered region. */
class RegionIndex
{
  public:
    static constexpr uint32_t kInvalid = UINT32_MAX;

    RegionIndex(const LoweredRegion &lowered, support::Arena &arena);

    /** @return member block count. */
    size_t numBlocks() const { return num_blocks_; }

    /** @return dense index of @p id, or kInvalid for non-members. */
    uint32_t
    indexOf(ir::BlockId id) const
    {
        return id < map_size_ ? block_index_[id] : kInvalid;
    }

    /** @return the BlockId of dense index @p bi. */
    ir::BlockId blockOf(uint32_t bi) const { return blocks_[bi]; }

    /** In-region successors of @p bi (dense indices, lowering order). */
    support::Span<uint32_t>
    succs(uint32_t bi) const
    {
        return {succ_list_ + succ_off_[bi],
                succ_off_[bi + 1] - succ_off_[bi]};
    }

    /** Lowered-op indices homed in @p bi, in emission order. */
    support::Span<uint32_t>
    opsIn(uint32_t bi) const
    {
        return {op_list_ + op_off_[bi], op_off_[bi + 1] - op_off_[bi]};
    }

    /** LoweredRegion::exits indices homed in @p bi, in exit order. */
    support::Span<uint32_t>
    exitsIn(uint32_t bi) const
    {
        return {exit_list_ + exit_off_[bi],
                exit_off_[bi + 1] - exit_off_[bi]};
    }

    /**
     * Append every block reachable from @p bi through in-region
     * successors — including @p bi — to @p out, in the exact order
     * LoweredRegion::reachableFrom() produces for the same block.
     * Scratch comes from the index's arena.
     */
    void reachableFrom(uint32_t bi,
                       support::ArenaVector<uint32_t> &out) const;

  private:
    support::Arena *arena_;
    size_t num_blocks_ = 0;
    size_t map_size_ = 0;         ///< block_index_ length
    uint32_t *block_index_ = nullptr;
    ir::BlockId *blocks_ = nullptr;
    uint32_t *succ_off_ = nullptr;
    uint32_t *succ_list_ = nullptr;
    uint32_t *op_off_ = nullptr;
    uint32_t *op_list_ = nullptr;
    uint32_t *exit_off_ = nullptr;
    uint32_t *exit_list_ = nullptr;
};

} // namespace treegion::sched

#endif // TREEGION_SCHED_REGION_INDEX_H
