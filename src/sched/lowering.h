/**
 * @file
 * Region lowering: turn a tree region of sequential IR into the flat,
 * fully predicated, fully renamed op soup the list scheduler works
 * on.
 *
 * The transformation implements the paper's scheduling model:
 *
 *  - Path predicates. Every block in the region gets a path
 *    predicate; the root's is constant true. Each internal two-way
 *    branch's compare becomes a guarded two-destination CMPP
 *    producing the taken/fall-through path predicates (HPL-PD
 *    unconditional-type semantics: both destinations are written as
 *    guard AND cmp / guard AND NOT cmp, making predicates of distinct
 *    paths mutually exclusive). Internal multiway-branch edges get
 *    one guarded CMPP.EQ each.
 *
 *  - Exits become predicated branches (BRCT on the edge's path
 *    predicate; plain BRU from the root; a single guarded MWBR whose
 *    internal cases are marked fall-through). Several exit branches
 *    may legally share a cycle because at most one path predicate is
 *    true.
 *
 *  - Full compile-time register renaming. Every destination is
 *    renamed to a fresh virtual register and in-region consumers are
 *    rewritten, which removes all anti/output dependences and makes
 *    speculation of any computation op safe. Reconciliation copies
 *    restoring the original registers live into each exit target are
 *    attached to the exits (the paper executes these but excludes
 *    them from the speedup metric).
 *
 *  - Stores are never speculated: they are guarded by their block's
 *    path predicate and pinned to issue no later than any exit in
 *    their subtree.
 */

#ifndef TREEGION_SCHED_LOWERING_H
#define TREEGION_SCHED_LOWERING_H

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/liveness.h"
#include "region/region.h"
#include "sched/schedule.h"

namespace treegion::sched {

/** Classification of a lowered op. */
enum class LoweredKind {
    Computation,  ///< ALU / memory / COPY-like op
    PredDef,      ///< synthesized path-predicate CMPP
    ExitBranch,   ///< predicated region exit (BRCT/BRU/MWBR/RET)
};

/** One op after lowering. */
struct LoweredOp
{
    ir::Op op;              ///< renamed, guarded op
    ir::BlockId home;       ///< region block it came from
    LoweredKind kind = LoweredKind::Computation;
    bool pinned = false;    ///< guarded store: must not move below
                            ///< subtree exits
};

/** Exit metadata prior to scheduling. */
struct LoweredExit
{
    size_t op_index;        ///< index of the exit's branch op
    size_t target_slot;     ///< terminator target slot / MWBR case
    ir::BlockId from;
    ir::BlockId target;     ///< kNoBlock for RET
    bool is_ret = false;
    double weight = 0.0;
    std::vector<ExitCopy> copies;
};

/** Lowering options. */
struct LowerOptions
{
    /**
     * Materialize a PBR (prepare-to-branch) op per block-targeting
     * exit branch, as real Play-Doh code would; the branch then
     * additionally depends on its PBR. Off by default, matching the
     * paper's performance experiments.
     */
    bool materialize_pbr = false;
};

/** A region lowered for scheduling. */
struct LoweredRegion
{
    ir::BlockId root = ir::kNoBlock;
    std::vector<LoweredOp> ops;
    std::vector<LoweredExit> exits;
    /** Extra (pred op index, succ op index) deps, e.g. PBR->branch. */
    std::vector<std::pair<size_t, size_t>> extra_deps;
    size_t renamed_defs = 0;

    /**
     * The region's internal control structure: for each member block,
     * its in-region successors. A tree for treegions/linear regions,
     * a DAG for hyperblocks. The DDG derives memory path order, store
     * pinning, control heights and exit counts from this, so the
     * scheduler is agnostic to the region type that produced the
     * lowering.
     */
    std::unordered_map<ir::BlockId, std::vector<ir::BlockId>>
        succs_in_region;

    /** Blocks reachable from @p id through succs_in_region,
     * including @p id itself. */
    std::vector<ir::BlockId> reachableFrom(ir::BlockId id) const;
};

/**
 * Lower @p r for scheduling.
 *
 * @param fn the function (fresh registers are allocated from it)
 * @param r the region to lower
 * @param live liveness for @p fn (determines exit copies)
 * @param options lowering options
 */
LoweredRegion lowerRegion(ir::Function &fn, const region::Region &r,
                          const analysis::Liveness &live,
                          const LowerOptions &options = {});

} // namespace treegion::sched

#endif // TREEGION_SCHED_LOWERING_H
