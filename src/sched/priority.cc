#include "sched/priority.h"

#include <algorithm>
#include <unordered_map>

#include "support/logging.h"

namespace treegion::sched {

std::string
heuristicName(Heuristic heuristic)
{
    switch (heuristic) {
      case Heuristic::DependenceHeight: return "dep-height";
      case Heuristic::ExitCount: return "exit-count";
      case Heuristic::GlobalWeight: return "global-weight";
      case Heuristic::WeightedCount: return "weighted-count";
    }
    TG_PANIC("bad Heuristic");
}

std::vector<PriorityKeys>
computePriorityKeys(ir::Function &fn, const LoweredRegion &lowered,
                    const Ddg &ddg)
{
    // Exits per home block.
    std::unordered_map<ir::BlockId, size_t> exits_at;
    for (const LoweredExit &exit : lowered.exits)
        ++exits_at[exit.from];

    // Exits at-or-below each block, via region-internal reachability.
    std::unordered_map<ir::BlockId, size_t> exits_below;
    for (const auto &[block, succs] : lowered.succs_in_region) {
        size_t count = 0;
        for (const ir::BlockId reached : lowered.reachableFrom(block)) {
            auto it = exits_at.find(reached);
            if (it != exits_at.end())
                count += it->second;
        }
        exits_below[block] = count;
    }

    std::vector<PriorityKeys> keys(lowered.ops.size());
    for (size_t i = 0; i < lowered.ops.size(); ++i) {
        keys[i].height = ddg.height(i);
        auto it = exits_below.find(lowered.ops[i].home);
        keys[i].exit_count = it == exits_below.end() ? 0 : it->second;
        keys[i].weight = fn.block(lowered.ops[i].home).weight();
    }
    return keys;
}

std::vector<size_t>
sortByPriority(const std::vector<PriorityKeys> &keys, Heuristic heuristic)
{
    std::vector<size_t> order(keys.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    auto cmp = [&](size_t a, size_t b) {
        const PriorityKeys &ka = keys[a];
        const PriorityKeys &kb = keys[b];
        switch (heuristic) {
          case Heuristic::DependenceHeight:
            if (ka.height != kb.height)
                return ka.height > kb.height;
            break;
          case Heuristic::ExitCount:
            if (ka.exit_count != kb.exit_count)
                return ka.exit_count > kb.exit_count;
            if (ka.height != kb.height)
                return ka.height > kb.height;
            break;
          case Heuristic::GlobalWeight:
            if (ka.weight != kb.weight)
                return ka.weight > kb.weight;
            if (ka.height != kb.height)
                return ka.height > kb.height;
            break;
          case Heuristic::WeightedCount:
            if (ka.weight != kb.weight)
                return ka.weight > kb.weight;
            if (ka.exit_count != kb.exit_count)
                return ka.exit_count > kb.exit_count;
            if (ka.height != kb.height)
                return ka.height > kb.height;
            break;
        }
        return a < b;  // stable final tie-break: lowering order
    };
    std::sort(order.begin(), order.end(), cmp);
    return order;
}

} // namespace treegion::sched
