#include "sched/priority.h"

#include <algorithm>

#include "support/logging.h"

namespace treegion::sched {

std::string
heuristicName(Heuristic heuristic)
{
    switch (heuristic) {
      case Heuristic::DependenceHeight: return "dep-height";
      case Heuristic::ExitCount: return "exit-count";
      case Heuristic::GlobalWeight: return "global-weight";
      case Heuristic::WeightedCount: return "weighted-count";
    }
    TG_PANIC("bad Heuristic");
}

const PriorityKeys *
computePriorityKeys(ir::Function &fn, const LoweredRegion &lowered,
                    const RegionIndex &index, const Ddg &ddg,
                    support::Arena &arena)
{
    const size_t num_blocks = index.numBlocks();

    // Exits at-or-below each block, via region-internal reachability.
    size_t *exits_below = arena.allocZeroed<size_t>(num_blocks);
    double *weight_of = arena.allocArray<double>(num_blocks);
    {
        support::ArenaVector<uint32_t> reach(arena);
        for (uint32_t bi = 0; bi < num_blocks; ++bi) {
            reach.clear();
            index.reachableFrom(bi, reach);
            size_t count = 0;
            for (const uint32_t reached : reach)
                count += index.exitsIn(reached).size();
            exits_below[bi] = count;
            weight_of[bi] = fn.block(index.blockOf(bi)).weight();
        }
    }

    PriorityKeys *keys = arena.allocArray<PriorityKeys>(
        lowered.ops.size());
    for (size_t i = 0; i < lowered.ops.size(); ++i) {
        const uint32_t bi = index.indexOf(lowered.ops[i].home);
        keys[i].height = ddg.height(i);
        keys[i].exit_count = exits_below[bi];
        keys[i].weight = weight_of[bi];
    }
    return keys;
}

uint32_t *
sortByPriority(const PriorityKeys *keys, size_t n, Heuristic heuristic,
               support::Arena &arena)
{
    uint32_t *order = arena.allocArray<uint32_t>(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = static_cast<uint32_t>(i);

    auto cmp = [&](uint32_t a, uint32_t b) {
        const PriorityKeys &ka = keys[a];
        const PriorityKeys &kb = keys[b];
        switch (heuristic) {
          case Heuristic::DependenceHeight:
            if (ka.height != kb.height)
                return ka.height > kb.height;
            break;
          case Heuristic::ExitCount:
            if (ka.exit_count != kb.exit_count)
                return ka.exit_count > kb.exit_count;
            if (ka.height != kb.height)
                return ka.height > kb.height;
            break;
          case Heuristic::GlobalWeight:
            if (ka.weight != kb.weight)
                return ka.weight > kb.weight;
            if (ka.height != kb.height)
                return ka.height > kb.height;
            break;
          case Heuristic::WeightedCount:
            if (ka.weight != kb.weight)
                return ka.weight > kb.weight;
            if (ka.exit_count != kb.exit_count)
                return ka.exit_count > kb.exit_count;
            if (ka.height != kb.height)
                return ka.height > kb.height;
            break;
        }
        return a < b;  // stable final tie-break: lowering order
    };
    std::sort(order, order + n, cmp);
    return order;
}

} // namespace treegion::sched
