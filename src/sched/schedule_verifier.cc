#include "sched/schedule_verifier.h"

#include <unordered_map>

#include "support/string_utils.h"
#include "support/trace.h"

namespace treegion::sched {

using support::strprintf;

std::vector<std::string>
verifySchedule(const RegionSchedule &sched, int issue_width)
{
    std::vector<std::string> problems;
    auto err = [&](std::string msg) {
        problems.push_back(std::move(msg));
    };

    // Placement: bounds and slot uniqueness.
    std::unordered_map<int64_t, const ScheduledOp *> slots;
    for (const ScheduledOp &sop : sched.ops) {
        if (sop.cycle < 0 || sop.cycle >= sched.length) {
            err(strprintf("op '%s' at cycle %d outside schedule "
                          "length %d", sop.op.str().c_str(), sop.cycle,
                          sched.length));
        }
        if (sop.slot < 0 || sop.slot >= issue_width) {
            err(strprintf("op '%s' in slot %d on a %d-wide machine",
                          sop.op.str().c_str(), sop.slot, issue_width));
        }
        const int64_t key =
            (static_cast<int64_t>(sop.cycle) << 16) | sop.slot;
        if (slots.count(key)) {
            err(strprintf("two ops share cycle %d slot %d", sop.cycle,
                          sop.slot));
        }
        slots[key] = &sop;
    }

    // Dataflow: readers wait out every writer's latency. Predicates
    // may have several writers (PSET plus and-type compares); readers
    // must follow all of them.
    std::unordered_map<ir::Reg, std::vector<const ScheduledOp *>>
        writers;
    for (const ScheduledOp &sop : sched.ops) {
        for (const ir::Reg &d : sop.op.dsts)
            writers[d].push_back(&sop);
    }
    for (const ScheduledOp &sop : sched.ops) {
        for (const ir::Reg &use : sop.op.usedRegs()) {
            auto it = writers.find(use);
            if (it == writers.end())
                continue;  // live-in register
            for (const ScheduledOp *w : it->second) {
                if (w == &sop)
                    continue;
                if (sop.cycle < w->cycle + w->op.latency()) {
                    err(strprintf(
                        "'%s' (cycle %d) reads %s before '%s' "
                        "(cycle %d, latency %d) completes",
                        sop.op.str().c_str(), sop.cycle,
                        use.str().c_str(), w->op.str().c_str(),
                        w->cycle, w->op.latency()));
                }
            }
        }
    }

    // Exit records point at branches and carry matching cycles.
    for (const ScheduledExit &exit : sched.exits) {
        if (exit.op_index >= sched.ops.size()) {
            err("exit op_index out of range");
            continue;
        }
        const ScheduledOp &branch = sched.ops[exit.op_index];
        if (!branch.op.isBranch())
            err(strprintf("exit points at non-branch '%s'",
                          branch.op.str().c_str()));
        if (exit.cycle != branch.cycle)
            err(strprintf("exit cycle %d != branch cycle %d",
                          exit.cycle, branch.cycle));
    }
    return problems;
}

std::vector<std::string>
verifyFunctionSchedule(const FunctionSchedule &sched, int issue_width)
{
    support::TraceScope span("verify");
    std::vector<std::string> problems;
    for (const auto &[root, rs] : sched.regions) {
        for (std::string &p : verifySchedule(rs, issue_width)) {
            problems.push_back(
                strprintf("region bb%u: %s", root, p.c_str()));
        }
    }
    return problems;
}

} // namespace treegion::sched
