#include "sched/schedule_verifier.h"

#include <unordered_map>
#include <unordered_set>

#include "support/string_utils.h"
#include "support/trace.h"

namespace treegion::sched {

using support::strprintf;

std::vector<std::string>
verifySchedule(const RegionSchedule &sched, int issue_width)
{
    std::vector<std::string> problems;
    auto err = [&](std::string msg) {
        problems.push_back(std::move(msg));
    };

    // Placement: bounds and slot uniqueness.
    std::unordered_map<int64_t, const ScheduledOp *> slots;
    for (const ScheduledOp &sop : sched.ops) {
        if (sop.cycle < 0 || sop.cycle >= sched.length) {
            err(strprintf("op '%s' at cycle %d outside schedule "
                          "length %d", sop.op.str().c_str(), sop.cycle,
                          sched.length));
        }
        if (sop.slot < 0 || sop.slot >= issue_width) {
            err(strprintf("op '%s' in slot %d on a %d-wide machine",
                          sop.op.str().c_str(), sop.slot, issue_width));
        }
        const int64_t key =
            (static_cast<int64_t>(sop.cycle) << 16) | sop.slot;
        if (slots.count(key)) {
            err(strprintf("two ops share cycle %d slot %d", sop.cycle,
                          sop.slot));
        }
        slots[key] = &sop;
    }

    // Dataflow: readers wait out every writer's latency. Predicates
    // may have several writers (PSET plus and-type compares); readers
    // must follow all of them.
    std::unordered_map<ir::Reg, std::vector<const ScheduledOp *>>
        writers;
    for (const ScheduledOp &sop : sched.ops) {
        for (const ir::Reg &d : sop.op.dsts)
            writers[d].push_back(&sop);
    }
    for (const ScheduledOp &sop : sched.ops) {
        for (const ir::Reg &use : sop.op.usedRegs()) {
            auto it = writers.find(use);
            if (it == writers.end()) {
                // GPRs and BTRs may be live into the region, but
                // every predicate is synthesized inside it (path
                // predicates, guards, branch conditions); a predicate
                // read with no in-schedule writer is undefined.
                if (use.cls == ir::RegClass::Pred) {
                    const bool is_guard =
                        sop.op.guard && *sop.op.guard == use;
                    err(strprintf(
                        "'%s' reads %s %s which no scheduled op "
                        "defines",
                        sop.op.str().c_str(),
                        is_guard ? "guard predicate" : "predicate",
                        use.str().c_str()));
                }
                continue;  // live-in register
            }
            for (const ScheduledOp *w : it->second) {
                if (w == &sop)
                    continue;
                if (sop.cycle < w->cycle + w->op.latency()) {
                    err(strprintf(
                        "'%s' (cycle %d) reads %s before '%s' "
                        "(cycle %d, latency %d) completes",
                        sop.op.str().c_str(), sop.cycle,
                        use.str().c_str(), w->op.str().c_str(),
                        w->cycle, w->op.latency()));
                }
            }
        }
    }

    // Memory program order along a path. Two memory ops whose home
    // blocks lie on one root-to-exit path both execute in a single
    // region traversal, so when either is a store they must issue in
    // program order (the DDG's 0-latency slot-ordered edges); a store
    // reordered past a dependent load would silently read or clobber
    // the wrong value. Reachability through succs_in_region decides
    // "same path"; within one home block, op ids ascend in program
    // order (lowering emits blocks front to back with fresh ids).
    std::unordered_map<ir::BlockId, std::unordered_set<ir::BlockId>>
        reach;
    auto reaches = [&](ir::BlockId from, ir::BlockId to) {
        auto [it, fresh] = reach.try_emplace(from);
        if (fresh) {
            std::vector<ir::BlockId> work{from};
            while (!work.empty()) {
                const ir::BlockId cur = work.back();
                work.pop_back();
                if (!it->second.insert(cur).second)
                    continue;
                auto s = sched.succs_in_region.find(cur);
                if (s != sched.succs_in_region.end())
                    work.insert(work.end(), s->second.begin(),
                                s->second.end());
            }
        }
        return it->second.count(to) != 0;
    };
    auto slotBefore = [](const ScheduledOp *a, const ScheduledOp *b) {
        return a->cycle < b->cycle ||
               (a->cycle == b->cycle && a->slot < b->slot);
    };
    std::vector<const ScheduledOp *> mem_ops;
    for (const ScheduledOp &sop : sched.ops) {
        if (sop.op.isMemory())
            mem_ops.push_back(&sop);
    }
    for (size_t i = 0; i < mem_ops.size(); ++i) {
        for (size_t j = i + 1; j < mem_ops.size(); ++j) {
            const ScheduledOp *a = mem_ops[i];
            const ScheduledOp *b = mem_ops[j];
            if (!a->op.isStore() && !b->op.isStore())
                continue;
            const ScheduledOp *first = nullptr;
            const ScheduledOp *second = nullptr;
            if (a->home == b->home) {
                first = a->op.id < b->op.id ? a : b;
                second = first == a ? b : a;
            } else if (reaches(a->home, b->home)) {
                first = a;
                second = b;
            } else if (reaches(b->home, a->home)) {
                first = b;
                second = a;
            } else {
                continue;  // disjoint paths: never both executed
            }
            if (!slotBefore(first, second)) {
                err(strprintf(
                    "memory order violated on a path: '%s' "
                    "(cycle %d slot %d) must issue before '%s' "
                    "(cycle %d slot %d)",
                    first->op.str().c_str(), first->cycle,
                    first->slot, second->op.str().c_str(),
                    second->cycle, second->slot));
            }
        }
    }

    // Exit records point at branches and carry matching cycles.
    for (const ScheduledExit &exit : sched.exits) {
        if (exit.op_index == ScheduledExit::kFallthrough)
            continue;  // no branch op to cross-check
        if (exit.op_index >= sched.ops.size()) {
            err("exit op_index out of range");
            continue;
        }
        const ScheduledOp &branch = sched.ops[exit.op_index];
        if (!branch.op.isBranch())
            err(strprintf("exit points at non-branch '%s'",
                          branch.op.str().c_str()));
        if (exit.cycle != branch.cycle)
            err(strprintf("exit cycle %d != branch cycle %d",
                          exit.cycle, branch.cycle));
    }
    return problems;
}

std::vector<std::string>
verifyFunctionSchedule(const FunctionSchedule &sched, int issue_width)
{
    support::TraceScope span("verify");
    std::vector<std::string> problems;
    for (const auto &[root, rs] : sched.regions) {
        for (std::string &p : verifySchedule(rs, issue_width)) {
            problems.push_back(
                strprintf("region bb%u: %s", root, p.c_str()));
        }
    }
    return problems;
}

} // namespace treegion::sched
