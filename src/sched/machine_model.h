/**
 * @file
 * VLIW machine models.
 *
 * The paper's machines have universal, fully pipelined functional
 * units, so a model is characterized by its issue width plus the
 * opcode latency table (which lives with the opcodes: unit latency
 * except LD=2, FMUL=3, FDIV=9). The study uses a 1-issue baseline
 * (1U) and 4-/8-issue evaluation machines (4U, 8U).
 */

#ifndef TREEGION_SCHED_MACHINE_MODEL_H
#define TREEGION_SCHED_MACHINE_MODEL_H

#include <string>

namespace treegion::sched {

/** A statically scheduled VLIW machine. */
struct MachineModel
{
    std::string name;     ///< display name, e.g. "4U"
    int issue_width = 1;  ///< ops per MultiOp

    /** The paper's single-issue baseline machine. */
    static MachineModel
    scalar1U()
    {
        return {"1U", 1};
    }

    /** The paper's 4-issue machine. */
    static MachineModel
    wide4U()
    {
        return {"4U", 4};
    }

    /** The paper's 8-issue machine. */
    static MachineModel
    wide8U()
    {
        return {"8U", 8};
    }

    /** An arbitrary-width universal-unit machine. */
    static MachineModel
    custom(int width)
    {
        return {std::to_string(width) + "U", width};
    }
};

} // namespace treegion::sched

#endif // TREEGION_SCHED_MACHINE_MODEL_H
