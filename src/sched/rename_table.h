/**
 * @file
 * Dense per-class register rename table with an undo journal.
 *
 * Semantically a map<Reg, Reg> copied by value at every point where
 * lowering paths diverge (sibling subtrees of a treegion, the
 * internal edges of a hyperblock DAG). Copying a hash map per
 * divergence is O(accumulated renames) of allocation and hashing per
 * copy; this table instead keeps ONE dense array per register class,
 * shared by the whole walk, plus an undo journal: take mark() before
 * entering a diverging path, rollback() after, and the table is
 * exactly what a by-value copy would have given the sibling
 * (DESIGN.md §11; ROADMAP item 3's follow-on ported the hyperblock
 * lowering here too).
 *
 * Iteration (forEachPresent) is in key insertion order — a property
 * the hyperblock merge relies on for deterministic, platform-
 * independent output where the old unordered containers were not.
 */

#ifndef TREEGION_SCHED_RENAME_TABLE_H
#define TREEGION_SCHED_RENAME_TABLE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ir/function.h"
#include "support/logging.h"

namespace treegion::sched {

/** Journaled dense Reg -> Reg map; see the file header. */
class RenameTable
{
  public:
    explicit RenameTable(const ir::Function &fn)
    {
        slots_[slotClass(ir::RegClass::Gpr)].resize(fn.numGprs());
        slots_[slotClass(ir::RegClass::Pred)].resize(fn.numPreds());
        slots_[slotClass(ir::RegClass::Btr)].resize(fn.numBtrs());
    }

    /** @return the current renaming of @p orig, or nullptr. */
    const ir::Reg *
    find(ir::Reg orig) const
    {
        const auto &slots = slots_[slotClass(orig.cls)];
        if (orig.idx >= slots.size() || !slots[orig.idx].present)
            return nullptr;
        return &slots[orig.idx].val;
    }

    /** Map @p orig to @p renamed (journaled). */
    void
    set(ir::Reg orig, ir::Reg renamed)
    {
        auto &slots = slots_[slotClass(orig.cls)];
        if (orig.idx >= slots.size())
            slots.resize(orig.idx + 1);
        Entry &entry = slots[orig.idx];
        journal_.push_back({orig, entry.val, entry.present != 0});
        if (!entry.present)
            keys_.push_back(orig);
        entry.val = renamed;
        entry.present = 1;
    }

    /** Undo point for rollback(). */
    size_t mark() const { return journal_.size(); }

    /** Restore the table to the state at @p mark. */
    void
    rollback(size_t mark)
    {
        while (journal_.size() > mark) {
            const Undo &undo = journal_.back();
            Entry &entry =
                slots_[slotClass(undo.orig.cls)][undo.orig.idx];
            if (undo.was_present) {
                entry.val = undo.prev;
            } else {
                entry.present = 0;
                TG_ASSERT(!keys_.empty() && keys_.back() == undo.orig);
                keys_.pop_back();
            }
            journal_.pop_back();
        }
    }

    /** Visit every present (orig, renamed) pair, insertion order. */
    template <typename F>
    void
    forEachPresent(F &&f) const
    {
        for (const ir::Reg orig : keys_) {
            const auto &slots = slots_[slotClass(orig.cls)];
            f(orig, slots[orig.idx].val);
        }
    }

  private:
    struct Entry
    {
        ir::Reg val{};
        uint8_t present = 0;
    };
    struct Undo
    {
        ir::Reg orig;
        ir::Reg prev;
        bool was_present;
    };

    static size_t
    slotClass(ir::RegClass cls)
    {
        return static_cast<size_t>(cls);
    }

    std::vector<Entry> slots_[3];
    std::vector<ir::Reg> keys_;  ///< present keys, oldest first
    std::vector<Undo> journal_;
};

} // namespace treegion::sched

#endif // TREEGION_SCHED_RENAME_TABLE_H
