#include "sched/pipeline.h"

#include "analysis/liveness.h"
#include "support/logging.h"

namespace treegion::sched {

std::string
regionSchemeName(RegionScheme scheme)
{
    switch (scheme) {
      case RegionScheme::BasicBlock: return "bb";
      case RegionScheme::Slr: return "slr";
      case RegionScheme::Superblock: return "sb";
      case RegionScheme::Treegion: return "tree";
      case RegionScheme::TreegionTailDup: return "tree-td";
      case RegionScheme::Hyperblock: return "hyper";
    }
    TG_PANIC("bad RegionScheme");
}

PipelineResult
runPipeline(ir::Function &fn, const PipelineOptions &options)
{
    PipelineResult result;
    const size_t original_ops = fn.totalOps();

    switch (options.scheme) {
      case RegionScheme::BasicBlock:
        result.regions = region::formBasicBlockRegions(fn);
        break;
      case RegionScheme::Slr:
        result.regions = region::formSlrs(fn);
        break;
      case RegionScheme::Superblock:
        result.regions = region::formSuperblocks(fn, options.superblock);
        break;
      case RegionScheme::Treegion:
        result.regions = region::formTreegions(fn);
        break;
      case RegionScheme::TreegionTailDup:
        result.regions =
            region::formTreegionsTailDup(fn, options.tail_dup);
        break;
      case RegionScheme::Hyperblock:
        result.regions = region::formHyperblocks(fn, options.hyperblock);
        break;
    }

    result.region_stats = region::computeRegionStats(fn, result.regions);
    result.code_expansion = region::codeExpansionFactor(fn, original_ops);

    // Liveness on the (possibly tail-duplicated) CFG feeds the exit
    // reconciliation copies.
    analysis::Liveness live(fn);

    result.schedule.entry = fn.entry();
    for (const region::Region &r : result.regions.regions()) {
        RegionSchedule rs =
            scheduleRegion(fn, r, live, options.model, options.sched);
        result.estimated_time += estimateRegionTime(rs);
        result.total_sched_stats.renamed_defs += rs.stats.renamed_defs;
        result.total_sched_stats.exit_copies += rs.stats.exit_copies;
        result.total_sched_stats.speculated_ops +=
            rs.stats.speculated_ops;
        result.total_sched_stats.elided_ops += rs.stats.elided_ops;
        result.schedule.regions.emplace(r.root(), std::move(rs));
    }
    return result;
}

double
estimateBaselineTime(ir::Function &fn)
{
    PipelineOptions options;
    options.scheme = RegionScheme::BasicBlock;
    options.model = MachineModel::scalar1U();
    options.sched.heuristic = Heuristic::DependenceHeight;
    return runPipeline(fn, options).estimated_time;
}

} // namespace treegion::sched
