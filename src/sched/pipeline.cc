#include "sched/pipeline.h"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>

#include <algorithm>

#include "analysis/liveness.h"
#include "sched/mem_estimate.h"
#include "support/flightrec.h"
#include "support/logging.h"
#include "support/memstat.h"
#include "support/string_utils.h"
#include "support/trace.h"

namespace treegion::sched {

std::string
regionSchemeName(RegionScheme scheme)
{
    switch (scheme) {
      case RegionScheme::BasicBlock: return "bb";
      case RegionScheme::Slr: return "slr";
      case RegionScheme::Superblock: return "sb";
      case RegionScheme::Treegion: return "tree";
      case RegionScheme::TreegionTailDup: return "tree-td";
      case RegionScheme::Hyperblock: return "hyper";
    }
    TG_PANIC("bad RegionScheme");
}

bool
parseRegionScheme(const std::string &name, RegionScheme &out)
{
    if (name == "bb")
        out = RegionScheme::BasicBlock;
    else if (name == "slr")
        out = RegionScheme::Slr;
    else if (name == "sb")
        out = RegionScheme::Superblock;
    else if (name == "tree")
        out = RegionScheme::Treegion;
    else if (name == "tree-td")
        out = RegionScheme::TreegionTailDup;
    else if (name == "hyper")
        out = RegionScheme::Hyperblock;
    else
        return false;
    return true;
}

bool
parseHeuristicName(const std::string &name, Heuristic &out)
{
    if (name == "h" || name == "dep-height")
        out = Heuristic::DependenceHeight;
    else if (name == "ec" || name == "exit-count")
        out = Heuristic::ExitCount;
    else if (name == "gw" || name == "global-weight")
        out = Heuristic::GlobalWeight;
    else if (name == "wc" || name == "weighted-count")
        out = Heuristic::WeightedCount;
    else
        return false;
    return true;
}

std::string
encodePipelineOptions(const PipelineOptions &o)
{
    std::ostringstream os;
    os << "scheme=" << regionSchemeName(o.scheme)
       << " heuristic=" << heuristicName(o.sched.heuristic)
       << " width=" << o.model.issue_width
       << " dom-par=" << (o.sched.dominator_parallelism ? 1 : 0)
       << " pbr=" << (o.sched.materialize_pbr ? 1 : 0)
       << support::strprintf(" td-expansion=%.17g",
                             o.tail_dup.expansion_limit)
       << " td-paths=" << o.tail_dup.path_limit
       << " td-merge=" << o.tail_dup.merge_limit
       << " td-max-blocks=" << o.tail_dup.max_region_blocks
       << support::strprintf(" sb-cold=%.17g sb-prob=%.17g",
                             o.superblock.cold_edge_weight,
                             o.superblock.min_edge_prob)
       << " sb-mml=" << (o.superblock.mutual_most_likely ? 1 : 0)
       << " sb-max-blocks=" << o.superblock.max_blocks
       << support::strprintf(" hb-ratio=%.17g",
                             o.hyperblock.min_weight_ratio)
       << " hb-max-blocks=" << o.hyperblock.max_blocks
       << " hb-paths=" << o.hyperblock.path_limit;
    return os.str();
}

bool
parsePipelineOptions(const std::string &text, PipelineOptions &out,
                     std::string *error)
{
    auto bad = [&](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    for (const std::string &field : support::splitString(text, ' ')) {
        const size_t eq = field.find('=');
        if (eq == std::string::npos)
            return bad("expected key=value, got '" + field + "'");
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "scheme") {
            if (!parseRegionScheme(value, out.scheme))
                return bad("unknown scheme '" + value + "'");
        } else if (key == "heuristic") {
            if (!parseHeuristicName(value, out.sched.heuristic))
                return bad("unknown heuristic '" + value + "'");
        } else if (key == "width") {
            const int width = std::atoi(value.c_str());
            if (width <= 0 || width > 64)
                return bad("bad width '" + value + "'");
            out.model = MachineModel::custom(width);
        } else if (key == "dom-par") {
            out.sched.dominator_parallelism = value != "0";
        } else if (key == "pbr") {
            out.sched.materialize_pbr = value != "0";
        } else if (key == "td-expansion") {
            out.tail_dup.expansion_limit = std::atof(value.c_str());
        } else if (key == "td-paths") {
            out.tail_dup.path_limit =
                static_cast<size_t>(std::atoll(value.c_str()));
        } else if (key == "td-merge") {
            out.tail_dup.merge_limit =
                static_cast<size_t>(std::atoll(value.c_str()));
        } else if (key == "td-max-blocks") {
            out.tail_dup.max_region_blocks =
                static_cast<size_t>(std::atoll(value.c_str()));
        } else if (key == "sb-cold") {
            out.superblock.cold_edge_weight = std::atof(value.c_str());
        } else if (key == "sb-prob") {
            out.superblock.min_edge_prob = std::atof(value.c_str());
        } else if (key == "sb-mml") {
            out.superblock.mutual_most_likely = value != "0";
        } else if (key == "sb-max-blocks") {
            out.superblock.max_blocks =
                static_cast<size_t>(std::atoll(value.c_str()));
        } else if (key == "hb-ratio") {
            out.hyperblock.min_weight_ratio = std::atof(value.c_str());
        } else if (key == "hb-max-blocks") {
            out.hyperblock.max_blocks =
                static_cast<size_t>(std::atoll(value.c_str()));
        } else if (key == "hb-paths") {
            out.hyperblock.path_limit =
                static_cast<size_t>(std::atoll(value.c_str()));
        } else {
            return bad("unknown option key '" + key + "'");
        }
    }
    return true;
}

PipelineResult
runPipeline(ir::Function &fn, const PipelineOptions &options)
{
    using support::TraceCollector;
    using support::TraceScope;

    if (auto *remarks = support::currentRemarkStream())
        remarks->setFunction(fn.name());

    PipelineResult result;
    const size_t original_ops = fn.totalOps();

    // Per-stage peak-footprint telemetry, only when an allocation
    // interposer is feeding memstat AND the caller opted in (stage
    // windows reset the process-global peak, so the opt-in keeps
    // concurrent whole-run measurements intact — see StageMemStats).
    const bool measure_mem =
        support::memstatActive() && support::memstatStageProfiling();
    uint64_t stage_start =
        measure_mem ? support::memstatResetWindow() : 0;
    auto stageMemPeak = [&]() -> uint64_t {
        const uint64_t peak = support::memstatWindowPeakBytes();
        const uint64_t growth =
            peak > stage_start ? peak - stage_start : 0;
        stage_start = support::memstatResetWindow();
        return growth;
    };

    {
        TraceScope span("formation");
        span.arg("fn", fn.name())
            .arg("scheme", regionSchemeName(options.scheme));
        switch (options.scheme) {
          case RegionScheme::BasicBlock:
            result.regions = region::formBasicBlockRegions(fn);
            break;
          case RegionScheme::Slr:
            result.regions = region::formSlrs(fn);
            break;
          case RegionScheme::Superblock:
            result.regions =
                region::formSuperblocks(fn, options.superblock);
            break;
          case RegionScheme::Treegion:
            result.regions = region::formTreegions(fn);
            break;
          case RegionScheme::TreegionTailDup:
            result.regions =
                region::formTreegionsTailDup(fn, options.tail_dup);
            break;
          case RegionScheme::Hyperblock:
            result.regions =
                region::formHyperblocks(fn, options.hyperblock);
            break;
        }
    }
    TraceCollector::instance().addCounter(
        "regions_formed", result.regions.regions().size());
    if (measure_mem)
        result.mem.formation_peak_bytes = stageMemPeak();

    result.region_stats = region::computeRegionStats(fn, result.regions);
    result.code_expansion = region::codeExpansionFactor(fn, original_ops);

    // Liveness on the (possibly tail-duplicated) CFG feeds the exit
    // reconciliation copies.
    std::unique_ptr<analysis::Liveness> live;
    {
        TraceScope span("liveness");
        span.arg("fn", fn.name());
        live = std::make_unique<analysis::Liveness>(fn);
    }
    if (measure_mem)
        result.mem.liveness_peak_bytes = stageMemPeak();

    TraceScope sched_span("schedule");
    sched_span.arg("fn", fn.name())
        .arg("scheme", regionSchemeName(options.scheme))
        .arg("model", options.model.name);
    result.schedule.entry = fn.entry();
    size_t scheduled_ops = 0;
    for (const region::Region &r : result.regions.regions()) {
        RegionSchedule rs =
            scheduleRegion(fn, r, *live, options.model, options.sched);
        result.estimated_time += estimateRegionTime(rs);
        result.total_sched_stats.renamed_defs += rs.stats.renamed_defs;
        result.total_sched_stats.exit_copies += rs.stats.exit_copies;
        result.total_sched_stats.speculated_ops +=
            rs.stats.speculated_ops;
        result.total_sched_stats.elided_ops += rs.stats.elided_ops;
        scheduled_ops += rs.ops.size();
        result.schedule.regions.emplace(r.root(), std::move(rs));
    }
    TraceCollector::instance().addCounter("ops_scheduled",
                                          scheduled_ops);
    if (measure_mem)
        result.mem.schedule_peak_bytes = stageMemPeak();
    result.mem.sched_arena_high_water_bytes =
        schedArenaHighWaterBytes();
    return result;
}

ClonedPipelineRun
runPipelineOnClone(const ir::Function &fn,
                   const PipelineOptions &options)
{
    const auto start = std::chrono::steady_clock::now();
    ClonedPipelineRun run{fn.clone(), {}, 0.0};
    run.result = runPipeline(run.fn, options);
    run.compile_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    return run;
}

double
estimateBaselineTime(const ir::Function &fn)
{
    PipelineOptions options;
    options.scheme = RegionScheme::BasicBlock;
    options.model = MachineModel::scalar1U();
    options.sched.heuristic = Heuristic::DependenceHeight;
    return runPipelineOnClone(fn, options).result.estimated_time;
}

namespace {

/** Compile one job on a private clone of its function. */
PipelineJobResult
runOneJob(const PipelineJob &job)
{
    TG_ASSERT(job.fn != nullptr);
    support::TraceScope span("job", "driver");
    span.arg("label",
             job.label.empty() ? job.fn->name() : job.label);
    // If this job never returns, the flight recorder's dump shows
    // which function each worker was compiling when the process died.
    support::flightrec::note("job",
                             (job.label.empty() ? job.fn->name()
                                                : job.label)
                                 .c_str());
    // The stream is installed only around this job's pipeline run on
    // this worker thread, so every emitted remark belongs to exactly
    // this job whatever the pool interleaving.
    support::RemarkStream remarks;
    support::RemarkScope scope(job.collect_remarks ? &remarks
                                                   : nullptr);
    ClonedPipelineRun run = runPipelineOnClone(*job.fn, job.options);
    return PipelineJobResult{std::move(run.fn), std::move(run.result),
                             job.label, run.compile_ms,
                             std::move(remarks)};
}

} // namespace

std::vector<PipelineJobResult>
runPipelineParallel(const std::vector<PipelineJob> &jobs,
                    size_t num_threads, support::ThreadPool *pool)
{
    std::vector<PipelineJobResult> results;
    results.reserve(jobs.size());

    if (!pool && num_threads == 1) {
        // Inline path: no pool, same code, same results.
        for (const PipelineJob &job : jobs) {
            results.push_back(runOneJob(job));
            results.back().job_index = results.size() - 1;
        }
        return results;
    }

    std::unique_ptr<support::ThreadPool> local_pool;
    if (!pool)
        local_pool = std::make_unique<support::ThreadPool>(num_threads);
    support::ThreadPool &workers = pool ? *pool : *local_pool;

    // Futures are collected in submission order, which pins the
    // output order to the input order no matter which worker
    // finishes first.
    std::vector<std::future<PipelineJobResult>> futures;
    futures.reserve(jobs.size());
    for (const PipelineJob &job : jobs) {
        futures.push_back(
            workers.submit([&job] { return runOneJob(job); }));
    }
    for (auto &future : futures) {
        results.push_back(future.get());
        results.back().job_index = results.size() - 1;
    }
    return results;
}

std::vector<PipelineJobResult>
runPipelineParallel(const std::vector<PipelineJob> &jobs,
                    const ParallelRunOptions &run)
{
    if (!run.gate && run.mem_budget_bytes == 0 && !run.sink)
        return runPipelineParallel(jobs, run.num_threads, run.pool);

    std::unique_ptr<support::MemoryGate> local_gate;
    support::MemoryGate *gate = run.gate;
    if (!gate) {
        local_gate = std::make_unique<support::MemoryGate>(
            run.mem_budget_bytes);
        gate = local_gate.get();
    }

    // Project every job's peak up front, then admit in ROMA order:
    // largest projected peak first among the jobs that currently fit.
    // Ties (and the whole scan) break by input index, so admission
    // order is deterministic.
    struct Candidate
    {
        size_t index;
        uint64_t projected;
    };
    std::vector<Candidate> waiting;
    waiting.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i)
        waiting.push_back({i, estimateJobPeakBytes(jobs[i])});
    // An unlimited gate (budget 0, reached via sink-only runs) admits
    // everything on the first scan; keep that submission plain FIFO.
    if (gate->budgetBytes() > 0) {
        std::stable_sort(waiting.begin(), waiting.end(),
                         [](const Candidate &a, const Candidate &b) {
                             return a.projected > b.projected;
                         });
    }

    if (!run.pool && run.num_threads == 1) {
        // Inline path: one job at a time, so the budget is trivially
        // respected and admission order is irrelevant to the peak;
        // reservations still flow through the gate so its telemetry
        // (high water) covers this path too.
        std::vector<uint64_t> projected(jobs.size(), 0);
        for (const Candidate &c : waiting)
            projected[c.index] = c.projected;
        std::vector<PipelineJobResult> results;
        if (!run.sink)
            results.reserve(jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i) {
            while (!gate->tryAdmit(projected[i]))
                gate->waitForRelease(gate->generation());
            PipelineJobResult result = runOneJob(jobs[i]);
            result.projected_peak_bytes = projected[i];
            result.job_index = i;
            if (run.sink)
                run.sink(std::move(result));
            else
                results.push_back(std::move(result));
            // Free the retained scheduling arena before handing the
            // reservation back: what the gate re-admits against must
            // actually be available.
            if (gate->budgetBytes() > 0)
                schedArenaTrim();
            gate->release(projected[i]);
        }
        return results;
    }

    std::unique_ptr<support::ThreadPool> local_pool;
    if (!run.pool) {
        local_pool =
            std::make_unique<support::ThreadPool>(run.num_threads);
    }
    support::ThreadPool &workers =
        run.pool ? *run.pool : *local_pool;

    // The coordinator (this thread) is the only one that ever waits
    // on the gate; workers just run jobs and release, so admission
    // cannot deadlock the pool. Workers either park their result in
    // their job's slot (gathered in input order below) or, with a
    // sink, hand it off as soon as it exists so its memory dies with
    // the job.
    std::mutex sink_mutex;
    std::vector<std::optional<PipelineJobResult>> slots(jobs.size());
    std::vector<std::future<void>> futures(jobs.size());
    while (!waiting.empty()) {
        const uint64_t gen = gate->generation();
        bool admitted_any = false;
        for (auto it = waiting.begin(); it != waiting.end();) {
            if (!gate->tryAdmit(it->projected)) {
                ++it;
                continue;
            }
            admitted_any = true;
            const size_t index = it->index;
            const uint64_t projected = it->projected;
            futures[index] = workers.submit([&jobs, &run, &slots,
                                             &sink_mutex, gate, index,
                                             projected] {
                // Release on every exit path, including a throwing
                // pipeline, or the coordinator would wait forever.
                // Trim this worker's retained scheduling arena first:
                // memory a worker keeps between jobs would otherwise
                // accumulate outside the budget, and what the gate
                // re-admits against must actually be available.
                struct Release
                {
                    support::MemoryGate *gate;
                    uint64_t bytes;
                    ~Release()
                    {
                        if (gate->budgetBytes() > 0)
                            schedArenaTrim();
                        gate->release(bytes);
                    }
                } release{gate, projected};
                PipelineJobResult result = runOneJob(jobs[index]);
                result.projected_peak_bytes = projected;
                result.job_index = index;
                if (run.sink) {
                    std::lock_guard<std::mutex> lock(sink_mutex);
                    run.sink(std::move(result));
                } else {
                    slots[index].emplace(std::move(result));
                }
            });
            it = waiting.erase(it);
        }
        if (!waiting.empty() && !admitted_any)
            gate->waitForRelease(gen);
    }

    for (auto &future : futures)
        future.get();
    std::vector<PipelineJobResult> results;
    if (!run.sink) {
        results.reserve(jobs.size());
        for (auto &slot : slots)
            results.push_back(std::move(*slot));
    }
    return results;
}

} // namespace treegion::sched
