#include "sched/pipeline.h"

#include <memory>

#include "analysis/liveness.h"
#include "support/logging.h"
#include "support/trace.h"

namespace treegion::sched {

std::string
regionSchemeName(RegionScheme scheme)
{
    switch (scheme) {
      case RegionScheme::BasicBlock: return "bb";
      case RegionScheme::Slr: return "slr";
      case RegionScheme::Superblock: return "sb";
      case RegionScheme::Treegion: return "tree";
      case RegionScheme::TreegionTailDup: return "tree-td";
      case RegionScheme::Hyperblock: return "hyper";
    }
    TG_PANIC("bad RegionScheme");
}

PipelineResult
runPipeline(ir::Function &fn, const PipelineOptions &options)
{
    using support::TraceCollector;
    using support::TraceScope;

    PipelineResult result;
    const size_t original_ops = fn.totalOps();

    {
        TraceScope span("formation");
        span.arg("fn", fn.name())
            .arg("scheme", regionSchemeName(options.scheme));
        switch (options.scheme) {
          case RegionScheme::BasicBlock:
            result.regions = region::formBasicBlockRegions(fn);
            break;
          case RegionScheme::Slr:
            result.regions = region::formSlrs(fn);
            break;
          case RegionScheme::Superblock:
            result.regions =
                region::formSuperblocks(fn, options.superblock);
            break;
          case RegionScheme::Treegion:
            result.regions = region::formTreegions(fn);
            break;
          case RegionScheme::TreegionTailDup:
            result.regions =
                region::formTreegionsTailDup(fn, options.tail_dup);
            break;
          case RegionScheme::Hyperblock:
            result.regions =
                region::formHyperblocks(fn, options.hyperblock);
            break;
        }
    }
    TraceCollector::instance().addCounter(
        "regions_formed", result.regions.regions().size());

    result.region_stats = region::computeRegionStats(fn, result.regions);
    result.code_expansion = region::codeExpansionFactor(fn, original_ops);

    // Liveness on the (possibly tail-duplicated) CFG feeds the exit
    // reconciliation copies.
    std::unique_ptr<analysis::Liveness> live;
    {
        TraceScope span("liveness");
        span.arg("fn", fn.name());
        live = std::make_unique<analysis::Liveness>(fn);
    }

    TraceScope sched_span("schedule");
    sched_span.arg("fn", fn.name())
        .arg("scheme", regionSchemeName(options.scheme))
        .arg("model", options.model.name);
    result.schedule.entry = fn.entry();
    size_t scheduled_ops = 0;
    for (const region::Region &r : result.regions.regions()) {
        RegionSchedule rs =
            scheduleRegion(fn, r, *live, options.model, options.sched);
        result.estimated_time += estimateRegionTime(rs);
        result.total_sched_stats.renamed_defs += rs.stats.renamed_defs;
        result.total_sched_stats.exit_copies += rs.stats.exit_copies;
        result.total_sched_stats.speculated_ops +=
            rs.stats.speculated_ops;
        result.total_sched_stats.elided_ops += rs.stats.elided_ops;
        scheduled_ops += rs.ops.size();
        result.schedule.regions.emplace(r.root(), std::move(rs));
    }
    TraceCollector::instance().addCounter("ops_scheduled",
                                          scheduled_ops);
    return result;
}

double
estimateBaselineTime(ir::Function &fn)
{
    PipelineOptions options;
    options.scheme = RegionScheme::BasicBlock;
    options.model = MachineModel::scalar1U();
    options.sched.heuristic = Heuristic::DependenceHeight;
    return runPipeline(fn, options).estimated_time;
}

namespace {

/** Compile one job on a private clone of its function. */
PipelineJobResult
runOneJob(const PipelineJob &job)
{
    TG_ASSERT(job.fn != nullptr);
    support::TraceScope span("job", "driver");
    span.arg("label",
             job.label.empty() ? job.fn->name() : job.label);
    PipelineJobResult out{job.fn->clone(), {}, job.label};
    out.result = runPipeline(out.fn, job.options);
    return out;
}

} // namespace

std::vector<PipelineJobResult>
runPipelineParallel(const std::vector<PipelineJob> &jobs,
                    size_t num_threads, support::ThreadPool *pool)
{
    std::vector<PipelineJobResult> results;
    results.reserve(jobs.size());

    if (!pool && num_threads == 1) {
        // Inline path: no pool, same code, same results.
        for (const PipelineJob &job : jobs)
            results.push_back(runOneJob(job));
        return results;
    }

    std::unique_ptr<support::ThreadPool> local_pool;
    if (!pool)
        local_pool = std::make_unique<support::ThreadPool>(num_threads);
    support::ThreadPool &workers = pool ? *pool : *local_pool;

    // Futures are collected in submission order, which pins the
    // output order to the input order no matter which worker
    // finishes first.
    std::vector<std::future<PipelineJobResult>> futures;
    futures.reserve(jobs.size());
    for (const PipelineJob &job : jobs) {
        futures.push_back(
            workers.submit([&job] { return runOneJob(job); }));
    }
    for (auto &future : futures)
        results.push_back(future.get());
    return results;
}

} // namespace treegion::sched
