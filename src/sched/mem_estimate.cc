#include "sched/mem_estimate.h"

#include <cctype>
#include <cstring>

#include "ir/function.h"
#include "support/logging.h"

namespace treegion::sched {

namespace {

/**
 * Linear model coefficients, fit over the SPEC proxy sweep's
 * (shape, measured peak) pairs printed by
 * bench/throughput_memsched.cc --calibrate, then rounded UP so the
 * projection sits ~1.2-1.5x above the measured peak for every tree
 * and tree-td calibration point (the golden corpus's schemes) —
 * comfortably inside the 2x bound tests/mem_estimate_test.cc pins,
 * while never under-projecting. Bytes.
 */
constexpr double kBaseBytes = 32.0 * 1024.0;
constexpr double kPerOpBytes = 290.0;
constexpr double kPerOpWidthBytes = 24.0;
constexpr double kPerBlockBytes = 800.0;
constexpr double kPerEdgeBytes = 400.0;

/**
 * Hyperblock if-conversion is not a scaled copy of treegion
 * formation, so it gets its own fitted per-op coefficients instead
 * of a flat multiplier on the shared model (which over-projected up
 * to 1.75x). The --calibrate sweep shows hyper's peak tracking ops
 * nearly linearly at ~550-620 bytes/op at 4U; these round that up
 * so every calibration point lands in the same 1.2-1.5x band the
 * tree schemes sit in. One known exception stays out of the fit:
 * li's single huge if-convertible DAG blows its DDG ~9x past its
 * shape twin (ijpeg at near-identical op/block/edge counts), which
 * no shape-count model can see; it remains documented rather than
 * chased with a factor that would over-reserve everything else 5x.
 */
constexpr double kHyperPerOpBytes = 412.0;
constexpr double kHyperPerOpWidthBytes = 32.0;

/**
 * Peak-footprint multiplier per formation scheme, relative to plain
 * treegion formation. Tail-duplicating schemes clone blocks before
 * scheduling, so their transient CFG and DDG scale with the allowed
 * expansion; hyperblocks if-convert whole DAGs into one region, which
 * concentrates the DDG.
 */
double
schemeFactor(const PipelineOptions &options)
{
    switch (options.scheme) {
      case RegionScheme::BasicBlock: return 0.75;
      case RegionScheme::Slr: return 0.8;
      case RegionScheme::Superblock: return 1.3;
      case RegionScheme::Treegion: return 1.0;
      case RegionScheme::TreegionTailDup: {
          // Transient footprint tracks the allowed code expansion,
          // floored at the factor calibration measured for the
          // default limits.
          const double factor = 0.95 * options.tail_dup.expansion_limit;
          return factor > 1.9 ? factor : 1.9;
      }
      case RegionScheme::Hyperblock:
          // Hyper's slope lives in kHyperPerOpBytes (see above);
          // no extra multiplier on top of it.
          return 1.0;
    }
    TG_PANIC("bad RegionScheme");
}

} // namespace

MemShape
measureShape(const ir::Function &fn)
{
    MemShape shape;
    fn.forEachBlock([&](const ir::BasicBlock &block) {
        ++shape.blocks;
        shape.ops += block.ops().size();
        if (block.hasTerminator())
            shape.edges += block.successors().size();
    });
    return shape;
}

MemShape
estimateShapeFromText(const std::string &module_text)
{
    // One linear scan, no parsing: op lines are the indented lines
    // that are not block headers; "block" headers count blocks; each
    // entry of an "edges=[a,b,...]" list is one CFG edge.
    MemShape shape;
    const char *p = module_text.data();
    const char *end = p + module_text.size();
    while (p < end) {
        const char *eol = p;
        while (eol < end && *eol != '\n')
            ++eol;
        const char *s = p;
        while (s < eol && (*s == ' ' || *s == '\t'))
            ++s;
        const size_t len = static_cast<size_t>(eol - s);
        auto starts = [&](const char *kw, size_t n) {
            return len >= n && std::memcmp(s, kw, n) == 0;
        };
        if (starts("block", 5)) {
            ++shape.blocks;
            // edges=[10,1] -> one edge per element.
            for (const char *q = s; q + 7 < eol; ++q) {
                if (std::memcmp(q, "edges=[", 7) == 0) {
                    ++shape.edges;  // first element
                    for (const char *c = q + 7; c < eol && *c != ']';
                         ++c) {
                        if (*c == ',')
                            ++shape.edges;
                    }
                    break;
                }
            }
        } else if (len > 0 && !starts("module", 6) &&
                   !starts("func", 4) && *s != '}') {
            ++shape.ops;
            // Branch targets ("BRU bb4", every "N:bbM" arm of a
            // MWBR) are the CFG edges of terminator-style text. A
            // header edge list and a PBR operand both double-count
            // the same edge — over-approximation is the direction
            // admission wants.
            for (const char *q = s; q + 2 < eol; ++q) {
                if (q[0] == 'b' && q[1] == 'b' && q[2] >= '0' &&
                    q[2] <= '9' &&
                    (q == s ||
                     !std::isalnum(static_cast<unsigned char>(q[-1]))))
                    ++shape.edges;
            }
        }
        p = eol + 1;
    }
    return shape;
}

uint64_t
estimatePeakBytes(const MemShape &shape,
                  const PipelineOptions &options)
{
    const double width =
        static_cast<double>(options.model.issue_width);
    const bool hyper = options.scheme == RegionScheme::Hyperblock;
    const double per_op =
        hyper ? kHyperPerOpBytes + kHyperPerOpWidthBytes * width
              : kPerOpBytes + kPerOpWidthBytes * width;
    const double bytes =
        kBaseBytes + per_op * static_cast<double>(shape.ops) +
        kPerBlockBytes * static_cast<double>(shape.blocks) +
        kPerEdgeBytes * static_cast<double>(shape.edges);
    return static_cast<uint64_t>(bytes * schemeFactor(options));
}

uint64_t
estimateJobPeakBytes(const PipelineJob &job)
{
    TG_ASSERT(job.fn != nullptr);
    return estimatePeakBytes(measureShape(*job.fn), job.options);
}

} // namespace treegion::sched
