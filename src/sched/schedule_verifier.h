/**
 * @file
 * Schedule legality checking, independent of the scheduler.
 *
 * Verifies machine constraints (issue width, unique slots) and
 * dataflow constraints (every register read happens at least the
 * producer's latency after the producer issues; exit records point at
 * branch ops in their recorded cycles). Used by the test suite and
 * available to users who post-process schedules.
 */

#ifndef TREEGION_SCHED_SCHEDULE_VERIFIER_H
#define TREEGION_SCHED_SCHEDULE_VERIFIER_H

#include <string>
#include <vector>

#include "sched/schedule.h"

namespace treegion::sched {

/**
 * Check @p sched against @p issue_width.
 *
 * @return human-readable problems; empty when the schedule is legal
 */
std::vector<std::string> verifySchedule(const RegionSchedule &sched,
                                        int issue_width);

/** Check every region of @p sched. */
std::vector<std::string>
verifyFunctionSchedule(const FunctionSchedule &sched, int issue_width);

} // namespace treegion::sched

#endif // TREEGION_SCHED_SCHEDULE_VERIFIER_H
