/**
 * @file
 * Data dependence graph over a lowered region.
 *
 * Edge kinds and latencies:
 *  - Value edges (def -> use, including guards and branch condition
 *    reads): latency = producer latency; the consumer reads in its
 *    issue cycle's read phase.
 *  - Memory order edges along each root-to-leaf path (loads cannot
 *    bypass stores; stores stay ordered; store->dependent memory op
 *    may share a cycle in slot order, the Play-Doh rule): latency 0,
 *    slot-ordered.
 *  - Pinning edges from each guarded store to every exit branch
 *    reachable below it (taking an exit must not skip a store the
 *    sequential program would have executed): latency 0.
 *  - Exit data edges from the producer of each exit reconciliation
 *    copy's source to the exit branch: latency = producer latency - 1
 *    (the value must be architecturally visible when the next region
 *    starts one cycle after the exit).
 *  - Virtual control edges from each exit branch to every op homed
 *    strictly below the branch's block. These never constrain the
 *    scheduler (speculation breaks control dependences); they exist
 *    so dependence heights match the classic control+data DAG, in
 *    which a branch's height covers the code it controls and exits
 *    near the root rank high under the dependence-height heuristic.
 *
 * The region's internal control structure comes from
 * LoweredRegion::succs_in_region — a tree for treegions and linear
 * regions, a DAG for hyperblocks — so this graph (and hence the list
 * scheduler) is agnostic to the region type.
 *
 * Storage: everything lives in a caller-provided per-job arena (see
 * DESIGN.md §11) — dense adjacency lists of POD edges, no per-node
 * heap traffic. The one-argument constructor owns a private arena for
 * convenience in tests and one-off tools.
 */

#ifndef TREEGION_SCHED_DDG_H
#define TREEGION_SCHED_DDG_H

#include <memory>

#include "sched/lowering.h"
#include "sched/region_index.h"
#include "support/arena.h"
#include "support/logging.h"

namespace treegion::sched {

/** One dependence edge. */
struct DdgEdge
{
    uint32_t other;      ///< the node on the other end
    int32_t latency;     ///< minimum cycle distance (0 = same cycle ok)
    bool slot_ordered;   ///< 0-latency edges that additionally require
                         ///< earlier-slot placement when sharing a cycle
    bool virtual_ctrl;   ///< control edge kept only for dependence
                         ///< heights; speculation is allowed to break
                         ///< it, so the scheduler ignores it for
                         ///< legality
};

/** Dependence graph for one lowered region. */
class Ddg
{
  public:
    /** Build the graph in @p arena using a prebuilt block index. */
    Ddg(const LoweredRegion &lowered, const RegionIndex &index,
        support::Arena &arena);

    /** Convenience: build with a private arena (tests, tools). */
    explicit Ddg(const LoweredRegion &lowered);

    /** @return node count (== lowered op count). */
    size_t size() const { return n_; }

    /** @return outgoing edges of node @p i. */
    support::Span<DdgEdge>
    succs(size_t i) const
    {
        return {succs_[i].data, succs_[i].size};
    }

    /** @return incoming edges of node @p i. */
    support::Span<DdgEdge>
    preds(size_t i) const
    {
        return {preds_[i].data, preds_[i].size};
    }

    /**
     * Dependence height of node @p i: the critical-path length (in
     * cycles) from the node to any sink, inclusive of its own
     * latency.
     */
    int height(size_t i) const { return heights_[i]; }

  private:
    /** Arena-backed growable edge list. */
    struct EdgeList
    {
        DdgEdge *data = nullptr;
        uint32_t size = 0;
        uint32_t cap = 0;

        void
        push(support::Arena &arena, const DdgEdge &e)
        {
            if (size == cap) {
                const uint32_t grown = cap ? cap * 2 : 4;
                DdgEdge *moved = arena.allocArray<DdgEdge>(grown);
                for (uint32_t k = 0; k < size; ++k)
                    moved[k] = data[k];
                data = moved;
                cap = grown;
            }
            data[size++] = e;
        }
    };

    void build(const LoweredRegion &lowered, const RegionIndex &index,
               support::Arena &arena);

    void
    addEdge(support::Arena &arena, size_t from, size_t to, int latency,
            bool slot_ordered, bool virtual_ctrl = false)
    {
        TG_ASSERT(from != to);
        succs_[from].push(arena, {static_cast<uint32_t>(to), latency,
                                  slot_ordered, virtual_ctrl});
        preds_[to].push(arena, {static_cast<uint32_t>(from), latency,
                                slot_ordered, virtual_ctrl});
    }

    size_t n_ = 0;
    EdgeList *succs_ = nullptr;
    EdgeList *preds_ = nullptr;
    int32_t *heights_ = nullptr;

    /** Backing storage for the convenience constructor only. */
    std::unique_ptr<support::Arena> owned_arena_;
};

} // namespace treegion::sched

#endif // TREEGION_SCHED_DDG_H
