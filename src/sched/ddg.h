/**
 * @file
 * Data dependence graph over a lowered region.
 *
 * Edge kinds and latencies:
 *  - Value edges (def -> use, including guards and branch condition
 *    reads): latency = producer latency; the consumer reads in its
 *    issue cycle's read phase.
 *  - Memory order edges along each root-to-leaf path (loads cannot
 *    bypass stores; stores stay ordered; store->dependent memory op
 *    may share a cycle in slot order, the Play-Doh rule): latency 0,
 *    slot-ordered.
 *  - Pinning edges from each guarded store to every exit branch
 *    reachable below it (taking an exit must not skip a store the
 *    sequential program would have executed): latency 0.
 *  - Exit data edges from the producer of each exit reconciliation
 *    copy's source to the exit branch: latency = producer latency - 1
 *    (the value must be architecturally visible when the next region
 *    starts one cycle after the exit).
 *  - Virtual control edges from each exit branch to every op homed
 *    strictly below the branch's block. These never constrain the
 *    scheduler (speculation breaks control dependences); they exist
 *    so dependence heights match the classic control+data DAG, in
 *    which a branch's height covers the code it controls and exits
 *    near the root rank high under the dependence-height heuristic.
 *
 * The region's internal control structure comes from
 * LoweredRegion::succs_in_region — a tree for treegions and linear
 * regions, a DAG for hyperblocks — so this graph (and hence the list
 * scheduler) is agnostic to the region type.
 */

#ifndef TREEGION_SCHED_DDG_H
#define TREEGION_SCHED_DDG_H

#include <vector>

#include "sched/lowering.h"

namespace treegion::sched {

/** One dependence edge. */
struct DdgEdge
{
    size_t other;        ///< the node on the other end
    int latency;         ///< minimum cycle distance (0 = same cycle ok)
    bool slot_ordered;   ///< 0-latency edges that additionally require
                         ///< earlier-slot placement when sharing a cycle
    bool virtual_ctrl;   ///< control edge kept only for dependence
                         ///< heights; speculation is allowed to break
                         ///< it, so the scheduler ignores it for
                         ///< legality
};

/** Dependence graph for one lowered region. */
class Ddg
{
  public:
    /** Build the graph for @p lowered. */
    explicit Ddg(const LoweredRegion &lowered);

    /** @return node count (== lowered op count). */
    size_t size() const { return succs_.size(); }

    /** @return outgoing edges of node @p i. */
    const std::vector<DdgEdge> &succs(size_t i) const { return succs_[i]; }

    /** @return incoming edges of node @p i. */
    const std::vector<DdgEdge> &preds(size_t i) const { return preds_[i]; }

    /**
     * Dependence height of node @p i: the critical-path length (in
     * cycles) from the node to any sink, inclusive of its own
     * latency.
     */
    int height(size_t i) const { return heights_[i]; }

  private:
    void addEdge(size_t from, size_t to, int latency, bool slot_ordered,
                 bool virtual_ctrl = false);

    std::vector<std::vector<DdgEdge>> succs_;
    std::vector<std::vector<DdgEdge>> preds_;
    std::vector<int> heights_;
};

} // namespace treegion::sched

#endif // TREEGION_SCHED_DDG_H
