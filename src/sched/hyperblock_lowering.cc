#include "sched/hyperblock_lowering.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "sched/rename_table.h"
#include "support/logging.h"

namespace treegion::sched {

using ir::BlockId;
using ir::kNoBlock;
using ir::Op;
using ir::Opcode;
using ir::Reg;

namespace {

/**
 * The renaming at a block's end, captured for one outgoing internal
 * edge: (orig, renamed) pairs in table insertion order. A flat
 * snapshot of the shared RenameTable replaces the per-edge hash-map
 * copies the first implementation carried — one contiguous
 * allocation per edge instead of a rehash per accumulated rename,
 * and its order is deterministic where hash-map order was not.
 */
using RenameSnapshot = std::vector<std::pair<Reg, Reg>>;

/** One internal edge, with its predicate and the source's renaming. */
struct InEdge
{
    BlockId from;
    std::optional<Reg> pred;  ///< nullopt = constant true (root BRU)
    RenameSnapshot map;       ///< renaming at the source block's end
};

class HyperLowerer
{
  public:
    HyperLowerer(ir::Function &fn, const region::Region &r,
                 const analysis::Liveness &live)
        : fn_(fn), region_(r), live_(live), table_(fn)
    {
        out_.root = r.root();
    }

    LoweredRegion
    run()
    {
        // Topological order: a block is ready once all its in-region
        // predecessor edges have been produced. Process the root,
        // then repeatedly pick ready blocks.
        std::unordered_map<BlockId, size_t> pending_in;
        for (const BlockId id : region_.blocks()) {
            size_t count = 0;
            for (const BlockId pred : fn_.predsOf(id)) {
                if (region_.contains(pred) && id != region_.root())
                    ++count;
            }
            pending_in[id] = count;
        }

        std::vector<BlockId> ready = {region_.root()};
        std::unordered_set<BlockId> done;
        while (!ready.empty()) {
            const BlockId id = ready.back();
            ready.pop_back();
            if (done.count(id))
                continue;
            TG_ASSERT(pending_in.at(id) == 0 ||
                      id == region_.root());
            done.insert(id);
            lowerBlock(id);
            // Lowering produced this block's outgoing internal
            // edges; release successors whose edges are complete.
            for (const BlockId succ : internalSuccs(id)) {
                size_t &left = pending_in.at(succ);
                TG_ASSERT(left > 0);
                // One decrement per edge (multi-edges decrement once
                // per occurrence via internalSuccs multiplicity).
                --left;
                if (left == 0)
                    ready.push_back(succ);
            }
        }
        TG_ASSERT(done.size() == region_.blocks().size());

        for (const BlockId id : region_.blocks()) {
            auto &succs = out_.succs_in_region[id];
            for (const BlockId succ : internalSuccs(id)) {
                if (std::find(succs.begin(), succs.end(), succ) ==
                    succs.end()) {
                    succs.push_back(succ);
                }
            }
        }
        return std::move(out_);
    }

  private:
    /** In-region successors of @p id, one entry per edge. */
    std::vector<BlockId>
    internalSuccs(BlockId id)
    {
        std::vector<BlockId> out;
        const Op &term = fn_.block(id).terminator();
        for (size_t slot = 0; slot < term.targets.size(); ++slot) {
            if (region_.isInternalEdge(fn_, id, slot))
                out.push_back(term.targets[slot]);
        }
        return out;
    }

    /** Rewrite register sources through the current renaming. */
    void
    applyRenames(Op &op) const
    {
        for (ir::Operand &src : op.srcs) {
            if (src.isReg()) {
                if (const Reg *renamed = table_.find(src.reg))
                    src.reg = *renamed;
            }
        }
    }

    void
    renameDests(Op &op)
    {
        for (Reg &dst : op.dsts) {
            Reg fresh;
            switch (dst.cls) {
              case ir::RegClass::Gpr:
                fresh = fn_.freshGpr();
                break;
              case ir::RegClass::Pred:
                fresh = fn_.freshPred();
                break;
              case ir::RegClass::Btr:
                fresh = fn_.freshBtr();
                break;
            }
            table_.set(dst, fresh);
            dst = fresh;
            ++out_.renamed_defs;
        }
    }

    size_t
    emit(Op op, BlockId home, LoweredKind kind, bool pinned = false)
    {
        op.id = fn_.freshOpId();
        LoweredOp lop;
        lop.op = std::move(op);
        lop.home = home;
        lop.kind = kind;
        lop.pinned = pinned;
        out_.ops.push_back(std::move(lop));
        return out_.ops.size() - 1;
    }

    /** edge_pred = base AND cmp(a, b): PSET + optional AND of the
     * base predicate + the condition. */
    Reg
    andPred(std::optional<Reg> base, ir::CmpKind kind,
            const ir::Operand &a, const ir::Operand &b, BlockId home)
    {
        const Reg p = fn_.freshPred();
        Op pset;
        pset.opcode = Opcode::PSET;
        pset.dsts = {p};
        emit(std::move(pset), home, LoweredKind::PredDef);
        if (base) {
            Op chain;
            chain.opcode = Opcode::CMPPA;
            chain.cmp = ir::CmpKind::NE;
            chain.dsts = {p};
            chain.srcs = {ir::Operand::makeReg(*base),
                          ir::Operand::makeImm(0)};
            emit(std::move(chain), home, LoweredKind::PredDef);
        }
        Op cond;
        cond.opcode = Opcode::CMPPA;
        cond.cmp = kind;
        cond.dsts = {p};
        cond.srcs = {a, b};
        emit(std::move(cond), home, LoweredKind::PredDef);
        return p;
    }

    /** The current renaming, flattened for an outgoing edge. */
    RenameSnapshot
    snapshotRenames() const
    {
        RenameSnapshot snap;
        table_.forEachPresent([&](Reg orig, Reg renamed) {
            snap.emplace_back(orig, renamed);
        });
        return snap;
    }

    std::vector<ExitCopy>
    copiesFor(BlockId target)
    {
        std::vector<ExitCopy> copies;
        table_.forEachPresent([&](Reg orig, Reg renamed) {
            if (orig == renamed || orig.cls == ir::RegClass::Btr)
                return;
            if (live_.liveIn(target, orig))
                copies.push_back({orig, renamed});
        });
        std::sort(copies.begin(), copies.end(),
                  [](const ExitCopy &a, const ExitCopy &b) {
                      return std::make_pair(a.dst.cls, a.dst.idx) <
                             std::make_pair(b.dst.cls, b.dst.idx);
                  });
        return copies;
    }

    void
    recordExit(size_t op_index, BlockId from, size_t target_slot,
               BlockId target, bool is_ret, double weight)
    {
        LoweredExit exit;
        exit.op_index = op_index;
        exit.target_slot = target_slot;
        exit.from = from;
        exit.target = target;
        exit.is_ret = is_ret;
        exit.weight = weight;
        if (!is_ret && target != kNoBlock)
            exit.copies = copiesFor(target);
        out_.exits.push_back(std::move(exit));
    }

    static double
    edgeWeight(const ir::BasicBlock &b, size_t slot)
    {
        const auto &weights = b.edgeWeights();
        return slot < weights.size() ? weights[slot] : 0.0;
    }

    /**
     * Load the entry state of @p id into the shared table and
     * @return its block predicate, synthesizing merges where the
     * block has several incoming edges. The caller owns the
     * surrounding mark()/rollback() pair.
     *
     * Merge order is deterministic: keys are visited in
     * first-appearance order across the edge snapshots (edge order
     * itself follows the deterministic topological walk), so fresh
     * register numbering and select emission no longer depend on
     * hash-table iteration order.
     */
    std::optional<Reg>
    entryState(BlockId id)
    {
        if (id == region_.root())
            return std::nullopt;
        auto it = in_edges_.find(id);
        TG_ASSERT(it != in_edges_.end() && !it->second.empty());
        std::vector<InEdge> &edges = it->second;
        if (edges.size() == 1) {
            for (const auto &[orig, renamed] : edges[0].map)
                table_.set(orig, renamed);
            const std::optional<Reg> pred = edges[0].pred;
            in_edges_.erase(it);
            return pred;
        }

        // Merge. Block predicate: wired-OR of the edge predicates.
        const Reg block_pred = fn_.freshPred();
        Op pclr;
        pclr.opcode = Opcode::PCLR;
        pclr.dsts = {block_pred};
        emit(std::move(pclr), id, LoweredKind::PredDef);
        for (const InEdge &edge : edges) {
            TG_ASSERT(edge.pred &&
                      "merge edge with constant-true predicate");
            Op orr;
            orr.opcode = Opcode::CMPPO;
            orr.cmp = ir::CmpKind::NE;
            orr.dsts = {block_pred};
            orr.srcs = {ir::Operand::makeReg(*edge.pred),
                        ir::Operand::makeImm(0)};
            emit(std::move(orr), id, LoweredKind::PredDef);
        }

        // Union of renamed registers, first-appearance order. The
        // table doubles as the membership set (rolled back before
        // the merged state is written).
        std::vector<Reg> keys;
        {
            const size_t m = table_.mark();
            for (const InEdge &edge : edges) {
                for (const auto &[orig, renamed] : edge.map) {
                    if (!table_.find(orig)) {
                        table_.set(orig, renamed);
                        keys.push_back(orig);
                    }
                }
            }
            table_.rollback(m);
        }
        // Every key's value on every edge (identity where an edge
        // carries no entry), via one table load per edge.
        std::vector<Reg> values(keys.size() * edges.size());
        for (size_t e = 0; e < edges.size(); ++e) {
            const size_t m = table_.mark();
            for (const auto &[orig, renamed] : edges[e].map)
                table_.set(orig, renamed);
            for (size_t k = 0; k < keys.size(); ++k) {
                const Reg *r = table_.find(keys[k]);
                values[k * edges.size() + e] = r ? *r : keys[k];
            }
            table_.rollback(m);
        }

        // Register state: keep entries on which all edges agree; for
        // live, disagreeing registers emit one guarded MOV (select)
        // per edge into a fresh register.
        for (size_t k = 0; k < keys.size(); ++k) {
            const Reg orig = keys[k];
            const Reg *row = &values[k * edges.size()];
            const Reg first = row[0];
            bool agree = true;
            for (size_t e = 1; e < edges.size(); ++e)
                agree &= (row[e] == first);
            if (agree) {
                if (first != orig)
                    table_.set(orig, first);
                continue;
            }
            if (!live_.liveIn(id, orig))
                continue;  // dead at the join: no select needed
            const Reg fresh = orig.cls == ir::RegClass::Pred
                                  ? fn_.freshPred()
                                  : fn_.freshGpr();
            for (size_t e = 0; e < edges.size(); ++e) {
                Op select = ir::makeMov(fresh, row[e]);
                select.guard = edges[e].pred;
                emit(std::move(select), id, LoweredKind::Computation);
                ++out_.renamed_defs;
            }
            table_.set(orig, fresh);
        }
        in_edges_.erase(it);
        return block_pred;
    }

    void
    lowerBlock(BlockId id)
    {
        // Each block is processed exactly once: load its entry
        // renaming, lower through the shared table, roll everything
        // back so the next block starts from an empty table.
        const size_t block_mark = table_.mark();
        const std::optional<Reg> pp = entryState(id);
        ir::BasicBlock &b = fn_.block(id);
        const Op &term = b.terminator();

        Reg cond_reg{};
        bool has_cond = false;
        if (term.opcode == Opcode::BRCT || term.opcode == Opcode::BRCF) {
            cond_reg = term.srcs[0].reg;
            has_cond = true;
        }
        std::optional<std::pair<ir::CmpKind,
                                std::pair<ir::Operand, ir::Operand>>>
            branch_cond;

        for (size_t i = 0; i + 1 < b.ops().size(); ++i) {
            const Op &orig = b.ops()[i];
            if (has_cond && orig.opcode == Opcode::CMPP &&
                !orig.dsts.empty() && orig.dsts[0] == cond_reg) {
                Op probe = orig;
                applyRenames(probe);
                branch_cond = {probe.cmp, {probe.srcs[0],
                                           probe.srcs[1]}};
                continue;
            }
            Op op = orig;
            applyRenames(op);
            renameDests(op);
            const bool pinned = op.isStore();
            if (pinned)
                op.guard = pp;
            emit(std::move(op), id, LoweredKind::Computation, pinned);
        }

        auto push_in_edge = [&](BlockId target,
                                std::optional<Reg> pred) {
            in_edges_[target].push_back({id, pred, snapshotRenames()});
        };

        switch (term.opcode) {
          case Opcode::RET: {
            Op ret = term;
            applyRenames(ret);
            ret.guard = pp;
            const size_t idx =
                emit(std::move(ret), id, LoweredKind::ExitBranch);
            recordExit(idx, id, 0, kNoBlock, true, b.weight());
            break;
          }
          case Opcode::BRU: {
            const BlockId target = term.targets[0];
            if (region_.isInternalEdge(fn_, id, 0)) {
                push_in_edge(target, pp);
            } else {
                Op branch = pp ? ir::makeBrct(*pp, target, kNoBlock)
                               : ir::makeBru(target);
                const size_t idx = emit(std::move(branch), id,
                                        LoweredKind::ExitBranch);
                recordExit(idx, id, 0, target, false,
                           edgeWeight(b, 0));
            }
            break;
          }
          case Opcode::BRCT:
          case Opcode::BRCF: {
            TG_ASSERT(branch_cond);
            ir::CmpKind taken_kind = branch_cond->first;
            if (term.opcode == Opcode::BRCF)
                taken_kind = ir::negateCmpKind(taken_kind);
            const ir::Operand a = branch_cond->second.first;
            const ir::Operand bb = branch_cond->second.second;
            for (size_t slot = 0; slot < term.targets.size(); ++slot) {
                const ir::CmpKind kind =
                    slot == 0 ? taken_kind
                              : ir::negateCmpKind(taken_kind);
                const BlockId target = term.targets[slot];
                const Reg edge_pred = andPred(pp, kind, a, bb, id);
                if (region_.isInternalEdge(fn_, id, slot)) {
                    push_in_edge(target, edge_pred);
                } else {
                    Op branch =
                        ir::makeBrct(edge_pred, target, kNoBlock);
                    const size_t idx = emit(std::move(branch), id,
                                            LoweredKind::ExitBranch);
                    recordExit(idx, id, slot, target, false,
                               edgeWeight(b, slot));
                }
            }
            break;
          }
          case Opcode::MWBR: {
            Op sel_probe = term;
            applyRenames(sel_probe);
            const ir::Operand selector = sel_probe.srcs[0];
            Op mwbr = term;
            mwbr.srcs = {selector};
            bool any_exit = false;
            std::vector<std::pair<size_t, BlockId>> exit_cases;
            for (size_t slot = 0; slot < term.targets.size(); ++slot) {
                const BlockId target = term.targets[slot];
                if (region_.isInternalEdge(fn_, id, slot)) {
                    mwbr.targets[slot] = kNoBlock;
                    const Reg edge_pred = andPred(
                        pp, ir::CmpKind::EQ, selector,
                        ir::Operand::makeImm(term.caseValues[slot]),
                        id);
                    push_in_edge(target, edge_pred);
                } else {
                    any_exit = true;
                    exit_cases.emplace_back(slot, target);
                }
            }
            if (any_exit) {
                mwbr.guard = pp;
                const size_t idx =
                    emit(std::move(mwbr), id, LoweredKind::ExitBranch);
                for (const auto &[slot, target] : exit_cases) {
                    recordExit(idx, id, slot, target, false,
                               edgeWeight(b, slot));
                }
            }
            break;
          }
          default:
            TG_PANIC("unexpected terminator %s",
                     std::string(ir::opcodeName(term.opcode)).c_str());
        }
        table_.rollback(block_mark);
    }

    ir::Function &fn_;
    const region::Region &region_;
    const analysis::Liveness &live_;
    LoweredRegion out_;
    RenameTable table_;  ///< shared by the whole walk (journaled)
    std::unordered_map<BlockId, std::vector<InEdge>> in_edges_;
};

} // namespace

LoweredRegion
lowerHyperblock(ir::Function &fn, const region::Region &r,
                const analysis::Liveness &live)
{
    return HyperLowerer(fn, r, live).run();
}

} // namespace treegion::sched
