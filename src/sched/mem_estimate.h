/**
 * @file
 * Peak-memory estimation for compile jobs (ROADMAP item 2).
 *
 * The memory-budgeted admission scheduler (pipeline driver and
 * treegiond) needs a projected peak heap footprint for a job *before*
 * running it. The model here is a small linear fit over the job's
 * shape — op, block and CFG-edge counts — with per-scheme and
 * per-issue-width factors, calibrated against measured peaks from the
 * SPEC proxy sweep (bench/throughput_memsched.cc --calibrate, with
 * the tests/alloc_guard.h interposer feeding support/memstat.h).
 *
 * The estimate is deliberately conservative: it aims a little above
 * the measured peak, because the admission gate treats it as a hard
 * reservation against --mem-budget. tests/mem_estimate_test.cc pins
 * the error band (within 2x of measured, both directions) on the
 * golden corpus.
 */

#ifndef TREEGION_SCHED_MEM_ESTIMATE_H
#define TREEGION_SCHED_MEM_ESTIMATE_H

#include <cstdint>
#include <string>

#include "sched/pipeline.h"

namespace treegion::sched {

/** The shape counts the estimator model is fit over. */
struct MemShape
{
    uint64_t ops = 0;     ///< total ops over live blocks
    uint64_t blocks = 0;  ///< live basic blocks
    uint64_t edges = 0;   ///< CFG edges (terminator targets)
};

/** Measure @p fn's shape exactly (cheap: one pass over the CFG). */
MemShape measureShape(const ir::Function &fn);

/**
 * Approximate the shape of an unparsed .tir module by scanning its
 * text (op lines, "block" headers, edge-list entries). Used by
 * treegiond's admission on the event-loop thread, where parsing the
 * module would block the loop. Covers the whole module, so for a
 * multi-function module it over-estimates the single requested
 * function — conservative in the direction admission wants.
 */
MemShape estimateShapeFromText(const std::string &module_text);

/**
 * Projected peak heap bytes for compiling a job of shape @p shape
 * under @p options (clone + formation + liveness + DDG + SoA
 * scheduler state + result assembly, including the scheduling
 * arena's growth).
 */
uint64_t estimatePeakBytes(const MemShape &shape,
                           const PipelineOptions &options);

/** Convenience: measureShape(*job.fn) + estimatePeakBytes. */
uint64_t estimateJobPeakBytes(const PipelineJob &job);

} // namespace treegion::sched

#endif // TREEGION_SCHED_MEM_ESTIMATE_H
