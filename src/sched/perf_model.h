/**
 * @file
 * The paper's performance estimate.
 *
 * Program performance is "measured by using the profile count and
 * schedule height of each region": a path leaving a region through an
 * exit branch issued in cycle c (0-based) costs c + 1 cycles, so the
 * estimated execution time is the sum over all regions and exits of
 * exit weight x (exit cycle + 1). Branch prediction is perfect,
 * caches are ignored, and renaming copies are free.
 */

#ifndef TREEGION_SCHED_PERF_MODEL_H
#define TREEGION_SCHED_PERF_MODEL_H

#include "sched/schedule.h"

namespace treegion::sched {

/** Estimated cycles spent in one region schedule. */
double estimateRegionTime(const RegionSchedule &sched);

/** Estimated cycles for a whole function schedule. */
double estimateFunctionTime(const FunctionSchedule &sched);

/** Speedup of @p time over @p baseline_time. */
double speedup(double baseline_time, double time);

} // namespace treegion::sched

#endif // TREEGION_SCHED_PERF_MODEL_H
