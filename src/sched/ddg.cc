#include "sched/ddg.h"

#include <algorithm>

#include "support/logging.h"

namespace treegion::sched {

using ir::BlockId;
using ir::Reg;
using support::Arena;
using support::ArenaVector;

namespace {

/** Visit cap for per-path DAG walks; beyond it we fall back to a
 * fully conservative total order. */
constexpr size_t kWalkBudget = 1u << 17;

/** Dense register numbering across the three classes. */
struct RegSpace
{
    uint32_t gprs = 0;
    uint32_t preds = 0;
    uint32_t btrs = 0;

    size_t
    size() const
    {
        return static_cast<size_t>(gprs) + preds + btrs;
    }

    /** @return dense key of @p r, or SIZE_MAX when out of range. */
    size_t
    key(const Reg &r) const
    {
        switch (r.cls) {
          case ir::RegClass::Gpr:
            return r.idx < gprs ? r.idx : SIZE_MAX;
          case ir::RegClass::Pred:
            return r.idx < preds ? gprs + r.idx : SIZE_MAX;
          case ir::RegClass::Btr:
            return r.idx < btrs ? static_cast<size_t>(gprs) + preds +
                                      r.idx
                                : SIZE_MAX;
        }
        return SIZE_MAX;
    }
};

} // namespace

Ddg::Ddg(const LoweredRegion &lowered, const RegionIndex &index,
         Arena &arena)
{
    build(lowered, index, arena);
}

Ddg::Ddg(const LoweredRegion &lowered)
    : owned_arena_(std::make_unique<Arena>())
{
    const RegionIndex index(lowered, *owned_arena_);
    build(lowered, index, *owned_arena_);
}

void
Ddg::build(const LoweredRegion &lowered, const RegionIndex &index,
           Arena &arena)
{
    const size_t n = lowered.ops.size();
    n_ = n;
    succs_ = arena.allocZeroed<EdgeList>(n);
    preds_ = arena.allocZeroed<EdgeList>(n);
    heights_ = arena.allocZeroed<int32_t>(n);

    // Per-op latency cache (repeated opcodeInfo lookups add up).
    int32_t *lat = arena.allocArray<int32_t>(n);
    for (size_t i = 0; i < n; ++i)
        lat[i] = lowered.ops[i].op.latency();

    // Definition CSR keyed by dense register id. Full renaming gives
    // GPRs/BTRs a single def; wired-AND predicates have one
    // initializer plus one compare per condition, and hyperblock
    // merge copies give one guarded MOV per incoming edge (the guards
    // are mutually exclusive, so the writes commute and carry no
    // mutual ordering).
    RegSpace regs;
    for (size_t i = 0; i < n; ++i) {
        for (const Reg &d : lowered.ops[i].op.dsts) {
            switch (d.cls) {
              case ir::RegClass::Gpr:
                regs.gprs = std::max(regs.gprs, d.idx + 1);
                break;
              case ir::RegClass::Pred:
                regs.preds = std::max(regs.preds, d.idx + 1);
                break;
              case ir::RegClass::Btr:
                regs.btrs = std::max(regs.btrs, d.idx + 1);
                break;
            }
        }
    }
    uint32_t *def_off = arena.allocZeroed<uint32_t>(regs.size() + 1);
    for (size_t i = 0; i < n; ++i) {
        for (const Reg &d : lowered.ops[i].op.dsts)
            ++def_off[regs.key(d) + 1];
    }
    for (size_t r = 0; r < regs.size(); ++r)
        def_off[r + 1] += def_off[r];
    uint32_t *def_list = arena.allocArray<uint32_t>(def_off[regs.size()]);
    {
        uint32_t *fill = arena.allocArray<uint32_t>(regs.size());
        for (size_t r = 0; r < regs.size(); ++r)
            fill[r] = def_off[r];
        for (size_t i = 0; i < n; ++i) {
            for (const Reg &d : lowered.ops[i].op.dsts) {
                const size_t r = regs.key(d);
                TG_ASSERT(fill[r] == def_off[r] ||
                          d.cls == ir::RegClass::Pred ||
                          lowered.ops[i].op.guard.has_value());
                def_list[fill[r]++] = static_cast<uint32_t>(i);
            }
        }
    }
    auto defs_of = [&](const Reg &r) -> support::Span<uint32_t> {
        const size_t key = regs.key(r);
        if (key == SIZE_MAX)
            return {};
        return {def_list + def_off[key], def_off[key + 1] - def_off[key]};
    };

    // Value edges: sources and guards read after every producer.
    for (size_t i = 0; i < n; ++i) {
        const ir::Op &op = lowered.ops[i].op;
        op.forEachUsedReg([&](const Reg &use) {
            for (const uint32_t j : defs_of(use)) {
                if (j != i)
                    addEdge(arena, j, i, lat[j], false);
            }
        });
        // Accumulating predicate defines read-modify-write their
        // destination: they must follow the initializer (but not
        // their commuting siblings).
        if (op.opcode == ir::Opcode::CMPPA ||
            op.opcode == ir::Opcode::CMPPO) {
            const auto list = defs_of(op.dsts[0]);
            TG_ASSERT(!list.empty());
            TG_ASSERT(lowered.ops[list[0]].op.opcode ==
                          ir::Opcode::PSET ||
                      lowered.ops[list[0]].op.opcode ==
                          ir::Opcode::PCLR);
            addEdge(arena, list[0], i, 1, false);
        }
    }

    const uint32_t root_bi = index.indexOf(lowered.root);

    // Memory order edges along each internal path (DFS; a DAG may
    // visit merge blocks once per incoming path). The path state is a
    // single shared (last store, loads-since window) snapshot rolled
    // back on block exit — equivalent to the by-value state the walk
    // used to copy per path, minus the copies.
    size_t walk_budget = kWalkBudget;
    bool budget_hit = false;
    {
        ssize_t last_store = -1;
        ArenaVector<uint32_t> loads(arena);
        size_t window_start = 0;  // loads_since == loads[window..end)
        auto mem_walk = [&](auto &&self, uint32_t bi) -> void {
            if (walk_budget == 0) {
                budget_hit = true;
                return;
            }
            --walk_budget;
            const ssize_t saved_last = last_store;
            const size_t saved_window = window_start;
            const size_t saved_size = loads.size();
            for (const uint32_t i : index.opsIn(bi)) {
                const ir::Op &op = lowered.ops[i].op;
                if (op.isStore()) {
                    if (last_store >= 0)
                        addEdge(arena,
                                static_cast<size_t>(last_store), i, 0,
                                true);
                    for (size_t k = window_start; k < loads.size(); ++k)
                        addEdge(arena, loads[k], i, 0, true);
                    last_store = static_cast<ssize_t>(i);
                    window_start = loads.size();
                } else if (op.isLoad()) {
                    if (last_store >= 0)
                        addEdge(arena,
                                static_cast<size_t>(last_store), i, 0,
                                true);
                    loads.push_back(i);
                }
            }
            for (const uint32_t child : index.succs(bi))
                self(self, child);
            last_store = saved_last;
            window_start = saved_window;
            loads.resize(saved_size);
        };
        mem_walk(mem_walk, root_bi);
    }

    // Pinning edges: each guarded store precedes every exit branch
    // reachable at or below its block. Same rollback discipline; the
    // store set only ever grows along a path, so a size mark suffices.
    {
        ArenaVector<uint32_t> stores(arena);
        auto pin_walk = [&](auto &&self, uint32_t bi) -> void {
            if (walk_budget == 0) {
                budget_hit = true;
                return;
            }
            --walk_budget;
            const size_t saved_size = stores.size();
            for (const uint32_t i : index.opsIn(bi)) {
                if (lowered.ops[i].pinned)
                    stores.push_back(i);
            }
            for (const uint32_t e : index.exitsIn(bi)) {
                const size_t exit_op = lowered.exits[e].op_index;
                for (const uint32_t s : stores) {
                    if (s != exit_op)
                        addEdge(arena, s, exit_op, 0, false);
                }
            }
            for (const uint32_t child : index.succs(bi))
                self(self, child);
            stores.resize(saved_size);
        };
        pin_walk(pin_walk, root_bi);
    }

    if (budget_hit) {
        // Pathologically path-dense region: fall back to a total
        // order over all memory ops and exits in emission order.
        // Strictly more conservative, always correct.
        ssize_t last_mem = -1;
        for (size_t i = 0; i < n; ++i) {
            const ir::Op &op = lowered.ops[i].op;
            if (op.isMemory()) {
                if (last_mem >= 0)
                    addEdge(arena, static_cast<size_t>(last_mem), i, 0,
                            true);
                last_mem = static_cast<ssize_t>(i);
            }
        }
        for (const LoweredExit &exit : lowered.exits) {
            for (size_t i = 0; i < exit.op_index; ++i) {
                if (lowered.ops[i].pinned)
                    addEdge(arena, i, exit.op_index, 0, false);
            }
        }
    }

    // Exit data edges for reconciliation copies.
    for (const LoweredExit &exit : lowered.exits) {
        for (const ExitCopy &copy : exit.copies) {
            for (const uint32_t j : defs_of(copy.src)) {
                if (j != exit.op_index)
                    addEdge(arena, j, exit.op_index, lat[j] - 1, false);
            }
        }
    }

    // Extra deps (PBR -> branch).
    for (const auto &[from, to] : lowered.extra_deps)
        addEdge(arena, from, to, lat[from], false);

    // Dedupe parallel real edges, keeping the strongest constraint.
    auto dedupe = [](EdgeList &edges) {
        std::sort(edges.data, edges.data + edges.size,
                  [](const DdgEdge &a, const DdgEdge &b) {
                      if (a.other != b.other)
                          return a.other < b.other;
                      if (a.latency != b.latency)
                          return a.latency > b.latency;
                      return a.slot_ordered && !b.slot_ordered;
                  });
        DdgEdge *last = std::unique(
            edges.data, edges.data + edges.size,
            [](const DdgEdge &a, const DdgEdge &b) {
                return a.other == b.other &&
                       a.slot_ordered == b.slot_ordered;
            });
        edges.size = static_cast<uint32_t>(last - edges.data);
    };
    for (size_t i = 0; i < n; ++i) {
        dedupe(succs_[i]);
        dedupe(preds_[i]);
    }

    // Virtual control edges for dependence heights: each exit branch
    // "controls" everything homed strictly below its block.
    {
        ArenaVector<uint32_t> reach(arena);
        for (size_t i = 0; i < n; ++i) {
            if (lowered.ops[i].kind != LoweredKind::ExitBranch)
                continue;
            const uint32_t home_bi =
                index.indexOf(lowered.ops[i].home);
            reach.clear();
            index.reachableFrom(home_bi, reach);
            for (const uint32_t below : reach) {
                if (below == home_bi)
                    continue;
                for (const uint32_t target : index.opsIn(below))
                    addEdge(arena, i, target, 1, false, true);
            }
        }
    }

    // Heights over the full (data + virtual control) DAG. Virtual
    // edges can point backwards in emission order, so use memoized
    // DFS rather than a reverse sweep. Height floors let a second
    // pass raise specific nodes without introducing cycles.
    int32_t *floors = arena.allocZeroed<int32_t>(n);
    int8_t *mark = arena.allocArray<int8_t>(n);
    auto compute_heights = [&]() {
        std::memset(mark, 0, n);  // 0 new, 1 open, 2 done
        auto height_of = [&](auto &&self, size_t i) -> int {
            if (mark[i] == 2)
                return heights_[i];
            TG_ASSERT(mark[i] != 1 && "cycle in DDG");
            mark[i] = 1;
            int h = std::max(lat[i], floors[i]);
            for (const DdgEdge &e : succs(i))
                h = std::max(h, e.latency + self(self, e.other));
            mark[i] = 2;
            heights_[i] = h;
            return h;
        };
        for (size_t i = 0; i < n; ++i)
            height_of(height_of, i);
    };
    compute_heights();

    // Loop recurrence criticality: a back-edge exit (an exit whose
    // target is the region's own root) gates the entire next
    // iteration, so its dependence height is floored at one more than
    // the tallest op in the region. The floor propagates through the
    // real data edges into whatever feeds the exit - typically the
    // induction update - which would otherwise look like dead-end
    // code to the dependence-height heuristic. (The paper performs no
    // software pipelining, but region schedulers still must not
    // stretch the recurrence.)
    bool any_backedge = false;
    int tallest = 0;
    for (size_t i = 0; i < n; ++i)
        tallest = std::max(tallest, static_cast<int>(heights_[i]));
    for (const LoweredExit &exit : lowered.exits) {
        if (!exit.is_ret && exit.target == lowered.root) {
            floors[exit.op_index] = tallest + 1;
            any_backedge = true;
        }
    }
    if (any_backedge)
        compute_heights();
}

} // namespace treegion::sched
