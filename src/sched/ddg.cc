#include "sched/ddg.h"

#include <algorithm>
#include <unordered_map>

#include "support/logging.h"

namespace treegion::sched {

using ir::BlockId;
using ir::Reg;

namespace {

/** Memory-ordering state along one root-to-leaf path. */
struct MemState
{
    ssize_t last_store = -1;              ///< lowered index, -1 = none
    std::vector<size_t> loads_since;      ///< loads after last_store
};

/** Visit cap for per-path DAG walks; beyond it we fall back to a
 * fully conservative total order. */
constexpr size_t kWalkBudget = 1u << 17;

} // namespace

void
Ddg::addEdge(size_t from, size_t to, int latency, bool slot_ordered,
             bool virtual_ctrl)
{
    TG_ASSERT(from != to);
    succs_[from].push_back({to, latency, slot_ordered, virtual_ctrl});
    preds_[to].push_back({from, latency, slot_ordered, virtual_ctrl});
}

Ddg::Ddg(const LoweredRegion &lowered)
{
    const size_t n = lowered.ops.size();
    succs_.resize(n);
    preds_.resize(n);
    heights_.assign(n, 0);

    // Definition map. Full renaming gives GPRs/BTRs a single def;
    // wired-AND predicates have one initializer plus one compare per
    // condition, and hyperblock merge copies give one guarded MOV per
    // incoming edge (the guards are mutually exclusive, so the writes
    // commute and carry no mutual ordering).
    std::unordered_map<Reg, std::vector<size_t>> defs;
    for (size_t i = 0; i < n; ++i) {
        for (const Reg &d : lowered.ops[i].op.dsts) {
            auto &list = defs[d];
            TG_ASSERT(list.empty() || d.cls == ir::RegClass::Pred ||
                      lowered.ops[i].op.guard.has_value());
            list.push_back(i);
        }
    }

    // Value edges: sources and guards read after every producer.
    for (size_t i = 0; i < n; ++i) {
        const ir::Op &op = lowered.ops[i].op;
        for (const Reg &use : op.usedRegs()) {
            auto it = defs.find(use);
            if (it == defs.end())
                continue;
            for (const size_t j : it->second) {
                if (j != i)
                    addEdge(j, i, lowered.ops[j].op.latency(), false);
            }
        }
        // Accumulating predicate defines read-modify-write their
        // destination: they must follow the initializer (but not
        // their commuting siblings).
        if (op.opcode == ir::Opcode::CMPPA ||
            op.opcode == ir::Opcode::CMPPO) {
            const auto &list = defs.at(op.dsts[0]);
            TG_ASSERT(lowered.ops[list.front()].op.opcode ==
                          ir::Opcode::PSET ||
                      lowered.ops[list.front()].op.opcode ==
                          ir::Opcode::PCLR);
            addEdge(list.front(), i, 1, false);
        }
    }

    // Per-home op lists in emission order.
    std::unordered_map<BlockId, std::vector<size_t>> by_home;
    for (size_t i = 0; i < n; ++i)
        by_home[lowered.ops[i].home].push_back(i);

    auto succs_of = [&](BlockId block) -> const std::vector<BlockId> & {
        static const std::vector<BlockId> kEmpty;
        auto it = lowered.succs_in_region.find(block);
        return it == lowered.succs_in_region.end() ? kEmpty
                                                   : it->second;
    };

    // Memory order edges along each internal path (DFS carrying
    // state; a DAG may visit merge blocks once per incoming path).
    size_t walk_budget = kWalkBudget;
    bool budget_hit = false;
    auto mem_walk = [&](auto &&self, BlockId block,
                        MemState state) -> void {
        if (walk_budget == 0) {
            budget_hit = true;
            return;
        }
        --walk_budget;
        auto it = by_home.find(block);
        if (it != by_home.end()) {
            for (const size_t i : it->second) {
                const ir::Op &op = lowered.ops[i].op;
                if (op.isStore()) {
                    if (state.last_store >= 0)
                        addEdge(static_cast<size_t>(state.last_store), i,
                                0, true);
                    for (const size_t load : state.loads_since)
                        addEdge(load, i, 0, true);
                    state.last_store = static_cast<ssize_t>(i);
                    state.loads_since.clear();
                } else if (op.isLoad()) {
                    if (state.last_store >= 0)
                        addEdge(static_cast<size_t>(state.last_store), i,
                                0, true);
                    state.loads_since.push_back(i);
                }
            }
        }
        for (const BlockId child : succs_of(block))
            self(self, child, state);
    };
    mem_walk(mem_walk, lowered.root, MemState{});

    // Exit lookup by home block.
    std::unordered_map<BlockId, std::vector<const LoweredExit *>>
        exits_by_home;
    for (const LoweredExit &exit : lowered.exits)
        exits_by_home[exit.from].push_back(&exit);

    // Pinning edges: each guarded store precedes every exit branch
    // reachable at or below its block.
    auto pin_walk = [&](auto &&self, BlockId block,
                        std::vector<size_t> stores) -> void {
        if (walk_budget == 0) {
            budget_hit = true;
            return;
        }
        --walk_budget;
        auto it = by_home.find(block);
        if (it != by_home.end()) {
            for (const size_t i : it->second) {
                if (lowered.ops[i].pinned)
                    stores.push_back(i);
            }
        }
        auto eit = exits_by_home.find(block);
        if (eit != exits_by_home.end()) {
            for (const LoweredExit *exit : eit->second) {
                for (const size_t s : stores) {
                    if (s != exit->op_index)
                        addEdge(s, exit->op_index, 0, false);
                }
            }
        }
        for (const BlockId child : succs_of(block))
            self(self, child, stores);
    };
    pin_walk(pin_walk, lowered.root, {});

    if (budget_hit) {
        // Pathologically path-dense region: fall back to a total
        // order over all memory ops and exits in emission order.
        // Strictly more conservative, always correct.
        ssize_t last_mem = -1;
        for (size_t i = 0; i < n; ++i) {
            const ir::Op &op = lowered.ops[i].op;
            if (op.isMemory()) {
                if (last_mem >= 0)
                    addEdge(static_cast<size_t>(last_mem), i, 0, true);
                last_mem = static_cast<ssize_t>(i);
            }
        }
        for (const LoweredExit &exit : lowered.exits) {
            for (size_t i = 0; i < exit.op_index; ++i) {
                if (lowered.ops[i].pinned)
                    addEdge(i, exit.op_index, 0, false);
            }
        }
    }

    // Exit data edges for reconciliation copies.
    for (const LoweredExit &exit : lowered.exits) {
        for (const ExitCopy &copy : exit.copies) {
            auto it = defs.find(copy.src);
            if (it == defs.end())
                continue;
            for (const size_t j : it->second) {
                const int lat = lowered.ops[j].op.latency() - 1;
                if (j != exit.op_index)
                    addEdge(j, exit.op_index, lat, false);
            }
        }
    }

    // Extra deps (PBR -> branch).
    for (const auto &[from, to] : lowered.extra_deps)
        addEdge(from, to, lowered.ops[from].op.latency(), false);

    // Dedupe parallel real edges, keeping the strongest constraint.
    auto dedupe = [](std::vector<DdgEdge> &edges) {
        std::sort(edges.begin(), edges.end(),
                  [](const DdgEdge &a, const DdgEdge &b) {
                      if (a.other != b.other)
                          return a.other < b.other;
                      if (a.latency != b.latency)
                          return a.latency > b.latency;
                      return a.slot_ordered && !b.slot_ordered;
                  });
        edges.erase(std::unique(edges.begin(), edges.end(),
                                [](const DdgEdge &a, const DdgEdge &b) {
                                    return a.other == b.other &&
                                           a.slot_ordered ==
                                               b.slot_ordered;
                                }),
                    edges.end());
    };
    for (auto &edges : succs_)
        dedupe(edges);
    for (auto &edges : preds_)
        dedupe(edges);

    // Virtual control edges for dependence heights: each exit branch
    // "controls" everything homed strictly below its block.
    for (size_t i = 0; i < n; ++i) {
        if (lowered.ops[i].kind != LoweredKind::ExitBranch)
            continue;
        const BlockId home = lowered.ops[i].home;
        for (const BlockId below : lowered.reachableFrom(home)) {
            if (below == home)
                continue;
            auto it = by_home.find(below);
            if (it == by_home.end())
                continue;
            for (const size_t target : it->second)
                addEdge(i, target, 1, false, true);
        }
    }

    // Heights over the full (data + virtual control) DAG. Virtual
    // edges can point backwards in emission order, so use memoized
    // DFS rather than a reverse sweep. Height floors let a second
    // pass raise specific nodes without introducing cycles.
    std::vector<int> floors(n, 0);
    auto compute_heights = [&]() {
        std::vector<int8_t> mark(n, 0);  // 0 new, 1 open, 2 done
        auto height_of = [&](auto &&self, size_t i) -> int {
            if (mark[i] == 2)
                return heights_[i];
            TG_ASSERT(mark[i] != 1 && "cycle in DDG");
            mark[i] = 1;
            int h = std::max(lowered.ops[i].op.latency(), floors[i]);
            for (const DdgEdge &e : succs_[i])
                h = std::max(h, e.latency + self(self, e.other));
            mark[i] = 2;
            heights_[i] = h;
            return h;
        };
        for (size_t i = 0; i < n; ++i)
            height_of(height_of, i);
    };
    compute_heights();

    // Loop recurrence criticality: a back-edge exit (an exit whose
    // target is the region's own root) gates the entire next
    // iteration, so its dependence height is floored at one more than
    // the tallest op in the region. The floor propagates through the
    // real data edges into whatever feeds the exit - typically the
    // induction update - which would otherwise look like dead-end
    // code to the dependence-height heuristic. (The paper performs no
    // software pipelining, but region schedulers still must not
    // stretch the recurrence.)
    bool any_backedge = false;
    int tallest = 0;
    for (size_t i = 0; i < n; ++i)
        tallest = std::max(tallest, heights_[i]);
    for (const LoweredExit &exit : lowered.exits) {
        if (!exit.is_ret && exit.target == lowered.root) {
            floors[exit.op_index] = tallest + 1;
            any_backedge = true;
        }
    }
    if (any_backedge)
        compute_heights();
}

} // namespace treegion::sched
