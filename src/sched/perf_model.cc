#include "sched/perf_model.h"

#include "support/logging.h"

namespace treegion::sched {

double
estimateRegionTime(const RegionSchedule &sched)
{
    double time = 0.0;
    for (const ScheduledExit &exit : sched.exits) {
        // Never-taken exits contribute nothing, whatever cycle their
        // branch landed in.
        if (exit.weight <= 0.0)
            continue;
        // A path leaving via a branch issuing in cycle c costs c + 1
        // cycles; a fall-through exit has no branch and costs the
        // full schedule length (DESIGN.md §6).
        const double cycles =
            exit.op_index == ScheduledExit::kFallthrough
                ? static_cast<double>(sched.length)
                : static_cast<double>(exit.cycle + 1);
        time += exit.weight * cycles;
    }
    return time;
}

double
estimateFunctionTime(const FunctionSchedule &sched)
{
    double time = 0.0;
    for (const auto &[root, region_sched] : sched.regions)
        time += estimateRegionTime(region_sched);
    return time;
}

double
speedup(double baseline_time, double time)
{
    TG_ASSERT(time > 0.0);
    return baseline_time / time;
}

} // namespace treegion::sched
