#include "sched/perf_model.h"

#include "support/logging.h"
#include "support/remarks.h"

namespace treegion::sched {

double
estimateRegionTime(const RegionSchedule &sched)
{
    double time = 0.0;
    for (const ScheduledExit &exit : sched.exits) {
        // A path leaving via a branch issuing in cycle c costs c + 1
        // cycles; a fall-through exit has no branch and costs the
        // full schedule length (DESIGN.md §6).
        const double cycles =
            exit.op_index == ScheduledExit::kFallthrough
                ? static_cast<double>(sched.length)
                : static_cast<double>(exit.cycle + 1);
        // Never-taken exits contribute nothing, whatever cycle their
        // branch landed in.
        const double cost = exit.weight > 0.0 ? exit.weight * cycles
                                              : 0.0;
        if (support::remarksEnabled()) {
            auto r = support::remark(support::RemarkKind::ExitCost);
            r.block(exit.from).arg("root", sched.root);
            if (!exit.is_ret && exit.target != ir::kNoBlock)
                r.arg("target", exit.target);
            r.arg("ret", exit.is_ret ? 1 : 0)
                .arg("cycle", exit.cycle)
                .arg("weight", exit.weight)
                .arg("cycles", cycles)
                .arg("cost", cost);
        }
        time += cost;
    }
    return time;
}

double
estimateFunctionTime(const FunctionSchedule &sched)
{
    double time = 0.0;
    for (const auto &[root, region_sched] : sched.regions)
        time += estimateRegionTime(region_sched);
    return time;
}

double
speedup(double baseline_time, double time)
{
    TG_ASSERT(time > 0.0);
    return baseline_time / time;
}

} // namespace treegion::sched
