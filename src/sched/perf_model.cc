#include "sched/perf_model.h"

#include "support/logging.h"

namespace treegion::sched {

double
estimateRegionTime(const RegionSchedule &sched)
{
    double time = 0.0;
    for (const ScheduledExit &exit : sched.exits)
        time += exit.weight * static_cast<double>(exit.cycle + 1);
    return time;
}

double
estimateFunctionTime(const FunctionSchedule &sched)
{
    double time = 0.0;
    for (const auto &[root, region_sched] : sched.regions)
        time += estimateRegionTime(region_sched);
    return time;
}

double
speedup(double baseline_time, double time)
{
    TG_ASSERT(time > 0.0);
    return baseline_time / time;
}

} // namespace treegion::sched
