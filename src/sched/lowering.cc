#include "sched/lowering.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "sched/rename_table.h"
#include "support/logging.h"
#include "support/remarks.h"

namespace treegion::sched {

using ir::BlockId;
using ir::kNoBlock;
using ir::Op;
using ir::Opcode;
using ir::Reg;

namespace {

/** One path condition: cmp(a, b) with renamed operands. */
struct Cond
{
    ir::CmpKind kind;
    ir::Operand a;
    ir::Operand b;
};

class Lowerer
{
  public:
    Lowerer(ir::Function &fn, const region::Region &r,
            const analysis::Liveness &live, const LowerOptions &options)
        : fn_(fn), region_(r), live_(live), options_(options), map_(fn)
    {
        out_.root = r.root();
    }

    LoweredRegion
    run()
    {
        lowerBlock(region_.root());
        // Record the region's internal tree for the DDG.
        for (const ir::BlockId id : region_.blocks())
            out_.succs_in_region[id] = region_.childrenOf(id);
        return std::move(out_);
    }

  private:
    /** Rewrite an op's register reads through the rename table. */
    void
    applyRenames(Op &op) const
    {
        for (ir::Operand &src : op.srcs) {
            if (src.isReg()) {
                if (const Reg *renamed = map_.find(src.reg))
                    src.reg = *renamed;
            }
        }
        // Guards are synthesized path predicates, never renamed
        // program registers; nothing to do for op.guard.
    }

    /** Rename every destination of @p op to a fresh register. */
    void
    renameDests(Op &op, BlockId home)
    {
        for (Reg &dst : op.dsts) {
            Reg fresh;
            switch (dst.cls) {
              case ir::RegClass::Gpr:
                fresh = fn_.freshGpr();
                break;
              case ir::RegClass::Pred:
                fresh = fn_.freshPred();
                break;
              case ir::RegClass::Btr:
                fresh = fn_.freshBtr();
                break;
            }
            if (support::remarksEnabled()) {
                // op.id is still the original op's id here; emit()
                // assigns the lowered clone a fresh one later.
                support::remark(support::RemarkKind::Renamed)
                    .block(home)
                    .op(op.id)
                    .arg("from", dst.str())
                    .arg("to", fresh.str());
            }
            map_.set(dst, fresh);
            dst = fresh;
            ++out_.renamed_defs;
        }
    }

    /** Reconciliation copies for an exit into @p target. */
    std::vector<ExitCopy>
    copiesFor(BlockId target)
    {
        std::vector<ExitCopy> copies;
        map_.forEachPresent([&](Reg orig, Reg renamed) {
            if (orig == renamed)
                return;
            if (orig.cls == ir::RegClass::Btr)
                return;
            if (live_.liveIn(target, orig))
                copies.push_back({orig, renamed});
        });
        std::sort(copies.begin(), copies.end(),
                  [](const ExitCopy &a, const ExitCopy &b) {
                      return std::make_pair(a.dst.cls, a.dst.idx) <
                             std::make_pair(b.dst.cls, b.dst.idx);
                  });
        return copies;
    }

    /** Append a lowered op; @return its index. */
    size_t
    emit(Op op, BlockId home, LoweredKind kind, bool pinned = false)
    {
        op.id = fn_.freshOpId();
        LoweredOp lop;
        lop.op = std::move(op);
        lop.home = home;
        lop.kind = kind;
        lop.pinned = pinned;
        out_.ops.push_back(std::move(lop));
        return out_.ops.size() - 1;
    }

    /**
     * Materialize the conjunction of @p conds as one predicate
     * register: a PSET initializer plus one and-type compare per
     * condition. All compares read renamed data directly, so the
     * predicate is ready one level after the slowest condition
     * operand regardless of path depth (wired-AND critical path
     * reduction).
     *
     * @return the predicate register, or nullopt when @p conds is
     * empty (constant true)
     */
    std::optional<Reg>
    materializePred(const std::vector<Cond> &conds, BlockId home)
    {
        if (conds.empty())
            return std::nullopt;
        const Reg p = fn_.freshPred();
        Op pset;
        pset.opcode = Opcode::PSET;
        pset.dsts = {p};
        emit(std::move(pset), home, LoweredKind::PredDef);
        for (const Cond &cond : conds) {
            Op and_op;
            and_op.opcode = Opcode::CMPPA;
            and_op.cmp = cond.kind;
            and_op.dsts = {p};
            and_op.srcs = {cond.a, cond.b};
            emit(std::move(and_op), home, LoweredKind::PredDef);
        }
        return p;
    }

    /** The block's own path predicate, materialized at most once. */
    std::optional<Reg>
    blockPred(BlockId id)
    {
        auto it = block_pred_.find(id);
        if (it != block_pred_.end())
            return it->second;
        auto p = materializePred(conds_, id);
        block_pred_.emplace(id, p);
        return p;
    }

    /** Emit an exit branch, its optional PBR, and the exit record. */
    void
    emitExit(Op branch, BlockId home, size_t target_slot, BlockId target,
             bool is_ret, double weight)
    {
        if (options_.materialize_pbr && !is_ret && target != kNoBlock) {
            Op pbr = ir::makePbr(fn_.freshBtr(), target);
            pbr.guard = branch.guard;
            const size_t pbr_idx = emit(std::move(pbr), home,
                                        LoweredKind::Computation);
            const size_t br_idx = emit(std::move(branch), home,
                                       LoweredKind::ExitBranch);
            out_.extra_deps.emplace_back(pbr_idx, br_idx);
            recordExit(br_idx, home, target_slot, target, is_ret,
                       weight);
            return;
        }
        const size_t br_idx =
            emit(std::move(branch), home, LoweredKind::ExitBranch);
        recordExit(br_idx, home, target_slot, target, is_ret, weight);
    }

    void
    recordExit(size_t op_index, BlockId from, size_t target_slot,
               BlockId target, bool is_ret, double weight)
    {
        LoweredExit exit;
        exit.op_index = op_index;
        exit.target_slot = target_slot;
        exit.from = from;
        exit.target = target;
        exit.is_ret = is_ret;
        exit.weight = weight;
        if (!is_ret && target != kNoBlock)
            exit.copies = copiesFor(target);
        out_.exits.push_back(std::move(exit));
    }

    /**
     * Emit a conditional exit along the current path conditions to
     * @p target (plain BRU when the condition set is empty, i.e. an
     * exit from the root).
     */
    void
    emitCondExit(BlockId home, size_t target_slot, BlockId target,
                 double weight)
    {
        const auto p = materializePred(conds_, home);
        Op branch = p ? ir::makeBrct(*p, target, kNoBlock)
                      : ir::makeBru(target);
        emitExit(std::move(branch), home, target_slot, target, false,
                 weight);
    }

    /** Profile weight of target slot @p slot of @p b. */
    static double
    edgeWeight(const ir::BasicBlock &b, size_t slot)
    {
        const auto &weights = b.edgeWeights();
        return slot < weights.size() ? weights[slot] : 0.0;
    }

    /** Recurse into internal child @p target, isolating renames. */
    void
    lowerChild(BlockId target)
    {
        const size_t mark = map_.mark();
        lowerBlock(target);
        map_.rollback(mark);
    }

    /**
     * Lower block @p id, then recurse into its internal children.
     * The rename table (map_) and path-condition stack (conds_) hold
     * the state inherited from the parent path; recursion isolates
     * sibling paths via mark/rollback and push/pop.
     */
    void
    lowerBlock(BlockId id)
    {
        ir::BasicBlock &b = fn_.block(id);
        const Op &term = b.terminator();

        // The CMPP feeding a conditional terminator is folded into
        // the path conditions instead of being emitted; capture its
        // operands (renamed as of its program point).
        Reg cond_reg{};
        bool has_cond = false;
        if (term.opcode == Opcode::BRCT || term.opcode == Opcode::BRCF) {
            cond_reg = term.srcs[0].reg;
            has_cond = true;
        }
        std::optional<Cond> branch_cond;

        // Body ops.
        for (size_t i = 0; i + 1 < b.ops().size(); ++i) {
            const Op &orig = b.ops()[i];
            if (has_cond && orig.opcode == Opcode::CMPP &&
                !orig.dsts.empty() && orig.dsts[0] == cond_reg) {
                Op probe = orig;
                applyRenames(probe);
                branch_cond = Cond{probe.cmp, probe.srcs[0],
                                   probe.srcs[1]};
                continue;
            }
            Op op = orig;
            applyRenames(op);
            renameDests(op, id);
            const bool pinned = op.isStore();
            if (pinned)
                op.guard = blockPred(id);
            emit(std::move(op), id, LoweredKind::Computation, pinned);
        }

        // Terminator.
        switch (term.opcode) {
          case Opcode::RET: {
            Op ret = term;
            applyRenames(ret);
            ret.guard = blockPred(id);
            emitExit(std::move(ret), id, 0, kNoBlock, true, b.weight());
            break;
          }
          case Opcode::BRU: {
            const BlockId target = term.targets[0];
            if (region_.isInternalEdge(fn_, id, 0)) {
                // The branch dissolves; the child inherits this
                // block's conditions unchanged.
                lowerChild(target);
            } else {
                // Reuses the block predicate (shared with any guarded
                // stores in this block).
                const auto p = blockPred(id);
                Op branch = p ? ir::makeBrct(*p, target, kNoBlock)
                              : ir::makeBru(target);
                emitExit(std::move(branch), id, 0, target, false,
                         edgeWeight(b, 0));
            }
            break;
          }
          case Opcode::BRCT:
          case Opcode::BRCF: {
            TG_ASSERT(branch_cond &&
                      "terminator condition defined in another block");
            // BRCF takes its branch when the compare is false.
            Cond taken = *branch_cond;
            if (term.opcode == Opcode::BRCF)
                taken.kind = ir::negateCmpKind(taken.kind);
            Cond fall = taken;
            fall.kind = ir::negateCmpKind(fall.kind);
            const Cond edge_cond[2] = {taken, fall};
            for (size_t slot = 0; slot < term.targets.size(); ++slot) {
                const BlockId target = term.targets[slot];
                conds_.push_back(edge_cond[slot]);
                if (region_.isInternalEdge(fn_, id, slot)) {
                    lowerChild(target);
                } else {
                    emitCondExit(id, slot, target, edgeWeight(b, slot));
                }
                conds_.pop_back();
            }
            break;
          }
          case Opcode::MWBR: {
            Op sel_probe = term;
            applyRenames(sel_probe);
            const ir::Operand selector = sel_probe.srcs[0];

            Op mwbr = term;
            mwbr.srcs = {selector};
            bool any_exit = false;
            std::vector<std::pair<size_t, BlockId>> exit_cases;
            for (size_t slot = 0; slot < term.targets.size(); ++slot) {
                const BlockId target = term.targets[slot];
                if (region_.isInternalEdge(fn_, id, slot)) {
                    // Internal case: the child's path adds the
                    // selector-match condition; the MWBR case falls
                    // through.
                    mwbr.targets[slot] = kNoBlock;
                    conds_.push_back(
                        Cond{ir::CmpKind::EQ, selector,
                             ir::Operand::makeImm(
                                 term.caseValues[slot])});
                    lowerChild(target);
                    conds_.pop_back();
                } else {
                    any_exit = true;
                    exit_cases.emplace_back(slot, target);
                }
            }
            if (any_exit) {
                mwbr.guard = blockPred(id);
                const size_t br_idx =
                    emit(std::move(mwbr), id, LoweredKind::ExitBranch);
                for (const auto &[slot, target] : exit_cases) {
                    recordExit(br_idx, id, slot, target, false,
                               edgeWeight(b, slot));
                }
            }
            break;
          }
          default:
            TG_PANIC("unexpected terminator %s",
                     std::string(ir::opcodeName(term.opcode)).c_str());
        }
    }

    ir::Function &fn_;
    const region::Region &region_;
    const analysis::Liveness &live_;
    const LowerOptions &options_;
    LoweredRegion out_;
    RenameTable map_;
    std::vector<Cond> conds_;  ///< path conditions, root to here
    std::unordered_map<BlockId, std::optional<Reg>> block_pred_;
};

} // namespace

std::vector<ir::BlockId>
LoweredRegion::reachableFrom(ir::BlockId id) const
{
    std::vector<ir::BlockId> out;
    std::unordered_map<ir::BlockId, bool> seen;
    std::vector<ir::BlockId> stack = {id};
    while (!stack.empty()) {
        const ir::BlockId cur = stack.back();
        stack.pop_back();
        if (seen[cur])
            continue;
        seen[cur] = true;
        out.push_back(cur);
        auto it = succs_in_region.find(cur);
        if (it != succs_in_region.end()) {
            for (const ir::BlockId succ : it->second)
                stack.push_back(succ);
        }
    }
    return out;
}

LoweredRegion
lowerRegion(ir::Function &fn, const region::Region &r,
            const analysis::Liveness &live, const LowerOptions &options)
{
    return Lowerer(fn, r, live, options).run();
}

} // namespace treegion::sched
