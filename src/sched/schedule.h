/**
 * @file
 * Scheduled-code representation: the output of the region scheduler.
 *
 * A RegionSchedule is a rectangular grid of cycles x issue slots of
 * ops, plus exit metadata. Exits carry reconciliation copies: the
 * register renaming the scheduler performed is undone at each exit
 * for the values live into the exit's target, following the paper's
 * model in which rename copies are executed but "not used in
 * computing speedup".
 */

#ifndef TREEGION_SCHED_SCHEDULE_H
#define TREEGION_SCHED_SCHEDULE_H

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/op.h"

namespace treegion::sched {

/** One op placed in the schedule. */
struct ScheduledOp
{
    ir::Op op;          ///< renamed, possibly guarded op
    int cycle = 0;      ///< 0-based MultiOp row
    int slot = 0;       ///< issue slot within the row
    bool speculative = false;  ///< issued above a branch it followed

    /** Original region block the op came from; the verifier derives
     * path-relative memory program order from it. kNoBlock means
     * "unknown home" (hand-built schedules), which the verifier
     * treats as a single shared block. */
    ir::BlockId home = ir::kNoBlock;
};

/** A renaming reconciliation copy applied when an exit is taken. */
struct ExitCopy
{
    ir::Reg dst;  ///< original architectural register
    ir::Reg src;  ///< renamed register holding the value
};

/** One way control can leave a region schedule. */
struct ScheduledExit
{
    /**
     * Sentinel op_index for a fall-through exit: control leaves the
     * region at the end of the schedule without a branch op firing.
     * The list scheduler never produces these (every exit is an
     * explicit retire-ASAP branch), but the representation admits
     * them and the performance model must cost them as the full
     * schedule length (DESIGN.md §6).
     */
    static constexpr size_t kFallthrough = static_cast<size_t>(-1);

    size_t op_index;       ///< index into RegionSchedule::ops of the
                           ///< branch op that takes this exit, or
                           ///< kFallthrough
    size_t target_slot;    ///< terminator target slot (MWBR case idx)
    ir::BlockId from;      ///< original block the exit came from
    ir::BlockId target;    ///< destination block (kNoBlock for RET)
    bool is_ret = false;   ///< function exit
    double weight = 0.0;   ///< profile weight of the exit edge
    int cycle = 0;         ///< cycle the exit branch issues in
    std::vector<ExitCopy> copies;  ///< applied when the exit fires
};

/** Scheduler statistics for one region. */
struct RegionSchedStats
{
    size_t renamed_defs = 0;    ///< destinations given fresh names
    size_t exit_copies = 0;     ///< reconciliation copies emitted
    size_t speculated_ops = 0;  ///< ops issued above a branch
    size_t elided_ops = 0;      ///< removed via dominator parallelism
};

/** The schedule of one region. */
struct RegionSchedule
{
    ir::BlockId root = ir::kNoBlock;  ///< region root block
    int length = 0;                   ///< schedule height in cycles
    std::vector<ScheduledOp> ops;     ///< sorted by (cycle, slot)
    std::vector<ScheduledExit> exits;
    RegionSchedStats stats;

    /**
     * The region's internal control structure (copied from the
     * lowering): for each member block, its in-region successors.
     * Two op homes lie on a common root-to-exit path exactly when
     * one reaches the other through this map; the verifier uses that
     * to check memory program order. Empty for hand-built schedules,
     * in which case all ops are treated as sharing one path.
     */
    std::unordered_map<ir::BlockId, std::vector<ir::BlockId>>
        succs_in_region;

    /** Render the schedule as a cycle x slot text grid. */
    std::string str(int issue_width) const;
};

/** All region schedules of one function, keyed by region root. */
struct FunctionSchedule
{
    ir::BlockId entry = ir::kNoBlock;
    std::unordered_map<ir::BlockId, RegionSchedule> regions;
};

} // namespace treegion::sched

#endif // TREEGION_SCHED_SCHEDULE_H
