/**
 * @file
 * End-to-end compilation pipeline: region formation -> lowering ->
 * scheduling -> performance estimate, for one function and one
 * configuration. This is the library's main entry point and the
 * workhorse behind every experiment.
 *
 * Compilation is embarrassingly parallel across (function,
 * configuration) pairs — the paper's own evaluation sweeps schemes x
 * heuristics x machine models over every benchmark — so the driver
 * also offers runPipelineParallel: shard a batch of PipelineJobs
 * over a work-stealing ThreadPool, compile each one on a private
 * clone, and return results in input order, bit-identical to the
 * sequential path for any thread count.
 */

#ifndef TREEGION_SCHED_PIPELINE_H
#define TREEGION_SCHED_PIPELINE_H

#include <string>
#include <vector>

#include "region/formation.h"
#include "region/region_stats.h"
#include "sched/list_scheduler.h"
#include "sched/machine_model.h"
#include "sched/perf_model.h"
#include "support/remarks.h"
#include "support/thread_pool.h"

namespace treegion::sched {

/** Region formation schemes the paper compares. */
enum class RegionScheme {
    BasicBlock,       ///< baseline
    Slr,              ///< simple linear regions
    Superblock,       ///< traces + tail duplication (mutates the CFG)
    Treegion,         ///< Fig. 2 treegions
    TreegionTailDup,  ///< Fig. 11 treegions (mutates the CFG)
    Hyperblock,       ///< if-converted DAG regions (the paper's
                      ///< planned comparison point)
};

/** @return display name of @p scheme. */
std::string regionSchemeName(RegionScheme scheme);

/** Parse a regionSchemeName() token. @return false on error. */
bool parseRegionScheme(const std::string &name, RegionScheme &out);

/** Parse a heuristic name ("gw" or "global-weight" style). */
bool parseHeuristicName(const std::string &name, Heuristic &out);

/** Full pipeline configuration. */
struct PipelineOptions
{
    RegionScheme scheme = RegionScheme::Treegion;
    MachineModel model = MachineModel::wide4U();
    SchedOptions sched;
    region::TailDupLimits tail_dup;   ///< for TreegionTailDup
    region::SuperblockOptions superblock;  ///< for Superblock
    region::HyperblockOptions hyperblock;  ///< for Hyperblock
};

/**
 * Render @p options as one canonical "key=value key=value ..." line
 * covering every field (scheme, heuristic, width, scheduler flags,
 * tail-dup / superblock / hyperblock limits). Two PipelineOptions
 * encode identically iff they configure identical compilations, so
 * the encoding doubles as the options half of the compile-cache key
 * and as the wire format of the compile service.
 */
std::string encodePipelineOptions(const PipelineOptions &options);

/**
 * Parse encodePipelineOptions() output (any subset of the fields, in
 * any order; omitted fields keep their defaults). @return false and
 * set @p error on an unknown key or a malformed value.
 */
bool parsePipelineOptions(const std::string &text,
                          PipelineOptions &out,
                          std::string *error = nullptr);

/** Everything the experiments need from one pipeline run. */
struct PipelineResult
{
    FunctionSchedule schedule;
    region::RegionSet regions;
    region::RegionStats region_stats;
    double estimated_time = 0.0;
    double code_expansion = 1.0;  ///< vs. the pre-formation function
    RegionSchedStats total_sched_stats;
};

/**
 * Run the pipeline on @p fn.
 *
 * Tail-duplicating schemes mutate @p fn (clone blocks, split profile
 * flow); clone the function first if the original is still needed.
 */
PipelineResult runPipeline(ir::Function &fn,
                           const PipelineOptions &options);

/** A pipeline run on a private clone of the input function. */
struct ClonedPipelineRun
{
    /** The compiled clone (tail-duplicating schemes mutate it). */
    ir::Function fn;
    PipelineResult result;
    double compile_ms = 0.0;  ///< wall time of the pipeline run
};

/**
 * Const-safe pipeline entry point: clone @p fn, run the pipeline on
 * the clone, and return both. The input is never mutated, so the
 * same function can be compiled under any number of configurations
 * concurrently — this is the only pipeline entry point shared state
 * (the compile service, the fuzzer, the parallel driver) should use.
 */
ClonedPipelineRun runPipelineOnClone(const ir::Function &fn,
                                     const PipelineOptions &options);

/**
 * The paper's baseline: basic-block scheduling on the single-issue
 * machine, run on a private clone. @return its estimated execution
 * time for @p fn.
 */
double estimateBaselineTime(const ir::Function &fn);

/**
 * One unit of batched compilation: a function x configuration pair.
 * The function is never mutated — every job compiles a private
 * clone, so the same function may appear in any number of jobs.
 */
struct PipelineJob
{
    const ir::Function *fn = nullptr;  ///< profiled input function
    PipelineOptions options;
    std::string label;  ///< trace/report label, e.g. "gcc/tree/gw"
    /** Collect decision remarks for this job (support/remarks.h). */
    bool collect_remarks = false;
};

/** Outcome of one PipelineJob. */
struct PipelineJobResult
{
    /** The compiled clone (tail-duplicating schemes mutate it). */
    ir::Function fn;
    PipelineResult result;
    std::string label;        ///< copied from the job
    double compile_ms = 0.0;  ///< wall time of this job's pipeline run
    /** Decision remarks, when the job asked for them. The stream is
     * private to the job, so its order is deterministic and identical
     * for any worker count. */
    support::RemarkStream remarks;
};

/**
 * Compile every job in @p jobs across @p num_threads workers
 * (0 = one per hardware thread) and return the results **in input
 * order**. Each job runs on a private clone of its function, so
 * results are bit-identical to calling runPipeline sequentially on
 * clones, regardless of thread count or scheduling interleaving.
 *
 * With num_threads == 1 the jobs run inline on the calling thread
 * (no pool is created). Pass @p pool to reuse an existing pool
 * (num_threads is then ignored).
 */
std::vector<PipelineJobResult>
runPipelineParallel(const std::vector<PipelineJob> &jobs,
                    size_t num_threads = 0,
                    support::ThreadPool *pool = nullptr);

} // namespace treegion::sched

#endif // TREEGION_SCHED_PIPELINE_H
