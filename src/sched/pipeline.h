/**
 * @file
 * End-to-end compilation pipeline: region formation -> lowering ->
 * scheduling -> performance estimate, for one function and one
 * configuration. This is the library's main entry point and the
 * workhorse behind every experiment.
 */

#ifndef TREEGION_SCHED_PIPELINE_H
#define TREEGION_SCHED_PIPELINE_H

#include <string>

#include "region/formation.h"
#include "region/region_stats.h"
#include "sched/list_scheduler.h"
#include "sched/machine_model.h"
#include "sched/perf_model.h"

namespace treegion::sched {

/** Region formation schemes the paper compares. */
enum class RegionScheme {
    BasicBlock,       ///< baseline
    Slr,              ///< simple linear regions
    Superblock,       ///< traces + tail duplication (mutates the CFG)
    Treegion,         ///< Fig. 2 treegions
    TreegionTailDup,  ///< Fig. 11 treegions (mutates the CFG)
    Hyperblock,       ///< if-converted DAG regions (the paper's
                      ///< planned comparison point)
};

/** @return display name of @p scheme. */
std::string regionSchemeName(RegionScheme scheme);

/** Full pipeline configuration. */
struct PipelineOptions
{
    RegionScheme scheme = RegionScheme::Treegion;
    MachineModel model = MachineModel::wide4U();
    SchedOptions sched;
    region::TailDupLimits tail_dup;   ///< for TreegionTailDup
    region::SuperblockOptions superblock;  ///< for Superblock
    region::HyperblockOptions hyperblock;  ///< for Hyperblock
};

/** Everything the experiments need from one pipeline run. */
struct PipelineResult
{
    FunctionSchedule schedule;
    region::RegionSet regions;
    region::RegionStats region_stats;
    double estimated_time = 0.0;
    double code_expansion = 1.0;  ///< vs. the pre-formation function
    RegionSchedStats total_sched_stats;
};

/**
 * Run the pipeline on @p fn.
 *
 * Tail-duplicating schemes mutate @p fn (clone blocks, split profile
 * flow); clone the function first if the original is still needed.
 */
PipelineResult runPipeline(ir::Function &fn,
                           const PipelineOptions &options);

/**
 * The paper's baseline: basic-block scheduling on the single-issue
 * machine. @return its estimated execution time for @p fn.
 */
double estimateBaselineTime(ir::Function &fn);

} // namespace treegion::sched

#endif // TREEGION_SCHED_PIPELINE_H
